"""Vacancy clustering study: the physics of the paper's Figure 17.

Starts from dispersed vacancies (the superposition of many distant
cascades), evolves them with AKMC, and tracks the clustering statistics
against simulated time — then converts the KMC clock into real time with
the paper's formula.

    python examples/vacancy_clustering.py
"""

import numpy as np

from repro.core.clusters import clustering_report
from repro.core.timescale import kmc_real_time
from repro.analysis.stats import cluster_size_distribution
from repro.kmc.akmc import SerialAKMC, place_random_vacancies
from repro.kmc.events import KMCModel, RateParameters
from repro.lattice.bcc import BCCLattice
from repro.potential.fe import make_fe_potential


def main() -> None:
    lattice = BCCLattice(8, 8, 8)
    potential = make_fe_potential(n=2000)
    params = RateParameters(temperature=600.0)
    model = KMCModel(lattice, potential, params)

    nvac = 25
    occ0 = place_random_vacancies(model, nvac, np.random.default_rng(42))
    engine = SerialAKMC(lattice, potential, params, occ0, seed=9)
    c_mc = nvac / lattice.nsites

    print(f"{lattice.nsites} sites, {nvac} vacancies (c = {c_mc:.2%}), 600 K")
    print(
        f"{'events':>7} {'KMC t (ps)':>12} {'clusters':>9} {'max':>4} "
        f"{'mean NN (A)':>12}"
    )
    for checkpoint in (0, 250, 500, 1000, 2000, 3500):
        if checkpoint:
            engine.run(max_events=checkpoint)
        vac = model.sites[engine.vacancy_rows]
        rep = clustering_report(lattice, vac)
        print(
            f"{engine.events:>7} {engine.time:>12.4g} {rep.n_clusters:>9} "
            f"{rep.max_cluster:>4} {rep.mean_nn_distance:>12.2f}"
        )

    print("\nfinal cluster-size distribution:")
    dist = cluster_size_distribution(lattice, model.sites[engine.vacancy_rows])
    for size in sorted(dist, reverse=True):
        print(f"  {dist[size]:2d} cluster(s) of size {size}")

    real = kmc_real_time(t_threshold=engine.time * 1e-12, c_mc=c_mc)
    print(
        f"\nKMC clock {engine.time:.3g} ps represents "
        f"{real:.3g} s ({real / 86400:.3g} days) of real aging "
        f"(paper formula, E_v+ back-solved from the 19.2-day headline)"
    )


if __name__ == "__main__":
    main()
