"""Checkpoint/restart: surviving an interruption of a long run.

The paper's production run takes 8.6 hours on 6.24 million cores; no such
run survives without checkpointing.  This example interrupts an MD
cascade halfway, restores it into a fresh engine, and verifies the
resumed trajectory is bit-identical to an uninterrupted one.  It also
records the KMC stage into a trajectory file.

    python examples/checkpoint_restart.py [workdir]

Without an explicit workdir the artifacts go to a fresh directory under
the system temp dir — never into the working tree.
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.io.checkpoint import load_checkpoint, save_checkpoint
from repro.io.kmc_trajectory import KMCTrajectory
from repro.kmc.akmc import SerialAKMC
from repro.kmc.events import ATOM, VACANCY, RateParameters
from repro.lattice.bcc import BCCLattice
from repro.md.cascade import CascadeConfig, insert_pka
from repro.md.engine import MDConfig, MDEngine
from repro.potential.fe import make_fe_potential


def main(workdir: Path) -> None:
    workdir.mkdir(parents=True, exist_ok=True)
    potential = make_fe_potential(n=2000)

    # --- reference: an uninterrupted 80-step cascade -------------------
    reference = MDEngine(
        BCCLattice(6, 6, 6), potential, MDConfig(temperature=300.0, seed=3)
    )
    reference.initialize()
    insert_pka(reference.state, CascadeConfig(pka_energy=120.0), reference.lattice)
    reference.run(nsteps=80, displacement_threshold=1.2)

    # --- interrupted: 40 steps, checkpoint, restore, 40 more -----------
    first_half = MDEngine(
        BCCLattice(6, 6, 6), potential, MDConfig(temperature=300.0, seed=3)
    )
    first_half.initialize()
    insert_pka(
        first_half.state, CascadeConfig(pka_energy=120.0), first_half.lattice
    )
    first_half.run(nsteps=40, displacement_threshold=1.2)
    ckpt = workdir / "cascade.npz"
    save_checkpoint(ckpt, first_half)
    print(f"checkpoint written after step 40: {ckpt} "
          f"({ckpt.stat().st_size} bytes)")

    resumed = MDEngine(
        BCCLattice(6, 6, 6), potential, MDConfig(temperature=300.0, seed=3)
    )
    load_checkpoint(ckpt, resumed)
    resumed.run(nsteps=40, displacement_threshold=1.2)

    drift = float(np.abs(resumed.state.x - reference.state.x).max())
    print(f"resumed vs uninterrupted max position difference: {drift:.2e} A")
    assert drift < 1e-12, "restart must reproduce the trajectory exactly"

    # --- KMC stage with trajectory recording ---------------------------
    occ = np.full(reference.lattice.nsites, ATOM, dtype=np.int8)
    occ[reference.state.vacancy_rows()] = VACANCY
    engine = SerialAKMC(
        reference.lattice, potential, RateParameters(), occ, seed=3
    )
    traj = KMCTrajectory(reference.lattice)
    traj.record(engine.time, engine.occ)
    for _ in range(4):
        engine.run(max_events=engine.events + 50)
        traj.record(engine.time, engine.occ)
    traj_path = workdir / "kmc_trajectory.npz"
    traj.save(traj_path)
    traj.export_vacancy_xyz(workdir / "final_vacancies.xyz")
    reloaded = KMCTrajectory.load(traj_path)
    print(
        f"recorded {len(reloaded)} KMC frames to {traj_path} "
        f"(t = 0 .. {reloaded.times[-1]:.3g} ps); final vacancy cloud "
        f"exported as XYZ"
    )


if __name__ == "__main__":
    main(
        Path(sys.argv[1])
        if len(sys.argv) > 1
        else Path(tempfile.mkdtemp(prefix="repro-checkpoint-restart-"))
    )
