"""Full scaling study: regenerate every scaling figure of the paper.

Prints the modeled series of Figures 10, 11, 14, 15, 16 side by side
with the paper's reported numbers.

    python examples/scaling_study.py
"""

from repro.experiments import (
    fig10_md_strong_scaling,
    fig11_md_weak_scaling,
    fig14_kmc_strong_scaling,
    fig15_kmc_weak_scaling,
    fig16_coupled_weak_scaling,
    memory_table,
)


def main() -> None:
    for module in (
        fig10_md_strong_scaling,
        fig11_md_weak_scaling,
        fig14_kmc_strong_scaling,
        fig15_kmc_weak_scaling,
        fig16_coupled_weak_scaling,
        memory_table,
    ):
        title = module.__doc__.strip().splitlines()[0]
        print("=" * 72)
        print(title)
        print("=" * 72)
        module.main()
        print()


if __name__ == "__main__":
    main()
