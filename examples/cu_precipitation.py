"""Cu precipitation in alpha-iron: the alloy extension in action.

The paper's timescale formula (§3) is taken from Castin, Pascuet &
Malerba [2] — a study of "the first stages of Cu precipitation in
alpha-Fe using a hybrid atomistic kinetic Monte Carlo approach".  This
example runs that physics on this reproduction's alloy AKMC: a dilute
random Fe-Cu solid solution with a few vacancies whose migration
(preferentially exchanging with Cu — the lower barrier) carries the
copper into growing precipitate clusters.

    python examples/cu_precipitation.py
"""

import numpy as np

from repro.core.clusters import clustering_report
from repro.core.timescale import kmc_real_time
from repro.kmc.alloy import AlloyKMCModel, AlloySerialAKMC, S_CU
from repro.lattice.bcc import BCCLattice


def main() -> None:
    lattice = BCCLattice(8, 8, 8)
    model = AlloyKMCModel(lattice, table_points=1000)
    rng = np.random.default_rng(7)
    cu_count, vac_count = 30, 3
    occ0 = model.random_solution(cu_count, vac_count, rng)
    engine = AlloySerialAKMC(model, occ0, seed=11)

    print(
        f"{lattice.nsites} sites: Fe matrix + {cu_count} Cu "
        f"({cu_count / lattice.nsites:.1%}) + {vac_count} vacancies, 600 K\n"
    )
    print(f"{'events':>7} {'KMC t (ps)':>12} {'Cu clusters':>12} "
          f"{'largest':>8} {'mean NN (A)':>12}")
    for budget in (0, 500, 1000, 2000, 3500):
        if budget:
            engine.run(max_events=budget)
        rep = clustering_report(lattice, model.sites[engine.cu_rows])
        print(
            f"{engine.events:>7} {engine.time:>12.4g} {rep.n_clusters:>12} "
            f"{rep.max_cluster:>8} {rep.mean_nn_distance:>12.2f}"
        )

    c_v = vac_count / lattice.nsites
    real = kmc_real_time(t_threshold=engine.time * 1e-12, c_mc=c_v)
    print(
        f"\nvacancy-mediated aging over {real / 86400:.3g} equivalent days "
        f"(paper's formula at c_v = {c_v:.2e})"
    )
    print(
        "mechanism: the vacancy exchanges preferentially with Cu (0.55 eV "
        "barrier vs 0.65 eV for Fe), and the Fe-Cu mixing penalty makes "
        "Cu-Cu contacts sticky — precipitates nucleate and coarsen."
    )


if __name__ == "__main__":
    main()
