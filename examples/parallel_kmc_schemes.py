"""Parallel KMC communication schemes: the paper's §2.2.1 head-to-head.

Runs the same sector-synchronous AKMC workload under all three
communication schemes — traditional full-strip exchange (SPPARKS-style),
the paper's on-demand strategy over two-sided probe/recv, and the
one-sided put+fence variant — verifies they produce bitwise-identical
trajectories, and compares their measured traffic.

    python examples/parallel_kmc_schemes.py
"""

import numpy as np

from repro.kmc.akmc import ParallelAKMC, place_random_vacancies
from repro.kmc.events import KMCModel, RateParameters
from repro.lattice.bcc import BCCLattice
from repro.potential.fe import make_fe_potential
from repro.runtime.netmodel import SUNWAY_NETWORK


def main() -> None:
    lattice = BCCLattice(8, 8, 8)
    potential = make_fe_potential(n=1000)
    params = RateParameters(temperature=600.0)
    model = KMCModel(lattice, potential, params)
    occ0 = place_random_vacancies(model, 20, np.random.default_rng(1))

    print("8 ranks (2 x 2 x 2), 1024 sites, 20 vacancies, 12 cycles\n")
    results = {}
    for scheme in ("traditional", "ondemand", "onesided"):
        engine = ParallelAKMC(
            lattice,
            potential,
            params,
            nranks=8,
            scheme=scheme,
            seed=5,
            network=SUNWAY_NETWORK,
        )
        results[scheme] = engine.run(occ0, max_cycles=12)

    ref = results["traditional"].occupancy
    print(f"{'scheme':>12} {'events':>7} {'bytes':>12} {'messages':>9} "
          f"{'comm time (s)':>14} {'identical':>10}")
    for scheme, res in results.items():
        stats = res.comm_stats
        print(
            f"{scheme:>12} {res.events:>7} {stats['total_sent_bytes']:>12,} "
            f"{stats['total_messages']:>9,} {stats['max_comm_time']:>14.6f} "
            f"{str(np.array_equal(res.occupancy, ref)):>10}"
        )

    trad = results["traditional"].comm_stats
    ond = results["ondemand"].comm_stats
    one = results["onesided"].comm_stats
    print(
        f"\non-demand volume = "
        f"{ond['total_sent_bytes'] / trad['total_sent_bytes']:.2%} of "
        f"traditional (paper: 2.6% at production scale)"
    )
    print(
        f"one-sided messages = {one['total_messages']:,} vs "
        f"{ond['total_messages']:,} two-sided — the zero-size probes the "
        f"paper's RMA variant eliminates"
    )


if __name__ == "__main__":
    main()
