"""Quickstart: one coupled MD-KMC damage simulation, end to end.

Runs the paper's pipeline at laptop scale: thermalize a BCC iron box at
600 K, fire a primary knock-on atom through it (MD cascade), hand the
vacancy inventory to AKMC, evolve the clustering, and translate the KMC
clock into real time with the paper's timescale formula.

    python examples/quickstart.py
"""

from repro.core import CoupledConfig, CoupledSimulation
from repro.md.cascade import CascadeConfig


def main() -> None:
    config = CoupledConfig(
        cells=8,            # 1024 lattice sites
        temperature=600.0,  # the paper's evaluation temperature
        cascade=CascadeConfig(pka_energy=160.0, nsteps=200, temperature=600.0),
        kmc_max_events=800,
        seed=2018,
    )
    sim = CoupledSimulation(config)
    print(f"simulating {sim.lattice.nsites} sites of BCC Fe at 600 K ...")
    result = sim.run()

    print("\n--- MD stage (cascade collision) ---")
    print(f"Frenkel pairs produced : {result.cascade.n_frenkel_pairs}")
    print(f"final lattice T        : {result.cascade.final_temperature:.0f} K")
    print(f"damage after MD        : {result.report_after_md}")

    print("\n--- KMC stage (defect evolution) ---")
    print(f"events executed        : {result.kmc_events}")
    print(f"KMC clock              : {result.kmc_time:.3g} ps")
    print(f"damage after KMC       : {result.report_after_kmc}")

    print("\n--- timescale bridge (paper §3) ---")
    print(
        f"represented real time  : {result.real_time_seconds:.3g} s "
        f"({result.real_time_seconds / 86400:.3g} days)"
    )


if __name__ == "__main__":
    main()
