"""Alloy table management: the paper's Fe-Cu scenario (§2.1.2).

Builds the three pair-interaction table sets of a dilute Fe-Cu alloy,
shows why they cannot all live in a 64 KB local store, and applies the
paper's residency policy ("only load the compacted table for the element
with the highest content").

    python examples/alloy_simulation.py
"""

from repro.potential.alloy import make_fe_cu_alloy, plan_local_store_residency
from repro.sunway.arch import SunwayArch


def main() -> None:
    arch = SunwayArch()
    for cu in (0.01, 0.10, 0.50):
        alloy = make_fe_cu_alloy(cu_fraction=cu, n=5000)
        print(f"--- Fe-{100 * cu:.0f}%Cu ---")
        print(f"{'table':20} {'KB':>6} {'access weight':>14}")
        for label, nbytes, weight in alloy.table_inventory():
            print(f"{label:20} {nbytes / 1024:>6.1f} {weight:>14.4f}")
        plan = plan_local_store_residency(
            alloy, capacity_bytes=arch.local_store_bytes
        )
        print(
            f"resident in the {arch.local_store_bytes // 1024} KB local "
            f"store: {', '.join(plan.resident)} "
            f"({plan.resident_bytes / 1024:.0f} KB)"
        )
        print(
            f"served from local store: {plan.hit_weight:.1%} of bond "
            f"evaluations; the rest pay per-access DMA\n"
        )
    print(
        "paper: 'we only load the compacted table for the element with "
        "the highest content in the local store, since it would be the "
        "most frequently used, and leave the other tables in the main "
        "memory.'"
    )


if __name__ == "__main__":
    main()
