"""Cascade damage study: PKA energy sweep with trajectory output.

Reproduces the MD half of the paper's §2.1 workload in detail: for a
range of primary-knock-on-atom energies, run the cascade, count Frenkel
pairs, inspect the displacement spectrum, and dump the final atom and
vacancy configurations as extended-XYZ files (viewable in OVITO/VMD).

    python examples/cascade_damage.py [output_dir]

Without an explicit output_dir the XYZ frames go to a fresh directory
under the system temp dir — never into the working tree.
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.analysis.stats import displacement_histogram
from repro.analysis.vacancies import conservation_check
from repro.io.xyz import write_vacancy_xyz, write_xyz
from repro.lattice.bcc import BCCLattice
from repro.md.cascade import CascadeConfig, run_cascade
from repro.md.engine import MDConfig, MDEngine
from repro.potential.fe import make_fe_potential


def main(outdir: Path) -> None:
    outdir.mkdir(parents=True, exist_ok=True)
    potential = make_fe_potential(n=2000)
    print(f"{'PKA (eV)':>9} {'vacancies':>10} {'runaways':>9} {'T final':>8}")
    for pka in (60.0, 120.0, 180.0):
        lattice = BCCLattice(6, 6, 6)
        engine = MDEngine(
            lattice, potential, MDConfig(temperature=300.0, seed=3)
        )
        result = run_cascade(
            engine,
            CascadeConfig(
                pka_energy=pka,
                nsteps=150,
                temperature=300.0,
                displacement_threshold=1.2,
            ),
        )
        assert conservation_check(engine.state, engine.nblist)
        print(
            f"{pka:>9.0f} {len(result.vacancy_rows):>10} "
            f"{result.n_runaways:>9} {result.final_temperature:>8.0f}"
        )
        tag = f"pka{int(pka)}"
        # Atom configuration (on-lattice + run-aways) and vacancy cloud.
        occ = engine.state.occupied
        runaway_x = np.array([a.x for a in engine.nblist.runaways]).reshape(
            -1, 3
        )
        positions = np.vstack([engine.state.x[occ], runaway_x])
        symbols = ["Fe"] * int(occ.sum()) + ["Fe"] * len(runaway_x)
        write_xyz(
            outdir / f"atoms_{tag}.xyz",
            symbols,
            positions,
            comment=f"cascade, PKA {pka} eV",
            lengths=lattice.lengths,
        )
        write_vacancy_xyz(
            outdir / f"vacancies_{tag}.xyz",
            lattice,
            engine.state.ids[engine.state.vacancy_rows()] * 0
            + engine.state.vacancy_rows(),
        )

        # Displacement spectrum: thermal bulk + cascade tail.
        disp = engine.state.displacement(engine.box)
        centers, counts = displacement_histogram(
            disp[occ], nbins=12, dmax=1.2
        )
        bar = "".join(
            "#" if c else "." for c in (counts > 0)
        )
        print(f"          displacement spectrum 0..1.2 A: [{bar}]")
    print(f"\nwrote XYZ frames to {outdir}/")


if __name__ == "__main__":
    main(
        Path(sys.argv[1])
        if len(sys.argv) > 1
        else Path(tempfile.mkdtemp(prefix="repro-cascade-"))
    )
