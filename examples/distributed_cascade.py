"""Distributed cascade: the paper's full parallel MD protocol in action.

Fires a primary knock-on atom at the seam between subdomains of a 2x2x2
decomposition, so the collision cascade — vacancies AND run-away atoms —
spills across rank boundaries: occupancy flows through the static ghost
exchange, run-aways migrate to their new owners and appear as ghost
copies in neighbors' force loops (§2.1.1's protocol).  The run is then
checked against the serial engine: identical trajectory, identical
defect inventory.

    python examples/distributed_cascade.py
"""

import numpy as np

from repro.lattice.bcc import BCCLattice
from repro.lattice.domain import DomainDecomposition
from repro.md.cascade import CascadeConfig, insert_pka
from repro.md.engine import MDConfig, MDEngine
from repro.md.parallel_damage import ParallelDamageMD
from repro.potential.fe import make_fe_potential


def main() -> None:
    lattice = BCCLattice(8, 8, 8)
    potential = make_fe_potential(n=2000)
    config = MDConfig(temperature=300.0, seed=3)
    # PKA at the corner where all 8 subdomains meet.
    seam_site = int(lattice.rank_of(1, 3, 3, 3))

    serial = MDEngine(lattice, potential, config)
    serial.initialize()
    row = insert_pka(
        serial.state,
        CascadeConfig(pka_energy=120.0, pka_site=seam_site),
        lattice,
    )
    pka_v = serial.state.v[row].copy()
    serial.run(nsteps=50, displacement_threshold=1.2, runaway_check_interval=5)

    parallel = ParallelDamageMD(lattice, potential, config, nranks=8)
    result = parallel.run(
        nsteps=50,
        displacement_threshold=1.2,
        runaway_check_interval=5,
        pka=(row, pka_v),
    )

    decomp = DomainDecomposition(lattice, (2, 2, 2))
    vac_owners = sorted(
        {decomp.owner_of_site(int(r)) for r in result.vacancy_ranks}
    )
    run_owners = sorted(
        {
            decomp.owner_of_site(int(lattice.nearest_site(x)))
            for x in result.runaway_positions
        }
    )
    print(f"PKA at site {seam_site} (the 8-subdomain seam), 120 eV, 50 fs")
    print(
        f"damage: {len(result.vacancy_ranks)} vacancies on ranks "
        f"{vac_owners}; {len(result.runaway_ids)} run-aways on ranks "
        f"{run_owners}"
    )
    occ = serial.state.occupied
    pos_err = float(np.abs(result.positions[occ] - serial.state.x[occ]).max())
    vac_match = set(result.vacancy_ranks.tolist()) == set(
        serial.state.vacancy_rows().tolist()
    )
    print(f"vs serial: max position error {pos_err:.2e} A; "
          f"vacancy inventory identical: {vac_match}")
    stats = result.comm_stats
    print(
        f"communication: {stats['total_messages']:,} messages, "
        f"{stats['total_sent_bytes']:,} bytes over 8 ranks — positions, "
        f"occupancy, densities, run-away migrations and ghost copies"
    )


if __name__ == "__main__":
    main()
