"""Sunway local-store optimization ladder: the machinery behind Figure 9.

Executes the real EAM force kernel block-by-block on the SW26010 machine
model under the paper's four optimization variants, showing where the
time goes (per-neighbor DMA gets vs compute vs block transfers) and how
the 64 KB local store dictates block sizes.

    python examples/sunway_optimization_ladder.py
"""

import numpy as np

from repro.lattice.bcc import BCCLattice
from repro.md.neighbors.lattice_list import LatticeNeighborList
from repro.md.state import AtomState
from repro.potential.fe import make_fe_potential
from repro.sunway.arch import SunwayArch
from repro.sunway.kernel import STRATEGY_LADDER, BlockedEAMKernel


def main() -> None:
    lattice = BCCLattice(20, 20, 20)
    potential = make_fe_potential(n=2000)
    state = AtomState.perfect(lattice)
    state.x = state.x + np.random.default_rng(0).normal(
        0, 0.05, state.x.shape
    )
    nblist = LatticeNeighborList(lattice, potential.cutoff)
    arch = SunwayArch()

    print(
        f"{lattice.nsites} atoms on one core group "
        f"(64 CPEs, {arch.local_store_bytes // 1024} KB local store each)\n"
    )
    print(
        f"{'variant':42} {'block':>6} {'DMA ops':>9} {'DMA KB':>8} "
        f"{'time (ms)':>10}"
    )
    times = {}
    for strategy in STRATEGY_LADDER:
        kernel = BlockedEAMKernel(arch, potential, strategy, table_points=5000)
        report = kernel.run_step(state, nblist)
        times[strategy.name] = report.total_time
        print(
            f"{strategy.name:42} {report.block_sites:>6} "
            f"{report.dma.operations:>9,} "
            f"{report.dma.total_bytes / 1024:>8.0f} "
            f"{report.total_time * 1e3:>10.3f}"
        )

    base = times["TraditionalTable"]
    comp = times["CompactedTable"]
    reuse = times["CompactedTable+DataReuse"]
    db = times["CompactedTable+DataReuse+DoubleBuffer"]
    print(
        f"\ncompacted table improvement : {(base - comp) / base:.1%} "
        f"(paper: 54.7% average)"
    )
    print(
        f"+ ghost data reuse          : {(comp - reuse) / comp:.1%} "
        f"(paper: ~4%)"
    )
    print(
        f"+ double buffer             : {(reuse - db) / reuse:.1%} "
        f"(paper: no obvious improvement)"
    )
    print(
        "\nwhy the traditional table loses: a 273 KB coefficient matrix "
        "cannot live in a 64 KB local store, so every neighbor evaluation "
        "pays 3 blocking DMA row-fetches."
    )


if __name__ == "__main__":
    main()
