"""Benchmark: Figure 14 — KMC strong scaling.

Paper: 18.5x speedup / 58.2% efficiency from 1,500 to 48,000 master
cores at 3.2e10 sites, with super-linear speedup between 3,000 and
12,000 cores from the MPE L2 cache.
"""

import pytest

from conftest import print_rows
from repro.experiments import fig14_kmc_strong_scaling


@pytest.fixture(scope="module")
def result():
    return fig14_kmc_strong_scaling.run()


def test_fig14_kmc_strong_scaling(benchmark, result):
    benchmark.pedantic(fig14_kmc_strong_scaling.run, rounds=1, iterations=1)
    print_rows(
        "Figure 14: KMC strong scaling (3.2e10 sites, masters only)",
        result["rows"],
        ["cores", "speedup", "ideal_speedup", "efficiency", "l2_resident"],
    )
    s = result["summary"]
    print(
        f"final: {s['max_speedup']:.1f}x / {s['final_efficiency']:.1%} "
        f"(paper: 18.5x / 58.2%); super-linear at {s['superlinear_cores']}"
    )
    # Shape: a super-linear window in the paper's range, then decay to a
    # sub-ideal final efficiency.
    assert s["superlinear_cores"], "no super-linear region"
    assert all(3000 <= c <= 24000 for c in s["superlinear_cores"])
    assert 10 < s["max_speedup"] < 28
    assert 0.35 < s["final_efficiency"] < 0.85
    # The L2 transition drives the bump: non-resident at the bottom,
    # resident at the top.
    assert result["rows"][0]["l2_resident"] is False
    assert result["rows"][-1]["l2_resident"] is True
