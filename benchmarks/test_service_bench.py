"""Benchmark: simulation-as-a-service job layer.

The service exists so sweep-shaped workloads pay for each distinct
scenario once.  These benchmarks quantify the two sides of that trade:
the cost of a cold execution through the full queue/worker/publish
machinery versus the near-free warm path (a content-addressed cache
hit), and the dedup win on a batch of mostly-identical submissions.
"""

from conftest import print_rows
from repro.service import ResultCache, ScenarioSpec, run_service


def _spec(**kw):
    base = dict(
        cells=5, md_steps=30, kmc_max_events=25, seed=7,
        table_points=500,
    )
    base.update(kw)
    return ScenarioSpec(**base)


def test_service_cold_execution(benchmark, tmp_path_factory):
    """Full cold path: submit, fork a worker, execute, publish."""

    roots = iter(
        tmp_path_factory.mktemp("svc_cold") / f"r{i}" for i in range(10_000)
    )

    def cold():
        records = run_service(next(roots), [_spec()], workers=1)
        assert records[0].state == "done"

    benchmark.pedantic(cold, rounds=3, iterations=1)


def test_service_warm_cache_hit(benchmark, tmp_path_factory):
    """Warm path: the same spec against an already-published root."""
    root = tmp_path_factory.mktemp("svc_warm") / "root"
    spec = _spec()
    run_service(root, [spec], workers=1)
    assert ResultCache(root).lookup(spec.key()) is not None

    def warm():
        records = run_service(root, [spec], workers=1)
        assert records[0].mode == "cached"

    result = benchmark(warm)
    assert result is None


def test_service_dedup_batch(benchmark, tmp_path_factory):
    """Six submissions over two distinct scenarios: 2 executions, 4 free."""

    roots = iter(
        tmp_path_factory.mktemp("svc_dedup") / f"r{i}" for i in range(10_000)
    )
    specs = [_spec(seed=7), _spec(seed=7), _spec(seed=7),
             _spec(seed=8), _spec(seed=8), _spec(seed=8)]

    def batch():
        records = run_service(next(roots), specs, workers=2)
        executed = sum(1 for r in records if r.mode == "executed")
        assert executed == 2
        return records

    records = benchmark.pedantic(batch, rounds=3, iterations=1)
    print_rows(
        "service dedup batch (6 jobs, 2 scenarios)",
        [
            {"job": r.job_id, "mode": r.mode,
             "attempts": r.attempts, "state": r.state}
            for r in records
        ],
        ("job", "mode", "attempts", "state"),
    )
    assert all(r.state == "done" for r in records)
