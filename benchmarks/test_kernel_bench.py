"""Kernel microbenchmarks: the hot paths the event catalog and the
bincount scatter accelerate, with explicit old-vs-new comparisons.

Unlike the figure benchmarks these measure this implementation's own
kernel throughput — serial and sublattice KMC events/sec and EAM
pairs/sec — and publish the numbers as observe gauges, so running under
``REPRO_BENCH_PHASES=<dir>`` drops machine-readable JSON (phases,
counters, and the throughput gauges) next to the wall-clock stats.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import kernels, observe as obs
from repro.lattice.bcc import BCCLattice
from repro.md.forces import PairTable, eam_evaluate

needs_numba = pytest.mark.skipif(
    not kernels.numba_available(),
    reason="compiled kernel path needs numba (REPRO_KERNELS=numba CI leg)",
)


@pytest.fixture(scope="module")
def kmc_1k_system(potential_bench):
    """16^3 lattice (8,192 sites) with 1,000 vacancies — the catalog's
    acceptance workload."""
    from repro.kmc.akmc import place_random_vacancies
    from repro.kmc.events import KMCModel, RateParameters

    lattice = BCCLattice(16, 16, 16)
    params = RateParameters()
    model = KMCModel(lattice, potential_bench, params)
    occ0 = place_random_vacancies(model, 1000, np.random.default_rng(3))
    return lattice, params, model, occ0


def _events_per_second(engine, nevents: int, warmup: int = 3) -> float:
    for _ in range(warmup):
        engine.step()
    t0 = time.perf_counter()
    for _ in range(nevents):
        engine.step()
    return nevents / (time.perf_counter() - t0)


def test_serial_catalog_speedup(potential_bench, kmc_1k_system):
    """Catalog vs flat-rebuild serial AKMC at 1,000 vacancies.

    Acceptance gate of the incremental catalog: >= 5x events/sec over
    the pre-catalog rebuild-per-event path on the same trajectory.
    """
    from repro.kmc.akmc import SerialAKMC

    lattice, params, _model, occ0 = kmc_1k_system
    fast = _events_per_second(
        SerialAKMC(lattice, potential_bench, params, occ0, seed=2), 300
    )
    slow = _events_per_second(
        SerialAKMC(
            lattice, potential_bench, params, occ0, seed=2, use_catalog=False
        ),
        30,
    )
    speedup = fast / slow
    obs.set_gauge("bench.kmc.serial.catalog_events_per_s", fast)
    obs.set_gauge("bench.kmc.serial.flat_events_per_s", slow)
    obs.set_gauge("bench.kmc.serial.catalog_speedup", speedup)
    print(
        f"\nserial KMC @1000 vacancies: catalog {fast:,.0f} ev/s, "
        f"flat rebuild {slow:,.0f} ev/s, speedup {speedup:.1f}x"
    )
    assert speedup >= 5.0


def test_serial_catalog_event_throughput(benchmark, potential_bench, kmc_1k_system):
    """Steady-state catalog events/sec (pytest-benchmark statistics)."""
    from repro.kmc.akmc import SerialAKMC

    lattice, params, _model, occ0 = kmc_1k_system
    engine = SerialAKMC(lattice, potential_bench, params, occ0, seed=4)
    engine.step()  # populate the catalog outside the timed region

    benchmark(engine.step)
    rate = 1.0 / benchmark.stats["mean"]
    obs.set_gauge("bench.kmc.serial.events_per_s", rate)
    print(f"\ncatalog event throughput: {rate:,.0f} events/s")


def test_sublattice_catalog_speedup(potential_bench):
    """Catalog vs flat-rebuild sector-synchronous AKMC (8 ranks)."""
    from repro.kmc.akmc import ParallelAKMC, place_random_vacancies
    from repro.kmc.events import KMCModel, RateParameters

    lattice = BCCLattice(8, 8, 8)
    params = RateParameters()
    model = KMCModel(lattice, potential_bench, params)
    occ0 = place_random_vacancies(model, 60, np.random.default_rng(9))

    rates = {}
    for use_catalog in (True, False):
        engine = ParallelAKMC(
            lattice,
            potential_bench,
            params,
            nranks=8,
            scheme="ondemand",
            seed=5,
            use_catalog=use_catalog,
        )
        t0 = time.perf_counter()
        result = engine.run(occ0, max_cycles=8)
        rates[use_catalog] = result.events / (time.perf_counter() - t0)
        assert result.events > 0
    speedup = rates[True] / rates[False]
    obs.set_gauge("bench.kmc.sublattice.catalog_events_per_s", rates[True])
    obs.set_gauge("bench.kmc.sublattice.flat_events_per_s", rates[False])
    obs.set_gauge("bench.kmc.sublattice.catalog_speedup", speedup)
    print(
        f"\nsublattice KMC (8 ranks): catalog {rates[True]:,.0f} ev/s, "
        f"flat rebuild {rates[False]:,.0f} ev/s, speedup {speedup:.1f}x"
    )
    # Runtime threading makes the ratio noisy; gate only on sanity.
    assert speedup > 0.5


def test_batched_rate_kernel(benchmark, potential_bench, kmc_1k_system):
    """vacancy_events_batch over all 1,000 vacancies at once."""
    _lattice, _params, model, occ0 = kmc_1k_system
    vrows = np.flatnonzero(occ0 == 0)

    counts, _targets, rates = benchmark(
        model.vacancy_events_batch, vrows, occ0
    )
    assert counts.sum() == len(rates)
    per_s = len(vrows) / benchmark.stats["mean"]
    obs.set_gauge("bench.kmc.batch_rate_rows_per_s", per_s)
    print(f"\nbatched rate evaluations: {per_s:,.0f} vacancies/s")


@pytest.fixture(scope="module")
def eam_pair_workload(potential_bench):
    """A dense ~400k half-pair table over a perturbed 12^3 crystal."""
    from repro.lattice.box import Box
    from repro.md.neighbors.verlet_list import VerletNeighborList
    from repro.md.state import AtomState

    lattice = BCCLattice(12, 12, 12)
    state = AtomState.perfect(lattice)
    state.x = state.x + np.random.default_rng(0).normal(0, 0.05, state.x.shape)
    box = Box.for_lattice(lattice)
    i, j = VerletNeighborList(box, potential_bench.cutoff).pairs(state.x)
    table = PairTable.from_pairs(state.x, i, j, box, potential_bench.cutoff)
    return state.n, table


def test_eam_scatter_pairs_per_second(benchmark, potential_bench, eam_pair_workload):
    """Two-pass EAM evaluation with the bincount scatter."""
    n, table = eam_pair_workload
    result = benchmark(eam_evaluate, potential_bench, n, table)
    assert result.energy < 0
    pairs_per_s = len(table) / benchmark.stats["mean"]
    obs.set_gauge("bench.md.eam_pairs_per_s", pairs_per_s)
    print(
        f"\nEAM scatter throughput: {pairs_per_s:,.0f} pairs/s "
        f"({len(table):,} pairs)"
    )


def test_eam_bincount_vs_add_at(potential_bench, eam_pair_workload):
    """Old-vs-new force scatter: bincount against the 2-D np.add.at it
    replaced (the worst offender — unbuffered element-wise ufunc loop)."""
    n, table = eam_pair_workload
    fvec = np.random.default_rng(1).normal(size=(len(table), 3))

    def scatter_bincount():
        forces = np.empty((n, 3))
        for k in range(3):
            forces[:, k] = np.bincount(
                table.i, weights=fvec[:, k], minlength=n
            ) - np.bincount(table.j, weights=fvec[:, k], minlength=n)
        return forces

    def scatter_add_at():
        forces = np.zeros((n, 3))
        np.add.at(forces, table.i, fvec)
        np.add.at(forces, table.j, -fvec)
        return forces

    def best_of(fn, repeats=7):
        fn()  # warm-up
        return min(
            (lambda t0: (fn(), time.perf_counter() - t0)[1])(time.perf_counter())
            for _ in range(repeats)
        )

    t_new, t_old = best_of(scatter_bincount), best_of(scatter_add_at)
    speedup = t_old / t_new
    obs.set_gauge("bench.md.scatter_bincount_speedup", speedup)
    print(
        f"\nforce scatter over {len(table):,} pairs: bincount {t_new * 1e3:.2f} ms, "
        f"np.add.at {t_old * 1e3:.2f} ms, speedup {speedup:.1f}x"
    )
    assert np.allclose(scatter_bincount(), scatter_add_at(), rtol=1e-12, atol=1e-12)


# ----------------------------------------------------------------------
# Kernel backend: numpy reference vs compiled loops
# ----------------------------------------------------------------------
@needs_numba
def test_numba_eam_matches_and_speeds_up(
    potential_bench, eam_pair_workload, monkeypatch
):
    """Compiled EAM evaluation: bit-identical forces, reported speedup."""
    n, table = eam_pair_workload
    timings = {}
    results = {}
    for backend in ("numpy", "numba"):
        monkeypatch.setenv("REPRO_KERNELS", backend)
        eam_evaluate(potential_bench, n, table)  # warm-up (JIT compile)
        t0 = time.perf_counter()
        for _ in range(5):
            results[backend] = eam_evaluate(potential_bench, n, table)
        timings[backend] = (time.perf_counter() - t0) / 5
    assert np.array_equal(
        results["numba"].forces, results["numpy"].forces
    )
    assert results["numba"].energy == results["numpy"].energy
    speedup = timings["numpy"] / timings["numba"]
    obs.set_gauge("bench.kernels.eam_numba_speedup", speedup)
    print(
        f"\nEAM over {len(table):,} pairs: numpy "
        f"{timings['numpy'] * 1e3:.2f} ms, numba "
        f"{timings['numba'] * 1e3:.2f} ms, speedup {speedup:.2f}x"
    )


@needs_numba
def test_numba_serial_kmc_beats_numpy_catalog(
    potential_bench, kmc_1k_system, monkeypatch
):
    """The compiled rate kernel must extend the catalog's ~14x win.

    Acceptance: catalog + numba events/sec exceeds catalog + numpy
    events/sec on the 1,000-vacancy workload — i.e. the serial KMC
    bench's speedup over the flat rebuild grows past its NumPy figure.
    """
    from repro.kmc.akmc import SerialAKMC

    lattice, params, _model, occ0 = kmc_1k_system
    rates = {}
    for backend in ("numpy", "numba"):
        monkeypatch.setenv("REPRO_KERNELS", backend)
        rates[backend] = _events_per_second(
            SerialAKMC(lattice, potential_bench, params, occ0, seed=2), 300
        )
    speedup = rates["numba"] / rates["numpy"]
    obs.set_gauge("bench.kmc.serial.numba_events_per_s", rates["numba"])
    obs.set_gauge("bench.kmc.serial.numba_vs_numpy", speedup)
    print(
        f"\nserial KMC @1000 vacancies: numpy {rates['numpy']:,.0f} ev/s, "
        f"numba {rates['numba']:,.0f} ev/s ({speedup:.2f}x)"
    )
    assert rates["numba"] >= rates["numpy"], (
        f"compiled rate kernel lost to numpy: {rates['numba']:,.0f} vs "
        f"{rates['numpy']:,.0f} events/s"
    )
