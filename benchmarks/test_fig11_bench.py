"""Benchmark: Figure 11 — MD weak scaling at 3.9e7 atoms per core group.

Paper: 85% parallel efficiency at 6,656,000 cores (4e12 atoms); flat
computation, slowly growing communication; the lattice neighbor list's
memory headroom enables 4e12 atoms where a Verlet-list code fits ~8e11.
"""

import pytest

from conftest import print_rows
from repro.experiments import fig11_md_weak_scaling


@pytest.fixture(scope="module")
def result():
    return fig11_md_weak_scaling.run()


def test_fig11_md_weak_scaling(benchmark, result):
    benchmark.pedantic(fig11_md_weak_scaling.run, rounds=1, iterations=1)
    print_rows(
        "Figure 11: MD weak scaling (3.9e7 atoms/CG)",
        result["rows"],
        ["cores", "compute", "comm", "efficiency"],
    )
    s = result["summary"]
    print(
        f"final efficiency: {s['final_efficiency']:.1%} (paper: 85%); "
        f"memory: {s['lattice_list_max_atoms']:.2e} vs "
        f"{s['verlet_list_max_atoms']:.2e} atoms "
        f"({s['memory_advantage']:.1f}x; paper 4e12 vs 8e11)"
    )
    # Shape: flat compute, growing comm, efficiency in the paper band.
    assert s["compute_flat_ratio"] == pytest.approx(1.0, abs=1e-9)
    assert s["comm_growth_ratio"] > 1.3
    assert 0.75 < s["final_efficiency"] < 0.95
    # The memory claim: lattice list beats the Verlet list by ~4-6x and
    # clears the paper's 4e12-atom production point.
    assert 3.5 < s["memory_advantage"] < 6.5
    assert s["lattice_list_max_atoms"] > 4e12
    assert s["verlet_list_max_atoms"] < 4e12
