"""Benchmark: Figure 15 — KMC weak scaling.

Paper: 1e7 sites per master core from 1,600 to 102,400 cores at
c_v = 2e-6: computation flat, communication (time-sync collectives)
grows, 74% efficiency at the top.
"""

import pytest

from conftest import print_rows
from repro.experiments import fig15_kmc_weak_scaling


@pytest.fixture(scope="module")
def result():
    return fig15_kmc_weak_scaling.run()


def test_fig15_kmc_weak_scaling(benchmark, result):
    benchmark.pedantic(fig15_kmc_weak_scaling.run, rounds=1, iterations=1)
    print_rows(
        "Figure 15: KMC weak scaling (1e7 sites/core, masters only)",
        result["rows"],
        ["cores", "compute", "comm", "sync", "efficiency"],
    )
    s = result["summary"]
    print(
        f"final efficiency: {s['final_efficiency']:.1%} (paper: 74%); "
        f"sync grew x{s['sync_growth_ratio']:.1f}"
    )
    # Shape: flat compute; the growing term is the synchronization
    # collective ("due to the collective operations used for time
    # synchronization"); efficiency lands in the paper's band.
    assert s["compute_flat_ratio"] == pytest.approx(1.0, abs=1e-9)
    assert s["sync_growth_ratio"] > 2.0
    assert 0.60 < s["final_efficiency"] < 0.95
    effs = [r["efficiency"] for r in result["rows"]]
    assert all(a >= b - 1e-12 for a, b in zip(effs, effs[1:], strict=False))
