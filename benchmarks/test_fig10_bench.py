"""Benchmark: Figure 10 — MD strong scaling to 6.24M cores.

Paper: 26.4x speedup / 41.3% efficiency scaling 3.2e10 atoms from 97,500
to 6,240,000 master+slave cores.
"""

import pytest

from conftest import print_rows
from repro.experiments import fig10_md_strong_scaling


@pytest.fixture(scope="module")
def result():
    return fig10_md_strong_scaling.run()


def test_fig10_md_strong_scaling(benchmark, result):
    benchmark.pedantic(
        fig10_md_strong_scaling.run, rounds=1, iterations=1
    )
    print_rows(
        "Figure 10: MD strong scaling (3.2e10 atoms)",
        result["rows"],
        ["cores", "speedup", "ideal_speedup", "efficiency"],
    )
    s = result["summary"]
    print(
        f"final: {s['max_speedup']:.1f}x / {s['final_efficiency']:.1%} "
        f"(paper: {s['paper']['speedup']}x / {s['paper']['efficiency']:.1%})"
    )
    # Shape: monotone speedup; efficiency decays into the paper's band.
    speedups = [r["speedup"] for r in result["rows"]]
    assert all(a < b for a, b in zip(speedups, speedups[1:], strict=False))
    assert 18 < s["max_speedup"] < 40
    assert 0.30 < s["final_efficiency"] < 0.55
    # Communication overtakes computation at the largest scale — the
    # "caused by the communication overhead" diagnosis.
    top = result["rows"][-1]
    assert top["comm"] + top["sync"] > top["compute"]
