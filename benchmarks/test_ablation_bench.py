"""Ablation benchmarks: the design choices behind the paper's numbers.

Each ablation varies one knob the paper (or this reproduction) fixed and
verifies the claimed sensitivity:

* interpolation-table resolution (the 5000-knot choice),
* lattice-neighbor-list skin (exactness vs candidate-set size),
* table-access strategy incl. the §5 register-communication proposal,
* KMC rate-stencil cutoff (ghost width vs traditional exchange volume),
* network contention exponent (what the weak-scaling tail rides on).
"""

import numpy as np
import pytest

from conftest import print_rows


class TestTableResolutionAblation:
    def test_knot_count_vs_accuracy_and_size(self, benchmark):
        from repro.potential.fe import FeParameters, make_fe_potential

        params = FeParameters()

        def sweep():
            rows = []
            x = np.linspace(0.8, params.cutoff - 1e-6, 20000)
            exact = params.pair(x)
            for n in (250, 1000, 4000):
                pot = make_fe_potential(params, n=n)
                err = float(np.max(np.abs(pot.phi(x) - exact)))
                rows.append(
                    {
                        "knots": n,
                        "max_error_eV": err,
                        "traditional_KB": pot.tables.pair.nbytes / 1024,
                        "compacted_KB": pot.tables.compacted().pair.nbytes
                        / 1024,
                    }
                )
            return rows

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        print_rows(
            "Ablation: interpolation-table resolution",
            rows,
            ["knots", "max_error_eV", "traditional_KB", "compacted_KB"],
        )
        errors = [r["max_error_eV"] for r in rows]
        # Cubic convergence: each 4x refinement buys orders of magnitude.
        assert errors[0] > errors[1] > errors[2]
        assert errors[2] < 1e-8
        # The 7x layout ratio is resolution-independent.
        for r in rows:
            assert r["compacted_KB"] == pytest.approx(
                r["traditional_KB"] / 7, rel=1e-6
            )


class TestSkinAblation:
    def test_skin_vs_candidate_width(self, benchmark):
        from repro.lattice.bcc import BCCLattice
        from repro.md.neighbors.lattice_list import LatticeNeighborList

        lattice = BCCLattice(6, 6, 6)

        def sweep():
            rows = []
            for skin in (0.0, 0.6, 1.2):
                nbl = LatticeNeighborList(lattice, 5.6, skin=skin)
                rows.append(
                    {
                        "skin_A": skin,
                        "candidates_per_site": nbl.max_neighbors,
                        "exact_up_to_disp_A": skin / 2,
                    }
                )
            return rows

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        print_rows(
            "Ablation: lattice-list skin (exactness vs candidate set)",
            rows,
            ["skin_A", "candidates_per_site", "exact_up_to_disp_A"],
        )
        widths = [r["candidates_per_site"] for r in rows]
        assert widths[0] == 58  # the bare 5.6 A census
        assert widths[0] < widths[1] < widths[2]


class TestRegisterStrategyAblation:
    def test_table_access_strategies(self, benchmark):
        from repro.sunway.register import lookup_strategy_comparison

        comp = benchmark.pedantic(
            lookup_strategy_comparison,
            kwargs=dict(lookups=2000),
            rounds=1,
            iterations=1,
        )
        rows = [
            {"strategy": k, "ns_per_lookup": v * 1e9}
            for k, v in sorted(comp.items(), key=lambda kv: kv[1])
        ]
        print_rows(
            "Ablation: table-access strategies (per-lookup, modeled)",
            rows,
            ["strategy", "ns_per_lookup"],
        )
        # The paper's story: resident compacted table wins; the two-sided
        # register interface loses to DMA ("very difficult to describe
        # these irregular communications"); the proposed one-sided
        # register communication (§5) would beat DMA.
        assert (
            comp["resident"]
            < comp["register_onesided"]
            < comp["dma"]
            < comp["register_twosided"]
        )


class TestKMCCutoffAblation:
    def test_rate_stencil_vs_ghost_width_and_volume(self, benchmark):
        from repro.kmc.akmc import ghost_width_cells
        from repro.kmc.events import RateParameters
        from repro.kmc.sublattice import SectorSchedule
        from repro.lattice.bcc import BCCLattice
        from repro.lattice.domain import DomainDecomposition

        lattice = BCCLattice(12, 12, 12)
        decomp = DomainDecomposition(lattice, (2, 2, 2))

        def sweep():
            rows = []
            for cutoff in (2.5, 2.9, 4.1):
                params = RateParameters(energy_cutoff=cutoff)
                width = ghost_width_cells(lattice, params)
                sub = decomp.subdomain(0)
                sites = np.union1d(
                    sub.owned_site_ranks(lattice),
                    sub.all_ghost_site_ranks(lattice, width),
                )
                sched = SectorSchedule(decomp, 0, sites, width)
                rows.append(
                    {
                        "energy_cutoff_A": cutoff,
                        "ghost_width_cells": width,
                        "strip_sites_per_cycle": sched.traditional_strip_sites(),
                    }
                )
            return rows

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        print_rows(
            "Ablation: KMC rate stencil vs traditional exchange volume",
            rows,
            ["energy_cutoff_A", "ghost_width_cells", "strip_sites_per_cycle"],
        )
        # A wider stencil inflates the strips the traditional scheme must
        # ship — the cost the on-demand strategy is immune to.
        strips = [r["strip_sites_per_cycle"] for r in rows]
        assert strips[0] <= strips[1] < strips[2]


class TestContentionAblation:
    def test_contention_exponent_vs_weak_efficiency(self, benchmark):
        from dataclasses import replace

        from repro.perfmodel.calibrate import calibrate_from_kernels
        from repro.perfmodel.machine import TAIHULIGHT, ScalingNetwork
        from repro.perfmodel.md_model import (
            MDScalingModel,
            paper_core_counts_weak,
        )

        costs = calibrate_from_kernels(cells=12, table_points=2000)

        def sweep():
            rows = []
            for gamma in (0.0, 0.3, 0.6):
                machine = replace(
                    TAIHULIGHT, network=ScalingNetwork(gamma=gamma)
                )
                model = MDScalingModel(costs, machine)
                eff = model.weak_scaling(3.9e7, paper_core_counts_weak())[-1][
                    "efficiency"
                ]
                rows.append({"gamma": gamma, "weak_efficiency": eff})
            return rows

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        print_rows(
            "Ablation: network contention exponent vs MD weak efficiency",
            rows,
            ["gamma", "weak_efficiency"],
        )
        effs = [r["weak_efficiency"] for r in rows]
        # No contention -> near-perfect weak scaling; the paper's 85%
        # lives on the contention term.
        assert effs[0] > 0.97
        assert effs[0] > effs[1] > effs[2]
