"""Benchmark: streaming trajectory-store I/O.

The paper's production run writes its damage trajectory from 19.2 days
of simulated time without pausing the simulation; the chunked store
(:mod:`repro.io.store`) is our stand-in for that output stage.  These
benchmarks time the three access patterns that matter: streaming
append (the simulation's hot path), sequential out-of-core read (the
analysis sweep), and random access by time (figure rendering).
"""

import numpy as np
import pytest

from conftest import print_rows
from repro.io.store import TrajectoryReader, TrajectoryWriter
from repro.lattice.bcc import BCCLattice

CELLS = 12
NFRAMES = 64
NVACANCIES = 48
HOPS_PER_FRAME = 4


@pytest.fixture(scope="module")
def lattice():
    return BCCLattice(CELLS, CELLS, CELLS)


@pytest.fixture(scope="module")
def frames(lattice):
    """A synthetic hop trajectory: few sites change per frame."""
    rng = np.random.default_rng(7)
    occ = np.ones(lattice.nsites, dtype=np.int8)
    vac = rng.choice(lattice.nsites, NVACANCIES, replace=False)
    occ[vac] = 0
    times = [0.0]
    series = [occ.copy()]
    t = 0.0
    for _ in range(1, NFRAMES):
        for _ in range(HOPS_PER_FRAME):
            vacs = np.flatnonzero(occ == 0)
            src = rng.choice(vacs)
            atoms = np.flatnonzero(occ == 1)
            dst = rng.choice(atoms)
            occ[src], occ[dst] = occ[dst], occ[src]
        t += float(rng.exponential(0.01))
        times.append(t)
        series.append(occ.copy())
    return times, series


def _write_store(path, lattice, times, series):
    writer = TrajectoryWriter(path, lattice, mode="w")
    for t, occ in zip(times, series, strict=True):
        writer.append(t, occ)
    writer.close(final=True)


@pytest.fixture(scope="module")
def store(tmp_path_factory, lattice, frames):
    path = tmp_path_factory.mktemp("io_bench") / "traj"
    _write_store(path, lattice, *frames)
    return path


def test_store_write(benchmark, tmp_path, lattice, frames):
    """Streaming append throughput (fresh store per round)."""
    times, series = frames
    path = tmp_path / "traj"
    benchmark(_write_store, path, lattice, times, series)
    raw = NFRAMES * lattice.nsites
    disk = sum(p.stat().st_size for p in path.glob("shard-*.bin"))
    print_rows(
        "Trajectory store write",
        [
            {
                "frames": NFRAMES,
                "sites": lattice.nsites,
                "raw_bytes": raw,
                "disk_bytes": disk,
                "ratio": raw / disk,
            }
        ],
        ["frames", "sites", "raw_bytes", "disk_bytes", "ratio"],
    )
    # Delta + zlib must beat the raw frame stack by a wide margin.
    assert disk < raw / 4


def test_store_read(benchmark, store, frames):
    """Sequential out-of-core sweep over every frame."""
    times, series = frames

    def sweep():
        reader = TrajectoryReader(store)
        total = 0
        for _, occ in reader.iter_frames():
            total += int((occ == 0).sum())
        return total

    total = benchmark(sweep)
    assert total == sum(int((occ == 0).sum()) for occ in series)
    # Round trip is bit-exact.
    reader = TrajectoryReader(store)
    assert np.array_equal(reader.frame(-1), series[-1])
    assert reader.time_of(-1) == times[-1]


def test_store_random_access(benchmark, store, frames):
    """Random access by timestamp (chunk-cache hits and misses)."""
    times, series = frames
    rng = np.random.default_rng(11)
    picks = rng.uniform(0.0, times[-1], size=16)

    def access():
        reader = TrajectoryReader(store)
        return sum(int(reader.frame_at_time(t)[0]) for t in picks)

    benchmark(access)
    reader = TrajectoryReader(store)
    for t in picks:
        i = reader.frame_index_at(float(t))
        assert times[i] <= t
        assert np.array_equal(reader.frame_at_time(float(t)), series[i])
