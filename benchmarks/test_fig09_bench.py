"""Benchmark: Figure 9 — MD optimization ladder.

Regenerates the four-variant runtime comparison and asserts the paper's
shape: compacted tables win big (paper: 54.7% average), ghost-data reuse
adds a small amount (paper: ~4%), double buffering adds nothing obvious.
"""

import pytest

from conftest import print_rows
from repro.experiments import fig09_md_optimizations


@pytest.fixture(scope="module")
def result():
    return fig09_md_optimizations.run(cells=20, table_points=5000)


def test_fig09_md_optimizations(benchmark, result):
    benchmark.pedantic(
        fig09_md_optimizations.run,
        kwargs=dict(cells=12, table_points=2000),
        rounds=1,
        iterations=1,
    )
    print_rows(
        "Figure 9: MD optimizations (modeled seconds per step)",
        result["rows"],
        ["cores", "strategy", "time"],
    )
    s = result["summary"]
    print(
        f"compacted: {s['compacted_improvement']:.1%} (paper 54.7%) | "
        f"reuse: {s['reuse_improvement']:.1%} (paper ~4%) | "
        f"double buffer: {s['double_buffer_improvement']:.1%} (paper ~0%)"
    )
    # Shape assertions (DESIGN.md): who wins and by roughly what factor.
    assert 0.40 < s["compacted_improvement"] < 0.75
    assert 0.0 < s["reuse_improvement"] < 0.10
    assert s["double_buffer_improvement"] < 0.08
    # Strict runtime ordering of the ladder at every core count.
    by_cores = {}
    for row in result["rows"]:
        by_cores.setdefault(row["cores"], []).append(row["time"])
    for cores, times in by_cores.items():
        assert times[0] > times[1] >= times[2] >= times[3], cores
    # The mechanism: per-neighbor DMA operations vanish.
    assert s["compacted_dma_ops"] < 0.05 * s["traditional_dma_ops"]
