"""Benchmark: Figure 16 — coupled MD-KMC weak scaling.

Paper: 3.3e5 atoms per core group from 97,500 to 6,240,000 cores;
annotated efficiencies 98.9% / 77.4% / 75.7%.
"""

import pytest

from conftest import print_rows
from repro.experiments import fig16_coupled_weak_scaling


@pytest.fixture(scope="module")
def result():
    return fig16_coupled_weak_scaling.run()


def test_fig16_coupled_weak_scaling(benchmark, result):
    benchmark.pedantic(
        fig16_coupled_weak_scaling.run, rounds=1, iterations=1
    )
    print_rows(
        "Figure 16: coupled MD-KMC weak scaling (3.3e5 atoms/CG)",
        result["rows"],
        ["cores", "md_time", "kmc_time", "efficiency"],
    )
    s = result["summary"]
    print(
        f"final efficiency: {s['final_efficiency']:.1%} "
        f"(paper: {s['paper']['efficiency']:.1%})"
    )
    # Shape: starts near ideal, decays monotonically into the paper's
    # band at 6.24M cores.
    effs = [r["efficiency"] for r in result["rows"]]
    assert effs[0] == pytest.approx(1.0)
    assert all(a >= b for a, b in zip(effs, effs[1:], strict=False))
    assert 0.50 < s["final_efficiency"] < 0.90
    # The run is MD-dominated at every scale (50 ps of 1 fs steps).
    for r in result["rows"]:
        assert r["md_time"] > r["kmc_time"]
