"""Benchmark: Figure 12 — KMC communication volume.

Paper: "The on-demand communication strategy reduces the communication
volume to 2.6% of the traditional method on average" (1.6e7 sites,
16-1024 masters, c_v = 4.5e-5).

Reproduction: measured bytes from real runs of both schemes through
identical trajectories (scaled down; see EXPERIMENTS.md).
"""

from conftest import print_rows


def test_fig12_kmc_comm_volume(benchmark, kmc_comm_rows):
    import math

    from repro.experiments._kmc_comm import run_comm_experiment

    benchmark.pedantic(
        run_comm_experiment,
        kwargs=dict(ranks_list=(8,), cycles=2, seed=77),
        rounds=1,
        iterations=1,
    )
    rows = kmc_comm_rows
    print_rows(
        "Figure 12: KMC communication volume (measured bytes)",
        rows,
        [
            "ranks",
            "nsites",
            "events",
            "traditional_bytes",
            "ondemand_bytes",
            "volume_ratio",
        ],
    )
    ratios = [r["volume_ratio"] for r in rows]
    mean_ratio = math.exp(sum(math.log(x) for x in ratios) / len(ratios))
    print(f"geometric-mean volume ratio: {mean_ratio:.3%} (paper: 2.6%)")
    # Shape: on-demand moves a few percent or less of the traditional
    # volume, at every scale.
    assert all(r["volume_ratio"] < 0.10 for r in rows)
    assert mean_ratio < 0.05
    # Sanity: events happened, so the on-demand bytes are nonzero.
    assert all(r["ondemand_bytes"] > 0 for r in rows)
