"""Throughput benchmarks: wall-clock speed of the hot kernels.

Unlike the figure benchmarks (which report *modeled* Sunway times), these
measure this Python implementation's own throughput — the numbers a
downstream user sizing a workstation run cares about.
"""

import numpy as np
import pytest

from repro.lattice.bcc import BCCLattice
from repro.lattice.box import Box
from repro.md.forces import compute_energy_forces
from repro.md.neighbors.lattice_list import LatticeNeighborList
from repro.md.state import AtomState


@pytest.fixture(scope="module")
def md_system(potential_bench):
    lattice = BCCLattice(10, 10, 10)
    state = AtomState.perfect(lattice)
    state.x = state.x + np.random.default_rng(0).normal(
        0, 0.05, state.x.shape
    )
    nbl = LatticeNeighborList(lattice, potential_bench.cutoff)
    return lattice, state, nbl


def test_eam_force_evaluation(benchmark, potential_bench, md_system):
    """Full two-pass EAM force evaluation (2,000 atoms, 58 neighbors)."""
    lattice, state, nbl = md_system
    energy = benchmark(compute_energy_forces, potential_bench, state, nbl)
    assert energy < 0
    atoms_per_s = lattice.nsites / benchmark.stats["mean"]
    print(f"\nMD force throughput: {atoms_per_s:,.0f} atom-updates/s")


def test_md_step(benchmark, potential_bench):
    """One velocity-Verlet step incl. forces (1,024 atoms)."""
    from repro.md.engine import MDConfig, MDEngine

    engine = MDEngine(
        BCCLattice(8, 8, 8), potential_bench, MDConfig(temperature=300.0)
    )
    engine.initialize()
    benchmark(engine.run, nsteps=1)
    steps_per_s = 1.0 / benchmark.stats["mean"]
    print(f"\nMD step rate at 1,024 atoms: {steps_per_s:.1f} steps/s")


def test_kmc_event_throughput(benchmark, potential_bench):
    """Serial BKL events with rate caching (20 vacancies, 1,024 sites)."""
    from repro.kmc.akmc import SerialAKMC, place_random_vacancies
    from repro.kmc.events import KMCModel, RateParameters

    lattice = BCCLattice(8, 8, 8)
    params = RateParameters()
    model = KMCModel(lattice, potential_bench, params)
    occ0 = place_random_vacancies(model, 20, np.random.default_rng(1))

    def run_events():
        engine = SerialAKMC(
            lattice, potential_bench, params, occ0, seed=1
        )
        engine.run(max_events=100)
        return engine.events

    events = benchmark(run_events)
    assert events == 100
    rate = 100 / benchmark.stats["mean"]
    print(f"\nKMC event throughput: {rate:,.0f} events/s")


def test_vacancy_rate_computation(benchmark, potential_bench):
    """A single vacancy's 8-event rate evaluation (the KMC inner loop)."""
    from repro.kmc.events import KMCModel, RateParameters, VACANCY

    model = KMCModel(
        BCCLattice(8, 8, 8), potential_bench, RateParameters()
    )
    occ = model.perfect_occupancy()
    occ[100] = VACANCY
    targets, rates = benchmark(model.vacancy_events, 100, occ)
    assert len(targets) == 8
    per_s = 1.0 / benchmark.stats["mean"]
    print(f"\nvacancy rate evaluations: {per_s:,.0f}/s")


def test_pair_enumeration_structures(benchmark, potential_bench, md_system):
    """Pair enumeration with the lattice neighbor list (static indexes)."""
    _lattice, state, nbl = md_system
    i, j = benchmark(nbl.lattice_pairs, state)
    assert len(i) > 0


def test_table_evaluation_compacted(benchmark, potential_bench):
    """Vectorized compacted-table evaluation (100k queries)."""
    compacted = potential_bench.with_layout("compacted")
    x = np.random.default_rng(0).uniform(0.5, 5.5, 100_000)
    values = benchmark(compacted.phi, x)
    assert values.shape == x.shape
    per_s = len(x) / benchmark.stats["mean"]
    print(f"\ncompacted-table throughput: {per_s:,.0f} lookups/s")
