"""Benchmark: Figure 13 — KMC communication time.

Paper: "the on-demand communication strategy obtains 21x speedup on
average in terms of communication time."

At reduced scale the per-message latency term dominates (both schemes
exchange messages every sector), so the measured speedup reflects the
message-count ratio (~2x) rather than the paper's byte-dominated 21x;
the byte mechanism is Figure 12's assertion.  See EXPERIMENTS.md.
"""

from conftest import print_rows


def test_fig13_kmc_comm_time(benchmark, kmc_comm_rows):
    import math

    def summarize():
        return [
            (r["ranks"], r["traditional_time"], r["ondemand_time"])
            for r in kmc_comm_rows
        ]

    benchmark.pedantic(summarize, rounds=1, iterations=1)
    rows = kmc_comm_rows
    print_rows(
        "Figure 13: KMC communication time (modeled seconds)",
        rows,
        ["ranks", "traditional_time", "ondemand_time", "time_speedup"],
    )
    speedups = [r["time_speedup"] for r in rows]
    mean = math.exp(sum(math.log(x) for x in speedups) / len(speedups))
    print(f"geometric-mean comm-time speedup: {mean:.1f}x (paper: 21x)")
    # Shape: on-demand communication is decisively faster at every scale.
    assert all(r["time_speedup"] > 1.5 for r in rows)
    # And the advantage holds (or grows) with rank count.
    assert speedups[-1] >= speedups[0] * 0.7
