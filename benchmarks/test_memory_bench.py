"""Benchmark: the in-text memory claim (4e12 vs 8e11 atoms).

§3: the lattice neighbor list simulates 4e12 atoms on 6.656M cores where
"traditional data structures (such as neighbor list)" manage ~8e11.
"""

import pytest

from conftest import print_rows
from repro.experiments import memory_table


@pytest.fixture(scope="module")
def result():
    return memory_table.run()


def test_memory_headroom(benchmark, result):
    benchmark.pedantic(memory_table.run, rounds=1, iterations=1)
    print_rows(
        "Memory headroom at 6,656,000 cores (102,400 CGs x 8 GB)",
        result["rows"],
        ["structure", "bytes_per_atom", "max_atoms"],
    )
    s = result["summary"]
    print(
        f"lattice list / Verlet list advantage: {s['advantage_vs_verlet']:.1f}x "
        f"(paper: 5x)"
    )
    assert 3.5 < s["advantage_vs_verlet"] < 6.5
    assert s["lattice_list_atoms"] > s["paper"]["lattice_list_atoms"]
    assert s["verlet_list_atoms"] < s["paper"]["lattice_list_atoms"]


def test_kernel_throughput(benchmark, potential_bench):
    """Time the real blocked EAM kernel step (the compute calibrator)."""
    import numpy as np

    from repro.lattice.bcc import BCCLattice
    from repro.md.neighbors.lattice_list import LatticeNeighborList
    from repro.md.state import AtomState
    from repro.sunway.arch import SunwayArch
    from repro.sunway.kernel import STRATEGY_LADDER, BlockedEAMKernel

    lattice = BCCLattice(10, 10, 10)
    state = AtomState.perfect(lattice)
    state.x = state.x + np.random.default_rng(0).normal(
        0, 0.05, state.x.shape
    )
    nbl = LatticeNeighborList(lattice, potential_bench.cutoff)
    kernel = BlockedEAMKernel(
        SunwayArch(), potential_bench, STRATEGY_LADDER[-1], table_points=2000
    )
    report = benchmark(kernel.run_step, state, nbl)
    assert report.interactions > 0
