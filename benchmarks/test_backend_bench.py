"""Benchmark: simmpi thread vs process backend on real workloads.

The process backend exists to buy genuine multi-core parallelism: on a
multi-core host the fig10-style damage-MD strong-scaling point at 4
ranks must beat its own 1-rank time by >= 2x (acceptance criterion),
while the thread backend — GIL-serialized — stays roughly flat.  Both
backends must produce bit-identical trajectories everywhere, which is
asserted unconditionally; the speedup assertion is gated on the host
actually having >= 4 cores (CI runners qualify, 1-core sandboxes skip).

Wall-clock numbers per backend land in the observe gauges, so a
``REPRO_BENCH_PHASES`` run exports them in the per-test JSON artifact.
"""

import os
import time

import numpy as np
import pytest

from conftest import print_rows
from repro import observe as obs
from repro.experiments import fig10_md_strong_scaling
from repro.runtime.procbackend import fork_available
from repro.runtime.simmpi import World


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


needs_fork = pytest.mark.skipif(
    not fork_available(), reason="process backend needs the fork start method"
)


@needs_fork
def test_fig10_backend_strong_scaling(benchmark):
    """The fig10 measured point: 1 vs 4 ranks, thread vs process."""
    results = {}

    def measure():
        for backend in ("thread", "process"):
            results[backend] = fig10_md_strong_scaling.run_measured(
                cells=8, nsteps=15, ranks_list=(1, 4), backend=backend
            )
        return results

    benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = []
    for backend, result in results.items():
        assert result["deterministic"], (
            f"{backend}: rank counts disagreed on the trajectory"
        )
        for row in result["rows"]:
            rows.append({"backend": backend, **row})
            obs.set_gauge(
                f"bench.backend.{backend}.ranks{row['ranks']}.wall_s",
                row["wall_s"],
            )
    print_rows(
        "Figure 10 measured: damage MD strong scaling per backend",
        rows,
        ["backend", "ranks", "wall_s", "speedup", "efficiency"],
    )
    # Both backends computed the same problem: cross-backend fingerprints
    # were already folded into each result's determinism check above via
    # identical (cells, nsteps, seed); assert the timing claim only where
    # the hardware can deliver it.
    cores = _usable_cores()
    speedup4 = results["process"]["rows"][-1]["speedup"]
    obs.set_gauge("bench.backend.process.speedup_4ranks", speedup4)
    print(f"process backend 4-rank speedup: {speedup4:.2f}x on {cores} cores")
    if cores >= 4:
        assert speedup4 >= 2.0, (
            f"process backend managed only {speedup4:.2f}x at 4 ranks "
            f"on a {cores}-core host (acceptance floor: 2x)"
        )
    else:
        pytest.skip(
            f"speedup assertion needs >= 4 cores, host has {cores} "
            f"(measured {speedup4:.2f}x)"
        )


@needs_fork
def test_backend_bit_identity_smoke(benchmark):
    """Thread and process backends agree bit-for-bit on the same problem."""
    from repro.lattice.bcc import BCCLattice
    from repro.md.engine import MDConfig
    from repro.md.parallel_damage import ParallelDamageMD

    def both():
        out = {}
        for backend in ("thread", "process"):
            engine = ParallelDamageMD(
                BCCLattice(6, 6, 6),
                config=MDConfig(temperature=300.0, seed=3),
                nranks=4,
                backend=backend,
            )
            out[backend] = engine.run(
                10, pka=(10, np.array([50.0, 30.0, 20.0]))
            )
        return out

    out = benchmark.pedantic(both, rounds=1, iterations=1)
    t, p = out["thread"], out["process"]
    assert np.array_equal(t.positions, p.positions)
    assert np.array_equal(t.velocities, p.velocities)
    assert np.array_equal(t.vacancy_ranks, p.vacancy_ranks)
    assert np.array_equal(t.runaway_ids, p.runaway_ids)


#: Total elements of synthetic per-round work, split evenly over the
#: logical ranks — the workload is load-balanced by construction, so any
#: wall-clock gap between rank counts is pure scheduling overhead.
_BALANCED_TOTAL = 8_000_000
_BALANCED_ROUNDS = 4


def _balanced_wall(nranks: int, workers: int) -> tuple[float, float]:
    """Wall-clock of the balanced workload; returns (wall_s, checksum)."""
    per_rank = _BALANCED_TOTAL // nranks

    def main(comm):
        rng = np.random.default_rng(123 + comm.rank)
        data = rng.normal(size=per_rank)
        acc = 0.0
        for _ in range(_BALANCED_ROUNDS):
            acc += float(np.sum(np.sqrt(np.abs(data)) * 1.0001))
            acc = comm.allreduce(acc)
            comm.barrier()
        return acc

    world = World(nranks, backend="overdecomposed")
    t0 = time.perf_counter()
    results = world.run(main, workers=workers, timeout=300.0)
    return time.perf_counter() - t0, results[0]


def test_overdecomposition_scheduling_overhead(benchmark):
    """R=64 on P=4 within 2x of R=4 on P=4 for a load-balanced workload.

    The per-rank work shrinks 16x while the total stays fixed, so the
    bound caps what 16x more rank threads, context yields, and larger
    collectives may cost (acceptance criterion: scheduling overhead).
    """
    walls = {}

    def measure():
        # Best-of-2 per rank count: a 1-core CI box shows large run-to-
        # run variance from allocator/GIL churn that has nothing to do
        # with the scheduler; the min is the honest overhead signal.
        for nranks in (4, 64):
            walls[nranks] = min(
                _balanced_wall(nranks, workers=4) for _ in range(2)
            )
        return walls

    benchmark.pedantic(measure, rounds=1, iterations=1)
    wall4, _ = walls[4]
    wall64, _ = walls[64]
    obs.set_gauge("bench.overdecomposition.workers", 4)
    obs.set_gauge("bench.overdecomposition.n_ranks", 64)
    obs.set_gauge("bench.overdecomposition.ranks4.wall_s", wall4)
    obs.set_gauge("bench.overdecomposition.ranks64.wall_s", wall64)
    ratio = wall64 / wall4
    print(
        f"\nbalanced workload on 4 workers: R=4 {wall4:.3f}s, "
        f"R=64 {wall64:.3f}s (ratio {ratio:.2f}x)"
    )
    assert ratio <= 2.0, (
        f"overdecomposition overhead {ratio:.2f}x exceeds the 2x bound "
        f"(R=64 {wall64:.3f}s vs R=4 {wall4:.3f}s on 4 workers)"
    )
