"""Benchmark: simmpi thread vs process backend on real workloads.

The process backend exists to buy genuine multi-core parallelism: on a
multi-core host the fig10-style damage-MD strong-scaling point at 4
ranks must beat its own 1-rank time by >= 2.25x (acceptance criterion,
raised from 2x when the shared-memory transport landed), while the
thread backend — GIL-serialized — stays roughly flat.  Both backends
must produce bit-identical trajectories everywhere, which is asserted
unconditionally; the speedup assertion is gated on the host actually
having >= 4 cores (CI runners qualify, 1-core sandboxes skip).

The transport microbenchmark below isolates the reason the gate could
move: queue-pickle vs shared-memory bytes/s at three payload sizes.

Wall-clock numbers per backend land in the observe gauges, so a
``REPRO_BENCH_PHASES`` run exports them in the per-test JSON artifact.
"""

import multiprocessing
import os
import time

import numpy as np
import pytest

from conftest import print_rows
from repro import observe as obs
from repro.experiments import fig10_md_strong_scaling
from repro.runtime import shm
from repro.runtime.procbackend import fork_available
from repro.runtime.simmpi import World


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


needs_fork = pytest.mark.skipif(
    not fork_available(), reason="process backend needs the fork start method"
)


@needs_fork
def test_fig10_backend_strong_scaling(benchmark):
    """The fig10 measured point: 1 vs 4 ranks, thread vs process."""
    results = {}

    def measure():
        for backend in ("thread", "process"):
            results[backend] = fig10_md_strong_scaling.run_measured(
                cells=8, nsteps=15, ranks_list=(1, 4), backend=backend
            )
        return results

    benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = []
    for backend, result in results.items():
        assert result["deterministic"], (
            f"{backend}: rank counts disagreed on the trajectory"
        )
        for row in result["rows"]:
            rows.append({"backend": backend, **row})
            obs.set_gauge(
                f"bench.backend.{backend}.ranks{row['ranks']}.wall_s",
                row["wall_s"],
            )
    print_rows(
        "Figure 10 measured: damage MD strong scaling per backend",
        rows,
        ["backend", "ranks", "wall_s", "speedup", "efficiency"],
    )
    # Both backends computed the same problem: cross-backend fingerprints
    # were already folded into each result's determinism check above via
    # identical (cells, nsteps, seed); assert the timing claim only where
    # the hardware can deliver it.
    cores = _usable_cores()
    speedup4 = results["process"]["rows"][-1]["speedup"]
    obs.set_gauge("bench.backend.process.speedup_4ranks", speedup4)
    print(f"process backend 4-rank speedup: {speedup4:.2f}x on {cores} cores")
    if cores >= 4:
        assert speedup4 >= 2.25, (
            f"process backend managed only {speedup4:.2f}x at 4 ranks "
            f"on a {cores}-core host (acceptance floor: 2.25x with the "
            "shared-memory transport)"
        )
    else:
        pytest.skip(
            f"speedup assertion needs >= 4 cores, host has {cores} "
            f"(measured {speedup4:.2f}x)"
        )


@needs_fork
def test_backend_bit_identity_smoke(benchmark):
    """Thread and process backends agree bit-for-bit on the same problem."""
    from repro.lattice.bcc import BCCLattice
    from repro.md.engine import MDConfig
    from repro.md.parallel_damage import ParallelDamageMD

    def both():
        out = {}
        for backend in ("thread", "process"):
            engine = ParallelDamageMD(
                BCCLattice(6, 6, 6),
                config=MDConfig(temperature=300.0, seed=3),
                nranks=4,
                backend=backend,
            )
            out[backend] = engine.run(
                10, pka=(10, np.array([50.0, 30.0, 20.0]))
            )
        return out

    out = benchmark.pedantic(both, rounds=1, iterations=1)
    t, p = out["thread"], out["process"]
    assert np.array_equal(t.positions, p.positions)
    assert np.array_equal(t.velocities, p.velocities)
    assert np.array_equal(t.vacancy_ranks, p.vacancy_ranks)
    assert np.array_equal(t.runaway_ids, p.runaway_ids)


#: Transport microbench payloads: (label, bytes, round trips).  1 KiB is
#: the slot-eligibility threshold, 1 MiB fills one default slot exactly,
#: 64 MiB exercises the one-shot oversized-segment path.
_TRANSPORT_SIZES = (
    ("1KiB", 1 << 10, 200),
    ("1MiB", 1 << 20, 30),
    ("64MiB", 64 << 20, 3),
)


def _roundtrip_rate(arr: np.ndarray, iters: int, send) -> float:
    send(arr)  # warm-up: first-touch pages, feeder-thread spin-up
    t0 = time.perf_counter()
    for _ in range(iters):
        out = send(arr)
    dt = time.perf_counter() - t0
    assert out.nbytes == arr.nbytes
    return arr.nbytes * iters / dt


@needs_fork
def test_transport_microbench(benchmark):
    """Bytes/s of queue-pickle vs shared-memory slot/one-shot transport.

    Both paths do a full round trip through a fork-context queue — the
    pickle path ships the array bytes through the queue's pipe, the shm
    path ships only the slot header and moves bytes via two memcpys.
    The zero-copy claim is asserted where it matters (bulk payloads);
    small payloads are reported but unasserted, since the header +
    memcpy overhead is why sub-1-KiB arrays stay inline by default.
    """
    ctx = multiprocessing.get_context("fork")
    q = ctx.Queue()
    pool = shm.ShmPool(ctx, nslots=4, slot_bytes=1 << 20, min_bytes=1)
    rates: dict[tuple[str, str], float] = {}

    def via_pickle(arr):
        q.put(arr)
        return q.get(timeout=60.0)

    def via_shm(arr):
        q.put(pool.encode(arr))
        return pool.decode(q.get(timeout=60.0))

    def measure():
        for label, size, iters in _TRANSPORT_SIZES:
            arr = np.random.default_rng(1).random(size // 8)
            rates[("pickle", label)] = _roundtrip_rate(arr, iters, via_pickle)
            rates[("shm", label)] = _roundtrip_rate(arr, iters, via_shm)
        return rates

    try:
        benchmark.pedantic(measure, rounds=1, iterations=1)
    finally:
        pool.destroy()
    rows = []
    for label, _size, _iters in _TRANSPORT_SIZES:
        row = {"payload": label}
        for transport in ("pickle", "shm"):
            bps = rates[(transport, label)]
            row[transport] = f"{bps / 1e6:.0f} MB/s"
            obs.set_gauge(
                f"bench.transport.{transport}.{label}.bytes_per_s", bps
            )
        row["shm_vs_pickle"] = (
            f"{rates[('shm', label)] / rates[('pickle', label)]:.2f}x"
        )
        rows.append(row)
    print_rows(
        "Transport round trip: queue-pickle vs shared memory",
        rows,
        ["payload", "pickle", "shm", "shm_vs_pickle"],
    )
    assert rates[("shm", "64MiB")] >= rates[("pickle", "64MiB")], (
        "shared-memory transport should not lose to queue pickling on "
        "bulk payloads: "
        f"shm {rates[('shm', '64MiB')] / 1e6:.0f} MB/s vs "
        f"pickle {rates[('pickle', '64MiB')] / 1e6:.0f} MB/s at 64 MiB"
    )


#: Total elements of synthetic per-round work, split evenly over the
#: logical ranks — the workload is load-balanced by construction, so any
#: wall-clock gap between rank counts is pure scheduling overhead.
_BALANCED_TOTAL = 8_000_000
_BALANCED_ROUNDS = 4


def _balanced_wall(nranks: int, workers: int) -> tuple[float, float]:
    """Wall-clock of the balanced workload; returns (wall_s, checksum)."""
    per_rank = _BALANCED_TOTAL // nranks

    def main(comm):
        rng = np.random.default_rng(123 + comm.rank)
        data = rng.normal(size=per_rank)
        acc = 0.0
        for _ in range(_BALANCED_ROUNDS):
            acc += float(np.sum(np.sqrt(np.abs(data)) * 1.0001))
            acc = comm.allreduce(acc)
            comm.barrier()
        return acc

    world = World(nranks, backend="overdecomposed")
    t0 = time.perf_counter()
    results = world.run(main, workers=workers, timeout=300.0)
    return time.perf_counter() - t0, results[0]


def test_overdecomposition_scheduling_overhead(benchmark):
    """R=64 on P=4 within 2x of R=4 on P=4 for a load-balanced workload.

    The per-rank work shrinks 16x while the total stays fixed, so the
    bound caps what 16x more rank threads, context yields, and larger
    collectives may cost (acceptance criterion: scheduling overhead).
    """
    walls = {}

    def measure():
        # Best-of-2 per rank count: a 1-core CI box shows large run-to-
        # run variance from allocator/GIL churn that has nothing to do
        # with the scheduler; the min is the honest overhead signal.
        for nranks in (4, 64):
            walls[nranks] = min(
                _balanced_wall(nranks, workers=4) for _ in range(2)
            )
        return walls

    benchmark.pedantic(measure, rounds=1, iterations=1)
    wall4, _ = walls[4]
    wall64, _ = walls[64]
    obs.set_gauge("bench.overdecomposition.workers", 4)
    obs.set_gauge("bench.overdecomposition.n_ranks", 64)
    obs.set_gauge("bench.overdecomposition.ranks4.wall_s", wall4)
    obs.set_gauge("bench.overdecomposition.ranks64.wall_s", wall64)
    ratio = wall64 / wall4
    print(
        f"\nbalanced workload on 4 workers: R=4 {wall4:.3f}s, "
        f"R=64 {wall64:.3f}s (ratio {ratio:.2f}x)"
    )
    assert ratio <= 2.0, (
        f"overdecomposition overhead {ratio:.2f}x exceeds the 2x bound "
        f"(R=64 {wall64:.3f}s vs R=4 {wall4:.3f}s on 4 workers)"
    )
