"""Benchmark: Figure 17 — vacancy clustering across the coupled run.

Paper (3.2e10 atoms, 19.2 days): vacancies "very dispersive" after MD,
"relatively more aggregative and several vacancy clusters are forming"
after KMC.  The reproduction quantifies the renderings with cluster
statistics on a real KMC evolution.
"""

import pytest

from repro.experiments import fig17_vacancy_clustering


@pytest.fixture(scope="module")
def result():
    return fig17_vacancy_clustering.run(
        cells=8, concentration=0.025, kmc_events=2000, seed=42
    )


def test_fig17_vacancy_clustering(benchmark, result):
    benchmark.pedantic(
        fig17_vacancy_clustering.run,
        kwargs=dict(cells=8, concentration=0.02, kmc_events=300, seed=1),
        rounds=1,
        iterations=1,
    )
    before, after = result["before"], result["after"]
    print("\n=== Figure 17: vacancy clustering ===")
    print(f"after MD  (dispersed): {before}")
    print(f"after KMC (clustered): {after}")
    print(
        f"KMC clock {result['kmc_time_ps']:.3g} ps -> real time "
        f"{result['real_time_seconds']:.3g} s by the paper's formula"
    )
    # Shape (DESIGN.md): cluster growth, falling dispersion.
    assert after.max_cluster > before.max_cluster
    assert after.mean_cluster > before.mean_cluster
    assert after.mean_nn_distance < before.mean_nn_distance
    assert after.n_clusters < before.n_clusters
    # "several vacancy clusters are forming": most vacancies end up in
    # clusters of 2+.
    assert after.clustered_fraction > 0.6
    # Conservation throughout.
    assert after.n_vacancies == before.n_vacancies
