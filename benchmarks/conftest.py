"""Benchmark-suite fixtures.

Each benchmark regenerates one figure of the paper via
:mod:`repro.experiments`, times it with pytest-benchmark, prints the
figure's data series, and asserts the DESIGN.md shape criteria.

Expensive executed experiments (Figs 12/13 share runs; Fig 9 shares the
kernel ladder) are cached per session.
"""

from __future__ import annotations

import pytest


def print_rows(title: str, rows, columns) -> None:
    """Render an experiment's series the way the paper's figure reads."""
    print(f"\n=== {title} ===")
    header = " ".join(f"{c:>16}" for c in columns)
    print(header)
    for row in rows:
        cells = []
        for c in columns:
            v = row[c]
            if isinstance(v, float):
                cells.append(f"{v:>16.6g}")
            else:
                cells.append(f"{v!s:>16}")
        print(" ".join(cells))


@pytest.fixture(scope="session")
def potential_bench():
    from repro.potential.fe import make_fe_potential

    return make_fe_potential(n=2000)


@pytest.fixture(scope="session")
def kmc_comm_rows():
    """The measured Figure 12/13 runs (shared across both benchmarks)."""
    from repro.experiments._kmc_comm import run_comm_experiment

    return run_comm_experiment(ranks_list=(8, 27), cycles=6)
