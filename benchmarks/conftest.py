"""Benchmark-suite fixtures.

Each benchmark regenerates one figure of the paper via
:mod:`repro.experiments`, times it with pytest-benchmark, prints the
figure's data series, and asserts the DESIGN.md shape criteria.

Expensive executed experiments (Figs 12/13 share runs; Fig 9 shares the
kernel ladder) are cached per session.

Set ``REPRO_BENCH_PHASES=<dir>`` to additionally run every benchmark
under the :mod:`repro.observe` registry and write a machine-readable
per-phase JSON (phases, counters, gauges) next to the wall-clock
numbers, one file per test.  Left unset, observation stays disabled so
the timed hot paths pay nothing.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path

import pytest


@pytest.fixture(autouse=True)
def bench_phase_report(request):
    """Per-test observe registry + JSON dump, gated on REPRO_BENCH_PHASES."""
    outdir = os.environ.get("REPRO_BENCH_PHASES")
    if not outdir:
        yield
        return
    from repro import observe as obs

    with obs.observing(trace=False) as registry:
        yield
    summary = registry.summary()
    summary["env"] = {
        "backend": os.environ.get("REPRO_BACKEND") or "thread",
        "workers": os.environ.get("REPRO_WORKERS") or None,
        "cpu_count": os.cpu_count(),
    }
    path = Path(outdir)
    path.mkdir(parents=True, exist_ok=True)
    name = re.sub(r"[^A-Za-z0-9_.-]+", "_", request.node.nodeid)
    with open(path / f"{name}.json", "w", encoding="utf-8") as fh:
        json.dump(summary, fh, indent=1)


def print_rows(title: str, rows, columns) -> None:
    """Render an experiment's series the way the paper's figure reads."""
    print(f"\n=== {title} ===")
    header = " ".join(f"{c:>16}" for c in columns)
    print(header)
    for row in rows:
        cells = []
        for c in columns:
            v = row[c]
            if isinstance(v, float):
                cells.append(f"{v:>16.6g}")
            else:
                cells.append(f"{v!s:>16}")
        print(" ".join(cells))


@pytest.fixture(scope="session")
def potential_bench():
    from repro.potential.fe import make_fe_potential

    return make_fe_potential(n=2000)


@pytest.fixture(scope="session")
def kmc_comm_rows():
    """The measured Figure 12/13 runs (shared across both benchmarks)."""
    from repro.experiments._kmc_comm import run_comm_experiment

    return run_comm_experiment(ranks_list=(8, 27), cycles=6)
