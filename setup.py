"""Legacy setup shim.

Offline environments without the ``wheel`` package cannot build PEP 517
editable wheels; this shim lets ``pip install -e . --no-use-pep517
--no-build-isolation`` (or ``python setup.py develop``) work there.
"""

from setuptools import setup

setup()
