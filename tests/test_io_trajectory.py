"""KMC trajectory I/O tests."""

import numpy as np
import pytest

from repro.io.kmc_trajectory import KMCTrajectory
from repro.io.xyz import read_xyz
from repro.lattice.bcc import BCCLattice


@pytest.fixture()
def traj():
    lattice = BCCLattice(4, 4, 4)
    t = KMCTrajectory(lattice)
    occ = np.ones(lattice.nsites, dtype=np.int8)
    occ[5] = 0
    t.record(0.0, occ)
    occ[5] = 1
    occ[7] = 0
    t.record(1.5, occ)
    return t


class TestRecording:
    def test_frames_copied(self, traj):
        assert len(traj) == 2
        assert traj.vacancy_ranks(0).tolist() == [5]
        assert traj.vacancy_ranks(1).tolist() == [7]

    def test_wrong_length_rejected(self, traj):
        with pytest.raises(ValueError, match="sites"):
            traj.record(2.0, np.ones(3, dtype=np.int8))

    def test_time_must_not_decrease(self, traj):
        with pytest.raises(ValueError, match="non-decreasing"):
            traj.record(1.0, np.ones(traj.lattice.nsites, dtype=np.int8))


class TestPersistence:
    def test_save_load_roundtrip(self, traj, tmp_path):
        path = tmp_path / "traj.npz"
        traj.save(path)
        loaded = KMCTrajectory.load(path)
        assert len(loaded) == 2
        assert loaded.times == traj.times
        assert np.array_equal(loaded.frames[1], traj.frames[1])
        assert loaded.lattice.nsites == traj.lattice.nsites
        assert loaded.lattice.a == traj.lattice.a

    def test_empty_save_rejected(self, tmp_path):
        empty = KMCTrajectory(BCCLattice(4, 4, 4))
        with pytest.raises(ValueError, match="no frames"):
            empty.save(tmp_path / "t.npz")

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, format=np.array("other"), x=np.zeros(1))
        with pytest.raises(ValueError, match="not a"):
            KMCTrajectory.load(path)

    def test_xyz_export(self, traj, tmp_path):
        path = tmp_path / "frame.xyz"
        traj.export_vacancy_xyz(path, frame=-1)
        symbols, pos = read_xyz(path)
        assert symbols == ["V"]
        assert np.allclose(pos[0], traj.lattice.position_of(7))


class TestIntegrationWithKMC:
    def test_record_serial_run(self, lattice8, potential, rate_params):
        from repro.kmc.akmc import SerialAKMC, place_random_vacancies
        from repro.kmc.events import KMCModel

        model = KMCModel(lattice8, potential, rate_params)
        occ0 = place_random_vacancies(model, 10, np.random.default_rng(0))
        engine = SerialAKMC(lattice8, potential, rate_params, occ0, seed=1)
        traj = KMCTrajectory(lattice8)
        traj.record(engine.time, engine.occ)
        for _ in range(3):
            engine.run(max_events=engine.events + 10)
            traj.record(engine.time, engine.occ)
        assert len(traj) == 4
        # Conservation across all recorded frames.
        for k in range(4):
            assert len(traj.vacancy_ranks(k)) == 10
