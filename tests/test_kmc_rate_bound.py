"""Regression tests for the sector-cycle rate bound (Satellite: rate cap).

The parallel engines derive their synchronous cycle length from a
claimed per-vacancy rate bound ``8 * nu * exp(-e_m0/kT)``.  But the EAM
correction term in Equation (4) can push a barrier *below* ``e_m0``
(only the ``de_min`` floor limits it), so uncapped event rates exceed
the reference rate and the claimed bound did not actually hold.  These
tests pin both halves of the fix:

* ``clamp`` (default): per-event rates are capped at the reference rate
  (so the advertised bound holds for the dt actually used) and every
  clamped event is counted on ``kmc.rate_bound.clamped``;
* ``strict``: the bound is the true supremum ``8*nu*exp(-de_min/kT)``
  and no clamping happens.
"""

import math

import numpy as np
import pytest

from repro import observe as obs
from repro.kmc.akmc import ParallelAKMC, place_random_vacancies
from repro.kmc.alloy import make_parallel_alloy_akmc
from repro.kmc.events import VACANCY, KMCModel


def _two_vacancy_occ(model):
    """A deterministic config whose correction drives a barrier below e_m0.

    Two nearby vacancies on the 8^3 lattice: the second vacancy removes
    bonds around the first one's exchange partners, lowering E_after and
    hence the barrier below the reference.
    """
    occ = model.perfect_occupancy()
    occ[model.lattice.nsites // 2] = VACANCY  # row 512
    occ[model.lattice.nsites // 2 - 16] = VACANCY  # row 496
    return occ


class TestUncappedViolatesClaimedBound:
    def test_event_rate_exceeds_reference(self, kmc_model8, rate_params):
        occ = _two_vacancy_occ(kmc_model8)
        vrow = kmc_model8.lattice.nsites // 2
        _targets, rates = kmc_model8.vacancy_events(vrow, occ)
        # The bug: uncapped rates break the advertised per-event bound.
        assert float(rates.max()) > rate_params.reference_rate

    def test_per_vacancy_total_exceeds_claimed_bound(
        self, kmc_model8, rate_params
    ):
        occ = _two_vacancy_occ(kmc_model8)
        vrow = kmc_model8.lattice.nsites // 2
        _targets, rates = kmc_model8.vacancy_events(vrow, occ)
        assert float(rates.sum()) > 8.0 * rate_params.reference_rate

    def test_violation_occurs_in_generic_config(self, kmc_model8, rate_params):
        """Not a contrived corner: the suite's stock 20-vacancy config
        also exceeds the claimed bound."""
        occ = place_random_vacancies(
            kmc_model8, 20, np.random.default_rng(5)
        )
        vrows = np.flatnonzero(occ == VACANCY)
        _counts, _targets, rates = kmc_model8.vacancy_events_batch(vrows, occ)
        assert float(rates.max()) > rate_params.reference_rate


class TestRateCap:
    def test_cap_validation(self, lattice8, potential, rate_params):
        with pytest.raises(ValueError, match="rate_cap"):
            KMCModel(lattice8, potential, rate_params, rate_cap=0.0)

    def test_capped_rates_honor_bound(self, lattice8, potential, rate_params):
        model = KMCModel(
            lattice8, potential, rate_params,
            rate_cap=rate_params.reference_rate,
        )
        occ = _two_vacancy_occ(model)
        for vrow in np.flatnonzero(occ == VACANCY):
            _targets, rates = model.vacancy_events(int(vrow), occ)
            assert float(rates.max()) <= rate_params.reference_rate
            assert float(rates.sum()) <= 8.0 * rate_params.reference_rate

    def test_clamped_counter_fires(self, lattice8, potential, rate_params):
        model = KMCModel(
            lattice8, potential, rate_params,
            rate_cap=rate_params.reference_rate,
        )
        occ = _two_vacancy_occ(model)
        registry = obs.enable(trace=False)
        try:
            model.vacancy_events(model.lattice.nsites // 2, occ)
        finally:
            obs.disable()
        assert registry.counters["kmc.rate_bound.clamped"] > 0

    def test_batch_matches_scalar_under_cap(
        self, lattice8, potential, rate_params
    ):
        model = KMCModel(
            lattice8, potential, rate_params,
            rate_cap=rate_params.reference_rate,
        )
        occ = place_random_vacancies(model, 20, np.random.default_rng(5))
        vrows = np.flatnonzero(occ == VACANCY)
        counts, targets, rates = model.vacancy_events_batch(vrows, occ)
        off = 0
        for vrow, count in zip(vrows, counts, strict=True):
            t_one, r_one = model.vacancy_events(int(vrow), occ)
            assert np.array_equal(targets[off:off + count], t_one)
            # Bit-identical, not approximately equal: the cap is applied
            # post-exp on both paths.
            assert np.array_equal(rates[off:off + count], r_one)
            off += count


class TestEngineModes:
    def test_invalid_mode_rejected(self, lattice8, potential, rate_params):
        with pytest.raises(ValueError, match="rate_bound"):
            ParallelAKMC(
                lattice8, potential, rate_params,
                nranks=8, rate_bound="hopeful",
            )

    def test_clamp_is_default_and_caps_model(
        self, lattice8, potential, rate_params
    ):
        engine = ParallelAKMC(lattice8, potential, rate_params, nranks=8)
        assert engine.rate_bound == "clamp"
        assert engine._rate_bound_per_vacancy() == pytest.approx(
            8.0 * rate_params.reference_rate
        )
        assert engine._rate_cap() == pytest.approx(
            rate_params.reference_rate
        )

    def test_strict_mode_uses_true_supremum(
        self, lattice8, potential, rate_params
    ):
        engine = ParallelAKMC(
            lattice8, potential, rate_params, nranks=8, rate_bound="strict",
        )
        expected = 8.0 * rate_params.nu * math.exp(
            -rate_params.de_min / rate_params.kt
        )
        assert engine._rate_bound_per_vacancy() == pytest.approx(expected)
        assert engine._rate_cap() is None
        # The true supremum dwarfs the reference bound — the reason
        # strict mode is opt-in, not the default.
        assert expected > 8.0 * rate_params.reference_rate

    def test_clamp_run_counts_clamped_events(
        self, lattice8, potential, rate_params, kmc_model8
    ):
        engine = ParallelAKMC(
            lattice8, potential, rate_params, nranks=8, seed=5,
        )
        occ = place_random_vacancies(kmc_model8, 20, np.random.default_rng(5))
        registry = obs.enable(trace=False)
        try:
            result = engine.run(occ, max_cycles=3)
        finally:
            obs.disable()
        assert result.events >= 0
        assert registry.counters.get("kmc.rate_bound.clamped", 0) > 0

    def test_alloy_strict_mode(self, lattice8):
        engine = make_parallel_alloy_akmc(
            lattice8, nranks=8, rate_bound="strict",
        )
        params = engine.params
        expected = 8.0 * params.nu * math.exp(-params.de_min / params.kt)
        assert engine._rate_bound_per_vacancy() == pytest.approx(expected)
        assert engine._rate_cap() is None
