"""The overdecomposed backend: R logical ranks on P worker slots.

Contract under test (ISSUE 6): scheduling only reorders *timing* — R
ranks on P workers must produce physics byte-identical to R ranks on R
threads for every engine; a crashed rank is migrated (journal replayed
on a fresh thread) without a world restart; and the paper-scale logical
decompositions become measured runs feeding the perfmodel calibration.
"""

import threading
import time

import numpy as np
import pytest

from repro.kmc.akmc import ParallelAKMC, place_random_vacancies
from repro.kmc.events import KMCModel, RateParameters
from repro.lattice.bcc import BCCLattice
from repro.md.engine import MDConfig
from repro.md.parallel_damage import ParallelDamageMD
from repro.potential.fe import make_fe_potential
from repro.runtime.faults import FaultInjector, FaultPlan
from repro.runtime.scheduler import RankScheduler, default_workers
from repro.runtime.simmpi import (
    WatchdogTimeout,
    World,
    resolve_backend,
    resolve_workers,
)

SCHEMES = ("traditional", "ondemand", "onesided")


# ----------------------------------------------------------------------
# resolve_backend / resolve_workers precedence
# ----------------------------------------------------------------------
class TestResolveBackendEnv:
    def test_whitespace_env_falls_back_to_thread(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "   ")
        assert resolve_backend(None) == "thread"
        assert World(2).backend == "thread"

    def test_empty_env_falls_back_to_thread(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "")
        assert resolve_backend(None) == "thread"

    def test_unknown_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "sunway")
        with pytest.raises(ValueError, match="unknown simmpi backend"):
            resolve_backend(None)

    def test_explicit_beats_unknown_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "sunway")
        assert resolve_backend("overdecomposed") == "overdecomposed"

    def test_overdecomposed_is_known(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "overdecomposed")
        assert resolve_backend(None) == "overdecomposed"


class TestResolveWorkers:
    def test_default_is_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) is None

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(None) == 3
        assert World(4).workers == 3

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(2) == 2
        assert World(4, workers=2).workers == 2

    def test_whitespace_env_counts_as_absent(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "   ")
        assert resolve_workers(None) is None

    def test_bad_values_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="positive integer"):
            resolve_workers("many")
        with pytest.raises(ValueError, match=">= 1"):
            resolve_workers(0)
        monkeypatch.setenv("REPRO_WORKERS", "zero")
        with pytest.raises(ValueError, match="positive integer"):
            resolve_workers(None)

    def test_default_workers_positive(self):
        assert default_workers() >= 1


# ----------------------------------------------------------------------
# Scheduler mechanics
# ----------------------------------------------------------------------
class TestRankScheduler:
    def test_at_most_p_ranks_compute_concurrently(self):
        lock = threading.Lock()
        state = {"cur": 0, "peak": 0}

        def main(comm):
            for _ in range(3):
                with lock:
                    state["cur"] += 1
                    state["peak"] = max(state["peak"], state["cur"])
                time.sleep(0.002)
                with lock:
                    state["cur"] -= 1
                comm.barrier()
            return comm.rank

        world = World(8, backend="overdecomposed")
        assert world.run(main, workers=2, timeout=60) == list(range(8))
        assert 1 <= state["peak"] <= 2

    def test_single_worker_cannot_deadlock(self):
        def main(comm):
            for tag in range(3):
                comm.send((comm.rank + 1) % comm.size, tag, comm.rank)
                _, _, got = comm.recv((comm.rank - 1) % comm.size, tag=tag)
                comm.barrier()
            return comm.allreduce(got)

        world = World(16, backend="overdecomposed")
        results = world.run(main, workers=1, timeout=60)
        assert len(set(results)) == 1

    def test_counters_and_handoff(self):
        sched = RankScheduler(1)
        sched.acquire(0)
        done = threading.Event()

        def second():
            sched.acquire(1)
            done.set()
            sched.release(1)

        t = threading.Thread(target=second)
        t.start()
        time.sleep(0.05)
        assert not done.is_set()  # rank 1 queued behind the single slot
        sched.release(0)  # direct hand-off to the queue head
        t.join(timeout=5)
        assert done.is_set()
        assert sched.steals == 1
        assert sched.peak_queued == 1

    def test_release_all_opens_the_gate(self):
        sched = RankScheduler(1)
        sched.acquire(0)
        sched.release_all()
        sched.acquire(1)  # returns immediately: draining
        sched.release(1)

    def test_error_propagation(self):
        def main(comm):
            if comm.rank == 2:
                raise ValueError("boom")
            comm.barrier()

        world = World(4, backend="overdecomposed")
        with pytest.raises(RuntimeError, match="rank 2 failed"):
            world.run(main, workers=2, timeout=60)

    def test_keyboard_interrupt_precedence(self):
        def main(comm):
            if comm.rank == 1:
                raise KeyboardInterrupt
            comm.barrier()

        world = World(3, backend="overdecomposed")
        with pytest.raises(KeyboardInterrupt):
            world.run(main, workers=2, timeout=60)

    def test_watchdog_fires_through_the_scheduler(self):
        def main(comm):
            if comm.rank == 0:
                comm.recv(1, tag=9)  # never sent

        world = World(2, watchdog=0.2, backend="overdecomposed")
        with pytest.raises(WatchdogTimeout):
            world.run(main, workers=1, timeout=30)


# ----------------------------------------------------------------------
# Bit-identity: R ranks on P workers == R ranks on R threads
# ----------------------------------------------------------------------
def _kmc_problem(nranks=16):
    # 16 ranks need a (2, 2, 4) grid; sectoring wants >= 4 cells per
    # subdomain axis, hence the elongated box.
    lattice = BCCLattice(8, 8, 16)
    potential = make_fe_potential(n=1000)
    params = RateParameters()
    occ0 = place_random_vacancies(
        KMCModel(lattice, potential, params),
        16,
        np.random.default_rng(7),
    )
    return lattice, potential, params, occ0


class TestBitIdentity:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_kmc_schemes_16_ranks(self, scheme):
        lattice, potential, params, occ0 = _kmc_problem()

        def run(backend, workers):
            engine = ParallelAKMC(
                lattice,
                potential,
                params,
                grid=(2, 2, 4),
                scheme=scheme,
                seed=11,
                backend=backend,
                workers=workers,
            )
            return engine.run(occ0.copy(), max_cycles=2)

        reference = run("thread", None)
        for workers in (1, 2, 4):
            result = run("overdecomposed", workers)
            assert result.occupancy.tobytes() == reference.occupancy.tobytes()
            assert result.events == reference.events
            assert result.time == reference.time

    def test_damage_md_16_ranks(self):
        def run(backend, workers):
            engine = ParallelDamageMD(
                BCCLattice(8, 8, 16),
                config=MDConfig(temperature=300.0, seed=3),
                grid=(2, 2, 4),
                backend=backend,
                workers=workers,
            )
            return engine.run(6, pka=(10, np.array([60.0, 35.0, 25.0])))

        reference = run("thread", None)
        for workers in (1, 2, 4):
            result = run("overdecomposed", workers)
            assert result.positions.tobytes() == reference.positions.tobytes()
            assert (
                result.velocities.tobytes() == reference.velocities.tobytes()
            )


# ----------------------------------------------------------------------
# Rank migration: crash -> journal replay, no world restart
# ----------------------------------------------------------------------
class TestMigration:
    def test_crashed_rank_migrates_bit_identically(self):
        lattice = BCCLattice(8, 8, 8)
        potential = make_fe_potential(n=1000)
        params = RateParameters()
        occ0 = place_random_vacancies(
            KMCModel(lattice, potential, params),
            12,
            np.random.default_rng(5),
        )

        def run(**kwargs):
            engine = ParallelAKMC(
                lattice,
                potential,
                params,
                grid=(2, 2, 2),
                scheme="onesided",
                seed=9,
                **kwargs,
            )
            return engine.run(occ0.copy(), max_cycles=3)

        reference = run(backend="thread")
        injector = FaultInjector(FaultPlan.parse("crash:rank=3,cycle=1"))
        migrated = run(
            backend="overdecomposed", workers=2, faults=injector
        )
        # The crash fired ...
        assert injector.counters.crashes == 1
        # ... the rank was replayed in place, not the world restarted ...
        assert migrated.comm_stats["migrations"] == 1
        # ... and the trajectory is byte-identical to fault-free.
        assert migrated.occupancy.tobytes() == reference.occupancy.tobytes()
        assert migrated.events == reference.events

    def test_fault_free_overdecomposed_reports_zero_migrations(self):
        lattice = BCCLattice(8, 8, 8)
        potential = make_fe_potential(n=1000)
        params = RateParameters()
        occ0 = place_random_vacancies(
            KMCModel(lattice, potential, params),
            8,
            np.random.default_rng(5),
        )
        engine = ParallelAKMC(
            lattice,
            potential,
            params,
            grid=(2, 2, 2),
            seed=9,
            backend="overdecomposed",
            workers=2,
        )
        result = engine.run(occ0.copy(), max_cycles=2)
        assert result.comm_stats["migrations"] == 0

    def test_synthetic_migration_with_all_primitives(self):
        def main(comm):
            r, n = comm.rank, comm.size
            acc = np.zeros(3)
            total = 0.0
            for cycle in range(4):
                comm.fault_point("kmc.cycle", cycle)
                comm.send((r + 1) % n, cycle, np.arange(3) * 1.0 + r + cycle)
                _, _, got = comm.recv((r - 1) % n, tag=cycle)
                acc += got
                total = comm.allreduce(float(acc.sum()))
                win = comm.win_create()
                win.put((r + 3) % n, acc.copy())
                for _src, payload in win.fence():
                    acc += 0.01 * payload
                comm.barrier()
            return (r, acc.tolist(), total)

        reference = World(8).run(main, timeout=60)
        injector = FaultInjector(FaultPlan.parse("crash:rank=3,cycle=2"))
        world = World(
            8, faults=injector, backend="overdecomposed", workers=2
        )
        results = world.run(main, timeout=60)
        assert world.migrations == 1
        assert repr(results) == repr(reference)


# ----------------------------------------------------------------------
# Paper-scale decompositions measured on few workers -> calibration
# ----------------------------------------------------------------------
class TestMeasuredScaling:
    def test_fig14_64_ranks_on_4_workers_calibrates(self):
        from repro.experiments.fig14_kmc_strong_scaling import run_measured
        from repro.perfmodel.calibrate import (
            calibrate_from_kernels,
            calibrate_from_measured,
        )

        measured = run_measured(
            cells=16,
            max_cycles=1,
            vacancies=24,
            ranks_list=(64,),
            backend="overdecomposed",
            workers=4,
        )
        (row,) = measured["rows"]
        assert row["ranks"] == 64 and row["workers"] == 4
        assert row["events"] > 0 and row["wall_s"] > 0
        base = calibrate_from_kernels(cells=8, table_points=1000)
        costs = calibrate_from_measured(kmc_measured=measured, base=base)
        assert costs.kmc_event_time == pytest.approx(
            row["wall_s"] / row["events"]
        )
        assert costs.md_atom_step_time == base.md_atom_step_time

    def test_fig10_64_ranks_on_4_workers_calibrates(self):
        from repro.experiments.fig10_md_strong_scaling import run_measured
        from repro.perfmodel.calibrate import (
            calibrate_from_kernels,
            calibrate_from_measured,
        )

        measured = run_measured(
            cells=16,
            nsteps=2,
            ranks_list=(64,),
            backend="overdecomposed",
            workers=4,
        )
        (row,) = measured["rows"]
        assert row["ranks"] == 64 and row["workers"] == 4
        assert measured["natoms"] > 0 and row["wall_s"] > 0
        base = calibrate_from_kernels(cells=8, table_points=1000)
        costs = calibrate_from_measured(md_measured=measured, base=base)
        assert costs.md_atom_step_time == pytest.approx(
            row["wall_s"] / (measured["natoms"] * measured["nsteps"])
        )
        assert costs.kmc_event_time == base.kmc_event_time
