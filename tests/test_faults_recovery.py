"""Checkpoint/restore/resume and the coupled recovery supervisor.

The recovery contract: a run interrupted by a fault and resumed from the
last good checkpoint must finish in a final state **bit-identical** to a
run that was never interrupted — serial (exact RNG state in the
checkpoint) and parallel under all three communication schemes (event
streams are pure functions of ``(seed, rank, cycle, sector)``).
"""

import numpy as np
import pytest

from repro.core.coupling import CoupledConfig, CoupledSimulation
from repro.kmc.akmc import ParallelAKMC, SerialAKMC
from repro.md.cascade import CascadeConfig
from repro.runtime.faults import FaultPlan

SCHEMES = ("traditional", "ondemand", "onesided")


class TestSerialResume:
    def test_checkpoint_restore_resume_is_bit_exact(
        self, lattice8, potential, rate_params, kmc_initial_occ, tmp_path
    ):
        ref = SerialAKMC(
            lattice8, potential, rate_params, kmc_initial_occ, seed=9
        )
        ref_result = ref.run(max_events=120)

        interrupted = SerialAKMC(
            lattice8, potential, rate_params, kmc_initial_occ, seed=9
        )
        interrupted.run(max_events=60)
        ckpt = tmp_path / "serial.npz"
        interrupted.checkpoint(ckpt)

        resumed = SerialAKMC(
            lattice8, potential, rate_params, kmc_initial_occ, seed=9
        )
        resumed.restore(ckpt)
        result = resumed.run(max_events=120)

        assert result.events == ref_result.events
        assert result.time == ref_result.time  # exact float equality
        np.testing.assert_array_equal(result.occupancy, ref_result.occupancy)

    def test_periodic_checkpoints_do_not_perturb_the_run(
        self, lattice8, potential, rate_params, kmc_initial_occ, tmp_path
    ):
        plain = SerialAKMC(
            lattice8, potential, rate_params, kmc_initial_occ, seed=9
        ).run(max_events=80)
        ckpt = tmp_path / "periodic.npz"
        checkpointed = SerialAKMC(
            lattice8, potential, rate_params, kmc_initial_occ, seed=9
        ).run(max_events=80, checkpoint_every=20, checkpoint_path=ckpt)
        assert ckpt.exists()
        assert checkpointed.time == plain.time
        np.testing.assert_array_equal(
            checkpointed.occupancy, plain.occupancy
        )


class TestParallelResume:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_resume_is_bit_exact_per_scheme(
        self,
        scheme,
        lattice8,
        potential,
        rate_params,
        kmc_initial_occ,
        tmp_path,
    ):
        def engine():
            return ParallelAKMC(
                lattice8,
                potential,
                rate_params,
                nranks=4,
                scheme=scheme,
                seed=5,
            )

        ref = engine().run(kmc_initial_occ, max_cycles=8)

        ckpt = tmp_path / f"parallel-{scheme}.npz"
        engine().run(
            kmc_initial_occ,
            max_cycles=5,
            checkpoint_every=5,
            checkpoint_path=ckpt,
        )
        from repro.io.checkpoint import load_kmc_checkpoint

        snap = load_kmc_checkpoint(ckpt)
        assert snap.cycle == 5
        result = engine().run(snap.occupancy, max_cycles=8, resume=snap)

        assert result.events == ref.events
        assert result.time == ref.time
        np.testing.assert_array_equal(result.occupancy, ref.occupancy)


def _coupled_config(**overrides) -> CoupledConfig:
    base = dict(
        cells=8,
        seed=3,
        cascade=CascadeConfig(pka_energy=120.0, nsteps=60),
        kmc_nranks=2,
        kmc_max_cycles=8,
        table_points=500,
    )
    base.update(overrides)
    return CoupledConfig(**base)


class TestCoupledRecovery:
    """The ISSUE acceptance: injected crash -> recovery -> bit-identical."""

    @pytest.fixture(scope="class")
    def fault_free(self):
        return CoupledSimulation(_coupled_config()).run()

    def test_parallel_crash_recovers_bit_identical(self, fault_free, tmp_path):
        result = CoupledSimulation(
            _coupled_config(
                faults="crash:rank=1,cycle=5",
                checkpoint_every=2,
                checkpoint_dir=str(tmp_path),
            )
        ).run()
        assert result.recoveries == 1
        assert result.fault_report["crashes"] == 1
        np.testing.assert_array_equal(
            result.vacancies_after_kmc, fault_free.vacancies_after_kmc
        )
        assert result.kmc_events == fault_free.kmc_events
        assert result.kmc_time == fault_free.kmc_time

    def test_crash_before_first_checkpoint_replays_from_scratch(
        self, fault_free, tmp_path
    ):
        result = CoupledSimulation(
            _coupled_config(
                faults="crash:rank=0,cycle=1",
                checkpoint_every=50,  # never reached before the crash
                checkpoint_dir=str(tmp_path),
            )
        ).run()
        assert result.recoveries == 1
        np.testing.assert_array_equal(
            result.vacancies_after_kmc, fault_free.vacancies_after_kmc
        )

    def test_serial_crash_recovers_bit_identical(self, tmp_path):
        cfg = dict(kmc_nranks=None, kmc_max_events=120)
        fault_free = CoupledSimulation(_coupled_config(**cfg)).run()
        result = CoupledSimulation(
            _coupled_config(
                faults="crash:rank=0,event=60",
                checkpoint_every=20,
                checkpoint_dir=str(tmp_path),
                **cfg,
            )
        ).run()
        assert result.recoveries == 1
        np.testing.assert_array_equal(
            result.vacancies_after_kmc, fault_free.vacancies_after_kmc
        )
        assert result.kmc_time == fault_free.kmc_time

    def test_supervisor_gives_up_past_max_recoveries(self, tmp_path):
        # Two planned crashes but zero allowed recoveries: the first
        # fault must surface instead of looping.
        from repro.runtime.faults import InjectedFault

        with pytest.raises(InjectedFault):
            CoupledSimulation(
                _coupled_config(
                    faults="crash:rank=1,cycle=2",
                    checkpoint_every=2,
                    checkpoint_dir=str(tmp_path),
                    max_recoveries=0,
                )
            ).run()

    def test_md_checkpoint_written_when_dir_given(self, tmp_path):
        CoupledSimulation(
            _coupled_config(checkpoint_dir=str(tmp_path), checkpoint_every=4)
        ).run()
        assert (tmp_path / "md_cascade.npz").exists()
        assert (tmp_path / "kmc_checkpoint.npz").exists()

    def test_messaging_faults_do_not_change_the_answer(self, fault_free):
        result = CoupledSimulation(
            _coupled_config(
                faults=FaultPlan.parse(
                    "delay:rank=0,nth=3,seconds=0.01; dup:rank=1,nth=2"
                )
            )
        ).run()
        assert result.recoveries == 0
        assert result.fault_report["injected"] == 2
        np.testing.assert_array_equal(
            result.vacancies_after_kmc, fault_free.vacancies_after_kmc
        )
