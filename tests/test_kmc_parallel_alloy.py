"""Parallel alloy AKMC tests: scheme equivalence with species."""

import numpy as np
import pytest

from repro.kmc.alloy import (
    S_CU,
    S_FE,
    S_VACANCY,
    AlloyKMCModel,
    make_parallel_alloy_akmc,
)
from repro.lattice.bcc import BCCLattice


@pytest.fixture(scope="module")
def alloy_parallel_results():
    lattice = BCCLattice(8, 8, 8)
    model = AlloyKMCModel(lattice, table_points=500)
    occ0 = model.random_solution(30, 5, np.random.default_rng(7))
    results = {}
    for scheme in ("traditional", "ondemand", "onesided"):
        engine = make_parallel_alloy_akmc(
            lattice, nranks=8, scheme=scheme, seed=5, table_points=500
        )
        results[scheme] = engine.run(occ0, max_cycles=8)
    return occ0, results


class TestParallelAlloy:
    def test_all_schemes_identical(self, alloy_parallel_results):
        _occ0, results = alloy_parallel_results
        ref = results["traditional"].occupancy
        assert np.array_equal(results["ondemand"].occupancy, ref)
        assert np.array_equal(results["onesided"].occupancy, ref)

    def test_species_counts_conserved(self, alloy_parallel_results):
        occ0, results = alloy_parallel_results
        for scheme, res in results.items():
            for code in (S_VACANCY, S_FE, S_CU):
                assert int(np.sum(res.occupancy == code)) == int(
                    np.sum(occ0 == code)
                ), (scheme, code)

    def test_events_executed(self, alloy_parallel_results):
        _occ0, results = alloy_parallel_results
        assert results["ondemand"].events > 0

    def test_ondemand_traffic_advantage_holds_with_species(
        self, alloy_parallel_results
    ):
        _occ0, results = alloy_parallel_results
        trad = results["traditional"].comm_stats["total_sent_bytes"]
        ond = results["ondemand"].comm_stats["total_sent_bytes"]
        assert ond < 0.1 * trad

    def test_subdomain_model_matches_global_rates(self):
        # A vacancy well inside a subdomain must see identical rates from
        # the rank-local model and the full-lattice model.
        lattice = BCCLattice(8, 8, 8)
        from repro.lattice.domain import DomainDecomposition

        full = AlloyKMCModel(lattice, table_points=500)
        decomp = DomainDecomposition(lattice, (2, 2, 2))
        sub = decomp.subdomain(0)
        owned = sub.owned_site_ranks(lattice)
        ghosts = sub.all_ghost_site_ranks(lattice, 2)
        sites = np.union1d(owned, ghosts)
        local = AlloyKMCModel(
            lattice, alloy=full.alloy, table_points=500, sites=sites
        )
        # Pick an interior owned site (away from the subdomain boundary).
        vrank = int(lattice.rank_of(0, 1, 1, 1))
        occ_full = np.full(full.nrows, S_FE, dtype=np.int8)
        occ_full[vrank] = S_VACANCY
        t_full, r_full = full.vacancy_events(vrank, occ_full)
        occ_local = occ_full[sites].copy()
        vrow = int(np.searchsorted(sites, vrank))
        t_local, r_local = local.vacancy_events(vrow, occ_local)
        assert np.allclose(np.sort(r_full), np.sort(r_local))
        # Targets map back to the same global ranks.
        assert set(sites[t_local].tolist()) == set(t_full.tolist())
