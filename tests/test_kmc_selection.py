"""The shared BKL event selector: zero-rate bug regression + properties.

The legacy flat selectors (serial AKMC, sector-synchronous flat path,
alloy engine) used ``searchsorted(cumsum, u * sum) `` with a blind
``min(pick, n - 1)`` clamp.  NumPy's pairwise ``sum`` and sequential
``cumsum`` can disagree in the last ulp, so ``u * total`` can overshoot
``cumsum[-1]`` — and the clamp then returns the last index even when its
rate is exactly zero, executing a physically forbidden transition.
:func:`repro.kmc.selection.select_event` fixes this with the catalog's
rightmost-positive fallback; these tests pin the bug and the fix.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kmc.catalog import EventCatalog
from repro.kmc.selection import select_event


def legacy_select(rates: np.ndarray, u: float) -> int:
    """The pre-fix idiom, verbatim (for demonstrating the bug)."""
    cum = np.cumsum(rates)
    pick = int(np.searchsorted(cum, u * rates.sum()))
    return min(pick, len(rates) - 1)


def overshoot_rates() -> np.ndarray:
    """A rate vector where ``np.sum`` strictly exceeds ``cumsum[-1]``.

    Found by seed search; the disagreement is one ulp, which is all the
    bug needs.
    """
    rates = np.random.default_rng(5).uniform(0.0, 1.0, 64)
    rates[-1] = 0.0
    assert float(np.sum(rates)) > float(np.cumsum(rates)[-1])
    return rates


class TestZeroRateRegression:
    def test_legacy_selector_picks_zero_rate_event(self):
        """The historical bug, demonstrated: the clamp lands on rate 0."""
        rates = overshoot_rates()
        u = np.nextafter(1.0, 0.0)
        pick = legacy_select(rates, u)
        assert pick == len(rates) - 1
        assert rates[pick] == 0.0  # a forbidden event was selected

    def test_fixed_selector_never_picks_zero_rate(self):
        rates = overshoot_rates()
        u = np.nextafter(1.0, 0.0)
        pick = select_event(rates, u)
        assert rates[pick] > 0.0
        # Rightmost positive-rate event, matching the catalog's fallback.
        assert pick == 62

    def test_catalog_agrees_on_the_overshoot_vector(self):
        """Flat selector and catalog pick the same event at the bad u."""
        rates = overshoot_rates()
        catalog = EventCatalog(len(rates))
        for row, rate in enumerate(rates):
            catalog.set_row(
                row,
                np.array([row], dtype=np.int64),
                np.array([rate], dtype=float),
            )
        u = np.nextafter(1.0, 0.0)
        row, idx = catalog.sample(u)
        assert idx == 0
        assert row == select_event(rates, u)

    def test_leading_zero_rates_at_u_zero(self):
        """u=0 with zero-rate leading events selects the first allowed one."""
        rates = np.array([0.0, 0.0, 3.0, 1.0])
        assert select_event(rates, 0.0) == 2

    def test_empty_and_zero_total_raise(self):
        with pytest.raises(ValueError):
            select_event(np.array([]), 0.5)
        with pytest.raises(ValueError):
            select_event(np.zeros(4), 0.5)


@settings(max_examples=300, deadline=None)
@given(
    rates=st.lists(
        st.one_of(
            st.just(0.0),
            st.floats(
                min_value=1e-12,
                max_value=1e12,
                allow_nan=False,
                allow_infinity=False,
            ),
        ),
        min_size=1,
        max_size=64,
    ).filter(lambda r: sum(r) > 0.0),
    u=st.floats(min_value=0.0, max_value=1.0, exclude_max=True),
)
def test_select_event_properties(rates, u):
    """Safety invariants over arbitrary rate vectors and draws.

    The selected index is in range, its rate is strictly positive, and
    its cumulative interval brackets the target up to summation
    round-off — for *any* mix of zero and positive rates.  The serial,
    sector, and alloy engines all call this exact function, so the
    property covers all three flat paths at once.
    """
    rates = np.asarray(rates, dtype=float)
    idx = select_event(rates, u)
    assert 0 <= idx < len(rates)
    assert rates[idx] > 0.0
    total = float(np.sum(rates))
    target = u * total
    cum = np.cumsum(rates)
    tol = 16 * np.finfo(float).eps * max(total, 1.0)
    lo = 0.0 if idx == 0 else float(cum[idx - 1])
    assert lo <= target + tol
    assert target <= float(cum[idx]) + tol


@settings(max_examples=200, deadline=None)
@given(
    rates=st.lists(
        st.one_of(
            st.just(0.0),
            st.floats(
                min_value=1e-9,
                max_value=1e9,
                allow_nan=False,
                allow_infinity=False,
            ),
        ),
        min_size=1,
        max_size=32,
    ).filter(lambda r: sum(r) > 0.0),
    u=st.floats(min_value=0.0, max_value=1.0, exclude_max=True),
)
def test_catalog_sample_never_picks_zero_rate(rates, u):
    """The catalog path upholds the same invariant on the same inputs."""
    rates = np.asarray(rates, dtype=float)
    catalog = EventCatalog(len(rates))
    for row, rate in enumerate(rates):
        catalog.set_row(
            row, np.array([row], dtype=np.int64), np.array([rate], dtype=float)
        )
    row, idx = catalog.sample(u)
    assert idx == 0
    assert rates[row] > 0.0


def test_flat_and_catalog_selectors_agree_event_for_event():
    """Away from ulp boundaries the two selectors are the same function.

    Seeded, not hypothesis-driven: adversarial u values sitting within
    one ulp of a cumulative boundary may legitimately resolve to
    adjacent events (the two paths sum in different orders); random
    draws never land there.
    """
    rng = np.random.default_rng(42)
    for _ in range(300):
        n = int(rng.integers(1, 48))
        rates = rng.uniform(0.0, 5.0, n)
        rates[rng.random(n) < 0.3] = 0.0
        if not np.sum(rates) > 0.0:
            continue
        catalog = EventCatalog(n)
        for row, rate in enumerate(rates):
            catalog.set_row(
                row,
                np.array([row], dtype=np.int64),
                np.array([rate], dtype=float),
            )
        u = rng.random()
        row, _ = catalog.sample(u)
        assert row == select_event(rates, u)


def test_serial_and_alloy_engines_share_the_selector():
    """Both legacy engines now route through the shared helper."""
    import inspect

    from repro.kmc import akmc, alloy

    assert "select_event" in inspect.getsource(akmc.SerialAKMC._step_flat)
    assert "select_event" in inspect.getsource(alloy.AlloySerialAKMC.step)
