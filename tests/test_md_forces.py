"""EAM force kernel tests: correctness, conservation, run-away paths."""

import numpy as np
import pytest

from repro.lattice.box import Box
from repro.md.forces import (
    PairTable,
    build_pair_table,
    compute_energy_forces,
    compute_energy_forces_pairs,
    eam_evaluate,
    star_density,
    star_forces,
)
from repro.md.neighbors.lattice_list import LatticeNeighborList
from repro.md.neighbors.verlet_list import VerletNeighborList
from repro.md.state import AtomState


@pytest.fixture()
def system(lattice5, potential):
    state = AtomState.perfect(lattice5)
    rng = np.random.default_rng(5)
    state.x = state.x + rng.normal(0, 0.05, state.x.shape)
    nbl = LatticeNeighborList(lattice5, potential.cutoff)
    return state, nbl


class TestPairTable:
    def test_filters_beyond_cutoff(self, box5):
        x = np.array([[0.0, 0, 0], [1.0, 0, 0], [8.0, 0, 0]])
        t = PairTable.from_pairs(x, [0, 0], [1, 2], box5, cutoff=2.0)
        assert len(t) == 1
        assert t.r[0] == pytest.approx(1.0)

    def test_empty_input(self, box5):
        t = PairTable.from_pairs(np.zeros((2, 3)), [], [], box5, cutoff=2.0)
        assert len(t) == 0

    def test_minimum_image_applied(self, box5):
        L = box5.lengths[0]
        x = np.array([[0.2, 0, 0], [L - 0.2, 0, 0]])
        t = PairTable.from_pairs(x, [0], [1], box5, cutoff=1.0)
        assert len(t) == 1
        assert t.r[0] == pytest.approx(0.4)


class TestKernelCorrectness:
    def test_matches_reference_O_n2(self, system, potential, box5):
        state, nbl = system
        energy = compute_energy_forces(potential, state, nbl)
        ref_e = potential.total_energy(state.x, box5)
        ref_f = potential.pairwise_forces(state.x, box5)
        assert energy == pytest.approx(ref_e, rel=1e-12)
        assert np.allclose(state.f, ref_f, atol=1e-12)

    def test_rho_written_to_state(self, system, potential):
        state, nbl = system
        compute_energy_forces(potential, state, nbl)
        assert np.all(state.rho[state.occupied] > 0)

    def test_newtons_third_law_total_force(self, system, potential):
        state, nbl = system
        compute_energy_forces(potential, state, nbl)
        assert np.allclose(state.f.sum(axis=0), 0.0, atol=1e-9)

    def test_vacancy_gets_zero_force(self, system, potential):
        state, nbl = system
        state.make_vacancy(13)
        compute_energy_forces(potential, state, nbl)
        assert np.all(state.f[13] == 0.0)
        assert state.rho[13] == 0.0

    def test_vacancy_changes_neighbor_forces(self, system, potential):
        state, nbl = system
        compute_energy_forces(potential, state, nbl)
        f_before = state.f.copy()
        state.make_vacancy(13)
        compute_energy_forces(potential, state, nbl)
        nbrs = nbl.neighbor_rows(13)
        assert not np.allclose(state.f[nbrs], f_before[nbrs])

    def test_empty_pairtable_returns_zero(self, potential):
        result = eam_evaluate(potential, 3, PairTable(
            i=np.empty(0, dtype=np.int64),
            j=np.empty(0, dtype=np.int64),
            d=np.empty((0, 3)),
            r=np.empty(0),
        ))
        assert result.energy == 0.0
        assert np.all(result.forces == 0.0)

    def test_bincount_scatter_matches_add_at(self, system, potential):
        """The bincount rho/force scatter must agree with the np.add.at
        accumulation it replaced (identical up to summation-order ulps)."""
        state, nbl = system
        table, x, active, _runs = build_pair_table(state, nbl, potential)
        result = eam_evaluate(potential, len(x), table, active)
        rho = np.zeros(len(x))
        fd = potential.tables.density(table.r)
        np.add.at(rho, table.i, fd)
        np.add.at(rho, table.j, fd)
        assert np.allclose(result.rho, rho, rtol=1e-14, atol=0.0)
        dphi = potential.tables.pair.derivative(table.r)
        dfd = potential.tables.density.derivative(table.r)
        demb = potential.tables.embedding.derivative(rho)
        coeff = (dphi + (demb[table.i] + demb[table.j]) * dfd) / table.r
        fvec = coeff[:, None] * table.d
        forces = np.zeros((len(x), 3))
        np.add.at(forces, table.i, fvec)
        np.add.at(forces, table.j, -fvec)
        assert np.allclose(result.forces, forces, rtol=1e-12, atol=1e-12)

    def test_pairs_kernel_matches_lattice_kernel(self, system, potential, box5):
        state, nbl = system
        e1 = compute_energy_forces(potential, state, nbl)
        vi, vj = VerletNeighborList(box5, potential.cutoff).pairs(state.x)
        res = compute_energy_forces_pairs(potential, state.x, vi, vj, box5)
        assert res.energy == pytest.approx(e1, rel=1e-12)
        assert np.allclose(res.forces, state.f, atol=1e-12)


class TestRunawayForces:
    def test_runaway_participates_in_forces(self, lattice5, potential):
        state = AtomState.perfect(lattice5)
        nbl = LatticeNeighborList(lattice5, potential.cutoff)
        state.x[20] += np.array([1.5, 0.0, 0.0])
        nbl.update_runaways(state, threshold=1.2)
        energy = compute_energy_forces(potential, state, nbl)
        atom = nbl.runaways[0]
        assert np.linalg.norm(atom.f) > 0
        assert atom.rho > 0
        # Energy must match the flat-particle reference including the
        # off-lattice atom.
        box = Box.for_lattice(lattice5)
        x_all = np.vstack([state.x[state.occupied], atom.x])
        assert energy == pytest.approx(
            potential.total_energy(x_all, box), rel=1e-10
        )

    def test_runaway_force_reaction_on_lattice(self, lattice5, potential):
        state = AtomState.perfect(lattice5)
        nbl = LatticeNeighborList(lattice5, potential.cutoff)
        state.x[20] += np.array([1.5, 0.0, 0.0])
        nbl.update_runaways(state, threshold=1.2)
        compute_energy_forces(potential, state, nbl)
        total = state.f.sum(axis=0) + nbl.runaways[0].f
        assert np.allclose(total, 0.0, atol=1e-9)

    def test_pair_table_includes_runaway_pairs(self, lattice5, potential):
        state = AtomState.perfect(lattice5)
        nbl = LatticeNeighborList(lattice5, potential.cutoff)
        state.x[20] += np.array([1.4, 0.0, 0.0])
        state.x[22] += np.array([1.4, 0.2, 0.0])
        nbl.update_runaways(state, threshold=1.2)
        table, x, _active, runs = build_pair_table(state, nbl, potential)
        assert len(runs) == 2
        run_rows = {state.n, state.n + 1}
        has_rr = any(
            int(a) in run_rows and int(b) in run_rows
            for a, b in zip(table.i, table.j, strict=True)
        )
        assert has_rr


class TestStarKernels:
    def test_star_density_matches_pairs(self, system, potential, box5):
        state, nbl = system
        compute_energy_forces(potential, state, nbl)
        centrals = np.arange(state.n)
        rho, pair_e = star_density(
            potential, state.x, state.occupied, centrals,
            nbl.matrix, nbl.valid, box5,
        )
        assert np.allclose(rho, state.rho, atol=1e-12)

    def test_star_forces_match_pairs(self, system, potential, box5):
        state, nbl = system
        compute_energy_forces(potential, state, nbl)
        centrals = np.arange(state.n)
        f = star_forces(
            potential, state.x, state.occupied, state.rho, centrals,
            nbl.matrix, nbl.valid, box5,
        )
        assert np.allclose(f, state.f, atol=1e-12)

    def test_star_pair_energy_halved_correctly(self, system, potential, box5):
        state, nbl = system
        e_total = compute_energy_forces(potential, state, nbl)
        centrals = np.arange(state.n)
        _rho, pair_e = star_density(
            potential, state.x, state.occupied, centrals,
            nbl.matrix, nbl.valid, box5,
        )
        embed_e = float(np.sum(potential.embed(state.rho[state.occupied])))
        assert pair_e + embed_e == pytest.approx(e_total, rel=1e-12)
