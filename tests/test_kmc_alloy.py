"""Alloy (Fe-Cu) AKMC tests: energetics, events, Cu precipitation."""

import numpy as np
import pytest

from repro.core.clusters import clustering_report
from repro.kmc.alloy import (
    S_CU,
    S_FE,
    S_VACANCY,
    AlloyKMCModel,
    AlloyRateParameters,
    AlloySerialAKMC,
)
from repro.lattice.bcc import BCCLattice


@pytest.fixture(scope="module")
def alloy_model():
    return AlloyKMCModel(BCCLattice(8, 8, 8), table_points=500)


class TestParameters:
    def test_cu_barrier_below_fe(self):
        p = AlloyRateParameters()
        assert p.e_m0(S_CU) < p.e_m0(S_FE)

    def test_vacancy_has_no_barrier(self):
        with pytest.raises(ValueError):
            AlloyRateParameters().e_m0(S_VACANCY)

    def test_validation(self):
        with pytest.raises(ValueError):
            AlloyRateParameters(nu=0.0)


class TestEnergetics:
    def test_pure_fe_matches_species_uniformity(self, alloy_model):
        occ = np.full(alloy_model.nrows, S_FE, dtype=np.int8)
        e0 = alloy_model.site_energy(0, occ)
        e1 = alloy_model.site_energy(100, occ)
        assert e0 == pytest.approx(e1)

    def test_cu_site_differs_from_fe(self, alloy_model):
        occ = np.full(alloy_model.nrows, S_FE, dtype=np.int8)
        e_fe = alloy_model.site_energy(100, occ)
        occ[100] = S_CU
        e_cu = alloy_model.site_energy(100, occ)
        assert e_cu != pytest.approx(e_fe)

    def test_vacancy_site_energy_rejected(self, alloy_model):
        occ = np.full(alloy_model.nrows, S_FE, dtype=np.int8)
        occ[4] = S_VACANCY
        with pytest.raises(ValueError, match="vacancy"):
            alloy_model.site_energy(4, occ)

    def test_cu_cu_binding_positive(self, alloy_model):
        # The demixing thermodynamics that drive precipitation.
        lat = alloy_model.lattice
        base = np.full(alloy_model.nrows, S_FE, dtype=np.int8)
        adjacent = base.copy()
        adjacent[100] = S_CU
        adjacent[int(alloy_model.first_matrix[100][0])] = S_CU
        apart = base.copy()
        apart[100] = S_CU
        apart[int(lat.rank_of(0, 4, 4, 4))] = S_CU
        binding = alloy_model.configuration_energy(
            apart
        ) - alloy_model.configuration_energy(adjacent)
        assert binding > 0.05  # well above kT = 0.052 eV at 600 K

    def test_random_solution_counts(self, alloy_model):
        occ = alloy_model.random_solution(30, 3, np.random.default_rng(0))
        assert int(np.sum(occ == S_CU)) == 30
        assert int(np.sum(occ == S_VACANCY)) == 3
        assert int(np.sum(occ == S_FE)) == alloy_model.nrows - 33

    def test_random_solution_validation(self, alloy_model):
        with pytest.raises(ValueError):
            alloy_model.random_solution(
                alloy_model.nrows, 1, np.random.default_rng(0)
            )


class TestEvents:
    def test_vacancy_in_pure_fe_has_8_events(self, alloy_model):
        occ = np.full(alloy_model.nrows, S_FE, dtype=np.int8)
        occ[100] = S_VACANCY
        targets, rates = alloy_model.vacancy_events(100, occ)
        assert len(targets) == 8
        assert np.all(rates > 0)

    def test_cu_hop_faster_than_fe_hop(self, alloy_model):
        # The lower Cu barrier makes the vacancy a Cu transporter.
        occ = np.full(alloy_model.nrows, S_FE, dtype=np.int8)
        occ[100] = S_VACANCY
        cu_site = int(alloy_model.first_matrix[100][0])
        occ[cu_site] = S_CU
        targets, rates = alloy_model.vacancy_events(100, occ)
        cu_rate = float(rates[targets == cu_site][0])
        fe_rates = rates[targets != cu_site]
        assert cu_rate > np.max(fe_rates)

    def test_swap_moves_species(self, alloy_model):
        occ = np.full(alloy_model.nrows, S_FE, dtype=np.int8)
        occ[100] = S_VACANCY
        t = int(alloy_model.first_matrix[100][0])
        occ[t] = S_CU
        alloy_model.execute_swap(occ, 100, t)
        assert occ[100] == S_CU
        assert occ[t] == S_VACANCY

    def test_invalid_swap_rejected(self, alloy_model):
        occ = np.full(alloy_model.nrows, S_FE, dtype=np.int8)
        with pytest.raises(ValueError, match="invalid swap"):
            alloy_model.execute_swap(occ, 0, 1)

    def test_requires_vacancy(self, alloy_model):
        occ = np.full(alloy_model.nrows, S_FE, dtype=np.int8)
        with pytest.raises(ValueError, match="vacancy"):
            alloy_model.vacancy_events(5, occ)


class TestPrecipitation:
    @pytest.fixture(scope="class")
    def evolution(self, alloy_model):
        occ0 = alloy_model.random_solution(30, 3, np.random.default_rng(7))
        engine = AlloySerialAKMC(alloy_model, occ0, seed=11)
        result = engine.run(max_events=1500)
        return occ0, result

    def test_species_conserved(self, alloy_model, evolution):
        occ0, result = evolution
        for code in (S_VACANCY, S_FE, S_CU):
            assert int(np.sum(result.occupancy == code)) == int(
                np.sum(occ0 == code)
            )

    def test_time_advances(self, evolution):
        _occ0, result = evolution
        assert result.time > 0
        assert result.events == 1500

    def test_cu_clusters_grow(self, alloy_model, evolution):
        occ0, result = evolution
        lat = alloy_model.lattice
        before = clustering_report(
            lat, alloy_model.sites[np.flatnonzero(occ0 == S_CU)]
        )
        after = clustering_report(lat, result.cu_ranks)
        # The early-precipitation signature: larger clusters, lower
        # dispersion than the random solution.
        assert after.max_cluster > before.max_cluster
        assert after.mean_nn_distance < before.mean_nn_distance

    def test_deterministic(self, alloy_model):
        occ0 = alloy_model.random_solution(10, 2, np.random.default_rng(3))
        a = AlloySerialAKMC(alloy_model, occ0, seed=5).run(max_events=50)
        b = AlloySerialAKMC(alloy_model, occ0, seed=5).run(max_events=50)
        assert np.array_equal(a.occupancy, b.occupancy)
