"""Physics-validation tests: diffusion, defect energetics, recombination."""

import numpy as np
import pytest

from repro.analysis.diffusion import (
    arrhenius_fit,
    theoretical_single_hop_msd,
    track_single_vacancy,
)
from repro.analysis.energies import (
    cluster_binding_per_vacancy,
    configuration_energy,
    divacancy_binding_energy,
    vacancy_formation_energy,
)
from repro.core.coupling import recombine_frenkel_pairs
from repro.kmc.events import KMCModel, RateParameters
from repro.lattice.bcc import BCCLattice


@pytest.fixture(scope="module")
def model6(potential):
    return KMCModel(BCCLattice(6, 6, 6), potential, RateParameters())


class TestDefectEnergies:
    def test_vacancy_formation_positive(self, model6):
        e_f = vacancy_formation_energy(model6)
        assert e_f > 0.5  # removing an atom always costs bond energy

    def test_formation_energy_site_independent(self, model6):
        assert vacancy_formation_energy(model6, 0) == pytest.approx(
            vacancy_formation_energy(model6, 99), rel=1e-9
        )

    def test_divacancy_bound_at_first_shell(self, model6, rate_params):
        # Clustering requires binding >> kT (0.052 eV at 600 K).
        e_b = divacancy_binding_energy(model6, shell=1)
        assert e_b > 2 * rate_params.kt

    def test_second_shell_also_bound(self, model6):
        assert divacancy_binding_energy(model6, shell=2) > 0

    def test_invalid_shell_rejected(self, model6):
        with pytest.raises(ValueError, match="shell"):
            divacancy_binding_energy(model6, shell=3)

    def test_cluster_binding_grows_with_size(self, model6):
        # Per-vacancy binding of a compact tri-vacancy exceeds the pair's
        # half-binding (more shared broken bonds).
        lat = model6.lattice
        a = 0
        b = int(lat.first_shell_ranks(a)[0])
        c = int(lat.first_shell_ranks(a)[1])
        pair = cluster_binding_per_vacancy(model6, np.array([a, b]))
        tri = cluster_binding_per_vacancy(model6, np.array([a, b, c]))
        assert tri > pair > 0

    def test_configuration_energy_extensive(self, model6):
        occ = model6.perfect_occupancy()
        e = configuration_energy(model6, occ)
        assert e == pytest.approx(
            model6.nrows * float(model6.site_energy(0, occ)[0]), rel=1e-9
        )


class TestDiffusion:
    @pytest.fixture(scope="class")
    def tracer_600(self, potential):
        return track_single_vacancy(
            BCCLattice(6, 6, 6), potential, 600.0, nhops=150, seed=4
        )

    def test_tracer_executes_hops(self, tracer_600):
        assert tracer_600.hops == 150
        assert tracer_600.time > 0

    def test_msd_positive_and_plausible(self, tracer_600):
        lat = BCCLattice(6, 6, 6)
        per_hop = theoretical_single_hop_msd(lat)
        # A 150-hop random walk: MSD ~ 150 * per-hop (within wide
        # stochastic bounds).
        assert 0 < tracer_600.msd < 6 * 150 * per_hop

    def test_diffusion_faster_when_hotter(self, potential):
        lat = BCCLattice(6, 6, 6)
        cold = track_single_vacancy(lat, potential, 500.0, nhops=80, seed=1)
        hot = track_single_vacancy(lat, potential, 900.0, nhops=80, seed=1)
        assert hot.diffusion_coefficient > cold.diffusion_coefficient

    def test_arrhenius_activation_energy_near_barrier(self, potential):
        # The fitted activation energy must sit near the e_m0 = 0.65 eV
        # reference barrier (EAM corrections shift it slightly).
        lat = BCCLattice(6, 6, 6)
        results = [
            track_single_vacancy(lat, potential, t, nhops=60, seed=2)
            for t in (500.0, 700.0, 900.0)
        ]
        _d0, e_a = arrhenius_fit(results)
        assert 0.4 < e_a < 0.9

    def test_arrhenius_needs_two_points(self, potential):
        lat = BCCLattice(6, 6, 6)
        r = track_single_vacancy(lat, potential, 600.0, nhops=10, seed=0)
        with pytest.raises(ValueError):
            arrhenius_fit([r])


class TestRecombination:
    def test_close_pair_annihilates(self):
        lat = BCCLattice(6, 6, 6)
        vac = np.array([0])
        interstitial = lat.position_of(0) + np.array([1.0, 0, 0])
        surviving = recombine_frenkel_pairs(lat, vac, interstitial, radius=3.0)
        assert len(surviving) == 0

    def test_distant_pair_survives(self):
        lat = BCCLattice(6, 6, 6)
        vac = np.array([0])
        far = lat.position_of(int(lat.rank_of(0, 3, 3, 3)))
        surviving = recombine_frenkel_pairs(lat, vac, far, radius=3.0)
        assert surviving.tolist() == [0]

    def test_each_interstitial_captures_at_most_one(self):
        lat = BCCLattice(6, 6, 6)
        a, b = 0, int(lat.first_shell_ranks(0)[0])
        vac = np.array([a, b])
        interstitial = lat.position_of(a) + np.array([0.5, 0, 0])
        surviving = recombine_frenkel_pairs(lat, vac, interstitial, radius=5.0)
        assert len(surviving) == 1

    def test_periodic_distance_used(self):
        lat = BCCLattice(6, 6, 6)
        vac = np.array([0])  # at the origin corner
        # An interstitial just across the periodic boundary.
        x = lat.lengths - 0.5
        surviving = recombine_frenkel_pairs(lat, vac, x, radius=2.0)
        assert len(surviving) == 0

    def test_radius_validation(self):
        lat = BCCLattice(6, 6, 6)
        with pytest.raises(ValueError):
            recombine_frenkel_pairs(lat, np.array([0]), np.zeros(3), radius=0)

    def test_coupled_pipeline_with_recombination(self, potential):
        from repro.core.coupling import CoupledConfig, CoupledSimulation

        base = CoupledSimulation(
            CoupledConfig(cells=6, kmc_max_events=10, table_points=1000, seed=7)
        )
        res_base = base.run()
        recomb = CoupledSimulation(
            CoupledConfig(
                cells=6,
                kmc_max_events=10,
                table_points=1000,
                seed=7,
                recombination_radius=4.0,
            )
        )
        res_recomb = recomb.run()
        assert len(res_recomb.vacancies_after_md) <= len(
            res_base.vacancies_after_md
        )
