"""Thermostat and velocity-initialization tests."""

import numpy as np
import pytest

from repro.md.state import AtomState
from repro.md.thermostat import (
    berendsen_rescale,
    instantaneous_temperature,
    maxwell_boltzmann_velocities,
)


class TestMaxwellBoltzmann:
    def test_hits_target_temperature_exactly(self, lattice5):
        state = AtomState.perfect(lattice5)
        maxwell_boltzmann_velocities(state, 600.0, np.random.default_rng(0))
        assert state.temperature() == pytest.approx(600.0, rel=1e-9)

    def test_zero_net_momentum(self, lattice5):
        state = AtomState.perfect(lattice5)
        maxwell_boltzmann_velocities(state, 600.0, np.random.default_rng(1))
        assert np.allclose(state.momentum(), 0.0, atol=1e-9)

    def test_zero_temperature_means_rest(self, lattice5):
        state = AtomState.perfect(lattice5)
        maxwell_boltzmann_velocities(state, 0.0, np.random.default_rng(2))
        assert np.all(state.v == 0.0)

    def test_vacancies_stay_at_rest(self, lattice5):
        state = AtomState.perfect(lattice5)
        state.make_vacancy(3)
        maxwell_boltzmann_velocities(state, 600.0, np.random.default_rng(3))
        assert np.all(state.v[3] == 0.0)

    def test_negative_temperature_rejected(self, lattice5):
        state = AtomState.perfect(lattice5)
        with pytest.raises(ValueError, match="temperature"):
            maxwell_boltzmann_velocities(state, -1.0, np.random.default_rng(0))

    def test_reproducible_with_seed(self, lattice5):
        s1 = AtomState.perfect(lattice5)
        s2 = AtomState.perfect(lattice5)
        maxwell_boltzmann_velocities(s1, 600.0, np.random.default_rng(7))
        maxwell_boltzmann_velocities(s2, 600.0, np.random.default_rng(7))
        assert np.array_equal(s1.v, s2.v)

    def test_isotropic_distribution(self, lattice8):
        state = AtomState.perfect(lattice8)
        maxwell_boltzmann_velocities(state, 600.0, np.random.default_rng(5))
        variances = state.v.var(axis=0)
        assert variances.max() / variances.min() < 1.3


class TestBerendsen:
    def test_heats_cold_system(self, lattice5):
        state = AtomState.perfect(lattice5)
        maxwell_boltzmann_velocities(state, 300.0, np.random.default_rng(0))
        t0 = state.temperature()
        berendsen_rescale(state, target=600.0, dt=0.001, tau=0.01)
        assert state.temperature() > t0

    def test_cools_hot_system(self, lattice5):
        state = AtomState.perfect(lattice5)
        maxwell_boltzmann_velocities(state, 900.0, np.random.default_rng(0))
        berendsen_rescale(state, target=600.0, dt=0.001, tau=0.01)
        assert state.temperature() < 900.0

    def test_noop_at_target(self, lattice5):
        state = AtomState.perfect(lattice5)
        maxwell_boltzmann_velocities(state, 600.0, np.random.default_rng(0))
        lam = berendsen_rescale(state, target=600.0, dt=0.001, tau=0.1)
        assert lam == pytest.approx(1.0, abs=1e-9)

    def test_noop_for_frozen_system(self, lattice5):
        state = AtomState.perfect(lattice5)
        assert berendsen_rescale(state, target=600.0, dt=0.001) == 1.0
        assert np.all(state.v == 0.0)

    def test_converges_over_many_applications(self, lattice5):
        state = AtomState.perfect(lattice5)
        maxwell_boltzmann_velocities(state, 100.0, np.random.default_rng(0))
        for _ in range(200):
            berendsen_rescale(state, target=600.0, dt=0.001, tau=0.05)
        assert state.temperature() == pytest.approx(600.0, rel=0.05)

    def test_validation(self, lattice5):
        state = AtomState.perfect(lattice5)
        with pytest.raises(ValueError, match="target"):
            berendsen_rescale(state, target=-1.0, dt=0.001)
        with pytest.raises(ValueError, match="positive"):
            berendsen_rescale(state, target=600.0, dt=0.0)

    def test_instantaneous_temperature_alias(self, lattice5):
        state = AtomState.perfect(lattice5)
        maxwell_boltzmann_velocities(state, 450.0, np.random.default_rng(0))
        assert instantaneous_temperature(state) == state.temperature()
