"""Persistent job queue: durable submits, unique ids, atomic updates."""

import json
import threading

import pytest

from repro.service.queue import (
    DONE,
    PENDING,
    RUNNING,
    JobQueue,
    JobRecord,
    ServiceError,
)
from repro.service.spec import ScenarioSpec


@pytest.fixture()
def queue(tmp_path):
    return JobQueue(tmp_path)


class TestSubmit:
    def test_submit_is_durable_and_reloadable(self, tmp_path, queue):
        spec = ScenarioSpec(cells=6, seed=7)
        record = queue.submit(spec)
        assert record.job_id == "job-000001"
        assert record.state == PENDING
        assert record.key == spec.key()
        # A fresh handle on the same directory sees the full record.
        reloaded = JobQueue(tmp_path).get("job-000001")
        assert reloaded.spec == spec
        assert reloaded.state == PENDING
        assert reloaded.key == spec.key()

    def test_ids_are_sequential(self, queue):
        ids = [queue.submit(ScenarioSpec(seed=s)).job_id for s in (1, 2, 3)]
        assert ids == ["job-000001", "job-000002", "job-000003"]

    def test_identical_specs_get_distinct_jobs(self, queue):
        spec = ScenarioSpec(seed=7)
        a = queue.submit(spec)
        b = queue.submit(spec)
        assert a.job_id != b.job_id
        assert a.key == b.key  # dedup happens at scheduling time

    def test_concurrent_submitters_never_collide(self, tmp_path):
        ids, errors = [], []
        lock = threading.Lock()

        def submitter(seed):
            try:
                record = JobQueue(tmp_path).submit(ScenarioSpec(seed=seed))
                with lock:
                    ids.append(record.job_id)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=submitter, args=(s,)) for s in range(16)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(set(ids)) == 16
        records = JobQueue(tmp_path).jobs()
        assert len(records) == 16
        assert sorted(r.job_id for r in records) == sorted(ids)

    def test_no_temp_files_left_behind(self, tmp_path, queue):
        queue.submit(ScenarioSpec())
        leftovers = [
            p.name for p in (tmp_path / "queue").iterdir()
            if not p.name.startswith("job-")
        ]
        assert leftovers == []

    def test_payload_carries_no_id(self, tmp_path, queue):
        # The slot name IS the id; the payload must not duplicate it.
        record = queue.submit(ScenarioSpec())
        payload = json.loads(
            (tmp_path / "queue" / f"{record.job_id}.json").read_text()
        )
        assert "job_id" not in payload
        assert "id" not in payload


class TestReadUpdate:
    def test_jobs_in_submission_order(self, queue):
        for seed in (5, 3, 9):
            queue.submit(ScenarioSpec(seed=seed))
        assert [r.spec.seed for r in queue.jobs()] == [5, 3, 9]

    def test_update_persists(self, tmp_path, queue):
        record = queue.submit(ScenarioSpec())
        record.state = RUNNING
        record.mode = "executed"
        record.attempts = 2
        queue.update(record)
        reloaded = JobQueue(tmp_path).get(record.job_id)
        assert reloaded.state == RUNNING
        assert reloaded.mode == "executed"
        assert reloaded.attempts == 2

    def test_counts(self, queue):
        a = queue.submit(ScenarioSpec(seed=1))
        queue.submit(ScenarioSpec(seed=2))
        a.state = DONE
        queue.update(a)
        counts = queue.counts()
        assert counts[DONE] == 1
        assert counts[PENDING] == 1

    def test_get_missing_job(self, queue):
        with pytest.raises(ServiceError, match="job-999999"):
            queue.get("job-999999")

    def test_update_missing_job(self, queue):
        record = JobRecord(job_id="job-999999", spec=ScenarioSpec())
        with pytest.raises(ServiceError, match="job-999999"):
            queue.update(record)

    def test_foreign_file_rejected_loudly(self, tmp_path, queue):
        (tmp_path / "queue" / "job-000001.json").write_text(
            json.dumps({"format": "something-else"})
        )
        with pytest.raises(ServiceError, match="format"):
            queue.jobs()

    def test_unreadable_record_named_in_error(self, tmp_path, queue):
        (tmp_path / "queue" / "job-000001.json").write_text("{tor")
        with pytest.raises(ServiceError, match="job-000001"):
            queue.get("job-000001")
