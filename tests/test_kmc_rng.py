"""Deterministic RNG stream tests."""

import numpy as np
import pytest

from repro.kmc.rng import cycle_seed, global_rng, sector_rng


class TestStreams:
    def test_same_coordinates_same_stream(self):
        a = sector_rng(7, rank=1, cycle=2, sector=3).random(5)
        b = sector_rng(7, rank=1, cycle=2, sector=3).random(5)
        assert np.array_equal(a, b)

    @pytest.mark.parametrize(
        "other",
        [
            dict(rank=0, cycle=2, sector=3),
            dict(rank=1, cycle=0, sector=3),
            dict(rank=1, cycle=2, sector=0),
        ],
    )
    def test_different_coordinates_different_stream(self, other):
        base = sector_rng(7, rank=1, cycle=2, sector=3).random(8)
        alt = sector_rng(7, **other).random(8)
        assert not np.array_equal(base, alt)

    def test_different_seed_different_stream(self):
        a = sector_rng(1, 0, 0, 0).random(8)
        b = sector_rng(2, 0, 0, 0).random(8)
        assert not np.array_equal(a, b)

    def test_negative_coordinates_rejected(self):
        with pytest.raises(ValueError):
            cycle_seed(7, -1, 0, 0)

    def test_global_rng_rank_independent(self):
        a = global_rng(9, cycle=4).random(3)
        b = global_rng(9, cycle=4).random(3)
        assert np.array_equal(a, b)

    def test_streams_statistically_independent(self):
        # Crude: correlations between adjacent streams stay small.
        a = sector_rng(0, 0, 0, 0).random(4000)
        b = sector_rng(0, 0, 0, 1).random(4000)
        corr = np.corrcoef(a, b)[0, 1]
        assert abs(corr) < 0.06
