"""Bit-identity of the kernel-dispatch backends (numpy vs compiled loops).

The loop kernels in :mod:`repro.kernels.impl` are plain Python when
numba is absent, so every test here runs the *exact algorithm* the
compiled path executes and asserts bitwise equality against the NumPy
reference expressions — table evaluation, pairwise summation, the
two-pass EAM evaluation, and the batched vacancy-rate kernel, across
both table layouts, float32/float64 pair geometry, empty pair lists,
and single-atom worlds.  Forcing ``HAVE_NUMBA`` on exercises the full
dispatch wiring inside ``eam_evaluate``/``vacancy_events_batch`` without
numba installed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import kernels
from repro.kernels import impl
from repro.lattice.bcc import BCCLattice
from repro.lattice.box import Box
from repro.md.forces import PairTable, eam_evaluate
from repro.md.state import AtomState
from repro.potential.fe import make_fe_potential


@pytest.fixture(scope="module")
def potential():
    return make_fe_potential(n=500)


@pytest.fixture
def force_kernel_backend(monkeypatch):
    """Route dispatch to the loop kernels without numba installed."""
    monkeypatch.setattr(kernels, "HAVE_NUMBA", True)
    monkeypatch.delenv("REPRO_KERNELS", raising=False)
    assert kernels.selected() == "numba"


def _pair_workload(potential, dtype=np.float64, cells=5, seed=0):
    from repro.md.neighbors.verlet_list import VerletNeighborList

    lattice = BCCLattice(cells, cells, cells)
    state = AtomState.perfect(lattice)
    x = state.x + np.random.default_rng(seed).normal(0, 0.08, state.x.shape)
    x = x.astype(dtype)
    box = Box.for_lattice(lattice)
    i, j = VerletNeighborList(box, potential.cutoff).pairs(x)
    return state.n, PairTable.from_pairs(x, i, j, box, potential.cutoff)


class TestPairwiseSum:
    def test_matches_numpy_for_all_guarded_widths(self):
        rng = np.random.default_rng(1)
        for n in range(0, kernels.MAX_ROW_WIDTH + 1):
            a = rng.normal(size=n) * 10.0 ** rng.integers(
                -3, 4, size=n
            ).astype(float)
            assert impl.pairwise_sum(a, n) == np.sum(a)

    def test_row_sums_match_2d_reduction(self):
        rng = np.random.default_rng(2)
        m = rng.normal(size=(40, 14))
        rows = m.sum(axis=1)
        for q in range(len(m)):
            assert impl.pairwise_sum(m[q], m.shape[1]) == rows[q]


class TestTableEvaluation:
    @pytest.mark.parametrize("layout", ["traditional", "compacted"])
    def test_value_and_derivative_bit_identity(self, potential, layout):
        pot = potential.with_layout(layout)
        rng = np.random.default_rng(3)
        for table in (
            pot.tables.pair,
            pot.tables.density,
            pot.tables.embedding,
        ):
            payload = kernels.table_payload(table)
            assert payload is not None
            xs = np.concatenate(
                [
                    rng.uniform(0.0, table.xmax, 200),
                    np.arange(6) * table.dx,  # exactly on knots
                    [0.0, table.xmax, table.xmax * 1.5, -0.3],  # clamped
                ]
            )
            want_v, want_d = table.value_and_derivative(xs)
            got_v, got_d = impl.table_vd(*payload, xs)
            assert np.array_equal(got_v, want_v)
            assert np.array_equal(got_d, want_d)
            for x in xs[:20]:
                assert impl._table_v(*payload, float(x)) == table(float(x))

    def test_unsupported_table_returns_none(self):
        class Other:
            layout = "exotic"

        assert kernels.table_payload(Other()) is None
        assert kernels.table_payload(Other()) is None  # cached miss


class TestEAMBitIdentity:
    @pytest.mark.parametrize("layout", ["traditional", "compacted"])
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_eam_evaluate_matches_numpy(
        self, potential, force_kernel_backend, monkeypatch, layout, dtype
    ):
        pot = potential.with_layout(layout)
        n, table = _pair_workload(pot, dtype=dtype)
        kernel = eam_evaluate(pot, n, table)
        monkeypatch.setenv("REPRO_KERNELS", "numpy")
        reference = eam_evaluate(pot, n, table)
        assert np.array_equal(kernel.forces, reference.forces)
        assert np.array_equal(kernel.rho, reference.rho)
        assert kernel.energy == reference.energy
        assert kernel.pair_energy == reference.pair_energy
        assert kernel.embed_energy == reference.embed_energy

    def test_empty_pair_list(self, potential, force_kernel_backend):
        empty = PairTable(
            i=np.empty(0, np.int64),
            j=np.empty(0, np.int64),
            d=np.empty((0, 3)),
            r=np.empty(0),
        )
        result = eam_evaluate(potential, 5, empty)
        assert result.energy == 0.0
        assert np.array_equal(result.forces, np.zeros((5, 3)))

    def test_single_atom_world(self, potential, force_kernel_backend):
        x = np.zeros((1, 3))
        table = PairTable.from_pairs(x, [], [], None, potential.cutoff)
        result = eam_evaluate(potential, 1, table)
        assert result.energy == 0.0
        assert np.array_equal(result.rho, np.zeros(1))

    def test_partial_active_mask(
        self, potential, force_kernel_backend, monkeypatch
    ):
        n, table = _pair_workload(potential, seed=4)
        active = np.random.default_rng(5).random(n) < 0.7
        kernel = eam_evaluate(potential, n, table, active)
        monkeypatch.setenv("REPRO_KERNELS", "numpy")
        reference = eam_evaluate(potential, n, table, active)
        assert kernel.embed_energy == reference.embed_energy
        assert np.array_equal(kernel.forces, reference.forces)


class TestRateBatchBitIdentity:
    @pytest.mark.parametrize("layout", ["traditional", "compacted"])
    def test_batch_matches_numpy(
        self, potential, force_kernel_backend, monkeypatch, layout
    ):
        from repro.kmc.akmc import place_random_vacancies
        from repro.kmc.events import KMCModel, RateParameters

        pot = potential.with_layout(layout)
        model = KMCModel(BCCLattice(6, 6, 6), pot, RateParameters())
        occ = place_random_vacancies(model, 40, np.random.default_rng(7))
        vrows = np.flatnonzero(occ == 0)
        counts_k, targets_k, rates_k = model.vacancy_events_batch(vrows, occ)
        monkeypatch.setenv("REPRO_KERNELS", "numpy")
        counts_n, targets_n, rates_n = model.vacancy_events_batch(vrows, occ)
        assert np.array_equal(counts_k, counts_n)
        assert np.array_equal(targets_k, targets_n)
        assert np.array_equal(rates_k, rates_n)

    def test_vacancy_with_no_targets(self, potential, force_kernel_backend):
        from repro.kmc.events import KMCModel, RateParameters, VACANCY

        model = KMCModel(BCCLattice(3, 3, 3), potential, RateParameters())
        occ = np.full(model.nrows, VACANCY, dtype=np.int8)
        vrows = np.arange(model.nrows, dtype=np.int64)
        counts, targets, rates = model.vacancy_events_batch(vrows, occ)
        assert counts.sum() == 0
        assert len(targets) == 0
        assert len(rates) == 0

    def test_serial_akmc_trajectory_identical(
        self, potential, force_kernel_backend, monkeypatch
    ):
        from repro.kmc.akmc import SerialAKMC, place_random_vacancies
        from repro.kmc.events import KMCModel, RateParameters

        lattice = BCCLattice(5, 5, 5)
        params = RateParameters()
        model = KMCModel(lattice, potential, params)
        occ0 = place_random_vacancies(model, 12, np.random.default_rng(11))

        def run():
            engine = SerialAKMC(
                lattice, potential, params, occ0.copy(), seed=13
            )
            for _ in range(25):
                engine.step()
            return engine.occ.copy(), engine.time

        occ_k, t_k = run()
        monkeypatch.setenv("REPRO_KERNELS", "numpy")
        occ_n, t_n = run()
        assert np.array_equal(occ_k, occ_n)
        assert t_k == t_n


class TestDispatch:
    def test_default_is_numpy_without_numba(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNELS", raising=False)
        if not kernels.numba_available():
            assert kernels.selected() == "numpy"

    def test_explicit_numpy(self):
        assert kernels.resolve_kernels("numpy") == "numpy"
        assert kernels.resolve_kernels(" NumPy ") == "numpy"

    def test_env_var_resolves(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "numpy")
        assert kernels.selected() == "numpy"
        monkeypatch.setenv("REPRO_KERNELS", "   ")
        assert kernels.selected() in ("numpy", "numba")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernels.resolve_kernels("fortran")

    def test_numba_without_numba_degrades_with_warning(self, monkeypatch):
        monkeypatch.setattr(kernels, "HAVE_NUMBA", False)
        monkeypatch.setattr(kernels, "_warned_missing_numba", False)
        with pytest.warns(RuntimeWarning, match="falling back"):
            assert kernels.resolve_kernels("numba") == "numpy"
        # One-shot: a second resolution stays quiet.
        assert kernels.resolve_kernels("numba") == "numpy"

    def test_forced_numba_reaches_kernels(self, monkeypatch):
        monkeypatch.setattr(kernels, "HAVE_NUMBA", True)
        monkeypatch.delenv("REPRO_KERNELS", raising=False)
        assert kernels.selected() == "numba"
        monkeypatch.setenv("REPRO_KERNELS", "numba")
        assert kernels.resolve_kernels(None) == "numba"
