"""Local store allocator tests: the 64 KB constraint that drives §2.1.2."""

import pytest

from repro.sunway.localstore import LocalStore, LocalStoreOverflow


class TestAllocator:
    def test_default_capacity_is_64kb(self):
        assert LocalStore().capacity == 64 * 1024

    def test_alloc_and_free_accounting(self):
        ls = LocalStore(1000)
        ls.alloc("a", 300)
        ls.alloc("b", 200)
        assert ls.used == 500
        assert ls.free == 500
        ls.release("a")
        assert ls.used == 200

    def test_overflow_raises(self):
        ls = LocalStore(100)
        ls.alloc("a", 80)
        with pytest.raises(LocalStoreOverflow, match="exceeds local store"):
            ls.alloc("b", 30)

    def test_duplicate_name_rejected(self):
        ls = LocalStore(100)
        ls.alloc("a", 10)
        with pytest.raises(ValueError, match="already"):
            ls.alloc("a", 10)

    def test_resize_respects_capacity(self):
        ls = LocalStore(100)
        ls.alloc("a", 50)
        ls.resize("a", 90)
        assert ls.used == 90
        with pytest.raises(LocalStoreOverflow):
            ls.resize("a", 200)
        assert ls.buffers["a"] == 90  # rollback on failure

    def test_release_unknown_rejected(self):
        with pytest.raises(KeyError):
            LocalStore(100).release("ghost")

    def test_reset(self):
        ls = LocalStore(100)
        ls.alloc("a", 60)
        ls.reset()
        assert ls.used == 0

    def test_fits(self):
        ls = LocalStore(100)
        ls.alloc("a", 60)
        assert ls.fits(40)
        assert not ls.fits(41)


class TestPaperConstraints:
    def test_traditional_table_cannot_fit(self):
        # The premise of the compaction: a 273 KB coefficient table does
        # not fit a 64 KB local store.
        ls = LocalStore()
        with pytest.raises(LocalStoreOverflow):
            ls.alloc("traditional_table", 5001 * 7 * 8)

    def test_one_compacted_table_fits(self):
        ls = LocalStore()
        ls.alloc("compacted_table", 5001 * 8)  # ~39 KB
        assert ls.free > 20 * 1024  # room for atom blocks

    def test_three_compacted_tables_do_not_fit(self):
        # Why the alloy residency policy (and our pass structure) exist.
        ls = LocalStore()
        ls.alloc("t1", 5001 * 8)
        with pytest.raises(LocalStoreOverflow):
            ls.alloc("t2", 5001 * 8)
            ls.alloc("t3", 5001 * 8)
