"""BCC lattice geometry and indexing tests (incl. hypothesis properties)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lattice.bcc import BCCLattice
from repro.lattice.box import Box

A = 2.855


class TestConstruction:
    def test_site_count(self):
        assert BCCLattice(3, 4, 5).nsites == 2 * 3 * 4 * 5

    def test_lengths(self):
        lat = BCCLattice(2, 3, 4, a=2.0)
        assert np.allclose(lat.lengths, [4.0, 6.0, 8.0])

    @pytest.mark.parametrize("bad", [(0, 1, 1), (1, -1, 1), (1, 1, 0)])
    def test_rejects_nonpositive_dims(self, bad):
        with pytest.raises(ValueError):
            BCCLattice(*bad)

    def test_rejects_nonpositive_lattice_constant(self):
        with pytest.raises(ValueError, match="lattice constant"):
            BCCLattice(2, 2, 2, a=0.0)


class TestRankRoundtrip:
    def test_all_ranks_roundtrip(self):
        lat = BCCLattice(3, 4, 5)
        ranks = np.arange(lat.nsites)
        b, i, j, k = lat.coords_of(ranks)
        assert np.array_equal(lat.rank_of(b, i, j, k), ranks)

    def test_rank_wraps_periodically(self):
        lat = BCCLattice(4, 4, 4)
        assert lat.rank_of(0, 4, 0, 0) == lat.rank_of(0, 0, 0, 0)
        assert lat.rank_of(1, -1, 2, 2) == lat.rank_of(1, 3, 2, 2)

    def test_rank_out_of_range_rejected(self):
        lat = BCCLattice(2, 2, 2)
        with pytest.raises(ValueError, match="out of range"):
            lat.coords_of(lat.nsites)
        with pytest.raises(ValueError, match="out of range"):
            lat.coords_of(-1)

    def test_bad_basis_rejected(self):
        lat = BCCLattice(2, 2, 2)
        with pytest.raises(ValueError, match="basis"):
            lat.rank_of(2, 0, 0, 0)

    @given(
        nx=st.integers(1, 6),
        ny=st.integers(1, 6),
        nz=st.integers(1, 6),
        data=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, nx, ny, nz, data):
        lat = BCCLattice(nx, ny, nz)
        rank = data.draw(st.integers(0, lat.nsites - 1))
        b, i, j, k = lat.coords_of(rank)
        assert lat.rank_of(b, i, j, k) == rank

    def test_rank_order_is_spatial(self):
        # Adjacent ranks within a cell pair are the cell's two basis sites.
        lat = BCCLattice(3, 3, 3)
        pos = lat.all_positions()
        for cell in range(lat.ncells):
            d = np.linalg.norm(pos[2 * cell + 1] - pos[2 * cell])
            assert d == pytest.approx(math.sqrt(3) / 2 * lat.a)


class TestPositions:
    def test_corner_and_center(self):
        lat = BCCLattice(2, 2, 2, a=2.0)
        assert np.allclose(lat.position_of(lat.rank_of(0, 1, 0, 1)), [2, 0, 2])
        assert np.allclose(lat.position_of(lat.rank_of(1, 0, 0, 0)), [1, 1, 1])

    def test_all_positions_inside_box(self):
        lat = BCCLattice(3, 4, 5)
        pos = lat.all_positions()
        assert np.all(pos >= 0)
        assert np.all(pos < lat.lengths)

    def test_all_positions_unique(self):
        lat = BCCLattice(3, 3, 3)
        pos = lat.all_positions()
        d = np.linalg.norm(pos[None] - pos[:, None], axis=-1)
        np.fill_diagonal(d, 1.0)
        assert d.min() > 0.1


class TestNearestSite:
    def test_exact_site_positions_map_to_themselves(self):
        lat = BCCLattice(3, 3, 3)
        ranks = np.arange(lat.nsites)
        assert np.array_equal(lat.nearest_site(lat.position_of(ranks)), ranks)

    def test_small_displacement_keeps_site(self):
        lat = BCCLattice(3, 3, 3)
        pos = lat.position_of(7) + np.array([0.3, -0.2, 0.1])
        assert lat.nearest_site(pos) == 7

    @given(
        rank=st.integers(0, 2 * 4**3 - 1),
        dx=st.floats(-0.4, 0.4),
        dy=st.floats(-0.4, 0.4),
        dz=st.floats(-0.4, 0.4),
    )
    @settings(max_examples=80, deadline=None)
    def test_nearest_site_within_half_first_shell(self, rank, dx, dy, dz):
        # Displacements below half the first-shell distance can never
        # change the nearest site.
        lat = BCCLattice(4, 4, 4)
        first_shell = math.sqrt(3) / 2 * lat.a
        delta = np.array([dx, dy, dz])
        if np.linalg.norm(delta) >= 0.49 * first_shell:
            return
        pos = lat.position_of(rank) + delta
        assert int(lat.nearest_site(pos)) == rank


class TestNeighborShells:
    def test_shell_distances(self):
        lat = BCCLattice(4, 4, 4)
        d = lat.shell_distances(4)
        a = lat.a
        assert d[0] == pytest.approx(math.sqrt(3) / 2 * a)
        assert d[1] == pytest.approx(a)
        assert d[2] == pytest.approx(math.sqrt(2) * a)
        assert d[3] == pytest.approx(math.sqrt(11) / 2 * a)

    def test_first_shell_has_8_at_correct_distance(self):
        lat = BCCLattice(4, 4, 4)
        box = Box.for_lattice(lat)
        pos = lat.all_positions()
        for rank in (0, 1, 37, lat.nsites - 1):
            nbrs = lat.first_shell_ranks(rank)
            assert nbrs.shape == (8,)
            assert len(set(nbrs.tolist())) == 8
            d = box.distance(pos[rank], pos[nbrs])
            assert np.allclose(d, math.sqrt(3) / 2 * lat.a)

    def test_first_shell_symmetric(self):
        lat = BCCLattice(4, 4, 4)
        for rank in (0, 5, 100):
            for nbr in lat.first_shell_ranks(rank):
                assert rank in lat.first_shell_ranks(int(nbr))

    def test_second_shell_has_6_at_lattice_constant(self):
        lat = BCCLattice(4, 4, 4)
        box = Box.for_lattice(lat)
        pos = lat.all_positions()
        nbrs = lat.second_shell_ranks(10)
        assert nbrs.shape == (6,)
        assert np.allclose(box.distance(pos[10], pos[nbrs]), lat.a)

    def test_first_shell_flips_basis(self):
        lat = BCCLattice(4, 4, 4)
        b0 = lat.coords_of(0)[0]
        for nbr in lat.first_shell_ranks(0):
            assert lat.coords_of(int(nbr))[0] != b0


class TestOffsetsWithin:
    def test_counts_by_shell(self):
        lat = BCCLattice(6, 6, 6)
        # First shell only.
        off = lat.offsets_within(0.9 * lat.a)
        assert len(off.corner) == 8
        assert len(off.center) == 8
        # First + second shells.
        off = lat.offsets_within(1.01 * lat.a)
        assert len(off.corner) == 14
        assert len(off.center) == 14

    def test_count_58_at_md_cutoff(self):
        lat = BCCLattice(6, 6, 6)
        off = lat.offsets_within(5.6)
        assert len(off.corner) == 58
        assert len(off.center) == 58

    def test_distances_within_cutoff(self):
        lat = BCCLattice(6, 6, 6)
        off = lat.offsets_within(5.6)
        assert np.all(off.corner_distances * lat.a <= 5.6 + 1e-9)
        assert np.all(off.corner_distances > 0)

    def test_neighbor_ranks_within_match_brute_force(self):
        lat = BCCLattice(5, 5, 5)
        box = Box.for_lattice(lat)
        pos = lat.all_positions()
        cutoff = 5.6
        for rank in (0, 13, 200):
            got = set(lat.neighbor_ranks_within(rank, cutoff).tolist())
            d = box.distance(pos[rank], pos)
            want = set(np.flatnonzero((d > 0) & (d <= cutoff)).tolist())
            assert got == want

    def test_rejects_nonpositive_cutoff(self):
        with pytest.raises(ValueError, match="cutoff"):
            BCCLattice(3, 3, 3).offsets_within(0.0)

    def test_offsets_symmetric_between_bases(self):
        # BCC is symmetric under basis exchange; the two offset tables
        # must have identical distance multisets.
        off = BCCLattice(6, 6, 6).offsets_within(5.6)
        assert sorted(off.corner_distances.round(9)) == sorted(
            off.center_distances.round(9)
        )
