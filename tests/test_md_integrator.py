"""Velocity Verlet tests: conservation, reversibility, run-away motion."""

import numpy as np
import pytest

from repro.md.engine import MDConfig, MDEngine
from repro.md.integrator import VelocityVerlet
from repro.md.neighbors.lattice_list import LatticeNeighborList
from repro.md.state import AtomState


class TestConstruction:
    def test_bad_dt_rejected(self):
        with pytest.raises(ValueError, match="dt"):
            VelocityVerlet(dt=0.0)


class TestConservation:
    @pytest.fixture(scope="class")
    def nve_trace(self, lattice5, potential):
        engine = MDEngine(
            lattice5, potential, MDConfig(temperature=300.0, seed=8)
        )
        engine.initialize()
        return engine.run(nsteps=60)

    def test_energy_drift_bounded(self, nve_trace):
        e = [r.total_energy for r in nve_trace]
        drift = max(abs(x - e[0]) for x in e) / abs(e[0])
        assert drift < 1e-4

    def test_energy_exchanges_between_kinetic_and_potential(self, nve_trace):
        # Starting from perfect positions at finite T, kinetic falls as
        # potential absorbs (virial equilibration).
        assert nve_trace[-1].kinetic_energy < nve_trace[0].kinetic_energy
        assert (
            nve_trace[-1].potential_energy > nve_trace[0].potential_energy
        )

    def test_momentum_conserved(self, lattice5, potential):
        engine = MDEngine(
            lattice5, potential, MDConfig(temperature=300.0, seed=9)
        )
        engine.initialize()
        p0 = engine.state.momentum()
        engine.run(nsteps=30)
        assert np.allclose(engine.state.momentum(), p0, atol=1e-8)

    def test_smaller_dt_less_drift(self, lattice5, potential):
        drifts = []
        for dt in (0.002, 0.0005):
            engine = MDEngine(
                lattice5, potential, MDConfig(temperature=300.0, seed=10)
            )
            engine.initialize()
            recs = engine.run(nsteps=20, dt=dt)
            e = [r.total_energy for r in recs]
            drifts.append(max(abs(x - e[0]) for x in e))
        assert drifts[1] < drifts[0]


class TestStepMechanics:
    def test_frozen_system_stays_frozen(self, lattice5, potential):
        engine = MDEngine(lattice5, potential, MDConfig(temperature=0.0))
        engine.initialize(temperature=0.0)
        engine.run(nsteps=5)
        assert np.allclose(engine.state.x, engine.state.site_pos, atol=1e-12)

    def test_drift_step_moves_positions(self, lattice5):
        state = AtomState.perfect(lattice5)
        state.v[:] = [0.1, 0.0, 0.0]
        integ = VelocityVerlet(dt=0.01)
        integ.first_half(state)
        assert np.allclose(
            state.x[:, 0] - state.site_pos[:, 0], 0.001, atol=1e-12
        )

    def test_kick_uses_force(self, lattice5):
        state = AtomState.perfect(lattice5)
        state.f[:] = [1.0, 0.0, 0.0]
        integ = VelocityVerlet(dt=0.002)
        integ.second_half(state)
        from repro.constants import FM2A

        expected = 0.5 * 0.002 * FM2A / state.mass
        assert np.allclose(state.v[:, 0], expected)

    def test_vacancy_rows_not_integrated(self, lattice5):
        state = AtomState.perfect(lattice5)
        state.make_vacancy(4)
        state.f[:] = [1.0, 0.0, 0.0]
        VelocityVerlet(dt=0.01).second_half(state)
        assert np.all(state.v[4] == 0.0)

    def test_runaway_atoms_integrated(self, lattice5, potential):
        state = AtomState.perfect(lattice5)
        nbl = LatticeNeighborList(lattice5, potential.cutoff)
        state.x[20] += np.array([1.5, 0.0, 0.0])
        nbl.update_runaways(state, threshold=1.2)
        atom = nbl.runaways[0]
        atom.v = np.array([1.0, 0.0, 0.0])
        x0 = atom.x.copy()
        VelocityVerlet(dt=0.01).first_half(state, nbl)
        assert atom.x[0] > x0[0]
