"""Ghost exchange tests: static plans, field transport, geometry matching."""

import numpy as np
import pytest

from repro.lattice.bcc import BCCLattice
from repro.lattice.domain import DIRECTIONS, DomainDecomposition
from repro.md.ghost import GhostExchanger
from repro.runtime.simmpi import World


@pytest.fixture(scope="module")
def setup8():
    lattice = BCCLattice(8, 8, 8)
    decomp = DomainDecomposition(lattice, (2, 2, 2))
    width = 2
    per_rank = []
    for rank in range(decomp.nprocs):
        sub = decomp.subdomain(rank)
        owned = sub.owned_site_ranks(lattice)
        ghosts = sub.all_ghost_site_ranks(lattice, width)
        sites = np.union1d(owned, ghosts)
        per_rank.append((sub, owned, sites))
    return lattice, decomp, width, per_rank


class TestPlans:
    def test_plans_skip_self_neighbors(self, setup8):
        lattice, decomp, width, per_rank = setup8
        _sub, _owned, sites = per_rank[0]
        ex = GhostExchanger(decomp, 0, sites, width)
        assert all(p.neighbor != 0 for p in ex.plans)

    def test_single_rank_has_no_plans(self):
        lattice = BCCLattice(8, 8, 8)
        decomp = DomainDecomposition(lattice, (1, 1, 1))
        sub = decomp.subdomain(0)
        sites = sub.owned_site_ranks(lattice)
        ex = GhostExchanger(decomp, 0, sites, 2)
        assert ex.plans == []

    def test_send_recv_row_counts_match_across_ranks(self, setup8):
        lattice, decomp, width, per_rank = setup8
        exchangers = [
            GhostExchanger(decomp, r, per_rank[r][2], width)
            for r in range(decomp.nprocs)
        ]
        opposite = {d: tuple(-c for c in d) for d in DIRECTIONS}
        for r, ex in enumerate(exchangers):
            for plan in ex.plans:
                peer = exchangers[plan.neighbor]
                # The peer's plan toward the opposite direction receives us.
                peer_plan = next(
                    p
                    for p in peer.plans
                    if p.direction == opposite[plan.direction]
                    and p.neighbor == r
                )
                assert len(peer_plan.recv_rows) == len(plan.send_rows)

    def test_missing_ranks_rejected(self, setup8):
        lattice, decomp, width, per_rank = setup8
        _sub, owned, _sites = per_rank[0]
        # Sites without the ghost shell: recv rows can't be located.
        with pytest.raises(ValueError, match="not present"):
            GhostExchanger(decomp, 0, owned, width)


class TestExchange:
    def test_ghosts_receive_owner_values(self, setup8):
        lattice, decomp, width, per_rank = setup8

        def main(comm):
            sub, owned, sites = per_rank[comm.rank]
            ex = GhostExchanger(decomp, comm.rank, sites, width)
            # Field = the owner rank stamped on owned rows.
            field = np.full(len(sites), -1.0)
            central_rows = np.searchsorted(sites, owned)
            field[central_rows] = comm.rank
            ex.exchange(comm, 0, [field])
            # Every ghost row now carries its owner's stamp.
            for row, rank_value in enumerate(field):
                owner = decomp.owner_of_site(int(sites[row]))
                assert rank_value == owner, (row, rank_value, owner)
            return True

        assert all(World(decomp.nprocs).run(main))

    def test_vector_field_roundtrip(self, setup8):
        lattice, decomp, width, per_rank = setup8
        positions = lattice.all_positions()

        def main(comm):
            sub, owned, sites = per_rank[comm.rank]
            ex = GhostExchanger(decomp, comm.rank, sites, width)
            x = np.zeros((len(sites), 3))
            central_rows = np.searchsorted(sites, owned)
            x[central_rows] = positions[owned]
            ex.exchange(comm, 0, [x])
            # Ghost rows must equal the global positions of their sites.
            assert np.allclose(x, positions[sites])
            return True

        assert all(World(decomp.nprocs).run(main))

    def test_two_simultaneous_phases_do_not_collide(self, setup8):
        lattice, decomp, width, per_rank = setup8

        def main(comm):
            sub, owned, sites = per_rank[comm.rank]
            ex = GhostExchanger(decomp, comm.rank, sites, width)
            central = np.searchsorted(sites, owned)
            a = np.zeros(len(sites))
            b = np.zeros(len(sites))
            a[central] = 1.0 + comm.rank
            b[central] = -1.0 - comm.rank
            ex.exchange(comm, 0, [a])
            ex.exchange(comm, 100, [b])
            assert np.all(a[a != 0] > 0)
            assert np.all(b[b != 0] < 0)
            return True

        assert all(World(decomp.nprocs).run(main))

    def test_traffic_volume_matches_plan(self, setup8):
        lattice, decomp, width, per_rank = setup8

        def main(comm):
            _sub, _owned, sites = per_rank[comm.rank]
            ex = GhostExchanger(decomp, comm.rank, sites, width)
            x = np.zeros((len(sites), 3))
            ex.exchange(comm, 0, [x])
            return ex.bytes_per_exchange_estimate

        w = World(decomp.nprocs)
        estimates = w.run(main)
        assert w.stats.total_sent_bytes == sum(estimates)
