"""Traditional spline-table tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.potential.spline import SplineTable, knot_derivatives


class TestConstruction:
    def test_layout_shape_matches_paper(self):
        # "Each traditional interpolation table ... is a 5000*7 2D array."
        t = SplineTable.from_function(np.sin, 5.0, n=5000)
        assert t.coeff.shape == (5001, 7)

    def test_nbytes_about_273kb_at_5000(self):
        t = SplineTable.from_function(np.sin, 5.0, n=5000)
        assert t.nbytes == pytest.approx(273 * 1024, rel=0.03)

    def test_rejects_2d_samples(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            SplineTable(np.zeros((3, 3)), 1.0)

    def test_rejects_nonpositive_xmax(self):
        with pytest.raises(ValueError, match="xmax"):
            SplineTable(np.zeros(10), 0.0)

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError, match="at least 5"):
            SplineTable(np.zeros(3), 1.0)


class TestKnotDerivatives:
    def test_five_point_formula_matches_paper(self):
        # L[5] = (S[m-2] - S[m+2] + 8*(S[m+1] - S[m-1])) / 12 (Figure 5).
        s = np.array([1.0, 3.0, -2.0, 5.0, 0.5, 2.0, 7.0])
        d = knot_derivatives(s)
        m = 3
        expected = (s[m - 2] - s[m + 2] + 8 * (s[m + 1] - s[m - 1])) / 12
        assert d[m] == pytest.approx(expected)

    def test_exact_for_linear_data(self):
        x = np.linspace(0, 1, 20)
        d = knot_derivatives(3.0 * x)
        # Derivatives are in knot units: slope * dx.
        assert np.allclose(d, 3.0 * (x[1] - x[0]))

    def test_exact_for_cubic_interior(self):
        # The five-point formula is exact for polynomials up to degree 4.
        x = np.linspace(0, 2, 30)
        dx = x[1] - x[0]
        f = x**3
        d = knot_derivatives(f)
        assert np.allclose(d[2:-2], 3 * x[2:-2] ** 2 * dx, atol=1e-12)


class TestEvaluation:
    def test_hits_knots_exactly(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(size=51)
        t = SplineTable(samples, 5.0)
        x = np.linspace(0, 5.0, 51)
        assert np.allclose(t(x[:-1]), samples[:-1], atol=1e-12)

    def test_smooth_function_interpolated_accurately(self):
        t = SplineTable.from_function(np.sin, np.pi, n=500)
        x = np.linspace(0.01, np.pi - 0.01, 1000)
        assert np.max(np.abs(t(x) - np.sin(x))) < 1e-6

    def test_derivative_accurate(self):
        t = SplineTable.from_function(np.sin, np.pi, n=500)
        x = np.linspace(0.1, np.pi - 0.1, 500)
        assert np.max(np.abs(t.derivative(x) - np.cos(x))) < 1e-4

    def test_value_and_derivative_consistent(self):
        t = SplineTable.from_function(lambda r: r**2, 4.0, n=100)
        x = np.linspace(0, 3.9, 77)
        v, d = t.value_and_derivative(x)
        assert np.allclose(v, t(x))
        assert np.allclose(d, t.derivative(x))

    def test_clamps_beyond_domain(self):
        t = SplineTable.from_function(lambda r: r, 2.0, n=10)
        assert t(5.0) == pytest.approx(t(2.0))
        assert t(-1.0) == pytest.approx(t(0.0))

    def test_scalar_and_array_agree(self):
        t = SplineTable.from_function(np.cos, 3.0, n=60)
        assert t(1.234) == pytest.approx(t(np.array([1.234]))[0])

    @given(x=st.floats(0.0, 3.0))
    @settings(max_examples=100, deadline=None)
    def test_continuity_property(self, x):
        # C1 continuity: values from adjacent segments agree at knots.
        t = SplineTable.from_function(lambda r: np.sin(2 * r), 3.0, n=30)
        eps = 1e-9
        left = t(max(x - eps, 0.0))
        right = t(min(x + eps, 3.0))
        assert abs(float(left) - float(right)) < 1e-6

    def test_derivative_is_numerical_slope(self):
        t = SplineTable.from_function(lambda r: np.exp(-r), 4.0, n=200)
        x = np.linspace(0.5, 3.5, 40)
        h = 1e-6
        numerical = (t(x + h) - t(x - h)) / (2 * h)
        assert np.allclose(t.derivative(x), numerical, atol=1e-5)
