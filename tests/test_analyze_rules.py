"""Per-rule unit tests for repro.analyze: good and bad fixture snippets."""

import ast
import textwrap

from repro.analyze.core import ModuleContext, all_rules


def scan(source, rel="src/repro/kmc/mod.py", codes=None):
    """Findings of (a subset of) the rules over one in-memory module."""
    source = textwrap.dedent(source)
    rules = [
        cls()
        for code, cls in all_rules().items()
        if codes is None or code in codes
    ]
    module = ModuleContext(rel, source, ast.parse(source))
    found = []
    for rule in rules:
        found.extend(rule.check_module(module))
    for rule in rules:
        found.extend(rule.finalize())
    return found


def codes_of(findings):
    return sorted(f.rule for f in findings)


class TestREP001Nondeterminism:
    def test_flags_numpy_global_rng(self):
        bad = """\
        import numpy as np
        def f():
            return np.random.rand(3)
        """
        assert codes_of(scan(bad, codes={"REP001"})) == ["REP001"]

    def test_flags_numpy_seed_and_aliased_import(self):
        bad = """\
        from numpy import random as nr
        nr.seed(3)
        """
        assert codes_of(scan(bad, codes={"REP001"})) == ["REP001"]

    def test_flags_stdlib_random_and_from_import(self):
        bad = """\
        import random
        from random import randint
        def f():
            return random.random() + randint(0, 3)
        """
        assert len(scan(bad, codes={"REP001"})) == 2

    def test_allows_seeded_generators(self):
        good = """\
        import numpy as np
        import random
        def f(seed):
            g = np.random.default_rng(np.random.SeedSequence(seed))
            r = random.Random(seed)
            return g.random() + r.random()
        """
        assert scan(good, codes={"REP001"}) == []

    def test_flags_wall_clock_in_physics_paths_only(self):
        src = """\
        import time
        from time import perf_counter
        def f():
            return time.time() + perf_counter()
        """
        for rel in ("src/repro/md/x.py", "src/repro/kmc/x.py", "src/repro/core/x.py"):
            assert len(scan(src, rel=rel, codes={"REP001"})) == 2
        # runtime/ and observe/ (and anything non-physics) are allowlisted
        for rel in ("src/repro/runtime/x.py", "src/repro/observe/x.py"):
            assert scan(src, rel=rel, codes={"REP001"}) == []

    def test_unresolvable_calls_are_ignored(self):
        good = """\
        def f(rng):
            return rng.random()  # a Generator method, not the module
        """
        assert scan(good, codes={"REP001"}) == []


class TestREP002Protocol:
    def test_unpaired_send_tag(self):
        bad = """\
        def f(comm):
            comm.send(1, 777, "x")
            _s, _t, p = comm.recv(source=1, tag=778)
        """
        found = scan(bad, codes={"REP002"})
        assert len(found) == 2  # 777 never received, 778 never sent
        assert all(f.rule == "REP002" for f in found)

    def test_paired_constant_tags_with_offsets(self):
        good = """\
        TAG_GET = 1000
        def f(comm, sector):
            comm.send(1, TAG_GET + sector, "x")
            _s, _t, p = comm.recv(source=1, tag=TAG_GET + sector)
        """
        assert scan(good, codes={"REP002"}) == []

    def test_dynamic_recv_tag_mutes_send_pairing(self):
        good = """\
        def f(comm):
            comm.send(1, 777, "x")
            status = comm.probe(source=1, tag=777)
            _s, _t, p = comm.recv(source=1, tag=status.tag)
        """
        assert scan(good, codes={"REP002"}) == []

    def test_pairing_is_cross_module(self):
        import ast as astmod

        rule = next(
            cls() for code, cls in all_rules().items() if code == "REP002"
        )
        send_src = "def f(comm):\n    comm.send(1, 42, 'x')\n"
        recv_src = "def g(comm):\n    _s, _t, p = comm.recv(source=0, tag=42)\n"
        for rel, src in (
            ("src/repro/kmc/a.py", send_src),
            ("src/repro/md/b.py", recv_src),
        ):
            assert list(
                rule.check_module(ModuleContext(rel, src, astmod.parse(src)))
            ) == []
        assert list(rule.finalize()) == []

    def test_rank_conditional_collective(self):
        bad = """\
        def f(comm):
            if comm.rank == 0:
                comm.barrier()
        """
        found = scan(bad, codes={"REP002"})
        assert codes_of(found) == ["REP002"]
        assert "deadlock" in found[0].message

    def test_same_collective_in_both_branches_is_fine(self):
        good = """\
        def f(comm, value):
            if comm.rank == 0:
                out = comm.bcast(value)
            else:
                out = comm.bcast()
            return out
        """
        assert scan(good, codes={"REP002"}) == []

    def test_window_put_under_rank_conditional(self):
        bad = """\
        def f(comm, win):
            if comm.rank != 0:
                win.put(0, "data")
        """
        assert codes_of(scan(bad, codes={"REP002"})) == ["REP002"]

    def test_queue_put_is_not_a_collective(self):
        good = """\
        def f(comm, q):
            if comm.rank == 0:
                q.put("data")
        """
        assert scan(good, codes={"REP002"}) == []

    def test_runtime_dir_is_exempt(self):
        src = """\
        def f(comm):
            if comm.rank == 0:
                comm.barrier()
        """
        assert scan(src, rel="src/repro/runtime/x.py", codes={"REP002"}) == []


class TestREP003FloatEquality:
    def test_flags_float_literal_comparison(self):
        bad = """\
        def f(x):
            return x == 0.5 or x != -1.25
        """
        assert codes_of(scan(bad, codes={"REP003"})) == ["REP003", "REP003"]

    def test_integer_and_ordering_comparisons_are_fine(self):
        good = """\
        def f(x):
            return x == 0 or x < 0.5 or x >= 1.5
        """
        assert scan(good, codes={"REP003"}) == []

    def test_only_physics_dirs_are_checked(self):
        src = "def f(x):\n    return x == 0.5\n"
        assert scan(src, rel="src/repro/observe/x.py", codes={"REP003"}) == []
        assert len(scan(src, rel="src/repro/potential/x.py", codes={"REP003"})) == 1


class TestREP004LibraryAssert:
    def test_flags_assert_in_library_code(self):
        assert codes_of(scan("assert 1 + 1 == 2\n", codes={"REP004"})) == ["REP004"]

    def test_explicit_raise_is_fine(self):
        good = """\
        def f(x):
            if x < 0:
                raise ValueError(x)
        """
        assert scan(good, codes={"REP004"}) == []

    def test_tests_and_benchmarks_are_exempt(self):
        src = "assert True\n"
        assert scan(src, rel="tests/test_x.py", codes={"REP004"}) == []
        assert scan(src, rel="benchmarks/test_y.py", codes={"REP004"}) == []


class TestREP005SilentExcept:
    def test_flags_silent_broad_handlers(self):
        bad = """\
        def f():
            try:
                work()
            except Exception:
                pass
            try:
                work()
            except:
                result = None
        """
        assert codes_of(scan(bad, codes={"REP005"})) == ["REP005", "REP005"]

    def test_reraise_or_logging_is_fine(self):
        good = """\
        from repro import observe as obs
        def f():
            try:
                work()
            except Exception:
                obs.add("f.failures")
            try:
                work()
            except Exception as exc:
                raise RuntimeError("ctx") from exc
        """
        assert scan(good, codes={"REP005"}) == []

    def test_narrow_handlers_are_fine(self):
        good = """\
        def f():
            try:
                work()
            except (ValueError, KeyError):
                pass
        """
        assert scan(good, codes={"REP005"}) == []


class TestREP006BarePhase:
    def test_flags_bare_phase_statement(self):
        bad = """\
        from repro import observe as obs
        def f():
            obs.phase("md.force")
        """
        assert codes_of(scan(bad, codes={"REP006"})) == ["REP006"]

    def test_with_statement_is_fine(self):
        good = """\
        from repro import observe as obs
        def f():
            with obs.phase("md.force"):
                work()
        """
        assert scan(good, codes={"REP006"}) == []


class TestREP007SlowDataMovement:
    def test_flags_add_at_in_hot_dirs(self):
        bad = """\
        import numpy as np

        def scatter(forces, rows, contrib):
            np.add.at(forces, rows, contrib)
        """
        assert codes_of(scan(bad, codes={"REP007"})) == ["REP007"]
        assert codes_of(
            scan(bad, rel="src/repro/md/mod.py", codes={"REP007"})
        ) == ["REP007"]

    def test_flags_pickle_dumps_in_transport(self):
        bad = """\
        import pickle

        def ship(q, payload):
            q.put(pickle.dumps(payload))
        """
        found = scan(
            bad, rel="src/repro/runtime/procbackend.py", codes={"REP007"}
        )
        assert codes_of(found) == ["REP007"]
        assert "shared-memory" in found[0].message

    def test_aliased_imports_resolve(self):
        bad = """\
        import numpy as xp
        from pickle import dumps as freeze

        def f(forces, rows, w):
            xp.add.at(forces, rows, w)
            return freeze(rows)
        """
        assert codes_of(scan(bad, codes={"REP007"})) == ["REP007", "REP007"]

    def test_cold_paths_are_exempt(self):
        src = """\
        import numpy as np
        import pickle

        def f(forces, rows, w):
            np.add.at(forces, rows, w)
            return pickle.dumps(rows)
        """
        for rel in (
            "src/repro/runtime/simmpi.py",
            "src/repro/observe/registry.py",
            "src/repro/core/coupling.py",
        ):
            assert scan(src, rel=rel, codes={"REP007"}) == []

    def test_bincount_and_loads_are_fine(self):
        good = """\
        import pickle

        import numpy as np

        def f(rows, w, n, blob):
            acc = np.bincount(rows, weights=w, minlength=n)
            return acc, pickle.loads(blob)
        """
        assert scan(good, codes={"REP007"}) == []


class TestRegistry:
    def test_domain_rules_registered(self):
        codes = set(all_rules())
        assert {
            "REP001",
            "REP002",
            "REP003",
            "REP004",
            "REP005",
            "REP006",
            "REP007",
            "REP008",
            "REP009",
        } <= codes

    def test_every_rule_is_documented(self):
        for cls in all_rules().values():
            assert cls.summary and cls.explanation
