"""Analysis tests: defect identification, g(r), distributions."""

import numpy as np
import pytest

from repro.analysis.stats import (
    cluster_size_distribution,
    displacement_histogram,
    radial_distribution,
)
from repro.analysis.vacancies import (
    conservation_check,
    frenkel_pairs,
    identify_interstitials,
    identify_vacancies,
    vacancy_concentration,
)
from repro.lattice.box import Box
from repro.md.neighbors.lattice_list import LatticeNeighborList
from repro.md.state import AtomState


@pytest.fixture()
def damaged(lattice5, potential):
    state = AtomState.perfect(lattice5)
    nbl = LatticeNeighborList(lattice5, potential.cutoff)
    state.x[20] += np.array([1.5, 0.0, 0.0])
    state.x[40] += np.array([0.0, 1.5, 0.2])
    nbl.update_runaways(state, threshold=1.2)
    return state, nbl


class TestVacancies:
    def test_identify_vacancies(self, damaged):
        state, _nbl = damaged
        assert set(identify_vacancies(state).tolist()) == {20, 40}

    def test_identify_interstitials(self, damaged):
        _state, nbl = damaged
        assert {a.id for a in identify_interstitials(nbl)} == {20, 40}

    def test_frenkel_pairs(self, damaged):
        state, nbl = damaged
        assert frenkel_pairs(state, nbl) == 2

    def test_conservation(self, damaged):
        state, nbl = damaged
        assert conservation_check(state, nbl)

    def test_concentration(self, damaged):
        state, _nbl = damaged
        assert vacancy_concentration(state) == pytest.approx(2 / state.n)


class TestRDF:
    def test_bcc_peaks_at_shell_distances(self, lattice5):
        pos = lattice5.all_positions()
        box = Box.for_lattice(lattice5)
        r, g = radial_distribution(pos, box, rmax=5.0, nbins=100)
        # The strongest peak bins must bracket the first shell (2.47 A).
        peak_r = r[np.argmax(g)]
        assert 2.3 < peak_r < 2.7

    def test_gap_below_first_shell(self, lattice5):
        pos = lattice5.all_positions()
        box = Box.for_lattice(lattice5)
        r, g = radial_distribution(pos, box, rmax=5.0, nbins=50)
        assert np.all(g[r < 2.0] == 0.0)

    def test_validation(self, lattice5):
        box = Box.for_lattice(lattice5)
        with pytest.raises(ValueError):
            radial_distribution(np.zeros((1, 3)), box, rmax=5.0)
        with pytest.raises(ValueError):
            radial_distribution(np.zeros((5, 3)), box, rmax=-1.0)


class TestDistributions:
    def test_cluster_size_distribution(self, lattice5):
        nbr = int(lattice5.first_shell_ranks(10)[0])
        far = int(lattice5.rank_of(0, 2, 2, 2))
        dist = cluster_size_distribution(
            lattice5, np.array([10, nbr, far])
        )
        assert dist == {2: 1, 1: 1}

    def test_displacement_histogram_counts(self):
        d = np.array([0.1, 0.2, 0.2, 0.9])
        centers, counts = displacement_histogram(d, nbins=3, dmax=0.9)
        assert counts.sum() == 4
        assert len(centers) == 3

    def test_displacement_histogram_auto_range(self):
        centers, counts = displacement_histogram(np.array([1.0, 2.0]))
        assert counts.sum() == 2
