"""One-sided window tests (put + fence epochs)."""

import numpy as np
import pytest

from repro.runtime.simmpi import World


class TestWindow:
    def test_put_delivered_after_fence(self):
        def main(comm):
            win = comm.win_create()
            right = (comm.rank + 1) % comm.size
            win.put(right, np.array([comm.rank]))
            got = win.fence()
            assert len(got) == 1
            origin, payload = got[0]
            assert origin == (comm.rank - 1) % comm.size
            return int(payload[0])

        assert World(4).run(main) == [3, 0, 1, 2]

    def test_no_put_means_empty_fence(self):
        def main(comm):
            win = comm.win_create()
            return win.fence()

        assert World(3).run(main) == [[]] * 3

    def test_multiple_epochs_isolated(self):
        def main(comm):
            win = comm.win_create()
            other = 1 - comm.rank
            win.put(other, "epoch1")
            first = win.fence()
            # Nothing new: second epoch must be empty.
            second = win.fence()
            return (len(first), len(second))

        assert World(2).run(main) == [(1, 0)] * 2

    def test_multiple_puts_same_target(self):
        def main(comm):
            win = comm.win_create()
            if comm.rank != 0:
                win.put(0, comm.rank)
                win.put(0, comm.rank * 100)
            got = win.fence()
            if comm.rank == 0:
                return sorted(p for _o, p in got)
            return None

        assert World(3).run(main)[0] == [1, 2, 100, 200]

    def test_put_target_validation(self):
        def main(comm):
            win = comm.win_create()
            with pytest.raises(ValueError, match="target"):
                win.put(5, None)
            win.fence()

        World(2).run(main)

    def test_put_payload_copied(self):
        def main(comm):
            win = comm.win_create()
            buf = np.zeros(3)
            win.put(1 - comm.rank, buf)
            buf[:] = 99.0
            got = win.fence()
            return float(got[0][1][0])

        assert World(2).run(main) == [0.0, 0.0]

    def test_traffic_recorded(self):
        def main(comm):
            win = comm.win_create()
            win.put(1 - comm.rank, np.zeros(10))
            win.fence()

        w = World(2)
        w.run(main)
        assert w.stats.total_sent_bytes == 2 * 80
