"""Timescale formula tests — pins the paper's 19.2-day headline."""

import math

import pytest

from repro.constants import DAY_TO_S, FE_VACANCY_FORMATION_ENERGY, KB_EV
from repro.core.timescale import (
    kmc_real_time,
    paper_timescale_days,
    real_vacancy_concentration,
)


class TestConcentration:
    def test_arrhenius_form(self):
        c = real_vacancy_concentration(formation_energy=1.0, temperature=600.0)
        assert c == pytest.approx(math.exp(-1.0 / (KB_EV * 600.0)))

    def test_higher_temperature_more_vacancies(self):
        assert real_vacancy_concentration(
            temperature=900.0
        ) > real_vacancy_concentration(temperature=600.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            real_vacancy_concentration(temperature=0.0)
        with pytest.raises(ValueError):
            real_vacancy_concentration(formation_energy=-1.0)


class TestRealTime:
    def test_formula_shape(self):
        # t_real = t_threshold * C_MC / C_real.
        c_real = real_vacancy_concentration()
        assert kmc_real_time(1.0, 0.5) == pytest.approx(0.5 / c_real)

    def test_linear_in_threshold(self):
        assert kmc_real_time(2e-4, 2e-6) == pytest.approx(
            2 * kmc_real_time(1e-4, 2e-6)
        )

    def test_linear_in_concentration(self):
        assert kmc_real_time(2e-4, 4e-6) == pytest.approx(
            2 * kmc_real_time(2e-4, 2e-6)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            kmc_real_time(-1.0, 0.5)
        with pytest.raises(ValueError):
            kmc_real_time(1.0, 2.0)

    def test_paper_headline_19_2_days(self):
        # "the temporal scale t_real is equal to 19.2 days" with
        # t_threshold = 0.0002, C_MC = 0.000002, T = 600 K.
        assert paper_timescale_days() == pytest.approx(19.2, abs=0.05)

    def test_formation_energy_consistency(self):
        # The constant in repro.constants was back-solved from this very
        # relation; closing the loop here.
        days = (
            kmc_real_time(
                2e-4,
                2e-6,
                formation_energy=FE_VACANCY_FORMATION_ENERGY,
                temperature=600.0,
            )
            / DAY_TO_S
        )
        assert days == pytest.approx(paper_timescale_days())
