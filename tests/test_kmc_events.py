"""AKMC event/rate model tests (Equation 4)."""

import math

import numpy as np
import pytest

from repro.constants import KB_EV
from repro.kmc.events import ATOM, VACANCY, RateParameters


class TestRateParameters:
    def test_kt(self):
        p = RateParameters(temperature=600.0)
        assert p.kt == pytest.approx(KB_EV * 600.0)

    def test_reference_rate_arrhenius(self):
        p = RateParameters()
        assert p.reference_rate == pytest.approx(
            p.nu * math.exp(-p.e_m0 / p.kt)
        )

    @pytest.mark.parametrize(
        "kwargs",
        [{"nu": 0.0}, {"temperature": -1.0}, {"energy_cutoff": 0.0}],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RateParameters(**kwargs)


class TestSiteEnergy:
    def test_perfect_lattice_energy_matches_cold_curve_shells(
        self, kmc_model8, potential
    ):
        occ = kmc_model8.perfect_occupancy()
        e = float(kmc_model8.site_energy(0, occ)[0])
        # Site energy over the 2.9 A shell: 8 first + 6 second neighbors.
        a = kmc_model8.lattice.a
        d = np.array([math.sqrt(3) / 2 * a] * 8 + [a] * 6)
        expected = 0.5 * float(np.sum(potential.phi(d))) + float(
            potential.embed(np.sum(potential.fdens(d)))
        )
        assert e == pytest.approx(expected, rel=1e-9)

    def test_uniform_across_sites(self, kmc_model8):
        occ = kmc_model8.perfect_occupancy()
        energies = kmc_model8.site_energy(np.arange(50), occ)
        assert np.allclose(energies, energies[0])

    def test_vacancy_neighbor_raises_energy(self, kmc_model8):
        occ = kmc_model8.perfect_occupancy()
        e0 = float(kmc_model8.site_energy(0, occ)[0])
        nbr = int(kmc_model8.first_matrix[0][0])
        occ[nbr] = VACANCY
        e1 = float(kmc_model8.site_energy(0, occ)[0])
        assert e1 > e0  # losing a bond costs energy


class TestVacancyEvents:
    def test_eight_events_for_isolated_vacancy(self, kmc_model8):
        # "there are eight possible events for a vacancy".
        occ = kmc_model8.perfect_occupancy()
        occ[100] = VACANCY
        targets, rates = kmc_model8.vacancy_events(100, occ)
        assert len(targets) == 8
        assert np.all(rates > 0)

    def test_targets_are_first_shell(self, kmc_model8):
        occ = kmc_model8.perfect_occupancy()
        occ[100] = VACANCY
        targets, _rates = kmc_model8.vacancy_events(100, occ)
        assert set(targets.tolist()) == set(
            kmc_model8.first_matrix[100].tolist()
        )

    def test_vacant_neighbor_not_a_target(self, kmc_model8):
        occ = kmc_model8.perfect_occupancy()
        occ[100] = VACANCY
        nbr = int(kmc_model8.first_matrix[100][0])
        occ[nbr] = VACANCY
        targets, _ = kmc_model8.vacancy_events(100, occ)
        assert nbr not in targets
        assert len(targets) == 7

    def test_rates_bounded_by_floor_barrier(self, kmc_model8, rate_params):
        occ = kmc_model8.perfect_occupancy()
        occ[100] = VACANCY
        _t, rates = kmc_model8.vacancy_events(100, occ)
        rate_max = rate_params.nu * math.exp(
            -rate_params.de_min / rate_params.kt
        )
        assert np.all(rates <= rate_max + 1e-15)

    def test_symmetric_rates_for_isolated_vacancy(self, kmc_model8):
        # All 8 hops of an isolated vacancy are equivalent by symmetry.
        occ = kmc_model8.perfect_occupancy()
        occ[100] = VACANCY
        _t, rates = kmc_model8.vacancy_events(100, occ)
        assert np.allclose(rates, rates[0], rtol=1e-9)

    def test_hop_toward_companion_vacancy_favored(self, kmc_model8):
        # Binding: a hop that moves a vacancy adjacent to another vacancy
        # lowers the configuration energy, so its barrier is lower.
        occ = kmc_model8.perfect_occupancy()
        occ[100] = VACANCY
        # Put a second vacancy two first-shell hops away from 100.
        nbr = int(kmc_model8.first_matrix[100][0])
        second = int(kmc_model8.first_matrix[nbr][0])
        if second == 100:
            second = int(kmc_model8.first_matrix[nbr][1])
        occ[second] = VACANCY
        targets, rates = kmc_model8.vacancy_events(100, occ)
        toward = rates[targets == nbr]
        away = rates[targets != nbr]
        assert toward[0] > np.mean(away)

    def test_requires_vacancy(self, kmc_model8):
        occ = kmc_model8.perfect_occupancy()
        with pytest.raises(ValueError, match="vacancy"):
            kmc_model8.vacancy_events(5, occ)

    def test_total_rate_sums_vacancies(self, kmc_model8):
        occ = kmc_model8.perfect_occupancy()
        occ[10] = VACANCY
        occ[500] = VACANCY
        total = kmc_model8.total_rate([10, 500], occ)
        r1 = float(np.sum(kmc_model8.vacancy_events(10, occ)[1]))
        r2 = float(np.sum(kmc_model8.vacancy_events(500, occ)[1]))
        assert total == pytest.approx(r1 + r2)


class TestSwap:
    def test_swap_exchanges_occupancy(self, kmc_model8):
        occ = kmc_model8.perfect_occupancy()
        occ[100] = VACANCY
        t = int(kmc_model8.first_matrix[100][0])
        kmc_model8.execute_swap(occ, 100, t)
        assert occ[100] == ATOM
        assert occ[t] == VACANCY

    def test_swap_conserves_counts(self, kmc_model8):
        occ = kmc_model8.perfect_occupancy()
        occ[100] = VACANCY
        n_vac = int(np.sum(occ == VACANCY))
        kmc_model8.execute_swap(occ, 100, int(kmc_model8.first_matrix[100][0]))
        assert int(np.sum(occ == VACANCY)) == n_vac

    def test_invalid_swap_rejected(self, kmc_model8):
        occ = kmc_model8.perfect_occupancy()
        with pytest.raises(ValueError, match="invalid swap"):
            kmc_model8.execute_swap(occ, 0, 1)


class TestInfluence:
    def test_influence_includes_self_and_first_shell(self, kmc_model8):
        rows = kmc_model8.influence_rows([100])
        assert 100 in rows
        for nbr in kmc_model8.first_matrix[100]:
            assert nbr in rows

    def test_influence_radius_covers_rate_stencil(self, kmc_model8):
        # Changing occ outside the influence set of {v} must not change
        # v's rates.
        occ = kmc_model8.perfect_occupancy()
        occ[100] = VACANCY
        _t, rates_before = kmc_model8.vacancy_events(100, occ)
        influence = set(kmc_model8.influence_rows([100]).tolist())
        outside = next(
            r for r in range(kmc_model8.nrows) if r not in influence
        )
        occ[outside] = VACANCY
        _t, rates_after = kmc_model8.vacancy_events(100, occ)
        assert np.array_equal(rates_before, rates_after)
