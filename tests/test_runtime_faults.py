"""Fault-injection plans and their enforcement inside the runtime.

Covers the plan DSL (parse/validate/describe), crash points raising
through ``World.run``, messaging faults that must stay within MPI
semantics (sender-side delay preserves per-source FIFO; duplicates are
delivered exactly once), window-put stalls/duplicates, and the optional
watchdog deadlines on recv/probe/collectives.
"""

import time

import pytest

from repro.runtime.faults import (
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    InjectedFault,
)
from repro.runtime.simmpi import WatchdogTimeout, World


class TestFaultPlanParsing:
    def test_parse_crash_cycle(self):
        plan = FaultPlan.parse("crash:rank=1,cycle=5")
        assert len(plan.specs) == 1
        spec = plan.specs[0]
        assert (spec.kind, spec.rank, spec.site, spec.index) == (
            "crash", 1, "kmc.cycle", 5,
        )

    def test_parse_multiple_clauses(self):
        plan = FaultPlan.parse(
            "crash:rank=0,event=10; delay:rank=1,nth=2,seconds=0.01"
        )
        assert [s.kind for s in plan.specs] == ["crash", "delay"]

    def test_parse_empty_is_falsy(self):
        assert not FaultPlan.parse("")
        assert not FaultPlan.parse(None)
        assert FaultPlan.parse("crash:rank=0,cycle=1")

    def test_describe_roundtrips_the_intent(self):
        text = FaultPlan.parse(
            "dup:rank=2,nth=3,op=put; stall:rank=0,nth=1,seconds=0.5"
        ).describe()
        assert "duplicate put" in text
        assert "stall" in text

    @pytest.mark.parametrize(
        "bad",
        [
            "crash",  # no clause body
            "crash:cycle=5",  # missing rank
            "crash:rank=-1,cycle=5",  # negative rank
            "explode:rank=0,cycle=1",  # unknown kind
            "delay:rank=0,nth=1",  # delay without seconds
            "crash:rank=0,cycle=1,frobnicate=2",  # unknown key
            "shake:seed=1,dup=1.5",  # probability out of range
        ],
    )
    def test_parse_rejects(self, bad):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse(bad)

    def test_parse_is_idempotent_on_plan(self):
        plan = FaultPlan.parse("crash:rank=0,cycle=1")
        assert FaultPlan.parse(plan) is plan


class TestCrashInjection:
    def test_crash_point_fires_exactly_once(self):
        inj = FaultInjector(FaultPlan.parse("crash:rank=0,cycle=3"))
        inj.crash_point(0, "kmc.cycle", 2)  # wrong index: no fire
        inj.crash_point(1, "kmc.cycle", 3)  # wrong rank: no fire
        with pytest.raises(InjectedFault):
            inj.crash_point(0, "kmc.cycle", 3)
        # One-shot: the "replaced node" does not crash again on re-run.
        inj.crash_point(0, "kmc.cycle", 3)
        assert inj.snapshot()["crashes"] == 1

    def test_crash_raises_through_world_run(self):
        def main(comm):
            for cycle in range(10):
                comm.fault_point("kmc.cycle", cycle)
                comm.barrier()
            return comm.rank

        world = World(3, faults=FaultPlan.parse("crash:rank=2,cycle=4"))
        with pytest.raises(InjectedFault):
            world.run(main)
        assert world.faults.snapshot()["crashes"] == 1

    def test_rerun_after_crash_completes(self):
        # The injector persists across World instances; the second
        # attempt (same plan object) must run clean.
        def main(comm):
            for cycle in range(6):
                comm.fault_point("kmc.cycle", cycle)
                comm.barrier()
            return comm.rank

        plan = FaultPlan.parse("crash:rank=0,cycle=2")
        inj = FaultInjector(plan)
        with pytest.raises(InjectedFault):
            World(2, faults=inj).run(main)
        assert World(2, faults=inj).run(main) == [0, 1]


class TestMessagingFaults:
    def test_delay_preserves_fifo_per_source(self):
        # The delayed message is held back at the sender, so the
        # receiver still sees source-order delivery.
        def main(comm):
            if comm.rank == 0:
                for i in range(4):
                    comm.send(1, tag=7, payload=i)
                return None
            return [comm.recv(source=0, tag=7)[2] for _ in range(4)]

        world = World(
            2, faults=FaultPlan.parse("delay:rank=0,nth=2,seconds=0.05")
        )
        t0 = time.perf_counter()
        results = world.run(main)
        assert results[1] == [0, 1, 2, 3]
        assert time.perf_counter() - t0 >= 0.05
        assert world.faults.snapshot()["delays"] == 1

    def test_duplicate_send_delivered_exactly_once(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(1, tag=3, payload="payload")
                return None
            return [comm.recv(source=0, tag=3)[2]]

        world = World(2, faults=FaultPlan.parse("dup:rank=0,nth=1"))
        got = world.run(main)[1]
        assert got == ["payload"]
        # The duplicate was dropped at deposit, not left pending.
        assert world.pending_messages() == 0
        snap = world.faults.snapshot()
        assert snap["duplicates"] == 1

    def test_shake_mode_run_completes(self):
        # Randomized duplication/delay on every send must not change
        # program-visible semantics.
        def main(comm):
            total = 0
            for round_ in range(5):
                peer = (comm.rank + 1) % comm.size
                comm.send(peer, tag=round_, payload=comm.rank * 10 + round_)
                src = (comm.rank - 1) % comm.size
                total += comm.recv(source=src, tag=round_)[2]
            return total

        clean = World(3).run(main)
        shaken = World(
            3,
            faults=FaultPlan.parse(
                "shake:seed=11,dup=0.5,delay=0.5,seconds=0.002"
            ),
        ).run(main)
        assert shaken == clean


class TestWindowFaults:
    def _run(self, faults=None):
        def main(comm):
            win = comm.win_create()
            if comm.rank == 0:
                for i in range(3):
                    win.put(1, ("item", i))
            received = win.fence()
            return [payload for _origin, payload in received]

        world = World(2, faults=faults)
        return world, world.run(main)

    def test_put_stall_is_pure_timing(self):
        t0 = time.perf_counter()
        world, results = self._run(
            FaultPlan.parse("stall:rank=0,nth=2,seconds=0.05")
        )
        assert time.perf_counter() - t0 >= 0.05
        assert results[1] == [("item", 0), ("item", 1), ("item", 2)]
        assert world.faults.snapshot()["stalls"] == 1

    def test_duplicate_put_appended_exactly_once(self):
        world, results = self._run(FaultPlan.parse("dup:rank=0,nth=1,op=put"))
        assert results[1] == [("item", 0), ("item", 1), ("item", 2)]
        snap = world.faults.snapshot()
        assert snap["duplicates"] == 1
        assert snap["duplicates_dropped"] == 1


class TestWatchdog:
    def test_starved_recv_raises_watchdog_timeout(self):
        def main(comm):
            if comm.rank == 1:
                comm.recv(source=0)  # rank 0 never sends
            return comm.rank

        with pytest.raises(WatchdogTimeout):
            World(2, watchdog=0.1).run(main)

    def test_straggler_collective_raises_watchdog_timeout(self):
        def main(comm):
            if comm.rank == 0:
                time.sleep(0.5)  # straggler beyond the deadline
            comm.barrier()
            return comm.rank

        with pytest.raises(WatchdogTimeout):
            World(2, watchdog=0.1).run(main)

    def test_watchdog_off_by_default(self):
        assert World(2).watchdog is None

    def test_watchdog_must_be_positive(self):
        with pytest.raises(ValueError):
            World(2, watchdog=0.0)

    def test_healthy_run_unaffected_by_watchdog(self):
        def main(comm):
            comm.send((comm.rank + 1) % comm.size, tag=0, payload=comm.rank)
            src = (comm.rank - 1) % comm.size
            got = comm.recv(source=src, tag=0)[2]
            comm.barrier()
            return got

        assert World(3, watchdog=5.0).run(main) == [2, 0, 1]
