"""MD engine tests: serial behaviour and serial/parallel equivalence."""

import numpy as np
import pytest

from repro.lattice.bcc import BCCLattice
from repro.md.engine import MDConfig, MDEngine, ParallelMD


class TestConfig:
    def test_defaults(self):
        cfg = MDConfig()
        assert cfg.dt == 0.001
        assert cfg.temperature == 600.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MDConfig(dt=-1.0)
        with pytest.raises(ValueError):
            MDConfig(temperature=-5.0)


class TestSerialEngine:
    def test_run_requires_steps(self, lattice5, potential):
        engine = MDEngine(lattice5, potential)
        engine.initialize()
        with pytest.raises(ValueError, match="nsteps"):
            engine.run(nsteps=0)

    def test_trace_accumulates(self, lattice5, potential):
        engine = MDEngine(lattice5, potential, MDConfig(seed=1))
        engine.initialize()
        engine.run(nsteps=3)
        engine.run(nsteps=2)
        assert [r.step for r in engine.trace] == [0, 1, 2, 3, 4]

    def test_thermostat_holds_temperature(self, lattice5, potential):
        engine = MDEngine(
            lattice5, potential, MDConfig(temperature=600.0, seed=2)
        )
        engine.initialize()
        engine.run(nsteps=80, thermostat_target=600.0)
        assert engine.state.temperature() == pytest.approx(600.0, rel=0.25)

    def test_positions_stay_wrapped(self, lattice5, potential):
        engine = MDEngine(
            lattice5, potential, MDConfig(temperature=900.0, seed=3)
        )
        engine.initialize()
        engine.run(nsteps=20)
        assert np.all(engine.state.x >= 0)
        assert np.all(engine.state.x < engine.box.lengths)

    def test_runaway_detection_disabled_by_default(self, lattice5, potential):
        engine = MDEngine(
            lattice5, potential, MDConfig(temperature=300.0, seed=4)
        )
        engine.initialize()
        engine.run(nsteps=10)
        assert engine.nblist.n_runaways == 0

    def test_table_layout_equivalence(self, lattice5, potential):
        # Same trajectory with traditional and compacted tables.
        finals = []
        for layout in ("traditional", "compacted"):
            engine = MDEngine(
                lattice5,
                potential.with_layout(layout),
                MDConfig(temperature=300.0, seed=5),
            )
            engine.initialize()
            engine.run(nsteps=10)
            finals.append(engine.state.x.copy())
        assert np.allclose(finals[0], finals[1], atol=1e-12)

    def test_deterministic_given_seed(self, lattice5, potential):
        runs = []
        for _ in range(2):
            engine = MDEngine(
                lattice5, potential, MDConfig(temperature=300.0, seed=6)
            )
            engine.initialize()
            engine.run(nsteps=5)
            runs.append(engine.state.x.copy())
        assert np.array_equal(runs[0], runs[1])


class TestParallelMD:
    @pytest.fixture(scope="class")
    def equivalence_pair(self, potential):
        lattice = BCCLattice(5, 5, 5)
        cfg = MDConfig(temperature=600.0, seed=7)
        serial = MDEngine(lattice, potential, cfg)
        serial.initialize()
        serial.run(nsteps=4)
        parallel = ParallelMD(lattice, potential, cfg, nranks=4)
        result = parallel.run(nsteps=4)
        return serial, result

    def test_positions_match_serial(self, equivalence_pair):
        serial, result = equivalence_pair
        assert np.allclose(result.positions, serial.state.x, atol=1e-12)

    def test_velocities_match_serial(self, equivalence_pair):
        serial, result = equivalence_pair
        assert np.allclose(result.velocities, serial.state.v, atol=1e-12)

    def test_energy_trace_matches_serial(self, equivalence_pair):
        serial, result = equivalence_pair
        serial_e = [r.potential_energy for r in serial.trace]
        assert np.allclose(result.energy_trace, serial_e, rtol=1e-12)

    def test_comm_stats_populated(self, equivalence_pair):
        _serial, result = equivalence_pair
        assert result.comm_stats["total_sent_bytes"] > 0
        assert result.comm_stats["total_messages"] > 0

    def test_rank_count_variations_agree(self, potential):
        lattice = BCCLattice(8, 8, 8)
        cfg = MDConfig(temperature=600.0, seed=8)
        finals = []
        for nranks in (2, 8):
            result = ParallelMD(lattice, potential, cfg, nranks=nranks).run(
                nsteps=2
            )
            finals.append(result.positions)
        assert np.allclose(finals[0], finals[1], atol=1e-12)

    def test_grid_or_ranks_required(self, lattice5, potential):
        with pytest.raises(ValueError, match="grid or nranks"):
            ParallelMD(lattice5, potential)

    def test_nsteps_validated(self, lattice5, potential):
        pmd = ParallelMD(lattice5, potential, nranks=2)
        with pytest.raises(ValueError, match="nsteps"):
            pmd.run(nsteps=0)
