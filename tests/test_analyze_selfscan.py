"""The repo's own source must pass its static analyzer.

This is the test-suite mirror of the CI ``analyze`` job: the scan over
``src`` must be clean modulo the committed baseline, and the baseline
itself must stay justified and free of stale (already-fixed) entries.
"""

from pathlib import Path

from repro.analyze.baseline import apply_baseline, load_baseline
from repro.analyze.runner import analyze_paths

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / "analyze-baseline.json"


def test_src_scan_is_clean_modulo_baseline():
    result = analyze_paths([REPO_ROOT / "src"], root=REPO_ROOT)
    findings, _baselined, stale = apply_baseline(
        result.findings, load_baseline(BASELINE)
    )
    assert findings == [], "new analyzer findings:\n" + "\n".join(
        f"  {f.path}:{f.line}: {f.rule} {f.message}" for f in findings
    )
    assert stale == [], "stale baseline entries (fixed? remove them):\n" + "\n".join(
        f"  {e['rule']} {e['path']}" for e in stale
    )


def test_baseline_entries_are_justified():
    for entry in load_baseline(BASELINE):
        # load_baseline enforces non-empty; require a real sentence too,
        # so "x" or "ok" can't sneak through review.
        assert len(entry["justification"].split()) >= 5, entry


def test_scan_covers_the_whole_package():
    result = analyze_paths([REPO_ROOT / "src"], root=REPO_ROOT)
    assert result.files_scanned >= 100
