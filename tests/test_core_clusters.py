"""Vacancy cluster analysis tests (incl. hypothesis partition property)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clusters import (
    cluster_sizes,
    clustering_report,
    mean_nn_distance,
    vacancy_clusters,
)
from repro.lattice.bcc import BCCLattice


@pytest.fixture(scope="module")
def lat():
    return BCCLattice(6, 6, 6)


class TestClusters:
    def test_empty_input(self, lat):
        assert vacancy_clusters(lat, np.array([], dtype=np.int64)) == []

    def test_single_vacancy(self, lat):
        clusters = vacancy_clusters(lat, np.array([10]))
        assert clusters == [{10}]

    def test_first_shell_pair_is_one_cluster(self, lat):
        nbr = int(lat.first_shell_ranks(10)[0])
        clusters = vacancy_clusters(lat, np.array([10, nbr]))
        assert clusters == [{10, nbr}]

    def test_second_shell_pair_is_one_cluster(self, lat):
        nbr = int(lat.second_shell_ranks(10)[0])
        clusters = vacancy_clusters(lat, np.array([10, nbr]))
        assert len(clusters) == 1

    def test_distant_pair_two_clusters(self, lat):
        far = int(lat.rank_of(0, 3, 3, 3))
        clusters = vacancy_clusters(lat, np.array([0, far]))
        assert len(clusters) == 2

    def test_chain_connects_transitively(self, lat):
        # A first-shell chain a-b-c forms one cluster even though a and c
        # may not be adjacent.
        a = 10
        b = int(lat.first_shell_ranks(a)[0])
        c = int(lat.first_shell_ranks(b)[1])
        clusters = vacancy_clusters(lat, np.array([a, b, c]))
        assert len(clusters) == 1

    def test_periodic_adjacency(self, lat):
        # Sites adjacent across the periodic boundary cluster together.
        left = int(lat.rank_of(0, 0, 0, 0))
        right = int(lat.rank_of(1, lat.nx - 1, lat.ny - 1, lat.nz - 1))
        clusters = vacancy_clusters(lat, np.array([left, right]))
        assert len(clusters) == 1

    def test_sorted_largest_first(self, lat):
        a = 10
        b = int(lat.first_shell_ranks(a)[0])
        far = int(lat.rank_of(0, 3, 3, 3))
        clusters = vacancy_clusters(lat, np.array([a, b, far]))
        assert len(clusters[0]) == 2

    @given(seed=st.integers(0, 500), n=st.integers(1, 30))
    @settings(max_examples=25, deadline=None)
    def test_clusters_partition_input(self, lat, seed, n):
        rng = np.random.default_rng(seed)
        ranks = rng.choice(lat.nsites, size=n, replace=False)
        clusters = vacancy_clusters(lat, ranks)
        merged = sorted(r for c in clusters for r in c)
        assert merged == sorted(int(r) for r in ranks)


class TestStatistics:
    def test_cluster_sizes_descending(self, lat):
        sizes = cluster_sizes([{1, 2}, {3}, {4, 5, 6}])
        assert sizes.tolist() == [3, 2, 1]

    def test_mean_nn_distance_pairwise(self, lat):
        nbr = int(lat.first_shell_ranks(10)[0])
        d = mean_nn_distance(lat, np.array([10, nbr]))
        assert d == pytest.approx(math.sqrt(3) / 2 * lat.a)

    def test_mean_nn_distance_undefined_for_one(self, lat):
        assert math.isnan(mean_nn_distance(lat, np.array([5])))

    def test_report_fields(self, lat):
        a = 10
        b = int(lat.first_shell_ranks(a)[0])
        far = int(lat.rank_of(0, 3, 3, 3))
        rep = clustering_report(lat, np.array([a, b, far]))
        assert rep.n_vacancies == 3
        assert rep.n_clusters == 2
        assert rep.max_cluster == 2
        assert rep.mean_cluster == pytest.approx(1.5)
        assert rep.clustered_fraction == pytest.approx(2 / 3)

    def test_report_empty(self, lat):
        rep = clustering_report(lat, np.array([], dtype=np.int64))
        assert rep.n_vacancies == 0
        assert rep.max_cluster == 0
        assert rep.clustered_fraction == 0.0

    def test_report_str(self, lat):
        rep = clustering_report(lat, np.array([10]))
        assert "1 vacancies" in str(rep)

    def test_custom_bond_distance(self, lat):
        # With a sub-first-shell bond distance nothing clusters.
        nbr = int(lat.first_shell_ranks(10)[0])
        clusters = vacancy_clusters(
            lat, np.array([10, nbr]), bond_distance=1.0
        )
        assert len(clusters) == 2
