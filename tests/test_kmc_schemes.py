"""Communication-scheme tests: equivalence, conservation, traffic profile.

All three schemes run the same workload via the session-scoped
``parallel_kmc_results`` fixture (one 8-rank run each).
"""

import numpy as np
import pytest

from repro.kmc.events import VACANCY
from repro.kmc.ondemand import apply_updates, pack_updates


class TestTrajectoryEquivalence:
    def test_ondemand_matches_traditional_exactly(self, parallel_kmc_results):
        r = parallel_kmc_results
        assert np.array_equal(
            r["traditional"].occupancy, r["ondemand"].occupancy
        )

    def test_onesided_matches_traditional_exactly(self, parallel_kmc_results):
        r = parallel_kmc_results
        assert np.array_equal(
            r["traditional"].occupancy, r["onesided"].occupancy
        )

    def test_event_counts_identical(self, parallel_kmc_results):
        r = parallel_kmc_results
        events = {s: res.events for s, res in r.items()}
        assert len(set(events.values())) == 1

    def test_simulated_time_identical(self, parallel_kmc_results):
        r = parallel_kmc_results
        times = {res.time for res in r.values()}
        assert len(times) == 1

    def test_events_actually_happened(self, parallel_kmc_results):
        assert parallel_kmc_results["ondemand"].events > 0


class TestConservation:
    def test_vacancy_count_conserved_all_schemes(
        self, parallel_kmc_results, kmc_initial_occ
    ):
        n0 = int(np.sum(kmc_initial_occ == VACANCY))
        for scheme, res in parallel_kmc_results.items():
            assert res.nvacancies == n0, scheme

    def test_occupancy_codes_valid(self, parallel_kmc_results):
        occ = parallel_kmc_results["ondemand"].occupancy
        assert set(np.unique(occ).tolist()) <= {0, 1}

    def test_vacancies_moved_from_initial(
        self, parallel_kmc_results, kmc_initial_occ
    ):
        final = parallel_kmc_results["ondemand"].occupancy
        assert not np.array_equal(final, kmc_initial_occ)


class TestTrafficProfile:
    def test_ondemand_volume_far_below_traditional(self, parallel_kmc_results):
        # Figure 12's mechanism at test scale.
        r = parallel_kmc_results
        trad = r["traditional"].comm_stats["total_sent_bytes"]
        ond = r["ondemand"].comm_stats["total_sent_bytes"]
        assert ond < 0.1 * trad

    def test_ondemand_comm_time_faster(self, parallel_kmc_results):
        # Figure 13's direction.
        r = parallel_kmc_results
        trad = r["traditional"].comm_stats["max_comm_time"]
        ond = r["ondemand"].comm_stats["max_comm_time"]
        assert ond < trad

    def test_onesided_eliminates_zero_size_messages(
        self, parallel_kmc_results
    ):
        # "to eliminate these zero-size messages": the one-sided variant
        # sends orders of magnitude fewer messages.
        r = parallel_kmc_results
        two_sided = r["ondemand"].comm_stats["total_messages"]
        one_sided = r["onesided"].comm_stats["total_messages"]
        assert one_sided < 0.2 * two_sided

    def test_onesided_volume_equals_ondemand(self, parallel_kmc_results):
        # Same dirty sites travel; only the transport differs.
        r = parallel_kmc_results
        assert (
            r["onesided"].comm_stats["total_sent_bytes"]
            == r["ondemand"].comm_stats["total_sent_bytes"]
        )

    def test_traditional_volume_independent_of_events(
        self, parallel_kmc_results, kmc_initial_occ
    ):
        # "All the sites in the ghost region have to be transferred
        # regardless of whether all the sites are updated or not" — the
        # traditional volume is cycles x strips, events don't enter.
        r = parallel_kmc_results["traditional"]
        assert r.comm_stats["total_sent_bytes"] % r.cycles == 0


class TestOnDemandCodecs:
    def test_pack_apply_roundtrip(self):
        sites = np.array([2, 5, 9, 14], dtype=np.int64)
        occ = np.array([1, 1, 0, 1], dtype=np.int8)
        rows = np.array([1, 2])
        ranks, values = pack_updates(sites, occ, rows)
        assert ranks.tolist() == [5, 9]
        target_occ = np.array([1, 0, 1, 1], dtype=np.int8)
        n = apply_updates(sites, target_occ, ranks, values)
        assert n == 2
        assert target_occ.tolist() == [1, 1, 0, 1]

    def test_apply_empty_is_noop(self):
        sites = np.array([1, 2, 3], dtype=np.int64)
        occ = np.ones(3, dtype=np.int8)
        assert apply_updates(sites, occ, np.empty(0, dtype=np.int64), []) == 0

    def test_apply_unknown_rank_rejected(self):
        sites = np.array([1, 2, 3], dtype=np.int64)
        occ = np.ones(3, dtype=np.int8)
        with pytest.raises(ValueError, match="outside"):
            apply_updates(sites, occ, np.array([99]), np.array([0]))
