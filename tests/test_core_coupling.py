"""Coupled MD-KMC pipeline integration tests."""

import numpy as np
import pytest

from repro.core.coupling import CoupledConfig, CoupledSimulation
from repro.kmc.events import VACANCY


@pytest.fixture(scope="module")
def coupled_result():
    sim = CoupledSimulation(
        CoupledConfig(cells=6, kmc_max_events=200, table_points=1000, seed=7)
    )
    return sim, sim.run()


class TestConfig:
    def test_too_small_box_rejected(self):
        with pytest.raises(ValueError, match="cells"):
            CoupledConfig(cells=3)

    def test_bad_temperature_rejected(self):
        with pytest.raises(ValueError):
            CoupledConfig(temperature=-10.0)


class TestPipeline:
    def test_md_stage_produces_damage(self, coupled_result):
        _sim, res = coupled_result
        assert len(res.vacancies_after_md) >= 1
        assert res.cascade.n_runaways >= 1

    def test_vacancy_count_conserved_by_kmc(self, coupled_result):
        _sim, res = coupled_result
        assert len(res.vacancies_after_kmc) == len(res.vacancies_after_md)

    def test_kmc_advanced_time(self, coupled_result):
        _sim, res = coupled_result
        assert res.kmc_time > 0
        assert res.kmc_events > 0

    def test_real_time_positive_and_huge(self, coupled_result):
        # ps of KMC time leverage into macroscopic real time through the
        # concentration ratio.
        _sim, res = coupled_result
        assert res.real_time_seconds > res.kmc_time * 1e-12

    def test_occupancy_mapping(self, coupled_result):
        sim, res = coupled_result
        occ = sim.occupancy_from_cascade(res.cascade)
        assert len(occ) == sim.lattice.nsites
        assert int(np.sum(occ == VACANCY)) == len(res.cascade.vacancy_rows)
        assert np.all(occ[res.cascade.vacancy_rows] == VACANCY)

    def test_reports_present(self, coupled_result):
        _sim, res = coupled_result
        assert res.report_after_md.n_vacancies == len(res.vacancies_after_md)
        assert res.report_after_kmc.n_vacancies == len(
            res.vacancies_after_kmc
        )

    def test_deterministic(self):
        cfg = CoupledConfig(
            cells=6, kmc_max_events=50, table_points=1000, seed=13
        )
        a = CoupledSimulation(cfg).run()
        b = CoupledSimulation(cfg).run()
        assert np.array_equal(a.vacancies_after_kmc, b.vacancies_after_kmc)
        assert a.kmc_time == b.kmc_time


class TestParallelKMCStage:
    def test_parallel_kmc_path(self):
        sim = CoupledSimulation(
            CoupledConfig(
                cells=8,
                kmc_nranks=8,
                kmc_scheme="ondemand",
                kmc_max_cycles=4,
                table_points=1000,
                seed=3,
            )
        )
        res = sim.run()
        assert res.comm_stats is not None
        assert len(res.vacancies_after_kmc) == len(res.vacancies_after_md)
