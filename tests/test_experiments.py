"""Experiment regeneration smoke/shape tests (cheap configurations).

The full paper-shape assertions live in ``benchmarks/``; these tests
verify the experiment plumbing at minimum cost.
"""

import pytest

from repro.experiments import (
    fig09_md_optimizations,
    fig10_md_strong_scaling,
    fig11_md_weak_scaling,
    fig14_kmc_strong_scaling,
    fig15_kmc_weak_scaling,
    fig16_coupled_weak_scaling,
    fig17_vacancy_clustering,
    memory_table,
)


class TestModelExperiments:
    def test_fig10_rows_and_summary(self):
        result = fig10_md_strong_scaling.run()
        assert len(result["rows"]) == 7
        assert result["rows"][0]["cores"] == 97_500
        assert result["summary"]["max_speedup"] > 1.0

    def test_fig11_rows(self):
        result = fig11_md_weak_scaling.run()
        assert len(result["rows"]) == 7
        assert result["rows"][-1]["cores"] == 6_656_000
        assert result["summary"]["memory_advantage"] > 3.0

    def test_fig14_superlinear_flag(self):
        result = fig14_kmc_strong_scaling.run()
        assert result["summary"]["superlinear_cores"]

    def test_fig15_comm_growth(self):
        result = fig15_kmc_weak_scaling.run()
        assert result["summary"]["comm_growth_ratio"] > 1.0
        assert result["summary"]["compute_flat_ratio"] == pytest.approx(1.0)

    def test_fig16_efficiency_declines(self):
        result = fig16_coupled_weak_scaling.run()
        effs = [r["efficiency"] for r in result["rows"]]
        assert effs[0] == pytest.approx(1.0)
        assert effs[-1] < 0.95

    def test_memory_table(self):
        result = memory_table.run()
        rows = {r["structure"]: r for r in result["rows"]}
        assert (
            rows["lattice_list"]["max_atoms"]
            > rows["linked_cell"]["max_atoms"]
            > rows["verlet_list"]["max_atoms"]
        )


class TestExecutedExperiments:
    def test_fig09_small_scale(self):
        # Tiny configuration: plumbing only (the shape bench runs at 20^3).
        result = fig09_md_optimizations.run(
            cells=8, cores_list=(65, 130), table_points=2000
        )
        assert len(result["rows"]) == 2 * 4
        s = result["summary"]
        assert s["traditional_dma_ops"] > s["compacted_dma_ops"]

    def test_fig17_clustering_direction(self):
        result = fig17_vacancy_clustering.run(
            cells=8, concentration=0.02, kmc_events=800, seed=1
        )
        s = result["summary"]
        assert s["max_cluster_growth"] > 1.0
        assert s["nn_distance_shrink"] < 1.0
        assert result["real_time_seconds"] > 0

    def test_fig17_vacancy_conservation(self):
        result = fig17_vacancy_clustering.run(
            cells=8, concentration=0.02, kmc_events=300, seed=2
        )
        assert len(result["vacancies_after"]) == len(
            result["vacancies_before"]
        )
