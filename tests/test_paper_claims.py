"""Direct checks of the paper's in-text numeric claims.

One test per quantitative statement in the paper that this reproduction
can evaluate exactly (figure-level claims live in ``benchmarks/``).
"""

import numpy as np
import pytest

from repro.core.timescale import paper_timescale_days
from repro.lattice.bcc import BCCLattice
from repro.perfmodel.machine import TAIHULIGHT


class TestSection2Claims:
    def test_bcc_has_8_first_shell_events(self):
        # "there are eight possible events for a vacancy (since it may
        # exchange with one of its eight nearest neighbors)".
        lat = BCCLattice(4, 4, 4)
        assert BCCLattice(4, 4, 4).first_shell_ranks(0).shape == (8,)
        assert len(set(lat.first_shell_ranks(5).tolist())) == 8

    def test_traditional_table_is_5000_by_7(self):
        # "Each traditional interpolation table ... is a 5000*7 2D array".
        from repro.potential.spline import SplineTable

        t = SplineTable.from_function(np.sin, 5.6, n=5000)
        assert t.coeff.shape == (5001, 7)

    def test_traditional_table_273kb(self):
        # "The size of each traditional interpolation table is about 273 KB,
        # which exceeds the size of local store (64 KB)".
        from repro.potential.spline import SplineTable
        from repro.sunway.localstore import LocalStore, LocalStoreOverflow

        t = SplineTable.from_function(np.sin, 5.6, n=5000)
        assert t.nbytes == pytest.approx(273 * 1024, rel=0.03)
        with pytest.raises(LocalStoreOverflow):
            LocalStore(64 * 1024).alloc("table", t.nbytes)

    def test_compacted_table_39kb_one_seventh(self):
        # "a compacted interpolation table, of which size is only 39 KB
        # (1/7 of the traditional table)".
        from repro.potential.compact import CompactTable

        t = CompactTable.from_function(np.sin, 5.6, n=5000)
        assert t.nbytes == pytest.approx(39 * 1024, rel=0.03)
        assert 7 * t.nbytes == pytest.approx(273 * 1024, rel=0.03)

    def test_interpolation_formula_of_figure5(self):
        # "L[5,2] = ( S[0] - S[4] + 8*(S[3] - S[1]) )/12" — the five-point
        # derivative, with S indexed around the segment.
        from repro.potential.spline import knot_derivatives

        s = np.array([2.0, -1.0, 0.5, 3.0, 1.5, 4.0, 0.0])
        m = 2
        window = s[m - 2 : m + 3]  # S[0..4]
        expected = (window[0] - window[4] + 8 * (window[3] - window[1])) / 12
        assert knot_derivatives(s)[m] == pytest.approx(expected)

    def test_3_dma_gets_per_neighbor_claim(self):
        # "(3 times for each neighbor atom at each time step)": asserted
        # against the executed kernel in test_sunway_kernel; here the
        # structural count — density (1) + two force terms (2).
        from repro.sunway.kernel import BlockedEAMKernel  # noqa: F401

        passes_with_neighbor_gets = 3
        assert passes_with_neighbor_gets == 3


class TestSection3Claims:
    def test_core_group_is_65_cores(self):
        # "104,000 (including 1,600 master cores and 1,024,000 slave
        # cores)" — the slave count is an in-paper typo: 1,600 CGs have
        # 1,600 x 64 = 102,400 slave cores, consistent with the stated
        # 104,000 total.
        assert TAIHULIGHT.arch.cores_per_cg == 65
        assert 1600 * 65 == 104_000
        assert 1600 * 64 == 102_400

    def test_weak_scaling_top_is_102400_cgs(self):
        # "6,656,000 (including 102,400 master cores and 6,553,600 slave
        # cores)".
        assert TAIHULIGHT.cgs_from_cores(6_656_000) == 102_400
        assert 102_400 * 64 == 6_553_600

    def test_strong_scaling_factor_is_64(self):
        # "Scaling from 97,500 cores to 6,240,000 cores" — a 64x ramp.
        assert 6_240_000 / 97_500 == 64

    def test_kmc_strong_scaling_factor_is_32(self):
        # "The baseline runs on 1,500 cores ... 18.5-fold speedup on
        # 48,000 cores" — 32x ideal, hence 58% efficiency.
        assert 48_000 / 1_500 == 32
        assert 18.5 / 32 == pytest.approx(0.578, abs=0.01)

    def test_md_strong_scaling_efficiency_arithmetic(self):
        # "26.4-fold speedup (41.3% parallel efficiency)".
        assert 26.4 / 64 == pytest.approx(0.413, abs=0.001)

    def test_weak_scaling_atoms_arithmetic(self):
        # "the problem size increases from 6.25e10 atoms to 4.0e12 atoms
        # to keep the workload per core fixed" — 3.9e7 atoms per CG.
        assert 6.25e10 / 1600 == pytest.approx(3.9e7, rel=0.01)
        assert 4.0e12 / 102_400 == pytest.approx(3.9e7, rel=0.01)

    def test_coupled_run_atoms_per_cg(self):
        # Fig 16: "97,500 to 6,240,000 while the number of atoms increases
        # from 5.0e8 to 3.2e10" — 3.3e5 atoms per CG.
        assert 5.0e8 / 1500 == pytest.approx(3.3e5, rel=0.02)
        assert 3.2e10 / 96_000 == pytest.approx(3.3e5, rel=0.02)

    def test_timescale_19_2_days(self):
        # "the temporal scale t_real is equal to 19.2 days".
        assert paper_timescale_days() == pytest.approx(19.2, abs=0.05)

    def test_lattice_constant(self):
        # "The lattice constant is set to 2.855."
        from repro.constants import FE_LATTICE_CONSTANT

        assert FE_LATTICE_CONSTANT == 2.855

    def test_md_time_step_and_horizon(self):
        # "MD simulates ... in the temporal scale of 50 picoseconds (time
        # step is set to 1 femtosecond)" — 50,000 steps, the count the
        # coupled scaling model uses.
        from repro.perfmodel.calibrate import calibrate_from_kernels
        from repro.perfmodel.coupled_model import CoupledScalingModel

        model = CoupledScalingModel(
            calibrate_from_kernels(cells=12, table_points=2000)
        )
        assert model.md_steps == 50_000

    def test_memory_8gb_per_cg(self):
        # "there is total 8 GB DDR3 memory shared by a master core and 64
        # slave cores".
        assert TAIHULIGHT.arch.memory_per_cg == 8 * 1024**3

    def test_l2_cache_256kb(self):
        # "Each master core has a 32 KB L1 cache and a 256 KB L2 cache".
        assert TAIHULIGHT.arch.mpe_l2_bytes == 256 * 1024

    def test_clock_1_45_ghz(self):
        # "Both master and slave cores work at 1.45GHz".
        assert TAIHULIGHT.arch.clock_hz == 1.45e9

    def test_machine_is_40960_nodes(self):
        # "The Sunway TaihuLight has total 40,960 computing nodes."
        assert TAIHULIGHT.nodes == 40_960
