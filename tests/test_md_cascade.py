"""Cascade (PKA) tests: defect production, conservation, validation."""

import numpy as np
import pytest

from repro.analysis.vacancies import conservation_check, vacancy_concentration
from repro.constants import MVV2E
from repro.lattice.bcc import BCCLattice
from repro.md.cascade import CascadeConfig, insert_pka, run_cascade
from repro.md.engine import MDConfig, MDEngine


class TestConfig:
    def test_defaults_valid(self):
        CascadeConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"pka_energy": 0.0},
            {"nsteps": 0},
            {"displacement_threshold": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            CascadeConfig(**kwargs)


class TestInsertPKA:
    def test_kinetic_energy_matches(self, lattice5):
        from repro.md.state import AtomState

        state = AtomState.perfect(lattice5)
        cfg = CascadeConfig(pka_energy=25.0)
        row = insert_pka(state, cfg, lattice5)
        ke = 0.5 * state.mass * MVV2E * float(np.sum(state.v[row] ** 2))
        assert ke == pytest.approx(25.0, rel=1e-12)

    def test_default_site_near_center(self, lattice5):
        from repro.md.state import AtomState

        state = AtomState.perfect(lattice5)
        row = insert_pka(state, CascadeConfig(), lattice5)
        center = lattice5.lengths / 2
        assert np.linalg.norm(state.x[row] - center) < lattice5.a * 1.5

    def test_explicit_site(self, lattice5):
        from repro.md.state import AtomState

        state = AtomState.perfect(lattice5)
        row = insert_pka(
            state, CascadeConfig(pka_site=17), lattice5
        )
        assert row == 17

    def test_vacancy_site_rejected(self, lattice5):
        from repro.md.state import AtomState

        state = AtomState.perfect(lattice5)
        state.make_vacancy(17)
        with pytest.raises(ValueError, match="vacancy"):
            insert_pka(state, CascadeConfig(pka_site=17), lattice5)

    def test_zero_direction_rejected(self, lattice5):
        from repro.md.state import AtomState

        state = AtomState.perfect(lattice5)
        with pytest.raises(ValueError, match="direction"):
            insert_pka(
                state,
                CascadeConfig(pka_direction=(0.0, 0.0, 0.0)),
                lattice5,
            )


class TestCascadeRun:
    @pytest.fixture(scope="class")
    def cascade_result(self, potential):
        lattice = BCCLattice(6, 6, 6)
        engine = MDEngine(
            lattice, potential, MDConfig(temperature=300.0, seed=3)
        )
        cfg = CascadeConfig(
            pka_energy=120.0, nsteps=150, temperature=300.0,
            displacement_threshold=1.2,
        )
        return engine, run_cascade(engine, cfg)

    def test_produces_frenkel_pairs(self, cascade_result):
        _engine, res = cascade_result
        assert res.n_frenkel_pairs >= 1
        assert len(res.vacancy_rows) >= 1
        assert res.n_runaways >= 1

    def test_vacancy_positions_are_lattice_points(self, cascade_result):
        engine, res = cascade_result
        expected = engine.state.site_pos[res.vacancy_rows]
        assert np.allclose(res.vacancy_positions, expected)

    def test_atom_conservation(self, cascade_result):
        engine, _res = cascade_result
        assert conservation_check(engine.state, engine.nblist)

    def test_energy_reasonably_conserved(self, cascade_result):
        _engine, res = cascade_result
        e = [r.total_energy for r in res.energy_trace]
        drift = max(abs(x - e[0]) for x in e) / abs(e[0])
        # A cascade is violent; the tolerance is looser than NVE but the
        # run must not blow up.
        assert drift < 5e-3

    def test_cascade_heats_lattice(self, cascade_result):
        _engine, res = cascade_result
        # 120 eV deposited into a 432-atom box raises T well above 300 K.
        assert res.final_temperature > 350.0

    def test_vacancy_concentration_small(self, cascade_result):
        engine, _res = cascade_result
        assert 0 < vacancy_concentration(engine.state) < 0.2

    def test_damage_localized_near_pka(self, cascade_result):
        engine, res = cascade_result
        center = engine.lattice.lengths / 2
        from repro.lattice.box import Box

        box = Box.for_lattice(engine.lattice)
        d = box.distance(center, res.vacancy_positions)
        # All vacancies within half the box of the PKA site.
        assert np.all(d <= engine.lattice.lengths[0] / 2 * np.sqrt(3))
