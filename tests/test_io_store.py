"""Streaming chunked trajectory store (:mod:`repro.io.store`).

Covers the on-disk format round trip, out-of-core random access, crash
safety (torn tails, CRC corruption, rewind), multi-shard stitching, the
engine/coupling wiring, and the acceptance criteria of the trajectory
store issue: the reader reproduces :class:`KMCTrajectory` frames
bit-exactly and a fault-injected coupled run leaves the same store as a
fault-free one.
"""

import json

import numpy as np
import pytest

from repro import observe as obs
from repro.io.kmc_trajectory import KMCTrajectory
from repro.io.store import (
    StoreError,
    TornTailWarning,
    TrajectoryReader,
    TrajectoryWriter,
    finalize_store,
    is_store,
    rewind_store,
)
from repro.lattice.bcc import BCCLattice


@pytest.fixture()
def lattice4():
    return BCCLattice(4, 4, 4)


def _hop_frames(lattice, n, nvac=6, seed=0):
    """A synthetic trajectory: a few sites change per frame."""
    rng = np.random.default_rng(seed)
    occ = np.ones(lattice.nsites, dtype=np.int8)
    occ[rng.choice(lattice.nsites, nvac, replace=False)] = 0
    times, frames = [0.0], [occ.copy()]
    t = 0.0
    for _ in range(n - 1):
        src = rng.choice(np.flatnonzero(occ == 0))
        dst = rng.choice(np.flatnonzero(occ == 1))
        occ[src], occ[dst] = occ[dst], occ[src]
        t += float(rng.exponential(0.1))
        times.append(t)
        frames.append(occ.copy())
    return times, frames


def _write(path, lattice, times, frames, **kw):
    writer = TrajectoryWriter(path, lattice, mode="w", **kw)
    for t, f in zip(times, frames, strict=True):
        writer.append(t, f)
    writer.finalize()
    return path


class TestRoundTrip:
    def test_bit_exact_roundtrip(self, tmp_path, lattice4):
        times, frames = _hop_frames(lattice4, 11)
        store = _write(tmp_path / "s", lattice4, times, frames, chunk_frames=4)
        reader = TrajectoryReader(store)
        assert len(reader) == 11
        assert reader.final
        for i, (t, f) in enumerate(zip(times, frames, strict=True)):
            assert reader.time_of(i) == t
            np.testing.assert_array_equal(reader.frame(i), f)

    def test_iteration_matches_frames(self, tmp_path, lattice4):
        times, frames = _hop_frames(lattice4, 7)
        store = _write(tmp_path / "s", lattice4, times, frames, chunk_frames=3)
        seen = list(TrajectoryReader(store))
        assert [t for t, _ in seen] == times
        for (_, got), want in zip(seen, frames, strict=True):
            np.testing.assert_array_equal(got, want)

    def test_empty_vacancy_frames(self, tmp_path, lattice4):
        # All-atom frames (no vacancies at all) are a legal trajectory.
        occ = np.ones(lattice4.nsites, dtype=np.int8)
        store = _write(
            tmp_path / "s", lattice4, [0.0, 1.0, 2.0], [occ, occ, occ]
        )
        reader = TrajectoryReader(store)
        assert len(reader) == 3
        for i in range(3):
            assert len(reader.vacancy_ranks(i)) == 0

    def test_single_frame_store(self, tmp_path, lattice4):
        times, frames = _hop_frames(lattice4, 1)
        store = _write(tmp_path / "s", lattice4, times, frames)
        reader = TrajectoryReader(store)
        assert len(reader) == 1
        np.testing.assert_array_equal(reader.frame(0), frames[0])
        np.testing.assert_array_equal(reader.frame(-1), frames[0])

    def test_matches_kmc_trajectory_frames(self, tmp_path, lattice4):
        # Acceptance: the store reproduces KMCTrajectory bit-exactly.
        times, frames = _hop_frames(lattice4, 9)
        legacy = KMCTrajectory(lattice4)
        for t, f in zip(times, frames, strict=True):
            legacy.record(t, f)
        store = _write(tmp_path / "s", lattice4, times, frames, chunk_frames=4)
        reader = TrajectoryReader(store)
        assert len(reader) == len(legacy)
        for i in range(len(legacy)):
            np.testing.assert_array_equal(reader.frame(i), legacy.frames[i])
            assert reader.time_of(i) == legacy.times[i]

    def test_kmc_trajectory_load_accepts_store_dir(self, tmp_path, lattice4):
        times, frames = _hop_frames(lattice4, 6)
        store = _write(tmp_path / "s", lattice4, times, frames, chunk_frames=2)
        loaded = KMCTrajectory.load(store)
        assert loaded.times == times
        assert loaded.lattice.nsites == lattice4.nsites
        for got, want in zip(loaded.frames, frames, strict=True):
            np.testing.assert_array_equal(got, want)

    def test_compression_none_roundtrip(self, tmp_path, lattice4):
        times, frames = _hop_frames(lattice4, 5)
        store = _write(
            tmp_path / "s", lattice4, times, frames, compression="none"
        )
        reader = TrajectoryReader(store)
        np.testing.assert_array_equal(reader.frame(-1), frames[-1])

    def test_zstd_requires_zstandard(self, tmp_path, lattice4):
        # zstd is optional: with the package absent the writer fails
        # early with a clear error instead of half-writing a store.
        try:
            import zstandard  # noqa: F401
        except ImportError:
            with pytest.raises(StoreError, match="zstandard"):
                TrajectoryWriter(
                    tmp_path / "s", lattice4, compression="zstd"
                )
        else:
            times, frames = _hop_frames(lattice4, 3)
            store = _write(
                tmp_path / "s", lattice4, times, frames, compression="zstd"
            )
            np.testing.assert_array_equal(
                TrajectoryReader(store).frame(-1), frames[-1]
            )


class TestRandomAccess:
    def test_frame_at_time(self, tmp_path, lattice4):
        times, frames = _hop_frames(lattice4, 10)
        store = _write(tmp_path / "s", lattice4, times, frames, chunk_frames=3)
        reader = TrajectoryReader(store)
        # Exactly at a timestamp -> that frame; between -> the earlier.
        assert reader.frame_index_at(times[4]) == 4
        mid = (times[4] + times[5]) / 2
        assert reader.frame_index_at(mid) == 4
        np.testing.assert_array_equal(reader.frame_at_time(mid), frames[4])
        assert reader.frame_index_at(times[-1] + 1e9) == 9

    def test_before_first_frame_rejected(self, tmp_path, lattice4):
        times, frames = _hop_frames(lattice4, 3)
        store = _write(
            tmp_path / "s", lattice4, [t + 1.0 for t in times], frames
        )
        with pytest.raises(ValueError, match="no frame"):
            TrajectoryReader(store).frame_index_at(0.5)

    def test_out_of_range_rejected(self, tmp_path, lattice4):
        times, frames = _hop_frames(lattice4, 3)
        store = _write(tmp_path / "s", lattice4, times, frames)
        with pytest.raises(IndexError):
            TrajectoryReader(store).frame(3)


class TestWriterContract:
    def test_time_must_not_decrease(self, tmp_path, lattice4):
        writer = TrajectoryWriter(tmp_path / "s", lattice4)
        occ = np.ones(lattice4.nsites, dtype=np.int8)
        writer.append(1.0, occ)
        with pytest.raises(ValueError, match="non-decreasing"):
            writer.append(0.5, occ)

    def test_wrong_length_rejected(self, tmp_path, lattice4):
        writer = TrajectoryWriter(tmp_path / "s", lattice4)
        with pytest.raises(ValueError, match="sites"):
            writer.append(0.0, np.ones(3, dtype=np.int8))

    def test_closed_writer_rejects_appends(self, tmp_path, lattice4):
        writer = TrajectoryWriter(tmp_path / "s", lattice4)
        writer.close()
        with pytest.raises(StoreError, match="closed"):
            writer.append(0.0, np.ones(lattice4.nsites, dtype=np.int8))

    def test_memory_stays_bounded(self, tmp_path, lattice4):
        # The writer may hold at most chunk_frames pending records:
        # appends beyond that commit to disk instead of accumulating.
        times, frames = _hop_frames(lattice4, 40)
        writer = TrajectoryWriter(
            tmp_path / "s", lattice4, mode="w", chunk_frames=4
        )
        for t, f in zip(times, frames, strict=True):
            writer.append(t, f)
            assert len(writer._pending) < 4
        writer.finalize()
        assert len(TrajectoryReader(tmp_path / "s")) == 40

    def test_context_manager_finalizes_on_clean_exit(self, tmp_path, lattice4):
        times, frames = _hop_frames(lattice4, 3)
        with TrajectoryWriter(tmp_path / "s", lattice4) as writer:
            for t, f in zip(times, frames, strict=True):
                writer.append(t, f)
        assert TrajectoryReader(tmp_path / "s").final

    def test_context_manager_keeps_resumable_on_error(self, tmp_path, lattice4):
        times, frames = _hop_frames(lattice4, 3)
        with pytest.raises(RuntimeError, match="boom"):
            with TrajectoryWriter(tmp_path / "s", lattice4) as writer:
                writer.append(times[0], frames[0])
                raise RuntimeError("boom")
        reader = TrajectoryReader(tmp_path / "s")
        assert not reader.final
        assert len(reader) == 1


class TestCrashSafety:
    def test_reopen_appends_after_clean_close(self, tmp_path, lattice4):
        times, frames = _hop_frames(lattice4, 8)
        writer = TrajectoryWriter(
            tmp_path / "s", lattice4, mode="w", chunk_frames=3
        )
        for t, f in zip(times[:5], frames[:5], strict=True):
            writer.append(t, f)
        writer.close(final=False)
        writer = TrajectoryWriter(tmp_path / "s")
        assert writer.nframes == 5
        assert writer.last_time == times[4]
        for t, f in zip(times[5:], frames[5:], strict=True):
            writer.append(t, f)
        writer.finalize()
        reader = TrajectoryReader(tmp_path / "s")
        assert len(reader) == 8
        for i, f in enumerate(frames):
            np.testing.assert_array_equal(reader.frame(i), f)

    def test_torn_tail_is_truncated_on_reopen(self, tmp_path, lattice4):
        # A crash can leave shard bytes past the last indexed chunk
        # (the index is only published after a durable chunk write).
        times, frames = _hop_frames(lattice4, 6)
        writer = TrajectoryWriter(
            tmp_path / "s", lattice4, mode="w", chunk_frames=3
        )
        for t, f in zip(times, frames, strict=True):
            writer.append(t, f)
        writer.close(final=False)
        bin_path = tmp_path / "s" / "shard-00000.bin"
        good = bin_path.stat().st_size
        with open(bin_path, "ab") as fh:
            fh.write(b"\x13" * 37)  # torn, unindexed garbage
        reader = TrajectoryReader(tmp_path / "s")
        assert len(reader) == 6
        np.testing.assert_array_equal(reader.frame(-1), frames[-1])
        # The drop is no longer silent: the resume warns (naming the
        # shard) and records an observe counter.
        registry = obs.enable(trace=False)
        try:
            with pytest.warns(TornTailWarning, match="shard-00000.bin"):
                writer = TrajectoryWriter(tmp_path / "s")
        finally:
            obs.disable()
        assert registry.counters["io.trajectory.torn_tail"] == 1
        assert bin_path.stat().st_size == good  # tail dropped
        writer.append(times[-1] + 1.0, frames[0])
        writer.finalize()
        np.testing.assert_array_equal(
            TrajectoryReader(tmp_path / "s").frame(-1), frames[0]
        )

    def test_clean_resume_does_not_warn(self, tmp_path, lattice4):
        import warnings

        times, frames = _hop_frames(lattice4, 6)
        writer = TrajectoryWriter(
            tmp_path / "s", lattice4, mode="w", chunk_frames=3
        )
        for t, f in zip(times, frames, strict=True):
            writer.append(t, f)
        writer.close(final=False)
        with warnings.catch_warnings():
            warnings.simplefilter("error", TornTailWarning)
            writer = TrajectoryWriter(tmp_path / "s")
        writer.close(final=False)

    def test_unflushed_frames_lost_indexed_frames_survive(
        self, tmp_path, lattice4
    ):
        # Simulated crash: the writer dies without close(); only chunks
        # the index describes are readable.
        times, frames = _hop_frames(lattice4, 7)
        writer = TrajectoryWriter(
            tmp_path / "s", lattice4, mode="w", chunk_frames=3
        )
        for t, f in zip(times, frames, strict=True):
            writer.append(t, f)
        # 7 appends, chunk_frames=3: chunks [0..2] and [3..5] are
        # committed, frame 6 is pending in memory only.
        reader = TrajectoryReader(tmp_path / "s")
        assert len(reader) == 6
        np.testing.assert_array_equal(reader.frame(5), frames[5])

    def test_crc_corruption_detected(self, tmp_path, lattice4):
        times, frames = _hop_frames(lattice4, 4)
        store = _write(
            tmp_path / "s", lattice4, times, frames, chunk_frames=2
        )
        idx = json.loads((store / "shard-00000.json").read_text())
        chunk = idx["chunks"][1]
        bin_path = store / "shard-00000.bin"
        raw = bytearray(bin_path.read_bytes())
        raw[chunk["offset"] + 1] ^= 0xFF
        bin_path.write_bytes(bytes(raw))
        reader = TrajectoryReader(store)
        np.testing.assert_array_equal(reader.frame(0), frames[0])  # chunk 0 OK
        with pytest.raises(StoreError, match="CRC"):
            reader.frame(2)

    def test_rewind_drops_newer_frames(self, tmp_path, lattice4):
        times, frames = _hop_frames(lattice4, 10)
        writer = TrajectoryWriter(
            tmp_path / "s", lattice4, mode="w", chunk_frames=4
        )
        for t, f in zip(times, frames, strict=True):
            writer.append(t, f)
        # Cut mid-chunk: keep frames 0..6, drop 7..9.
        writer.rewind(times[6])
        writer.flush()
        writer.close(final=False)
        reader = TrajectoryReader(tmp_path / "s")
        assert len(reader) == 7
        for i in range(7):
            np.testing.assert_array_equal(reader.frame(i), frames[i])

    def test_append_after_rewind_continues_the_chain(self, tmp_path, lattice4):
        times, frames = _hop_frames(lattice4, 10)
        writer = TrajectoryWriter(
            tmp_path / "s", lattice4, mode="w", chunk_frames=4
        )
        for t, f in zip(times, frames, strict=True):
            writer.append(t, f)
        writer.rewind(times[5])
        # Re-record a different tail (what a resumed attempt does).
        alt = frames[0]
        writer.append(times[5] + 0.5, alt)
        writer.finalize()
        reader = TrajectoryReader(tmp_path / "s")
        assert len(reader) == 7
        np.testing.assert_array_equal(reader.frame(5), frames[5])
        np.testing.assert_array_equal(reader.frame(6), alt)

    def test_rewind_store_helper(self, tmp_path, lattice4):
        times, frames = _hop_frames(lattice4, 8)
        store = _write(
            tmp_path / "s", lattice4, times, frames, chunk_frames=3
        )
        assert is_store(store)
        rewind_store(store, times[4])
        assert len(TrajectoryReader(store)) == 5
        rewind_store(store, 0.0)
        assert len(TrajectoryReader(store)) == 1  # the t=0 frame survives

    def test_finalize_store_helper(self, tmp_path, lattice4):
        times, frames = _hop_frames(lattice4, 3)
        writer = TrajectoryWriter(tmp_path / "s", lattice4, mode="w")
        for t, f in zip(times, frames, strict=True):
            writer.append(t, f)
        writer.close(final=False)
        assert not TrajectoryReader(tmp_path / "s").final
        finalize_store(tmp_path / "s")
        assert TrajectoryReader(tmp_path / "s").final

    def test_finalize_store_without_shards_rejected(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(StoreError, match="no shard"):
            finalize_store(tmp_path / "empty")


class TestSharding:
    def test_two_shards_stitch_to_global_frames(self, tmp_path, lattice4):
        times, frames = _hop_frames(lattice4, 6)
        n = lattice4.nsites
        lo = np.arange(n // 2, dtype=np.int64)
        hi = np.arange(n // 2, n, dtype=np.int64)
        for rank, sites in ((0, lo), (1, hi)):
            writer = TrajectoryWriter(
                tmp_path / "s",
                lattice4,
                rank=rank,
                sites=sites,
                mode="w",
                chunk_frames=3,
            )
            for t, f in zip(times, frames, strict=True):
                writer.append(t, f[sites])
            writer.finalize()
        reader = TrajectoryReader(tmp_path / "s")
        assert len(reader.shards) == 2
        assert len(reader) == 6
        for i, f in enumerate(frames):
            np.testing.assert_array_equal(reader.frame(i), f)
            np.testing.assert_array_equal(
                reader.vacancy_ranks(i), np.flatnonzero(f == 0)
            )

    def test_incomplete_tiling_rejected(self, tmp_path, lattice4):
        times, frames = _hop_frames(lattice4, 2)
        sites = np.arange(lattice4.nsites // 2, dtype=np.int64)
        writer = TrajectoryWriter(
            tmp_path / "s", lattice4, sites=sites, mode="w"
        )
        for t, f in zip(times, frames, strict=True):
            writer.append(t, f[sites])
        writer.finalize()
        with pytest.raises(StoreError, match="tile"):
            TrajectoryReader(tmp_path / "s")

    def test_common_prefix_when_shards_disagree(self, tmp_path, lattice4):
        # An unclean shutdown can leave shards a fence apart; the
        # usable store is the common frame prefix.
        times, frames = _hop_frames(lattice4, 5)
        n = lattice4.nsites
        lo = np.arange(n // 2, dtype=np.int64)
        hi = np.arange(n // 2, n, dtype=np.int64)
        for rank, sites, upto in ((0, lo, 5), (1, hi, 4)):
            writer = TrajectoryWriter(
                tmp_path / "s",
                lattice4,
                rank=rank,
                sites=sites,
                mode="w",
                chunk_frames=1,
            )
            for t, f in zip(times[:upto], frames[:upto], strict=True):
                writer.append(t, f[sites])
            writer.close(final=False)
        reader = TrajectoryReader(tmp_path / "s")
        assert len(reader) == 4
        np.testing.assert_array_equal(reader.frame(3), frames[3])


class TestEngineWiring:
    def test_serial_run_streams_frames(
        self, tmp_path, lattice8, potential, rate_params, kmc_initial_occ
    ):
        from repro.kmc.akmc import SerialAKMC

        store = tmp_path / "traj"
        result = SerialAKMC(
            lattice8, potential, rate_params, kmc_initial_occ, seed=9
        ).run(max_events=30, trajectory=store)
        finalize_store(store)
        reader = TrajectoryReader(store)
        # One frame per event at trajectory_every=1.
        assert len(reader) == 30
        np.testing.assert_array_equal(reader.frame(-1), result.occupancy)
        assert reader.time_of(-1) == result.time
        times = [reader.time_of(i) for i in range(len(reader))]
        assert times == sorted(times)

    def test_serial_frames_match_stepwise_reference(
        self, tmp_path, lattice8, potential, rate_params, kmc_initial_occ
    ):
        from repro.kmc.akmc import SerialAKMC

        store = tmp_path / "traj"
        SerialAKMC(
            lattice8, potential, rate_params, kmc_initial_occ, seed=9
        ).run(max_events=20, trajectory=store)
        ref = SerialAKMC(
            lattice8, potential, rate_params, kmc_initial_occ, seed=9
        )
        reader = TrajectoryReader(store)
        for i in range(20):
            ref.step()
            np.testing.assert_array_equal(reader.frame(i), ref.occ)
            assert reader.time_of(i) == ref.time

    def test_trajectory_every_thins_frames(
        self, tmp_path, lattice8, potential, rate_params, kmc_initial_occ
    ):
        from repro.kmc.akmc import SerialAKMC

        store = tmp_path / "traj"
        SerialAKMC(
            lattice8, potential, rate_params, kmc_initial_occ, seed=9
        ).run(max_events=30, trajectory=store, trajectory_every=10)
        assert len(TrajectoryReader(store)) == 3

    def test_recording_does_not_perturb_the_run(
        self, tmp_path, lattice8, potential, rate_params, kmc_initial_occ
    ):
        from repro.kmc.akmc import SerialAKMC

        plain = SerialAKMC(
            lattice8, potential, rate_params, kmc_initial_occ, seed=9
        ).run(max_events=40)
        recorded = SerialAKMC(
            lattice8, potential, rate_params, kmc_initial_occ, seed=9
        ).run(max_events=40, trajectory=tmp_path / "traj")
        assert recorded.time == plain.time
        np.testing.assert_array_equal(recorded.occupancy, plain.occupancy)

    def test_trajectory_every_requires_trajectory(
        self, lattice8, potential, rate_params, kmc_initial_occ
    ):
        from repro.kmc.akmc import SerialAKMC

        engine = SerialAKMC(
            lattice8, potential, rate_params, kmc_initial_occ, seed=9
        )
        with pytest.raises(ValueError, match="requires trajectory"):
            engine.run(max_events=5, trajectory_every=2)

    def test_parallel_rejects_writer_objects(
        self, tmp_path, lattice8, potential, rate_params, kmc_initial_occ
    ):
        from repro.kmc.akmc import ParallelAKMC

        writer = TrajectoryWriter(tmp_path / "traj", lattice8)
        engine = ParallelAKMC(
            lattice8, potential, rate_params, nranks=2, seed=5
        )
        with pytest.raises(TypeError, match="path"):
            engine.run(kmc_initial_occ, max_cycles=2, trajectory=writer)

    def test_parallel_run_records_global_frames(
        self, tmp_path, lattice8, potential, rate_params, kmc_initial_occ
    ):
        from repro.kmc.akmc import ParallelAKMC

        store = tmp_path / "traj"
        result = ParallelAKMC(
            lattice8, potential, rate_params, nranks=4, seed=5
        ).run(kmc_initial_occ, max_cycles=6, trajectory=store)
        finalize_store(store)
        reader = TrajectoryReader(store)
        assert len(reader) == 6  # one frame per cycle
        np.testing.assert_array_equal(reader.frame(-1), result.occupancy)
        assert reader.time_of(-1) == result.time
        # Conservation in every recorded frame.
        nvac = int((kmc_initial_occ == 0).sum())
        for i in range(len(reader)):
            assert len(reader.vacancy_ranks(i)) == nvac


def _coupled_config(**overrides):
    from repro.core.coupling import CoupledConfig
    from repro.md.cascade import CascadeConfig

    base = dict(
        cells=8,
        seed=3,
        cascade=CascadeConfig(pka_energy=120.0, nsteps=60),
        kmc_nranks=2,
        kmc_max_cycles=8,
        table_points=500,
    )
    base.update(overrides)
    return CoupledConfig(**base)


class TestCoupledStore:
    """The coupled pipeline streams its trajectory and survives faults."""

    @pytest.fixture(scope="class")
    def fault_free(self, tmp_path_factory):
        from repro.core.coupling import CoupledSimulation

        store = tmp_path_factory.mktemp("coupled") / "traj"
        result = CoupledSimulation(
            _coupled_config(trajectory=str(store))
        ).run()
        return result, store

    def test_store_brackets_the_run(self, fault_free):
        result, store = fault_free
        reader = TrajectoryReader(store)
        assert reader.final
        assert result.trajectory_frames == len(reader)
        # Frame 0 is the post-MD damage state; the last frame is the
        # final KMC state — exactly the two panels of Figure 17.
        np.testing.assert_array_equal(
            reader.vacancy_ranks(0), result.vacancies_after_md
        )
        np.testing.assert_array_equal(
            reader.vacancy_ranks(len(reader) - 1),
            result.vacancies_after_kmc,
        )
        assert reader.time_of(0) == 0.0
        assert reader.time_of(-1) == result.kmc_time
        times = [reader.time_of(i) for i in range(len(reader))]
        assert times == sorted(times)

    def test_faulted_run_leaves_identical_store(
        self, fault_free, tmp_path
    ):
        # Acceptance: crash -> checkpoint recovery -> the store ends
        # bit-identical to a fault-free run's store.
        from repro.core.coupling import CoupledSimulation

        _, ref_store = fault_free
        store = tmp_path / "traj"
        result = CoupledSimulation(
            _coupled_config(
                trajectory=str(store),
                faults="crash:rank=1,cycle=5",
                checkpoint_every=2,
                checkpoint_dir=str(tmp_path),
            )
        ).run()
        assert result.recoveries == 1
        ref = TrajectoryReader(ref_store)
        got = TrajectoryReader(store)
        assert len(got) == len(ref)
        np.testing.assert_array_equal(got.times, ref.times)
        for i in range(len(ref)):
            np.testing.assert_array_equal(got.frame(i), ref.frame(i))

    def test_clustering_report_from_store(self, fault_free):
        from repro.core.clusters import (
            clustering_report,
            clustering_report_from_store,
        )

        result, store = fault_free
        reader = TrajectoryReader(store)
        direct = clustering_report(
            reader.lattice, result.vacancies_after_kmc
        )
        assert clustering_report_from_store(reader, -1) == direct
        assert clustering_report_from_store(store, -1) == direct


class TestFig17FromStore:
    def test_store_fed_reports_match_in_memory(self, tmp_path):
        # Acceptance: fig17's clustering numbers are unchanged when the
        # analysis reads the on-disk store instead of in-memory arrays.
        from repro.experiments import fig17_vacancy_clustering as fig17

        kw = dict(cells=5, concentration=0.025, kmc_events=40, seed=1)
        plain = fig17.run(**kw)
        stored = fig17.run(**kw, store_path=tmp_path / "traj")
        assert stored["before"] == plain["before"]
        assert stored["after"] == plain["after"]
        np.testing.assert_array_equal(
            stored["vacancies_after"], plain["vacancies_after"]
        )
        assert stored["summary"] == plain["summary"]
        assert TrajectoryReader(tmp_path / "traj").final
