"""Serial AKMC tests: BKL mechanics, conservation, clustering physics."""

import numpy as np
import pytest

from repro.kmc.akmc import SerialAKMC, place_random_vacancies
from repro.kmc.events import VACANCY


class TestPlacement:
    def test_places_exact_count(self, kmc_model8):
        occ = place_random_vacancies(kmc_model8, 12, np.random.default_rng(0))
        assert int(np.sum(occ == VACANCY)) == 12

    def test_count_validation(self, kmc_model8):
        with pytest.raises(ValueError):
            place_random_vacancies(
                kmc_model8, kmc_model8.nrows + 1, np.random.default_rng(0)
            )

    def test_reproducible(self, kmc_model8):
        a = place_random_vacancies(kmc_model8, 9, np.random.default_rng(5))
        b = place_random_vacancies(kmc_model8, 9, np.random.default_rng(5))
        assert np.array_equal(a, b)


class TestBKL:
    @pytest.fixture()
    def engine(self, lattice8, potential, rate_params, kmc_initial_occ):
        return SerialAKMC(
            lattice8, potential, rate_params, kmc_initial_occ, seed=11
        )

    def test_step_advances_time_positively(self, engine):
        dt = engine.step()
        assert dt is not None and dt > 0
        assert engine.time == dt
        assert engine.events == 1

    def test_step_moves_exactly_one_vacancy(self, engine):
        before = set(engine.vacancy_rows.tolist())
        engine.step()
        after = set(engine.vacancy_rows.tolist())
        assert len(before - after) == 1
        assert len(after - before) == 1

    def test_hop_is_first_shell(self, engine):
        before = set(engine.vacancy_rows.tolist())
        engine.step()
        after = set(engine.vacancy_rows.tolist())
        (old,) = before - after
        (new,) = after - before
        assert new in engine.model.first_matrix[old]

    def test_vacancy_count_conserved_long_run(self, engine):
        n0 = len(engine.vacancy_rows)
        engine.run(max_events=300)
        assert len(engine.vacancy_rows) == n0

    def test_frozen_perfect_lattice(self, lattice8, potential, rate_params):
        engine = SerialAKMC(lattice8, potential, rate_params, seed=1)
        result = engine.run(max_events=10)
        assert result.events == 0

    def test_run_needs_a_bound(self, engine):
        with pytest.raises(ValueError, match="max_events"):
            engine.run()

    def test_t_threshold_stops_run(self, engine):
        result = engine.run(t_threshold=1.0, max_events=10**6)
        assert result.time >= 1.0
        assert result.events < 10**6

    def test_deterministic_under_seed(
        self, lattice8, potential, rate_params, kmc_initial_occ
    ):
        finals = []
        for _ in range(2):
            e = SerialAKMC(
                lattice8, potential, rate_params, kmc_initial_occ, seed=3
            )
            finals.append(e.run(max_events=50).occupancy)
        assert np.array_equal(finals[0], finals[1])

    def test_rate_cache_matches_uncached(
        self, lattice8, potential, rate_params, kmc_initial_occ
    ):
        # Run the same flat-rebuild trajectory with the cache cleared
        # every step; the trajectories must be identical (the cache is a
        # pure optimization).  Catalog/flat equivalence has its own
        # tests in test_kmc_catalog.py.
        cached = SerialAKMC(
            lattice8, potential, rate_params, kmc_initial_occ, seed=4,
            use_catalog=False,
        )
        uncached = SerialAKMC(
            lattice8, potential, rate_params, kmc_initial_occ, seed=4,
            use_catalog=False,
        )
        for _ in range(25):
            cached.step()
            uncached._rate_cache.clear()
            uncached.step()
        assert np.array_equal(cached.occ, uncached.occ)
        assert cached.time == pytest.approx(uncached.time, rel=1e-12)

    def test_occupancy_length_validated(self, lattice8, potential, rate_params):
        with pytest.raises(ValueError, match="occupancy"):
            SerialAKMC(
                lattice8, potential, rate_params, np.ones(5, dtype=np.int8)
            )


class TestClusteringPhysics:
    def test_vacancies_aggregate_over_time(
        self, lattice8, potential, rate_params, kmc_model8
    ):
        from repro.core.clusters import clustering_report

        occ0 = place_random_vacancies(
            kmc_model8, 25, np.random.default_rng(42)
        )
        vac0 = kmc_model8.sites[np.flatnonzero(occ0 == VACANCY)]
        before = clustering_report(lattice8, vac0)
        engine = SerialAKMC(lattice8, potential, rate_params, occ0, seed=9)
        result = engine.run(max_events=2000)
        after = clustering_report(lattice8, result.vacancy_ranks)
        # The Figure 17 observable: aggregation.
        assert after.max_cluster > before.max_cluster
        assert after.mean_nn_distance < before.mean_nn_distance
        assert after.n_clusters < before.n_clusters
