"""Distributed damage MD tests: the full §2.1.1 run-away protocol.

The strongest assertion in the suite: a parallel cascade — vacancies in
ghost exchanges, run-away migration between ranks, run-away ghost copies
in the force loop — reproduces the serial engine's trajectory and defect
inventory essentially bitwise.
"""

import numpy as np
import pytest

from repro.lattice.bcc import BCCLattice
from repro.md.cascade import CascadeConfig, insert_pka
from repro.md.engine import MDConfig, MDEngine
from repro.md.parallel_damage import ParallelDamageMD


def run_pair(lattice, potential, pka_site, nranks, nsteps=35, seed=3):
    """(serial engine, parallel result) for the same cascade."""
    cfg = MDConfig(temperature=300.0, seed=seed)
    serial = MDEngine(lattice, potential, cfg)
    serial.initialize()
    row = insert_pka(
        serial.state,
        CascadeConfig(pka_energy=120.0, pka_site=pka_site),
        lattice,
    )
    pka_v = serial.state.v[row].copy()
    serial.run(
        nsteps=nsteps, displacement_threshold=1.2, runaway_check_interval=5
    )
    parallel = ParallelDamageMD(lattice, potential, cfg, nranks=nranks)
    result = parallel.run(
        nsteps=nsteps,
        displacement_threshold=1.2,
        runaway_check_interval=5,
        pka=(row, pka_v),
    )
    return serial, result


@pytest.fixture(scope="module")
def centered(potential):
    # PKA near the box center: the cascade lives inside one octant.
    lattice = BCCLattice(8, 8, 8)
    return run_pair(lattice, potential, pka_site=None, nranks=8)


@pytest.fixture(scope="module")
def boundary(potential):
    # PKA at a subdomain corner: damage and run-aways cross ranks.
    lattice = BCCLattice(8, 8, 8)
    corner_site = int(lattice.rank_of(1, 3, 3, 3))  # at the 2x2x2 seam
    return run_pair(lattice, potential, pka_site=corner_site, nranks=8)


def _assert_matches_serial(serial, result):
    occ = serial.state.occupied
    assert np.abs(result.positions[occ] - serial.state.x[occ]).max() < 1e-11
    assert set(result.vacancy_ranks.tolist()) == set(
        serial.state.vacancy_rows().tolist()
    )
    serial_runs = sorted(
        (a.id, a.x.tolist()) for a in serial.nblist.runaways
    )
    parallel_runs = sorted(
        (int(i), x.tolist())
        for i, x in zip(result.runaway_ids, result.runaway_positions, strict=True)
    )
    assert [r[0] for r in serial_runs] == [r[0] for r in parallel_runs]
    for (sid, sx), (_pid, px) in zip(serial_runs, parallel_runs, strict=True):
        assert np.abs(np.array(sx) - np.array(px)).max() < 1e-11, sid


class TestCenteredCascade:
    def test_produces_damage(self, centered):
        serial, _result = centered
        assert serial.state.nvacancies >= 1

    def test_matches_serial(self, centered):
        serial, result = centered
        _assert_matches_serial(serial, result)


class TestBoundaryCascade:
    def test_produces_damage(self, boundary):
        serial, _result = boundary
        assert serial.state.nvacancies >= 1

    def test_damage_spans_multiple_ranks(self, boundary):
        # The point of this fixture: the defect inventory is distributed.
        serial, result = boundary
        from repro.lattice.domain import DomainDecomposition

        lattice = BCCLattice(8, 8, 8)
        decomp = DomainDecomposition(lattice, (2, 2, 2))
        touched = {
            decomp.owner_of_site(int(r)) for r in result.vacancy_ranks
        }
        touched |= {
            decomp.owner_of_site(int(lattice.nearest_site(x)))
            for x in result.runaway_positions
        }
        assert len(touched) >= 2

    def test_matches_serial(self, boundary):
        serial, result = boundary
        _assert_matches_serial(serial, result)


class TestMechanics:
    def test_rank_count_invariance(self, potential):
        lattice = BCCLattice(8, 8, 8)
        _serial2, r2 = None, None
        results = {}
        for nranks in (2, 8):
            _s, results[nranks] = run_pair(
                lattice, potential, pka_site=None, nranks=nranks, nsteps=20
            )
        assert np.allclose(
            results[2].positions, results[8].positions, atol=1e-11
        )
        assert set(results[2].vacancy_ranks.tolist()) == set(
            results[8].vacancy_ranks.tolist()
        )

    def test_nsteps_validated(self, potential):
        pmd = ParallelDamageMD(BCCLattice(8, 8, 8), potential, nranks=2)
        with pytest.raises(ValueError, match="nsteps"):
            pmd.run(nsteps=0)

    def test_no_damage_without_pka(self, potential):
        lattice = BCCLattice(8, 8, 8)
        pmd = ParallelDamageMD(
            lattice, potential, MDConfig(temperature=300.0, seed=1), nranks=8
        )
        result = pmd.run(nsteps=10, displacement_threshold=1.2)
        assert len(result.vacancy_ranks) == 0
        assert len(result.runaway_ids) == 0
