"""Blocked CPE kernel tests: correctness + the Figure 9 cost structure."""

import numpy as np
import pytest

from repro.md.forces import compute_energy_forces
from repro.md.neighbors.lattice_list import LatticeNeighborList
from repro.md.state import AtomState
from repro.sunway.arch import SunwayArch
from repro.sunway.kernel import (
    STRATEGY_LADDER,
    BlockedEAMKernel,
    KernelStrategy,
)


@pytest.fixture(scope="module")
def kernel_system(lattice5, potential):
    state = AtomState.perfect(lattice5)
    rng = np.random.default_rng(21)
    state.x = state.x + rng.normal(0, 0.05, state.x.shape)
    nbl = LatticeNeighborList(lattice5, potential.cutoff)
    ref = state.copy()
    energy = compute_energy_forces(potential, ref, nbl)
    return state, nbl, ref.f.copy(), energy


@pytest.fixture(scope="module")
def ladder_reports(potential):
    """Cost-structure runs at a scale where blocks and reuse matter.

    At the 5^3 correctness scale each thread gets one tiny block and the
    per-pass table loads dominate; the Figure 9 cost shape emerges from
    ~3 blocks per slab upward (20^3 = 16,000 sites over 64 threads).
    """
    from repro.lattice.bcc import BCCLattice

    lattice = BCCLattice(20, 20, 20)
    state = AtomState.perfect(lattice)
    rng = np.random.default_rng(21)
    state.x = state.x + rng.normal(0, 0.05, state.x.shape)
    nbl = LatticeNeighborList(lattice, potential.cutoff)
    arch = SunwayArch()
    return {
        s.name: BlockedEAMKernel(arch, potential, s, table_points=5000).run_step(
            state, nbl
        )
        for s in STRATEGY_LADDER
    }


class TestCorrectness:
    @pytest.fixture(scope="class")
    def small_reports(self, kernel_system, potential):
        state, nbl, _f, _e = kernel_system
        arch = SunwayArch()
        return {
            s.name: BlockedEAMKernel(
                arch, potential, s, table_points=5000
            ).run_step(state, nbl)
            for s in STRATEGY_LADDER
        }

    def test_forces_identical_to_md_engine_all_strategies(
        self, kernel_system, small_reports
    ):
        _state, _nbl, ref_forces, _e = kernel_system
        for name, report in small_reports.items():
            assert np.allclose(report.forces, ref_forces, atol=1e-12), name

    def test_energy_identical_to_md_engine(self, kernel_system, small_reports):
        _s, _n, _f, ref_energy = kernel_system
        for name, report in small_reports.items():
            assert report.energy == pytest.approx(ref_energy, rel=1e-12), name

    def test_central_range_partition_sums_to_whole(
        self, kernel_system, potential
    ):
        state, nbl, ref_forces, _e = kernel_system
        kernel = BlockedEAMKernel(
            SunwayArch(), potential, STRATEGY_LADDER[1], table_points=5000
        )
        half = state.n // 2
        r1 = kernel.run_step(state, nbl, central_range=(0, half))
        r2 = kernel.run_step(state, nbl, central_range=(half, state.n))
        merged = r1.forces + r2.forces
        assert np.allclose(merged, ref_forces, atol=1e-12)

    def test_invalid_range_rejected(self, kernel_system, potential):
        state, nbl, _f, _e = kernel_system
        kernel = BlockedEAMKernel(
            SunwayArch(), potential, STRATEGY_LADDER[1], table_points=5000
        )
        with pytest.raises(ValueError, match="range"):
            kernel.run_step(state, nbl, central_range=(5, 2))


class TestCostStructure:
    def test_traditional_pays_3_gets_per_interaction(self, ladder_reports):
        # "3 times for each neighbor atom at each time step" + 1 get per
        # atom for the embedding pass + the block transfers.
        rep = ladder_reports["TraditionalTable"]
        per_interaction = rep.dma.gets / rep.interactions
        assert 3.0 < per_interaction < 3.3

    def test_compacted_eliminates_per_neighbor_gets(self, ladder_reports):
        trad = ladder_reports["TraditionalTable"]
        comp = ladder_reports["CompactedTable"]
        assert comp.dma.operations < 0.05 * trad.dma.operations

    def test_figure9_ordering(self, ladder_reports):
        t = {k: r.total_time for k, r in ladder_reports.items()}
        assert (
            t["TraditionalTable"]
            > t["CompactedTable"]
            > t["CompactedTable+DataReuse"]
            >= t["CompactedTable+DataReuse+DoubleBuffer"]
        )

    def test_compacted_improvement_in_paper_band(self, ladder_reports):
        # Paper: 54.7% on average; shape assertion per DESIGN.md: >= 40%.
        t = {k: r.total_time for k, r in ladder_reports.items()}
        improvement = (
            t["TraditionalTable"] - t["CompactedTable"]
        ) / t["TraditionalTable"]
        assert 0.40 < improvement < 0.75

    def test_reuse_improvement_small_positive(self, ladder_reports):
        t = {k: r.total_time for k, r in ladder_reports.items()}
        gain = (
            t["CompactedTable"] - t["CompactedTable+DataReuse"]
        ) / t["CompactedTable"]
        assert 0.0 < gain < 0.12

    def test_double_buffer_no_big_gain(self, ladder_reports):
        # Paper: "double buffer does not bring obvious performance
        # improvement".
        t = {k: r.total_time for k, r in ladder_reports.items()}
        gain = (
            t["CompactedTable+DataReuse"]
            - t["CompactedTable+DataReuse+DoubleBuffer"]
        ) / t["CompactedTable+DataReuse"]
        assert gain < 0.08

    def test_double_buffer_halves_block_size(self, ladder_reports):
        db = ladder_reports["CompactedTable+DataReuse+DoubleBuffer"]
        single = ladder_reports["CompactedTable+DataReuse"]
        assert db.block_sites <= single.block_sites // 2 + 1


class TestPlanning:
    def test_block_fits_local_store_with_table(self, potential):
        kernel = BlockedEAMKernel(
            SunwayArch(), potential, STRATEGY_LADDER[1], table_points=5000
        )
        table = kernel.compacted_table_bytes
        per_site = kernel._per_site_buffer_bytes()
        assert table + kernel.block_sites * per_site <= 64 * 1024

    def test_traditional_table_bytes_match_paper(self, potential):
        kernel = BlockedEAMKernel(
            SunwayArch(), potential, STRATEGY_LADDER[0], table_points=5000
        )
        assert kernel.traditional_table_bytes == pytest.approx(
            273 * 1024, rel=0.03
        )
        assert kernel.compacted_table_bytes == pytest.approx(
            39 * 1024, rel=0.03
        )

    def test_tiny_local_store_rejected(self, potential):
        from repro.sunway.localstore import LocalStoreOverflow

        arch = SunwayArch(local_store_bytes=2 * 1024)
        with pytest.raises(LocalStoreOverflow):
            BlockedEAMKernel(arch, potential, STRATEGY_LADDER[1], table_points=5000)

    def test_unknown_layout_rejected(self):
        with pytest.raises(ValueError, match="layout"):
            KernelStrategy("bad", table_layout="fancy")
