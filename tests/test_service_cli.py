"""The service CLI surface: submit -> serve --drain -> status -> result."""

import json

import pytest

from repro.cli import main

SPEC_FLAGS = [
    "--cells", "5",
    "--md-steps", "30",
    "--events", "25",
    "--table-points", "500",
    "--trajectory-every", "1",
]


def _submit(root, *extra):
    return main(["submit", "--root", str(root), *SPEC_FLAGS, *extra])


class TestFlow:
    def test_submit_serve_status_result(self, capsys, tmp_path):
        # Two identical specs and one seed-variant: the drained pool
        # must execute twice and dedupe once.
        assert _submit(tmp_path, "--seed", "7") == 0
        assert _submit(tmp_path, "--seed", "7") == 0
        assert _submit(tmp_path, "--seed", "8") == 0
        out = capsys.readouterr().out
        assert "submitted job-000001" in out
        assert "submitted job-000003" in out

        assert main(
            ["serve", "--root", str(tmp_path), "--workers", "2", "--drain"]
        ) == 0
        out = capsys.readouterr().out
        assert "queue drained" in out
        assert "-> executing" in out
        assert "attached to in-flight" in out or "cache hit" in out

        assert main(["status", "--root", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "jobs: 3 total, 3 done" in out
        assert "executions: 2, deduplicated: 1, retries: 0" in out
        summary_line = next(
            line for line in out.splitlines() if line.startswith("summary:")
        )
        stats = json.loads(summary_line.split("summary:", 1)[1])
        assert stats["states"]["done"] == 3

        assert main(
            ["result", "--root", str(tmp_path), "job-000002"]
        ) == 0
        out = capsys.readouterr().out
        assert "job-000002 key=" in out
        assert "* result.json" in out
        assert "* vacancies_after_kmc.npy" in out
        assert "trajectory:" in out

    def test_status_single_job_shows_snapshot(self, capsys, tmp_path):
        assert _submit(tmp_path) == 0
        assert main(
            ["serve", "--root", str(tmp_path), "--workers", "1", "--drain"]
        ) == 0
        capsys.readouterr()
        assert main(
            ["status", "--root", str(tmp_path), "--job", "job-000001"]
        ) == 0
        out = capsys.readouterr().out
        assert "job-000001  done" in out
        assert "stage: done" in out

    def test_result_json_mode(self, capsys, tmp_path):
        assert _submit(tmp_path) == 0
        assert main(
            ["serve", "--root", str(tmp_path), "--workers", "1", "--drain"]
        ) == 0
        capsys.readouterr()
        assert main(
            ["result", "--root", str(tmp_path), "job-000001", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == "repro-service-result-v1"
        assert payload["vacancies_after_kmc"] >= 0

    def test_result_of_unfinished_job_exits_1(self, capsys, tmp_path):
        assert _submit(tmp_path) == 0
        capsys.readouterr()
        assert main(
            ["result", "--root", str(tmp_path), "job-000001"]
        ) == 1
        assert "pending" in capsys.readouterr().err

    def test_serve_validates_workers(self, capsys, tmp_path):
        with pytest.raises(ValueError, match="workers"):
            main(
                ["serve", "--root", str(tmp_path), "--workers", "0",
                 "--drain"]
            )

    def test_coupled_runs_through_the_spec_path(self, capsys):
        # The coupled CLI is a thin client of the same ScenarioSpec
        # construction as submit; spec-level validation reaches it too.
        assert main(["coupled", "--cells", "6", "--events", "30"]) == 0
        assert "after KMC" in capsys.readouterr().out
