"""Scaling-model tests: calibration, arithmetic, paper-shape bands."""

import pytest

from repro.perfmodel.calibrate import calibrate_from_kernels
from repro.perfmodel.coupled_model import (
    CoupledScalingModel,
    paper_coupled_atoms_per_cg,
    paper_coupled_cores,
)
from repro.perfmodel.kmc_model import (
    KMCScalingModel,
    paper_kmc_strong_cores,
    paper_kmc_weak_cores,
)
from repro.perfmodel.machine import TAIHULIGHT, ScalingNetwork
from repro.perfmodel.md_model import (
    MDScalingModel,
    boundary_sites,
    paper_core_counts_strong,
    paper_core_counts_weak,
)


@pytest.fixture(scope="module")
def costs():
    return calibrate_from_kernels(cells=12, table_points=2000)


class TestMachine:
    def test_total_machine_size(self):
        # 40,960 nodes x 4 CGs x 65 cores = 10,649,600 cores.
        assert TAIHULIGHT.total_cores == 10_649_600

    def test_paper_core_counts_are_whole_cgs(self):
        for cores in (
            paper_core_counts_strong()
            + paper_core_counts_weak()
            + paper_coupled_cores()
        ):
            assert cores % 65 == 0
            TAIHULIGHT.cgs_from_cores(cores)

    def test_non_whole_cg_count_rejected(self):
        with pytest.raises(ValueError):
            TAIHULIGHT.cgs_from_cores(100)

    def test_network_contention_grows(self):
        net = ScalingNetwork()
        assert net.beta(100_000) > net.beta(1_000)
        assert net.beta(500) == net.beta(1000) == net.beta0

    def test_collective_grows_superlinearly_in_depth(self):
        net = ScalingNetwork()
        assert net.collective(100_000) > 2 * net.collective(1_000)


class TestBoundary:
    def test_boundary_sites_subadditive(self):
        # Surface fraction shrinks with subdomain size.
        small = boundary_sites(1e5) / 1e5
        large = boundary_sites(1e8) / 1e8
        assert large < small

    def test_tiny_subdomain_all_boundary(self):
        assert boundary_sites(100.0) == pytest.approx(100.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            boundary_sites(0.0)


class TestCalibration:
    def test_atom_time_plausible(self, costs):
        # Microseconds per atom per step would be absurd; tens of ns is
        # the modeled CG throughput regime.
        assert 1e-9 < costs.md_atom_step_time < 1e-6

    def test_calibration_cached(self):
        a = calibrate_from_kernels(cells=12, table_points=2000)
        b = calibrate_from_kernels(cells=12, table_points=2000)
        assert a.md_atom_step_time == b.md_atom_step_time


class TestMDModel:
    def test_strong_scaling_paper_band(self, costs):
        # Paper: 26.4x / 41.3% at 64x cores.
        rows = MDScalingModel(costs).strong_scaling(
            3.2e10, paper_core_counts_strong()
        )
        top = rows[-1]
        assert 18 < top["speedup"] < 40
        assert 0.30 < top["efficiency"] < 0.55

    def test_strong_scaling_efficiency_monotone_decreasing(self, costs):
        rows = MDScalingModel(costs).strong_scaling(
            3.2e10, paper_core_counts_strong()
        )
        effs = [r["efficiency"] for r in rows]
        assert all(a >= b - 1e-12 for a, b in zip(effs, effs[1:], strict=False))

    def test_weak_scaling_paper_band(self, costs):
        # Paper: 85% at 6.656M cores; compute flat, comm grows.
        rows = MDScalingModel(costs).weak_scaling(
            3.9e7, paper_core_counts_weak()
        )
        assert 0.75 < rows[-1]["efficiency"] < 0.95
        assert rows[-1]["compute"] == pytest.approx(rows[0]["compute"])
        assert rows[-1]["comm"] > rows[0]["comm"]

    def test_memory_headroom(self, costs):
        model = MDScalingModel(costs)
        assert model.max_atoms_per_cg(88) > 3.9e7  # the paper's weak load

    def test_empty_cores_list_rejected(self, costs):
        with pytest.raises(ValueError):
            MDScalingModel(costs).strong_scaling(1e9, [])


class TestKMCModel:
    def test_strong_scaling_superlinear_window(self, costs):
        # Paper: super-linear between 3,000 and 12,000 master cores.
        model = KMCScalingModel(costs, vacancy_concentration=4.5e-5)
        rows = model.strong_scaling(3.2e10, paper_kmc_strong_cores())
        super_cores = [r["cores"] for r in rows if r["efficiency"] > 1.0]
        assert super_cores, "expected a super-linear region"
        assert all(3000 <= c <= 24000 for c in super_cores)

    def test_strong_scaling_final_band(self, costs):
        # Paper: 18.5x / 58.2% at 32x.
        model = KMCScalingModel(costs, vacancy_concentration=4.5e-5)
        rows = model.strong_scaling(3.2e10, paper_kmc_strong_cores())
        assert 10 < rows[-1]["speedup"] < 28
        assert 0.35 < rows[-1]["efficiency"] < 0.85

    def test_l2_transition_in_model(self, costs):
        model = KMCScalingModel(costs, vacancy_concentration=4.5e-5)
        rows = model.strong_scaling(3.2e10, paper_kmc_strong_cores())
        resident = [r["l2_resident"] for r in rows]
        assert resident[0] is False
        assert resident[-1] is True

    def test_weak_scaling_paper_band(self, costs):
        # Paper: 74% at 102,400 cores; compute flat, comm grows.
        model = KMCScalingModel(costs, vacancy_concentration=2e-6)
        rows = model.weak_scaling(1e7, paper_kmc_weak_cores())
        assert 0.60 < rows[-1]["efficiency"] < 0.95
        assert rows[-1]["compute"] == pytest.approx(rows[0]["compute"])
        assert rows[-1]["sync"] > rows[0]["sync"]

    def test_bad_cores_rejected(self, costs):
        with pytest.raises(ValueError):
            KMCScalingModel(costs).cycle_time(1e9, 0)


class TestCoupledModel:
    def test_weak_scaling_paper_band(self, costs):
        # Paper: ~99% -> 75.7% over 97.5k -> 6.24M cores.
        model = CoupledScalingModel(costs)
        rows = model.weak_scaling(
            paper_coupled_atoms_per_cg(), paper_coupled_cores()
        )
        assert rows[0]["efficiency"] == pytest.approx(1.0)
        assert 0.50 < rows[-1]["efficiency"] < 0.90
        effs = [r["efficiency"] for r in rows]
        assert all(a >= b for a, b in zip(effs, effs[1:], strict=False))

    def test_md_dominates_runtime(self, costs):
        # 50,000 MD steps dwarf the KMC cycles in the coupled budget,
        # matching the paper's 8.6-hour MD-heavy breakdown.
        model = CoupledScalingModel(costs)
        r = model.run_time(paper_coupled_atoms_per_cg(), 97500)
        assert r["md_time"] > r["kmc_time"]
