"""Campaign configuration tests."""

import pytest

from repro.config import SimulationConfig, paper_setup
from repro.kmc.events import RateParameters
from repro.md.engine import MDConfig


class TestSimulationConfig:
    def test_paper_setup_defaults(self):
        cfg = paper_setup()
        assert cfg.temperature == 600.0
        assert cfg.lattice_constant == 2.855
        assert cfg.nsites == 2 * 8**3

    def test_stage_temperatures_coherent(self):
        cfg = paper_setup(cells=10)
        assert cfg.md.temperature == cfg.temperature
        assert cfg.rates.temperature == cfg.temperature
        assert cfg.cascade.temperature == cfg.temperature

    def test_incoherent_temperatures_rejected(self):
        with pytest.raises(ValueError, match="disagrees"):
            SimulationConfig(
                temperature=600.0,
                md=MDConfig(temperature=300.0),
            )

    def test_small_box_rejected(self):
        with pytest.raises(ValueError, match="cells"):
            paper_setup(cells=4)

    def test_rates_block_default(self):
        cfg = paper_setup()
        assert isinstance(cfg.rates, RateParameters)

    def test_seed_threads_through(self):
        cfg = paper_setup(seed=99)
        assert cfg.seed == 99
        assert cfg.md.seed == 99
