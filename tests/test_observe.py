"""The observability spine: phases, counters, export, overhead, threading."""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro import observe as obs
from repro.observe import Registry


@pytest.fixture(autouse=True)
def _observation_off():
    """Every test starts and ends with observation disabled."""
    obs.disable()
    yield
    obs.disable()


class TestPhaseNesting:
    def test_nested_paths_aggregate(self):
        with obs.observing() as reg:
            for _ in range(3):
                with obs.phase("outer"):
                    with obs.phase("inner"):
                        pass
        assert reg.phases[("outer",)].count == 3
        assert reg.phases[("outer", "inner")].count == 3
        assert reg.phases[("outer",)].total >= reg.phases[("outer", "inner")].total

    def test_reentrant_same_name(self):
        """Recursive use of one name produces distinct stack paths."""
        with obs.observing() as reg:
            with obs.phase("p"):
                with obs.phase("p"):
                    pass
        assert reg.phases[("p",)].count == 1
        assert reg.phases[("p", "p")].count == 1

    def test_sibling_phases_do_not_nest(self):
        with obs.observing() as reg:
            with obs.phase("a"):
                pass
            with obs.phase("b"):
                pass
        assert ("a",) in reg.phases
        assert ("b",) in reg.phases
        assert ("a", "b") not in reg.phases

    def test_exception_still_records(self):
        with obs.observing() as reg:
            with pytest.raises(ValueError):
                with obs.phase("doomed"):
                    raise ValueError("boom")
        assert reg.phases[("doomed",)].count == 1

    def test_counters_and_gauges(self):
        with obs.observing() as reg:
            obs.add("md.count")
            obs.add("md.count", 4)
            obs.set_gauge("md.level", 1.5)
            obs.set_gauge("md.level", 2.5)
        assert reg.counters["md.count"] == 5
        assert reg.gauges["md.level"] == 2.5

    def test_observing_restores_previous(self):
        outer = obs.enable()
        with obs.observing() as inner:
            assert obs.active() is inner
        assert obs.active() is outer


class TestDisabledPath:
    def test_disabled_is_shared_null(self):
        assert not obs.enabled()
        assert obs.phase("x") is obs.NULL_PHASE
        assert obs.phase("y") is obs.NULL_PHASE

    def test_disabled_calls_are_noops(self):
        with obs.phase("x"):
            obs.add("c", 10)
            obs.set_gauge("g", 1.0)
        assert obs.active() is None

    def test_null_recorder_overhead(self):
        """50k disabled phase entries must stay far under timing noise."""
        t0 = time.perf_counter()
        for _ in range(50_000):
            with obs.phase("hot.loop"):
                pass
        elapsed = time.perf_counter() - t0
        # Generous bound (~20 us/iteration); the real cost is ~100x lower.
        assert elapsed < 1.0


class TestThreadSafety:
    def test_world_ranks_aggregate_into_one_registry(self):
        from repro.runtime.simmpi import World

        nranks, reps = 4, 25

        def main(comm):
            for _ in range(reps):
                with obs.phase("rank.work"):
                    pass
            if comm.rank != 0:
                comm.send(0, tag=1, payload=np.arange(8))
            else:
                for _ in range(comm.size - 1):
                    comm.recv(tag=1)
            comm.barrier()

        with obs.observing() as reg:
            world = World(nranks)
            world.run(main)
        assert reg.phases[("rank.work",)].count == nranks * reps
        # TrafficStats feeds the same registry: message counts/bytes are
        # reachable through the unified counters.
        assert reg.counters["runtime.sent_messages"] == world.stats.total_messages
        assert reg.counters["runtime.sent_bytes"] == world.stats.total_sent_bytes
        assert reg.counters["runtime.recv_messages"] >= nranks - 1
        assert reg.counters["runtime.recv_messages"] == sum(
            c.recv_messages for c in world.stats.ranks
        )
        # Every rank got a name in the registry.  The process backend
        # prefixes absorbed child names with "rankN/", so match suffixes.
        names = set(reg.thread_names.values())
        for r in range(nranks):
            assert any(n.endswith(f"simmpi-rank-{r}") for n in names)

    def test_publish_snapshot_gauges(self):
        from repro.runtime.simmpi import World

        def main(comm):
            comm.barrier()

        world = World(2)
        world.run(main)  # runs unobserved
        assert world.stats.total_collectives > 0
        with obs.observing() as reg:
            world.stats.publish()
        assert (
            reg.gauges["runtime.world.collectives"]
            == world.stats.total_collectives
        )


class TestChromeTrace:
    def test_export_valid_and_monotonic(self, tmp_path):
        with obs.observing() as reg:
            with obs.phase("md.step"):
                with obs.phase("md.force"):
                    pass
            with obs.phase("kmc.cycle"):
                pass
            obs.add("runtime.sent_bytes", 128)
            obs.set_gauge("sunway.athread.imbalance", 1.25)
        path = tmp_path / "trace.json"
        obs.write_chrome_trace(reg, str(path))
        data = json.loads(path.read_text())
        events = data["traceEvents"]
        assert events, "trace must not be empty"
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts), "ts fields must be monotonic"
        for e in events:
            assert e["ph"] in {"X", "C", "M"}
            assert {"name", "ph", "pid", "tid", "ts"} <= set(e)
            if e["ph"] == "X":
                assert e["dur"] >= 0
        cats = {e.get("cat") for e in events if e["ph"] in {"X", "C"}}
        assert {"md", "kmc", "runtime", "sunway"} <= cats
        counter_events = [e for e in events if e["ph"] == "C"]
        assert any(e["name"] == "runtime.sent_bytes" for e in counter_events)
        assert all("value" in e["args"] for e in counter_events)

    def test_event_cap_counts_drops(self):
        reg = Registry(trace=True, max_events=5)
        with obs.observing(reg):
            for _ in range(10):
                with obs.phase("p"):
                    pass
        assert len(reg.events) == 5
        assert reg.dropped_events == 5
        assert reg.phases[("p",)].count == 10  # aggregates never drop

    def test_no_trace_mode_keeps_aggregates(self):
        with obs.observing(trace=False) as reg:
            with obs.phase("p"):
                pass
        assert reg.events == []
        assert reg.phases[("p",)].count == 1


class TestReport:
    def test_tree_structure_and_counters(self):
        with obs.observing() as reg:
            with obs.phase("coupled.pipeline"):
                with obs.phase("coupled.cascade"):
                    pass
            obs.add("kmc.events", 42)
        text = obs.format_report(reg)
        lines = text.splitlines()
        pipeline = next(i for i, l in enumerate(lines) if "coupled.pipeline" in l)
        cascade = next(i for i, l in enumerate(lines) if "coupled.cascade" in l)
        assert cascade > pipeline
        indent = lambda s: len(s) - len(s.lstrip())  # noqa: E731
        assert indent(lines[cascade]) > indent(lines[pipeline])
        assert "kmc.events" in text
        assert "42" in text

    def test_empty_registry_renders(self):
        assert "no phases" in obs.format_report(Registry())

    def test_summary_is_json_serializable(self):
        with obs.observing() as reg:
            with obs.phase("a"):
                pass
            obs.add("c", 1)
        json.dumps(reg.summary())
        assert reg.subsystems() == {"a", "c"}
