"""DMA engine, arch constants and Athread pool tests."""

import pytest

from repro.sunway.arch import CoreGroup, SunwayArch
from repro.sunway.athread import AthreadPool
from repro.sunway.dma import DMAEngine, DMAStats


class TestArch:
    def test_core_counting_matches_paper(self):
        # 65 cores per CG: "104,000 (including 1,600 master cores and
        # 1,024,000 slave cores)".
        arch = SunwayArch()
        assert arch.cores_per_cg == 65
        assert 1600 * arch.cores_per_cg == 104_000

    def test_dma_time_components(self):
        arch = SunwayArch(dma_latency_s=1e-7, dma_bandwidth=1e9)
        assert arch.dma_time(0) == pytest.approx(1e-7)
        assert arch.dma_time(1000) == pytest.approx(1e-7 + 1e-6)

    def test_compute_time(self):
        arch = SunwayArch()
        assert arch.compute_time(1.45e9) == pytest.approx(1.0)

    def test_validation(self):
        arch = SunwayArch()
        with pytest.raises(ValueError):
            arch.dma_time(-1)
        with pytest.raises(ValueError):
            arch.compute_time(-1)

    def test_memory_fits_atoms(self):
        cg = CoreGroup()
        # 8 GB / 88 B per atom ~ 9.8e7 atoms; the paper's weak scaling
        # uses 3.9e7 atoms per CG — must fit.
        assert cg.memory_fits_atoms(3.9e7, 88)
        assert not cg.memory_fits_atoms(2e8, 88)


class TestDMAEngine:
    def test_get_put_counters(self):
        dma = DMAEngine()
        dma.get(100, count=3)
        dma.put(50)
        assert dma.stats.gets == 3
        assert dma.stats.puts == 1
        assert dma.stats.get_bytes == 300
        assert dma.stats.put_bytes == 50
        assert dma.stats.operations == 4

    def test_time_accumulates(self):
        arch = SunwayArch(dma_latency_s=1e-6, dma_bandwidth=1e9)
        dma = DMAEngine(arch)
        t = dma.get(1000, count=2)
        assert t == pytest.approx(2 * (1e-6 + 1e-6))
        assert dma.stats.time == pytest.approx(t)

    def test_reset(self):
        dma = DMAEngine()
        dma.get(10)
        dma.reset()
        assert dma.stats.operations == 0

    def test_merge(self):
        a = DMAStats(gets=1, get_bytes=10, time=0.5)
        b = DMAStats(puts=2, put_bytes=20, time=0.25)
        a.merge(b)
        assert a.operations == 3
        assert a.total_bytes == 30
        assert a.time == 0.75

    def test_validation(self):
        with pytest.raises(ValueError):
            DMAEngine().get(-1)


class TestAthreadPool:
    def test_default_64_threads(self):
        assert AthreadPool().nthreads == 64

    def test_partition_covers_everything(self):
        pool = AthreadPool(8)
        slabs = pool.partition(100)
        assert len(slabs) == 8
        assert sum(s.nsites for s in slabs) == 100
        assert slabs[0].start == 0
        assert slabs[-1].stop == 100

    def test_partition_balanced(self):
        slabs = AthreadPool(7).partition(100)
        sizes = [s.nsites for s in slabs]
        assert max(sizes) - min(sizes) <= 1

    def test_small_input_leaves_idle_threads(self):
        slabs = AthreadPool(64).partition(10)
        assert sum(1 for s in slabs if s.nsites == 0) == 54

    def test_rows(self):
        slab = AthreadPool(4).partition(8)[1]
        assert slab.rows().tolist() == [2, 3]

    def test_team_time_is_max(self):
        assert AthreadPool.team_time([1.0, 3.0, 2.0]) == 3.0
        assert AthreadPool.team_time([]) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            AthreadPool(0)
        with pytest.raises(ValueError):
            AthreadPool(4).partition(-1)
