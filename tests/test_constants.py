"""Unit-system and physical-constant tests."""

import math

import pytest

from repro import constants as c


class TestUnitSystem:
    def test_boltzmann_in_ev(self):
        assert c.KB_EV == pytest.approx(8.617333262e-5, rel=1e-9)

    def test_mvv2e_matches_si_derivation(self):
        amu = 1.66053906660e-27  # kg
        aps = 1e2  # 1 A/ps in m/s
        ev = 1.602176634e-19  # J
        assert c.MVV2E == pytest.approx(amu * aps**2 / ev, rel=1e-9)

    def test_fm2a_is_inverse_of_mvv2e(self):
        assert c.FM2A * c.MVV2E == pytest.approx(1.0, rel=1e-12)

    def test_iron_lattice_constant_matches_paper(self):
        # "The lattice constant is set to 2.855."
        assert c.FE_LATTICE_CONSTANT == 2.855

    def test_bcc_basis_size(self):
        assert c.BCC_ATOMS_PER_CELL == 2


class TestThermalVelocity:
    def test_sigma_zero_at_zero_temperature(self):
        assert c.thermal_velocity_sigma(0.0, c.FE_MASS) == 0.0

    def test_sigma_scales_sqrt_temperature(self):
        s1 = c.thermal_velocity_sigma(300.0, c.FE_MASS)
        s4 = c.thermal_velocity_sigma(1200.0, c.FE_MASS)
        assert s4 == pytest.approx(2.0 * s1, rel=1e-12)

    def test_sigma_scales_inverse_sqrt_mass(self):
        s1 = c.thermal_velocity_sigma(600.0, 50.0)
        s2 = c.thermal_velocity_sigma(600.0, 200.0)
        assert s1 == pytest.approx(2.0 * s2, rel=1e-12)

    def test_equipartition_roundtrip(self):
        # <1/2 m v_x^2> = 1/2 kB T per component.
        t = 600.0
        sigma = c.thermal_velocity_sigma(t, c.FE_MASS)
        energy = 0.5 * c.FE_MASS * c.MVV2E * sigma**2
        assert energy == pytest.approx(0.5 * c.KB_EV * t, rel=1e-12)

    def test_negative_temperature_rejected(self):
        with pytest.raises(ValueError, match="temperature"):
            c.thermal_velocity_sigma(-1.0, c.FE_MASS)

    def test_nonpositive_mass_rejected(self):
        with pytest.raises(ValueError, match="mass"):
            c.thermal_velocity_sigma(300.0, 0.0)


class TestKineticEnergy:
    def test_zero_velocity(self):
        assert c.kinetic_energy(c.FE_MASS, 0, 0, 0) == 0.0

    def test_known_value(self):
        # 1 amu at 1 A/ps along x.
        assert c.kinetic_energy(1.0, 1.0, 0.0, 0.0) == pytest.approx(
            0.5 * c.MVV2E
        )

    def test_isotropic(self):
        a = c.kinetic_energy(c.FE_MASS, 3.0, 0.0, 0.0)
        b = c.kinetic_energy(c.FE_MASS, 0.0, 0.0, 3.0)
        assert a == pytest.approx(b, rel=1e-15)

    def test_vacancy_formation_energy_matches_19_2_days(self):
        # The back-solved E_v+ must regenerate the paper's headline.
        c_real = math.exp(
            -c.FE_VACANCY_FORMATION_ENERGY / (c.KB_EV * 600.0)
        )
        t_real_days = 2e-4 * 2e-6 / c_real / c.DAY_TO_S
        assert t_real_days == pytest.approx(19.2, abs=0.1)
