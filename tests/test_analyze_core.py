"""Framework-core coverage: import resolution, pragmas, statement extents."""

import ast
import textwrap

from repro.analyze.core import (
    Finding,
    ImportMap,
    expand_statement_pragmas,
    is_suppressed,
    suppressed_codes,
)


def import_map(source):
    return ImportMap(ast.parse(textwrap.dedent(source)))


def call_expr(source):
    return ast.parse(textwrap.dedent(source)).body[0].value.func


class TestImportMapResolveCall:
    def test_plain_import_resolves_to_root(self):
        m = import_map("import numpy\n")
        assert m.resolve_call(call_expr("numpy.random.rand()")) == (
            "numpy.random.rand"
        )

    def test_aliased_import_keeps_full_dotted_path(self):
        m = import_map("import numpy.random as nr\n")
        assert m.resolve_call(call_expr("nr.rand()")) == "numpy.random.rand"

    def test_unaliased_dotted_import_binds_the_root_name(self):
        # ``import os.path`` binds ``os``; attribute chains extend it.
        m = import_map("import os.path\n")
        assert m.resolve_call(call_expr("os.path.join()")) == "os.path.join"

    def test_from_import_as_resolves_alias(self):
        m = import_map("from numpy import random as r\n")
        assert m.resolve_call(call_expr("r.rand()")) == "numpy.random.rand"

    def test_from_import_name_resolves_directly(self):
        m = import_map("from time import perf_counter\n")
        assert m.resolve_call(call_expr("perf_counter()")) == (
            "time.perf_counter"
        )

    def test_deep_attribute_chain(self):
        m = import_map("import numpy as np\n")
        assert m.resolve_call(call_expr("np.add.at(x, i, v)")) == "numpy.add.at"

    def test_unknown_roots_and_non_name_bases_are_none(self):
        m = import_map("import numpy as np\n")
        assert m.resolve_call(call_expr("local_fn()")) is None
        assert m.resolve_call(call_expr("obj.method()")) is None
        assert m.resolve_call(call_expr("get()().chained()")) is None

    def test_star_and_relative_imports_are_skipped(self):
        m = import_map("from numpy import *\nfrom . import helpers\n")
        assert m.resolve_call(call_expr("rand()")) is None
        assert m.resolve_call(call_expr("helpers.work()")) is None


class TestSuppressedCodes:
    def test_blanket_noqa_is_empty_frozenset(self):
        out = suppressed_codes("x = 1  # repro: noqa\n")
        assert out == {1: frozenset()}

    def test_scoped_codes_parse_with_spaces_and_case(self):
        out = suppressed_codes("x = 1  # repro: noqa(rep001, REP003 )\n")
        assert out == {1: frozenset({"REP001", "REP003"})}

    def test_justification_text_after_pragma_is_accepted(self):
        out = suppressed_codes(
            "t = time.time()  # repro: noqa(REP001) wall time is only logged\n"
        )
        assert out == {1: frozenset({"REP001"})}

    def test_unmarked_lines_have_no_entry(self):
        out = suppressed_codes("x = 1\ny = 2  # repro: noqa(REP001)\n")
        assert 1 not in out and 2 in out

    def test_is_suppressed_matches_code_and_blanket(self):
        f = Finding("REP001", "src/x.py", 3, 0, "m")
        assert is_suppressed(f, {3: frozenset()})
        assert is_suppressed(f, {3: frozenset({"REP001"})})
        assert not is_suppressed(f, {3: frozenset({"REP002"})})
        assert not is_suppressed(f, {4: frozenset()})


class TestStatementExtentPragmas:
    def test_pragma_covers_later_lines_of_multiline_statement(self):
        source = textwrap.dedent("""\
        import numpy as np

        x = compute(  # repro: noqa(REP001) seeded upstream
            np.random.rand(),
            3,
        )
        """)
        pragmas = expand_statement_pragmas(
            ast.parse(source), suppressed_codes(source)
        )
        # The call argument on line 4 anchors findings there; the pragma
        # on the statement head (line 3) must reach it.
        f = Finding("REP001", "src/x.py", 4, 4, "m")
        assert is_suppressed(f, pragmas)

    def test_pragma_on_def_line_does_not_blanket_the_body(self):
        source = textwrap.dedent("""\
        def f():  # repro: noqa(REP001) about the signature only
            return np.random.rand()
        """)
        pragmas = expand_statement_pragmas(
            ast.parse(source), suppressed_codes(source)
        )
        f = Finding("REP001", "src/x.py", 2, 11, "m")
        assert not is_suppressed(f, pragmas)

    def test_inner_line_codes_are_unioned_not_replaced(self):
        source = textwrap.dedent("""\
        x = compute(  # repro: noqa(REP001) head reason
            risky(),  # repro: noqa(REP003) inner reason
        )
        """)
        pragmas = expand_statement_pragmas(
            ast.parse(source), suppressed_codes(source)
        )
        assert pragmas[2] == frozenset({"REP001", "REP003"})

    def test_end_to_end_through_the_runner(self, tmp_path):
        from repro.analyze.runner import analyze_paths

        src = tmp_path / "src" / "repro" / "kmc"
        src.mkdir(parents=True)
        (src / "mod.py").write_text(
            textwrap.dedent("""\
            import numpy as np

            x = sum(  # repro: noqa(REP001) regression: multi-line extent
                [np.random.rand()]
            )
            """)
        )
        result = analyze_paths([tmp_path / "src"], root=tmp_path)
        assert [f for f in result.findings if f.rule == "REP001"] == []
        assert any(f.rule == "REP001" for f in result.suppressed)


class TestBaselineJustificationParsing:
    def test_unjustified_flag_and_placeholder_text(self):
        from repro.analyze.baseline import TODO_JUSTIFICATION, entry_is_justified

        base = {"rule": "REP001", "path": "p", "snippet": "s"}
        assert entry_is_justified({**base, "justification": "real reason"})
        assert not entry_is_justified(
            {**base, "justification": "real reason", "justified": False}
        )
        assert not entry_is_justified(
            {**base, "justification": TODO_JUSTIFICATION}
        )
        assert not entry_is_justified(
            {**base, "justification": f"  {TODO_JUSTIFICATION}  "}
        )
