"""Domain decomposition tests: exact partition, ghosts, sectors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lattice.bcc import BCCLattice
from repro.lattice.domain import (
    DIRECTIONS,
    DomainDecomposition,
    choose_grid,
    split_range,
)


class TestSplitRange:
    def test_even_split(self):
        assert split_range(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_remainder_goes_first(self):
        assert split_range(7, 3) == [(0, 3), (3, 5), (5, 7)]

    def test_single_part(self):
        assert split_range(5, 1) == [(0, 5)]

    def test_covers_without_gaps(self):
        bounds = split_range(17, 5)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == 17
        for (_lo1, hi1), (lo2, _hi2) in zip(bounds, bounds[1:], strict=False):
            assert hi1 == lo2

    def test_too_many_parts_rejected(self):
        with pytest.raises(ValueError, match="cannot split"):
            split_range(3, 4)

    @given(n=st.integers(1, 100), parts=st.integers(1, 20))
    @settings(max_examples=100, deadline=None)
    def test_split_property(self, n, parts):
        if parts > n:
            return
        bounds = split_range(n, parts)
        sizes = [hi - lo for lo, hi in bounds]
        assert sum(sizes) == n
        assert max(sizes) - min(sizes) <= 1


class TestChooseGrid:
    def test_cube_for_cubic_counts(self):
        assert choose_grid(8, (8, 8, 8)) == (2, 2, 2)
        assert choose_grid(27, (12, 12, 12)) == (3, 3, 3)

    def test_single_rank(self):
        assert choose_grid(1, (4, 4, 4)) == (1, 1, 1)

    def test_respects_cell_limits(self):
        grid = choose_grid(4, (1, 8, 8))
        assert grid[0] == 1
        assert grid[1] * grid[2] == 4

    def test_impossible_grid_rejected(self):
        with pytest.raises(ValueError, match="no valid process grid"):
            choose_grid(64, (1, 1, 8))


class TestPartition:
    @pytest.mark.parametrize("grid", [(1, 1, 1), (2, 1, 1), (2, 2, 2), (1, 2, 4)])
    def test_owned_sites_partition_exactly(self, grid):
        lat = BCCLattice(8, 8, 8)
        decomp = DomainDecomposition(lat, grid)
        seen = np.concatenate(
            [decomp.subdomain(r).owned_site_ranks(lat) for r in range(decomp.nprocs)]
        )
        assert len(seen) == lat.nsites
        assert np.array_equal(np.sort(seen), np.arange(lat.nsites))

    def test_owner_of_site_consistent(self):
        lat = BCCLattice(6, 6, 6)
        decomp = DomainDecomposition(lat, (2, 3, 1))
        for r in range(decomp.nprocs):
            for s in decomp.subdomain(r).owned_site_ranks(lat)[:10]:
                assert decomp.owner_of_site(int(s)) == r

    def test_proc_coords_roundtrip(self):
        decomp = DomainDecomposition(BCCLattice(8, 8, 8), (2, 2, 2))
        for r in range(decomp.nprocs):
            assert decomp.proc_rank(decomp.proc_coords(r)) == r

    def test_neighbor_rank_wraps(self):
        decomp = DomainDecomposition(BCCLattice(8, 8, 8), (2, 2, 2))
        # Stepping +1 twice along x returns home.
        r1 = decomp.neighbor_rank(0, (1, 0, 0))
        assert decomp.neighbor_rank(r1, (1, 0, 0)) == 0

    def test_ghost_width_cells(self):
        decomp = DomainDecomposition(BCCLattice(8, 8, 8), (2, 2, 2))
        assert decomp.ghost_width_cells(5.6) == 2
        assert decomp.ghost_width_cells(2.8) == 1


class TestGhostRegions:
    def test_ghost_cells_outside_subdomain(self):
        lat = BCCLattice(8, 8, 8)
        decomp = DomainDecomposition(lat, (2, 2, 2))
        sub = decomp.subdomain(0)
        owned = set(sub.owned_site_ranks(lat).tolist())
        ghosts = set(sub.all_ghost_site_ranks(lat, 1).tolist())
        assert owned.isdisjoint(ghosts)

    def test_send_recv_sets_match_between_neighbors(self):
        # What I pack toward d must be exactly what my d-neighbor expects
        # as its ghost shell toward -d.
        lat = BCCLattice(8, 8, 8)
        decomp = DomainDecomposition(lat, (2, 2, 2))
        width = 2
        for d in DIRECTIONS:
            me = decomp.subdomain(0)
            nbr = decomp.subdomain(decomp.neighbor_rank(0, d))
            sent = me.send_site_ranks(lat, d, width)
            expected = nbr.ghost_site_ranks(
                lat, tuple(-c for c in d), width
            )
            assert np.array_equal(sent, expected)

    def test_directional_ghosts_partition_shell(self):
        lat = BCCLattice(8, 8, 8)
        decomp = DomainDecomposition(lat, (2, 2, 2))
        sub = decomp.subdomain(3)
        width = 1
        parts = [sub.ghost_site_ranks(lat, d, width) for d in DIRECTIONS]
        merged = np.concatenate(parts)
        # Directional blocks never overlap...
        assert len(merged) == len(np.unique(merged))
        # ...and tile the whole shell.
        assert np.array_equal(
            np.sort(merged), sub.all_ghost_site_ranks(lat, width)
        )

    def test_ghost_width_validation(self):
        lat = BCCLattice(8, 8, 8)
        sub = DomainDecomposition(lat, (2, 2, 2)).subdomain(0)
        with pytest.raises(ValueError, match="width"):
            sub.ghost_cells((1, 0, 0), 0)
        with pytest.raises(ValueError, match="exceeds"):
            sub.ghost_cells((1, 0, 0), 5)

    def test_ghost_shell_count_matches_geometry(self):
        lat = BCCLattice(8, 8, 8)
        sub = DomainDecomposition(lat, (2, 2, 2)).subdomain(0)
        w = 1
        s = 4  # subdomain side in cells
        expected_cells = (s + 2 * w) ** 3 - s**3
        assert len(sub.all_ghost_site_ranks(lat, w)) == 2 * expected_cells


class TestSectors:
    def test_eight_sectors_partition_subdomain(self):
        lat = BCCLattice(8, 8, 8)
        sub = DomainDecomposition(lat, (2, 2, 2)).subdomain(5)
        sectors = sub.sectors()
        assert len(sectors) == 8
        merged = np.concatenate([s.owned_site_ranks(lat) for s in sectors])
        assert np.array_equal(np.sort(merged), sub.owned_site_ranks(lat))

    def test_degenerate_axis_yields_fewer_sectors(self):
        lat = BCCLattice(8, 8, 1)
        sub = DomainDecomposition(lat, (2, 2, 1)).subdomain(0)
        assert len(sub.sectors()) == 4

    def test_sector_shapes_halve(self):
        lat = BCCLattice(8, 8, 8)
        sub = DomainDecomposition(lat, (2, 2, 2)).subdomain(0)
        for sec in sub.sectors():
            assert sec.shape == (2, 2, 2)

    def test_contains_cell(self):
        lat = BCCLattice(8, 8, 8)
        sub = DomainDecomposition(lat, (2, 2, 2)).subdomain(0)
        assert sub.contains_cell(0, 0, 0)
        assert not sub.contains_cell(4, 0, 0)
