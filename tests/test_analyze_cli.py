"""CLI contract tests: exit codes, JSON schema, noqa and baseline paths."""

import json
import textwrap

import pytest

from repro.analyze.baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    render_baseline,
)
from repro.analyze.cli import main
from repro.analyze.core import Finding
from repro.analyze.runner import analyze_paths

BAD_KMC = textwrap.dedent(
    """\
    import numpy as np

    def hop():
        return np.random.rand()
    """
)

CLEAN = "def f(x):\n    return x + 1\n"


@pytest.fixture
def tree(tmp_path, monkeypatch):
    """A scan root with one dirty physics module and one clean module."""
    pkg = tmp_path / "src" / "repro" / "kmc"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text(BAD_KMC)
    (pkg / "ok.py").write_text(CLEAN)
    monkeypatch.chdir(tmp_path)
    return tmp_path


class TestExitCodes:
    def test_clean_scan_exits_zero(self, tree, capsys):
        (tree / "src/repro/kmc/bad.py").write_text(CLEAN)
        assert main(["src"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, tree, capsys):
        assert main(["src"]) == 1
        out = capsys.readouterr().out
        assert "REP001" in out and "bad.py" in out

    def test_unknown_rule_exits_two(self, tree, capsys):
        assert main(["--explain", "REP999"]) == 2

    def test_bad_baseline_exits_two(self, tree, capsys):
        (tree / "b.json").write_text("{not json")
        assert main(["src", "--baseline", "b.json"]) == 2

    def test_unjustified_baseline_exits_two(self, tree):
        (tree / "b.json").write_text(
            json.dumps(
                {
                    "suppressions": [
                        {
                            "rule": "REP001",
                            "path": "src/repro/kmc/bad.py",
                            "snippet": "return np.random.rand()",
                            "justification": "   ",
                        }
                    ]
                }
            )
        )
        assert main(["src", "--baseline", "b.json"]) == 2

    def test_syntax_error_is_a_finding(self, tree, capsys):
        (tree / "src/repro/kmc/broken.py").write_text("def f(:\n")
        assert main(["src"]) == 1
        assert "REP000" in capsys.readouterr().out


class TestReporters:
    def test_json_schema(self, tree, capsys):
        assert main(["src", "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == 1
        assert doc["files_scanned"] == 2
        assert doc["counts"] == {"REP001": 1}
        (finding,) = doc["findings"]
        assert finding["rule"] == "REP001"
        assert finding["path"] == "src/repro/kmc/bad.py"
        assert finding["line"] == 4
        assert finding["snippet"] == "return np.random.rand()"

    def test_explain_and_list_rules(self, tree, capsys):
        assert main(["--explain", "rep001"]) == 0
        assert "sector_rng" in capsys.readouterr().out
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("REP001", "REP002", "REP003", "REP004", "REP005", "REP006"):
            assert code in out


class TestSuppression:
    def test_inline_noqa(self, tree, capsys):
        (tree / "src/repro/kmc/bad.py").write_text(
            BAD_KMC.replace(
                "return np.random.rand()",
                "return np.random.rand()  # repro: noqa(REP001) fixture",
            )
        )
        assert main(["src"]) == 0
        assert "1 noqa-suppressed" in capsys.readouterr().out

    def test_blanket_noqa_and_other_code(self, tree):
        # noqa for a *different* rule does not suppress
        (tree / "src/repro/kmc/bad.py").write_text(
            BAD_KMC.replace(
                "return np.random.rand()",
                "return np.random.rand()  # repro: noqa(REP003) wrong code",
            )
        )
        assert main(["src"]) == 1
        (tree / "src/repro/kmc/bad.py").write_text(
            BAD_KMC.replace(
                "return np.random.rand()",
                "return np.random.rand()  # repro: noqa",
            )
        )
        assert main(["src"]) == 0

    def test_baseline_roundtrip(self, tree, capsys):
        # --write-baseline exits 0 and records the finding
        assert main(["src", "--write-baseline", "base.json"]) == 0
        doc = json.loads((tree / "base.json").read_text())
        assert len(doc["suppressions"]) == 1
        assert doc["suppressions"][0]["justified"] is False
        # ... but the entry is rejected until justified by hand
        doc["suppressions"][0]["justification"] = "seeded fixture, known dirty"
        doc["suppressions"][0]["justified"] = True
        (tree / "base.json").write_text(json.dumps(doc))
        capsys.readouterr()
        assert main(["src", "--baseline", "base.json"]) == 0
        assert "1 baselined" in capsys.readouterr().out
        # --no-baseline brings the finding back
        assert main(["src", "--baseline", "base.json", "--no-baseline"]) == 1

    def test_fresh_baseline_cannot_silently_pass(self, tree, capsys):
        # A generated baseline suppresses the finding but still fails the
        # scan until every entry is justified by hand.
        assert main(["src", "--write-baseline", "base.json"]) == 0
        capsys.readouterr()
        assert main(["src", "--baseline", "base.json"]) == 1
        out = capsys.readouterr().out
        assert "unjustified baseline" in out
        # Fixing the text without flipping the flag is still unjustified
        doc = json.loads((tree / "base.json").read_text())
        doc["suppressions"][0]["justification"] = "real reason"
        (tree / "base.json").write_text(json.dumps(doc))
        assert main(["src", "--baseline", "base.json"]) == 1
        # ... and keeping the TODO text with the flag flipped is too
        doc["suppressions"][0]["justification"] = (
            "TODO: justify this suppression"
        )
        doc["suppressions"][0]["justified"] = True
        (tree / "base.json").write_text(json.dumps(doc))
        assert main(["src", "--baseline", "base.json"]) == 1

    def test_unjustified_entries_in_json_report(self, tree, capsys):
        assert main(["src", "--write-baseline", "base.json"]) == 0
        capsys.readouterr()
        assert main(["src", "--baseline", "base.json", "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert len(doc["unjustified_baseline"]) == 1
        assert doc["findings"] == []

    def test_default_baseline_discovered_in_cwd(self, tree, capsys):
        assert main(["src", "--write-baseline", "analyze-baseline.json"]) == 0
        doc = json.loads((tree / "analyze-baseline.json").read_text())
        doc["suppressions"][0]["justification"] = "fixture"
        doc["suppressions"][0]["justified"] = True
        (tree / "analyze-baseline.json").write_text(json.dumps(doc))
        assert main(["src"]) == 0

    def test_stale_baseline_entries_reported(self, tree, capsys):
        (tree / "base.json").write_text(
            json.dumps(
                {
                    "suppressions": [
                        {
                            "rule": "REP004",
                            "path": "src/repro/kmc/gone.py",
                            "snippet": "assert x",
                            "justification": "was fixed long ago",
                        }
                    ]
                }
            )
        )
        assert main(["src", "--baseline", "base.json"]) == 1
        assert "stale baseline" in capsys.readouterr().out


class TestPruneBaseline:
    def stale_entry(self):
        return {
            "rule": "REP004",
            "path": "src/repro/kmc/gone.py",
            "snippet": "assert x",
            "justification": "was fixed long ago",
        }

    def live_entry(self):
        return {
            "rule": "REP001",
            "path": "src/repro/kmc/bad.py",
            "snippet": "return np.random.rand()",
            "justification": "seeded fixture, known dirty",
            "justified": True,
        }

    def test_prune_rewrites_file_and_exits_one(self, tree, capsys):
        (tree / "base.json").write_text(
            json.dumps({"suppressions": [self.live_entry(), self.stale_entry()]})
        )
        assert main(
            ["src", "--baseline", "base.json", "--prune-baseline"]
        ) == 1
        out = capsys.readouterr().out
        assert "pruned stale baseline entry" in out
        assert "gone.py" in out
        doc = json.loads((tree / "base.json").read_text())
        assert [e["path"] for e in doc["suppressions"]] == [
            "src/repro/kmc/bad.py"
        ]
        # Second run: nothing stale left, scan is clean.
        capsys.readouterr()
        assert main(
            ["src", "--baseline", "base.json", "--prune-baseline"]
        ) == 0
        assert "pruned" not in capsys.readouterr().out

    def test_prune_without_stale_entries_is_a_no_op(self, tree):
        (tree / "base.json").write_text(
            json.dumps({"suppressions": [self.live_entry()]})
        )
        before = (tree / "base.json").read_text()
        assert main(
            ["src", "--baseline", "base.json", "--prune-baseline"]
        ) == 0
        assert (tree / "base.json").read_text() == before

    def test_prune_without_baseline_file_is_an_error(self, tree, capsys):
        assert main(["src", "--prune-baseline"]) == 2
        assert "baseline" in capsys.readouterr().err.lower()


class TestRuleSubset:
    def test_rules_flag_restricts_the_scan(self, tree, capsys):
        # The tree has a REP001 finding; scanning only REP004 is clean.
        assert main(["src", "--rules", "REP004"]) == 0
        capsys.readouterr()
        assert main(["src", "--rules", "REP001,REP004"]) == 1
        assert "REP001" in capsys.readouterr().out

    def test_unknown_rule_in_subset_exits_two(self, tree, capsys):
        assert main(["src", "--rules", "REP001,REP999"]) == 2
        assert "REP999" in capsys.readouterr().err


class TestBaselineUnit:
    def test_render_then_load(self, tmp_path):
        f = Finding("REP004", "src/x.py", 3, 0, "msg", "assert x")
        path = tmp_path / "b.json"
        path.write_text(
            render_baseline([f]).replace(
                "TODO: justify this suppression", "legacy self-check"
            )
        )
        entries = load_baseline(path)
        kept, baselined, stale = apply_baseline([f], entries)
        assert kept == [] and baselined == [f] and stale == []

    def test_line_drift_does_not_unmatch(self, tmp_path):
        f1 = Finding("REP004", "src/x.py", 3, 0, "msg", "assert x")
        f2 = Finding("REP004", "src/x.py", 57, 4, "msg", "assert x")
        path = tmp_path / "b.json"
        path.write_text(
            render_baseline([f1]).replace("TODO: justify this suppression", "ok")
        )
        kept, baselined, _ = apply_baseline([f2], load_baseline(path))
        assert kept == [] and baselined == [f2]

    def test_entry_is_justified(self):
        from repro.analyze.baseline import entry_is_justified

        base = {
            "rule": "REP004",
            "path": "src/x.py",
            "snippet": "assert x",
            "justification": "real reason",
        }
        assert entry_is_justified(base)  # historical entry, no flag
        assert entry_is_justified({**base, "justified": True})
        assert not entry_is_justified({**base, "justified": False})
        assert not entry_is_justified(
            {**base, "justification": "TODO: justify this suppression"}
        )

    def test_missing_fields_rejected(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(json.dumps({"suppressions": [{"rule": "REP004"}]}))
        with pytest.raises(BaselineError):
            load_baseline(path)


class TestRunner:
    def test_root_anchors_relative_paths(self, tree):
        result = analyze_paths([tree / "src"], root=tree)
        assert [f.path for f in result.findings] == ["src/repro/kmc/bad.py"]

    def test_single_file_and_dedup(self, tree):
        result = analyze_paths(
            [tree / "src/repro/kmc/bad.py", tree / "src/repro/kmc"], root=tree
        )
        assert len(result.findings) == 1
