"""Cartesian topology tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.topology import CartesianTopology


class TestCoords:
    def test_roundtrip_all_ranks(self):
        topo = CartesianTopology((2, 3, 4))
        for r in range(topo.nranks):
            assert topo.rank(topo.coords(r)) == r

    def test_wrapping(self):
        topo = CartesianTopology((3, 3, 3))
        assert topo.rank((3, 0, 0)) == topo.rank((0, 0, 0))
        assert topo.rank((-1, 0, 0)) == topo.rank((2, 0, 0))

    def test_out_of_range_rank_rejected(self):
        with pytest.raises(ValueError):
            CartesianTopology((2, 2, 2)).coords(8)

    def test_bad_grid_rejected(self):
        with pytest.raises(ValueError):
            CartesianTopology((0, 2, 2))

    @given(
        px=st.integers(1, 4),
        py=st.integers(1, 4),
        pz=st.integers(1, 4),
        dx=st.integers(-2, 2),
        dy=st.integers(-2, 2),
        dz=st.integers(-2, 2),
    )
    @settings(max_examples=60, deadline=None)
    def test_shift_invertible(self, px, py, pz, dx, dy, dz):
        topo = CartesianTopology((px, py, pz))
        there = topo.shift(0, (dx, dy, dz))
        back = topo.shift(there, (-dx, -dy, -dz))
        assert back == 0


class TestNeighbors:
    def test_26_directions(self):
        topo = CartesianTopology((3, 3, 3))
        nbrs = topo.neighbors(13)
        assert len(nbrs) == 26

    def test_face_neighbors_only(self):
        topo = CartesianTopology((3, 3, 3))
        nbrs = topo.neighbors(0, include_diagonals=False)
        assert len(nbrs) == 6

    def test_distinct_neighbors_on_3cube(self):
        topo = CartesianTopology((3, 3, 3))
        assert len(topo.distinct_neighbors(0)) == 26

    def test_distinct_neighbors_alias_on_small_grid(self):
        # On a 2^3 grid all 7 other ranks are neighbors, many directions
        # aliasing onto the same rank.
        topo = CartesianTopology((2, 2, 2))
        assert topo.distinct_neighbors(0) == set(range(1, 8))

    def test_self_excluded_from_distinct(self):
        topo = CartesianTopology((1, 1, 2))
        assert 0 not in topo.distinct_neighbors(0)
