"""ScenarioSpec serialization, validation, and content-addressed keys."""

import json

import pytest

import repro
from repro.service.spec import (
    EXECUTION_FIELDS,
    IDENTITY_FIELDS,
    SPEC_SCHEMA_VERSION,
    ScenarioSpec,
    SpecError,
    canonical_json,
)


class TestRoundTrip:
    def test_to_from_dict_exact(self):
        spec = ScenarioSpec(
            cells=6, md_steps=40, pka_energy=150.0, kmc_nranks=4,
            trajectory_every=2, seed=7, faults="crash:rank=1,cycle=3",
            checkpoint_every=2, backend="process", workers=2,
        )
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.key() == spec.key()

    def test_dict_is_json_serializable(self):
        payload = json.dumps(ScenarioSpec().to_dict())
        assert ScenarioSpec.from_dict(json.loads(payload)) == ScenarioSpec()

    def test_unknown_field_rejected(self):
        data = ScenarioSpec().to_dict()
        data["flux_capacitor"] = 1.21
        with pytest.raises(SpecError, match="flux_capacitor"):
            ScenarioSpec.from_dict(data)


class TestKey:
    def test_key_is_sha256_of_canonical_identity(self):
        import hashlib

        spec = ScenarioSpec()
        expected = hashlib.sha256(
            canonical_json(spec.identity()).encode("ascii")
        ).hexdigest()
        assert spec.key() == expected

    def test_identity_carries_schema_and_code_version(self):
        ident = ScenarioSpec().identity()
        assert ident["schema"] == SPEC_SCHEMA_VERSION
        assert ident["code"] == repro.__version__
        for name in IDENTITY_FIELDS:
            assert name in ident

    def test_numeric_coercion_does_not_split_cache(self):
        # A float-typed cell count (e.g. from YAML/JSON round trips)
        # must hash identically to the int form.
        assert ScenarioSpec(cells=8.0).key() == ScenarioSpec(cells=8).key()
        assert ScenarioSpec(cells=8.0).cells == 8

    def test_non_integral_int_rejected(self):
        with pytest.raises(SpecError, match="cells"):
            ScenarioSpec(cells=8.5)

    def test_seed_changes_key(self):
        assert ScenarioSpec(seed=7).key() != ScenarioSpec(seed=8).key()

    @pytest.mark.parametrize("name", IDENTITY_FIELDS)
    def test_every_identity_field_changes_key(self, name):
        base = ScenarioSpec()
        changed = {
            "cells": 9, "temperature": 700.0, "potential": "fe",
            "table_points": 1500, "md_steps": 40, "pka_energy": 150.0,
            "kmc_max_events": 100, "kmc_nranks": 4, "kmc_max_cycles": 10,
            "recombination_radius": 3.0, "trajectory_every": 2, "seed": 1,
        }[name]
        spec = ScenarioSpec(**{name: changed})
        if getattr(base, name) == changed:  # potential has one value today
            assert spec.key() == base.key()
        else:
            assert spec.key() != base.key()

    @pytest.mark.parametrize("name,value", [
        ("kmc_scheme", "onesided"),
        ("backend", "process"),
        ("workers", 4),
        ("faults", "crash:rank=1,cycle=3"),
        ("checkpoint_every", 2),
        ("watchdog", 60.0),
    ])
    def test_execution_fields_do_not_change_key(self, name, value):
        assert name in EXECUTION_FIELDS
        assert ScenarioSpec(**{name: value}).key() == ScenarioSpec().key()


class TestValidation:
    @pytest.mark.parametrize("kwargs,match", [
        ({"cells": 2}, "cells"),
        ({"temperature": -5.0}, "temperature"),
        ({"potential": "w"}, "potential"),
        ({"table_points": 1}, "table_points"),
        ({"md_steps": 0}, "md_steps"),
        ({"pka_energy": -1.0}, "pka_energy"),
        ({"kmc_max_events": -1}, "kmc_max_events"),
        ({"kmc_nranks": 0}, "kmc_nranks"),
        ({"kmc_max_cycles": 0}, "kmc_max_cycles"),
        ({"recombination_radius": 0.0}, "recombination_radius"),
        ({"trajectory_every": 0}, "trajectory_every"),
        ({"kmc_scheme": "telepathy"}, "kmc_scheme"),
        ({"backend": "gpu"}, "backend"),
        ({"workers": 0}, "workers"),
        ({"checkpoint_every": 0}, "checkpoint_every"),
        ({"watchdog": 0.0}, "watchdog"),
        ({"faults": "explode:rank=0,cycle=1"}, "bad faults plan"),
    ])
    def test_bad_values_rejected(self, kwargs, match):
        with pytest.raises(SpecError, match=match):
            ScenarioSpec(**kwargs)

    def test_canonical_json_rejects_nan(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})


class TestCoupledConfig:
    def test_defaults_map_through(self):
        config = ScenarioSpec(cells=6, seed=7).to_coupled_config()
        assert config.cells == 6
        assert config.seed == 7
        assert config.cascade is None  # no MD overrides -> default cascade
        assert config.trajectory is None

    def test_md_overrides_build_cascade_config(self):
        config = ScenarioSpec(
            cells=6, md_steps=40, pka_energy=150.0, temperature=450.0
        ).to_coupled_config()
        assert config.cascade is not None
        assert config.cascade.nsteps == 40
        assert config.cascade.pka_energy == 150.0
        assert config.cascade.temperature == 450.0

    def test_caller_paths_pass_through(self, tmp_path):
        config = ScenarioSpec(trajectory_every=3).to_coupled_config(
            trajectory=str(tmp_path / "t"),
            checkpoint_dir=str(tmp_path / "c"),
        )
        assert config.trajectory == str(tmp_path / "t")
        assert config.checkpoint_dir == str(tmp_path / "c")
        assert config.trajectory_every == 3
