"""Alloy table sets and local-store residency planning (§2.1.2 alloys)."""

import pytest

from repro.potential.alloy import (
    AlloyTables,
    make_fe_cu_alloy,
    plan_local_store_residency,
)


@pytest.fixture(scope="module")
def fecu():
    return make_fe_cu_alloy(cu_fraction=0.01, n=5000)


class TestAlloyTables:
    def test_three_pair_table_sets(self, fecu):
        # "there are three kinds of electron cloud density tables, for the
        # atomic pairs of Fe-Fe, Cu-Cu, and Fe-Cu".
        assert fecu.npairs == 3
        assert len(fecu.pair_tables) == 3

    def test_pair_lookup_symmetric(self, fecu):
        assert fecu.tables_for("Fe", "Cu") is fecu.tables_for("Cu", "Fe")

    def test_unknown_pair_rejected(self, fecu):
        with pytest.raises(KeyError):
            fecu.tables_for("Fe", "Ni")

    def test_dominant_species_is_fe(self, fecu):
        assert fecu.dominant_species() == "Fe"

    def test_concentrations_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            AlloyTables(species=("Fe", "Cu"), concentrations={"Fe": 0.5, "Cu": 0.2})

    def test_negative_concentration_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            AlloyTables(
                species=("Fe", "Cu"), concentrations={"Fe": 1.2, "Cu": -0.2}
            )

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError, match="cu_fraction"):
            make_fe_cu_alloy(cu_fraction=1.5)

    def test_bond_weights_sum_to_one_per_table_kind(self, fecu):
        pair_weights = [
            w for label, _b, w in fecu.table_inventory() if label.endswith(":pair")
        ]
        assert sum(pair_weights) == pytest.approx(1.0)

    def test_fefe_pair_dominates_dilute_alloy(self, fecu):
        inv = {label: w for label, _b, w in fecu.table_inventory()}
        assert inv["Fe-Fe:pair"] > inv["Cu-Fe:pair"] > inv["Cu-Cu:pair"]


class TestResidencyPlanning:
    def test_only_dominant_table_fits_64kb(self, fecu):
        # The paper's scenario: the 64 KB local store holds exactly one
        # 39 KB compacted table, so only the highest-content element's
        # table is resident and everything else stays in main memory.
        plan = plan_local_store_residency(fecu, capacity_bytes=64 * 1024)
        assert len(plan.resident) == 1
        assert plan.resident[0].startswith("Fe-Fe")
        assert len(plan.main_memory) == len(fecu.table_inventory()) - 1

    def test_hit_weight_matches_fe_bond_fraction(self, fecu):
        plan = plan_local_store_residency(fecu, capacity_bytes=64 * 1024)
        assert plan.hit_weight == pytest.approx(0.99**2)

    def test_larger_store_fits_everything(self, fecu):
        plan = plan_local_store_residency(fecu, capacity_bytes=512 * 1024)
        assert plan.main_memory == ()
        assert len(plan.resident) == len(fecu.table_inventory())

    def test_resident_bytes_within_budget(self, fecu):
        cap = 64 * 1024
        plan = plan_local_store_residency(fecu, capacity_bytes=cap)
        assert plan.resident_bytes <= cap - 16 * 1024

    def test_reserve_must_leave_room(self, fecu):
        with pytest.raises(ValueError, match="capacity"):
            plan_local_store_residency(
                fecu, capacity_bytes=8 * 1024, reserve_bytes=16 * 1024
            )

    def test_balanced_alloy_prefers_cross_pair(self):
        alloy = make_fe_cu_alloy(cu_fraction=0.5, n=5000)
        plan = plan_local_store_residency(alloy, capacity_bytes=64 * 1024)
        # At 50/50 the cross pair carries weight 2*c1*c2 = 0.5 — the most
        # frequently used tables.
        assert plan.resident[0].startswith("Cu-Fe")
