"""Lattice neighbor list tests: static indexing, run-away linked lists."""

import numpy as np
import pytest

from repro.lattice.bcc import BCCLattice
from repro.lattice.box import Box
from repro.md.neighbors.lattice_list import LatticeNeighborList
from repro.md.state import VACANCY_ID, AtomState

CUTOFF = 5.6


@pytest.fixture(scope="module")
def nblist5():
    return LatticeNeighborList(BCCLattice(5, 5, 5), CUTOFF)


class TestConstruction:
    def test_small_box_rejected(self):
        # 4^3 box (11.42 A) < 2*(cutoff+skin).
        with pytest.raises(ValueError, match="2\\*\\(cutoff\\+skin\\)"):
            LatticeNeighborList(BCCLattice(4, 4, 4), CUTOFF)

    def test_bad_cutoff_rejected(self, lattice5):
        with pytest.raises(ValueError, match="cutoff"):
            LatticeNeighborList(lattice5, -1.0)

    def test_matrix_covers_cutoff_plus_skin(self, nblist5):
        lat = nblist5.lattice
        count = len(lat.offsets_within(CUTOFF + nblist5.skin).corner)
        assert nblist5.max_neighbors == count

    def test_subdomain_site_set(self, lattice8):
        from repro.lattice.domain import DomainDecomposition

        decomp = DomainDecomposition(lattice8, (2, 2, 2))
        sub = decomp.subdomain(0)
        owned = sub.owned_site_ranks(lattice8)
        ghosts = sub.all_ghost_site_ranks(lattice8, 3)
        sites = np.union1d(owned, ghosts)
        centrals = np.searchsorted(sites, owned)
        nbl = LatticeNeighborList(lattice8, CUTOFF, sites=sites, centrals=centrals)
        assert nbl.matrix.shape[0] == len(owned)
        # All neighbor rows must reference real local sites.
        assert np.all(nbl.matrix < len(sites))

    def test_thin_ghost_shell_rejected(self, lattice8):
        from repro.lattice.domain import DomainDecomposition

        decomp = DomainDecomposition(lattice8, (2, 2, 2))
        sub = decomp.subdomain(0)
        owned = sub.owned_site_ranks(lattice8)
        ghosts = sub.all_ghost_site_ranks(lattice8, 1)  # too thin for 5.6 A
        sites = np.union1d(owned, ghosts)
        centrals = np.searchsorted(sites, owned)
        with pytest.raises(ValueError, match="ghost shell"):
            LatticeNeighborList(lattice8, CUTOFF, sites=sites, centrals=centrals)

    def test_unsorted_sites_rejected(self, lattice8):
        with pytest.raises(ValueError, match="increasing"):
            LatticeNeighborList(lattice8, CUTOFF, sites=np.array([5, 3, 1]))


class TestLatticePairs:
    def test_pair_count_matches_brute_force(self, nblist5):
        state = AtomState.perfect(nblist5.lattice)
        i, j = nblist5.lattice_pairs(state)
        # With the skin, candidate pairs exceed the cutoff census; the
        # force kernel filters by true distance.  Dedupe check here:
        assert len(np.unique(i * state.n + j)) == len(i)
        assert np.all(i < j)

    def test_vacancy_excluded_from_pairs(self, nblist5):
        state = AtomState.perfect(nblist5.lattice)
        state.make_vacancy(10)
        i, j = nblist5.lattice_pairs(state)
        assert 10 not in i
        assert 10 not in j

    def test_neighbor_rows_symmetric(self, nblist5):
        for row in (0, 7, 100):
            for nbr in nblist5.neighbor_rows(row):
                assert row in nblist5.neighbor_rows(int(nbr))

    def test_neighbor_rows_requires_central(self, lattice8):
        sites = np.arange(lattice8.nsites)
        nbl = LatticeNeighborList(
            lattice8, CUTOFF, sites=sites, centrals=np.array([0, 1])
        )
        with pytest.raises(ValueError, match="central"):
            nbl.neighbor_rows(5)


class TestRunaways:
    def _escaped_state(self, nblist):
        state = AtomState.perfect(nblist.lattice)
        state.x[20] = state.x[20] + np.array([1.5, 0.0, 0.0])
        state.v[20] = [9.0, 0.0, 0.0]
        return state

    def test_escape_creates_vacancy_and_linked_atom(self, lattice5):
        nbl = LatticeNeighborList(lattice5, CUTOFF)
        state = self._escaped_state(nbl)
        stats = nbl.update_runaways(state, threshold=1.2)
        assert stats["escaped"] == 1
        assert state.ids[20] == VACANCY_ID
        assert nbl.n_runaways == 1
        atom = nbl.runaways[0]
        assert atom.id == 20
        assert np.allclose(atom.v, [9.0, 0.0, 0.0])

    def test_atom_count_conserved_through_escape(self, lattice5):
        nbl = LatticeNeighborList(lattice5, CUTOFF)
        state = self._escaped_state(nbl)
        nbl.update_runaways(state, threshold=1.2)
        assert state.natoms + nbl.n_runaways == state.n

    def test_linked_to_nearest_lattice_point(self, lattice5):
        nbl = LatticeNeighborList(lattice5, CUTOFF)
        state = self._escaped_state(nbl)
        nbl.update_runaways(state, threshold=1.2)
        atom = nbl.runaways[0]
        assert atom.host == int(lattice5.nearest_site(atom.x))

    def test_capture_into_vacancy(self, lattice5):
        nbl = LatticeNeighborList(lattice5, CUTOFF)
        state = self._escaped_state(nbl)
        nbl.update_runaways(state, threshold=1.2)
        # Walk the atom back onto its (now vacant) lattice point.
        atom = nbl.runaways[0]
        atom.x = state.site_pos[20].copy()
        stats = nbl.update_runaways(state, threshold=1.2)
        assert stats["captured"] == 1
        assert nbl.n_runaways == 0
        assert state.ids[20] == 20

    def test_relink_when_atom_wanders(self, lattice5):
        nbl = LatticeNeighborList(lattice5, CUTOFF)
        state = self._escaped_state(nbl)
        nbl.update_runaways(state, threshold=1.2)
        atom = nbl.runaways[0]
        old_host = atom.host
        atom.x = atom.x + np.array([2.855, 0.0, 0.0])
        stats = nbl.update_runaways(state, threshold=1.2)
        assert stats["relinked"] >= 1
        assert nbl.runaways[0].host != old_host

    def test_no_capture_into_occupied_site(self, lattice5):
        nbl = LatticeNeighborList(lattice5, CUTOFF)
        state = self._escaped_state(nbl)
        nbl.update_runaways(state, threshold=1.2)
        atom = nbl.runaways[0]
        # Park the run-away next to an *occupied* site.
        atom.x = state.site_pos[40] + np.array([0.1, 0.0, 0.0])
        stats = nbl.update_runaways(state, threshold=1.2)
        assert stats["captured"] == 0
        assert nbl.n_runaways == 1

    def test_runaway_candidates_cover_cutoff_sphere(self, lattice5):
        nbl = LatticeNeighborList(lattice5, CUTOFF)
        state = self._escaped_state(nbl)
        nbl.update_runaways(state, threshold=1.2)
        (atom, rows), = nbl.runaway_candidates()
        # Superset of the host's own stencil...
        host_stencil = set(nbl.neighbor_rows(atom.host).tolist()) | {atom.host}
        assert host_stencil <= set(rows.tolist())
        # ...and covers every occupied site within the true cutoff of the
        # atom's actual (off-lattice) position.
        box = Box.for_lattice(lattice5)
        d = box.distance(atom.x, state.x)
        within = set(
            np.flatnonzero((d <= CUTOFF) & state.occupied).tolist()
        )
        assert within <= set(rows.tolist())

    def test_runaway_pairs_found_through_linked_lists(self, lattice5):
        nbl = LatticeNeighborList(lattice5, CUTOFF)
        state = AtomState.perfect(lattice5)
        # Two adjacent atoms both escape near each other.
        state.x[20] += np.array([1.4, 0.0, 0.0])
        state.x[22] += np.array([1.4, 0.2, 0.0])
        nbl.update_runaways(state, threshold=1.2)
        assert nbl.n_runaways == 2
        pairs = nbl.runaway_pairs()
        assert len(pairs) == 1

    def test_distant_runaways_not_paired(self, lattice5):
        nbl = LatticeNeighborList(lattice5, CUTOFF)
        state = AtomState.perfect(lattice5)
        # Cells (0,0,0) and (2,2,2): ~9.9 A apart, beyond cutoff + skin.
        state.x[0] += np.array([1.4, 0.0, 0.0])
        far = int(lattice5.rank_of(0, 2, 2, 2))
        state.x[far] += np.array([1.4, 0.0, 0.0])
        nbl.update_runaways(state, threshold=1.2)
        assert nbl.n_runaways == 2
        assert nbl.runaway_pairs() == []

    def test_threshold_validation(self, lattice5):
        nbl = LatticeNeighborList(lattice5, CUTOFF)
        with pytest.raises(ValueError, match="threshold"):
            nbl.update_runaways(AtomState.perfect(lattice5), threshold=0.0)

    def test_linked_list_grows_dynamically(self, lattice5):
        # The paper's improvement over [11]: no fixed-size array bound.
        nbl = LatticeNeighborList(lattice5, CUTOFF)
        state = AtomState.perfect(lattice5)
        rows = [10, 12, 14, 16, 18, 30, 32, 34]
        for r in rows:
            state.x[r] += np.array([1.5, 0.3, 0.1])
        nbl.update_runaways(state, threshold=1.2)
        assert nbl.n_runaways == len(rows)
        assert state.nvacancies == len(rows)
