"""Runtime communication sanitizer: detection and zero-overhead-when-off.

The fixture worlds are tiny hand-written SPMD mains; the KMC-scheme
tests reuse the session fixtures so the sanitizer is exercised against
the real halo-exchange protocols on both the thread and process
backends.
"""

import numpy as np
import pytest

from repro.kmc.akmc import ParallelAKMC
from repro.runtime.sanitize import (
    SanitizedComm,
    SanitizerError,
    _concurrent,
    _unwrap,
    finish_world,
    sanitize_enabled,
    wrap_main,
)
from repro.runtime.simmpi import ANY_SOURCE, World


class TestPrimitives:
    def test_concurrent_clocks(self):
        assert _concurrent((1, 0), (0, 1))
        assert not _concurrent((1, 0), (2, 0))  # ordered
        assert not _concurrent((1, 1), (1, 1))  # equal

    def test_unwrap_passthrough_for_plain_payloads(self):
        assert _unwrap(("a", "b")) == (None, ("a", "b"))
        assert _unwrap(42) == (None, 42)
        vc, user = _unwrap(("__repro_sanitize__", (1, 2), "x"))
        assert vc == (1, 2) and user == "x"

    def test_array_headed_triples_are_not_mistaken_for_envelopes(self):
        # A user payload may itself be a 3-tuple starting with an array;
        # comparing that element against the marker must not raise.
        from repro.runtime.stats import payload_nbytes

        payload = (np.arange(4), 1, 2)
        assert _unwrap(payload) == (None, payload)
        assert payload_nbytes(payload) == 32 + 8 + 8

    def test_enabled_kwarg_beats_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert not sanitize_enabled()
        assert sanitize_enabled(True)
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize_enabled()
        assert not sanitize_enabled(False)


def ring_main(comm):
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    comm.send(right, 100, comm.rank)
    _src, _tag, payload = comm.recv(source=left, tag=100)
    total = comm.allreduce(payload)
    assert comm.bcast(total if comm.rank == 0 else None, root=0) == total
    comm.barrier()
    return total


class TestThreadBackend:
    def test_clean_world_passes_and_results_unwrap(self):
        world = World(4, sanitize=True)
        assert world.run(ring_main) == [6, 6, 6, 6]

    def test_results_match_unsanitized_run(self):
        plain = World(4).run(ring_main)
        sanitized = World(4, sanitize=True).run(ring_main)
        assert plain == sanitized

    def test_unmatched_send_reports_rank_tag_and_call_site(self):
        def bad(comm):
            if comm.rank == 0:
                comm.send(1, 42, "orphan")
            comm.barrier()

        with pytest.raises(SanitizerError) as err:
            World(4, sanitize=True).run(bad)
        (violation,) = err.value.report["violations"]
        assert violation["kind"] == "unmatched_send"
        assert violation["source"] == 0
        assert violation["dest"] == 1
        assert violation["tag"] == 42
        assert "test_runtime_sanitize.py" in violation["site"]
        assert "tag 42" in str(err.value)

    def test_wildcard_recv_race_between_concurrent_senders(self):
        def race(comm):
            if comm.rank in (1, 2):
                comm.send(0, 7, comm.rank)
            comm.barrier()  # both rivals queued before the recv
            if comm.rank == 0:
                comm.recv(source=ANY_SOURCE, tag=7)
                comm.recv(source=ANY_SOURCE, tag=7)

        with pytest.raises(SanitizerError) as err:
            World(3, sanitize=True).run(race)
        kinds = {v["kind"] for v in err.value.report["violations"]}
        assert kinds == {"recv_race"}

    def test_pinned_source_recv_is_not_a_race(self):
        def pinned(comm):
            if comm.rank in (1, 2):
                comm.send(0, 7, comm.rank)
            comm.barrier()
            if comm.rank == 0:
                comm.recv(source=1, tag=7)
                comm.recv(source=2, tag=7)

        World(3, sanitize=True).run(pinned)

    def test_ordered_same_channel_messages_are_not_a_race(self):
        # FIFO per (source, tag): two sends from one rank are causally
        # ordered, so a wildcard recv over them is deterministic.
        def ordered(comm):
            if comm.rank == 1:
                comm.send(0, 7, "first")
                comm.send(0, 7, "second")
            comm.barrier()
            if comm.rank == 0:
                assert comm.recv(source=ANY_SOURCE, tag=7)[2] == "first"
                assert comm.recv(source=ANY_SOURCE, tag=7)[2] == "second"

        World(2, sanitize=True).run(ordered)

    def test_collective_order_divergence_is_reported_not_deadlocked(self):
        def diverge(comm):
            if comm.rank == 0:
                comm.barrier()
            else:
                comm.allgather(comm.rank)

        with pytest.raises(SanitizerError) as err:
            World(3, sanitize=True).run(diverge)
        (violation,) = err.value.report["violations"]
        assert violation["kind"] == "collective_divergence"
        assert violation["step"] == 0
        assert violation["events"][0] == ("barrier",)
        assert violation["events"][1] == ("allgather",)

    def test_one_sided_put_fence_is_clean_and_unwrapped(self):
        def onesided(comm):
            win = comm.win_create()
            win.put((comm.rank + 1) % comm.size, comm.rank * 10)
            drained = win.fence()
            assert drained == [((comm.rank - 1) % comm.size,
                                ((comm.rank - 1) % comm.size) * 10)]
            return len(drained)

        assert World(3, sanitize=True).run(onesided) == [1, 1, 1]

    def test_shm_leak_is_a_violation(self):
        # Run the wrapped main to get a clean ledger pair, then validate
        # with a leak recorded on the world object.
        world = World(2, sanitize=True)
        results = World(2).run(wrap_main(lambda comm: comm.rank))
        world.shm_leaked_slots = 3
        with pytest.raises(SanitizerError) as err:
            finish_world(world, results)
        kinds = [v["kind"] for v in err.value.report["violations"]]
        assert kinds == ["shm_leak"]
        assert "3 slot(s)" in str(err.value)

    def test_env_knob_enables_wrapping(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")

        def main(comm):
            assert isinstance(comm, SanitizedComm)
            return comm.rank

        assert World(2).run(main) == [0, 1]

    def test_off_by_default_no_wrapping(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)

        def main(comm):
            assert not isinstance(comm, SanitizedComm)
            return comm.rank

        assert World(2).run(main) == [0, 1]


class TestOtherBackends:
    def test_process_backend_clean_world(self):
        assert World(4, sanitize=True, backend="process").run(ring_main) == [
            6, 6, 6, 6,
        ]

    def test_process_backend_detects_unmatched_send(self):
        def bad(comm):
            if comm.rank == 1:
                comm.send(0, 55, b"orphan")
            comm.barrier()

        with pytest.raises(SanitizerError) as err:
            World(2, sanitize=True, backend="process").run(bad)
        (violation,) = err.value.report["violations"]
        assert violation["kind"] == "unmatched_send"
        assert (violation["source"], violation["dest"], violation["tag"]) == (
            1, 0, 55,
        )

    def test_overdecomposed_backend_clean_world(self):
        world = World(4, sanitize=True, backend="overdecomposed", workers=2)
        assert world.run(ring_main) == [6, 6, 6, 6]


@pytest.fixture(scope="module")
def small_kmc(lattice8, potential, rate_params, kmc_initial_occ):
    """Plain short parallel runs, one per scheme, for identity checks."""

    def run(scheme, **kwargs):
        engine = ParallelAKMC(
            lattice8, potential, rate_params, nranks=8, scheme=scheme, seed=5,
            **kwargs,
        )
        return engine.run(kmc_initial_occ, max_cycles=4)

    return run


class TestKMCSchemesSanitized:
    @pytest.mark.parametrize("scheme", ["traditional", "ondemand", "onesided"])
    def test_thread_backend_zero_violations_and_bit_identity(
        self, small_kmc, scheme, monkeypatch
    ):
        plain = small_kmc(scheme)
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        sanitized = small_kmc(scheme)
        assert np.array_equal(plain.occupancy, sanitized.occupancy)
        assert plain.time == sanitized.time

    def test_process_backend_zero_violations_and_bit_identity(
        self, small_kmc, monkeypatch
    ):
        plain = small_kmc("traditional")
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        monkeypatch.setenv("REPRO_BACKEND", "process")
        monkeypatch.setenv("REPRO_WORKERS", "4")
        sanitized = small_kmc("traditional")
        assert np.array_equal(plain.occupancy, sanitized.occupancy)
        assert plain.time == sanitized.time
