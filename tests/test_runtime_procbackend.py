"""The simmpi process backend: one forked OS process per rank.

Everything the thread backend guarantees must hold unchanged: messaging
semantics, collectives, one-sided windows, watchdog deadlines, abort and
error propagation, fault injection, traffic accounting, observe
aggregation — and, above all, bit-identical results for the parallel
engines, since the backends are meant to be freely interchangeable.
"""

import os

import numpy as np
import pytest

from repro import observe as obs
from repro.kmc.akmc import ParallelAKMC
from repro.observe.registry import Registry
from repro.runtime.faults import FaultPlan, InjectedFault
from repro.runtime.procbackend import fork_available
from repro.runtime.simmpi import (
    WatchdogTimeout,
    World,
    resolve_backend,
)

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="process backend needs the fork start method"
)

SCHEMES = ("traditional", "ondemand", "onesided")


# ----------------------------------------------------------------------
# Backend resolution
# ----------------------------------------------------------------------
class TestResolveBackend:
    def test_defaults_to_thread(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert resolve_backend(None) == "thread"

    def test_env_var_sets_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "process")
        assert resolve_backend(None) == "process"
        assert World(2).backend == "process"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "process")
        assert resolve_backend("thread") == "thread"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown simmpi backend"):
            resolve_backend("mpi")
        with pytest.raises(ValueError, match="unknown simmpi backend"):
            World(2, backend="greenlet")

    def test_run_override(self):
        def main(comm):
            return os.getpid()

        world = World(2, backend="thread")
        pids = world.run(main, timeout=60.0, backend="process")
        assert all(pid != os.getpid() for pid in pids)


# ----------------------------------------------------------------------
# Transport semantics
# ----------------------------------------------------------------------
def _ring_main(comm):
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    comm.send(right, 7, np.arange(5, dtype=np.int64) + comm.rank)
    _src, _tag, payload = comm.recv(left, 7)
    total = comm.allreduce(int(payload[0]), op="sum")
    gathered = comm.allgather(comm.rank * 10)
    win = comm.win_create()
    win.put(right, ("ping", comm.rank))
    puts = win.fence()
    comm.barrier()
    return (comm.rank, payload.tolist(), total, gathered, puts)


class TestTransportParity:
    def test_results_match_thread_backend(self):
        results = {
            backend: World(4, backend=backend).run(_ring_main, timeout=60.0)
            for backend in ("thread", "process")
        }
        assert results["thread"] == results["process"]

    def test_traffic_accounting_matches(self):
        worlds = {}
        for backend in ("thread", "process"):
            world = World(4, backend=backend)
            world.run(_ring_main, timeout=60.0)
            worlds[backend] = world
        t = worlds["thread"].stats.snapshot()
        p = worlds["process"].stats.snapshot()
        for key in ("total_sent_bytes", "total_messages", "total_collectives"):
            assert t[key] == p[key]
        assert worlds["process"].pending_messages() == 0

    def test_ranks_run_in_distinct_processes(self):
        pids = World(3, backend="process").run(
            lambda comm: os.getpid(), timeout=60.0
        )
        assert len(set(pids)) == 3
        assert os.getpid() not in pids

    def test_send_isolated_from_later_mutation(self):
        """A sent array snapshot is immune to sender-side writes."""

        def main(comm):
            if comm.rank == 0:
                data = np.arange(4)
                comm.send(1, 1, data)
                data[:] = -1
                comm.barrier()
                return None
            comm.barrier()  # only receive after the sender mutated
            _s, _t, payload = comm.recv(0, 1)
            return payload.tolist()

        results = World(2, backend="process").run(main, timeout=60.0)
        assert results[1] == [0, 1, 2, 3]

    def test_pending_messages_counts_unconsumed(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(1, 3, b"orphan")
            comm.barrier()
            return None

        from repro.runtime.sanitize import SanitizerError, sanitize_enabled

        world = World(2, backend="process")
        if sanitize_enabled():
            # The deliberately unconsumed message IS an unmatched send.
            with pytest.raises(SanitizerError, match="tag 3"):
                world.run(main, timeout=60.0)
        else:
            world.run(main, timeout=60.0)
            assert world.pending_messages() == 1


# ----------------------------------------------------------------------
# Rank-group mode: R ranks hosted on P < R children
# ----------------------------------------------------------------------
class TestRankGroups:
    def test_contiguous_split(self):
        from repro.runtime.procbackend import _rank_groups

        assert _rank_groups(8, 2) == [[0, 1, 2, 3], [4, 5, 6, 7]]
        assert _rank_groups(5, 2) == [[0, 1, 2], [3, 4]]
        assert _rank_groups(3, 8) == [[0], [1], [2]]
        assert sum(_rank_groups(17, 4), []) == list(range(17))

    def test_grouped_matches_per_rank_results(self):
        reference = World(8, backend="thread").run(_ring_main, timeout=60.0)
        for workers in (1, 2, 3):
            grouped = World(8, backend="process").run(
                _ring_main, timeout=120.0, workers=workers
            )
            assert grouped == reference

    def test_grouped_ranks_share_child_processes(self):
        pids = World(8, backend="process", workers=2).run(
            lambda comm: os.getpid(), timeout=120.0
        )
        assert len(set(pids)) == 2
        # Contiguous groups: first half on one child, second on the other
        assert len(set(pids[:4])) == 1 and len(set(pids[4:])) == 1
        assert os.getpid() not in pids

    def test_grouped_traffic_accounting_matches_thread(self):
        worlds = {}
        for backend, workers in (("thread", None), ("process", 2)):
            world = World(4, backend=backend, workers=workers)
            world.run(_ring_main, timeout=120.0)
            worlds[backend] = world
        t = worlds["thread"].stats.snapshot()
        p = worlds["process"].stats.snapshot()
        for key in ("total_sent_bytes", "total_messages", "total_collectives"):
            assert t[key] == p[key]

    def test_grouped_error_propagation(self):
        def main(comm):
            if comm.rank == 5:
                raise ValueError("boom")
            comm.barrier()

        world = World(8, backend="process", workers=2)
        with pytest.raises(RuntimeError, match="rank 5 failed"):
            world.run(main, timeout=120.0)

    def test_workers_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        pids = World(6, backend="process").run(
            lambda comm: os.getpid(), timeout=120.0
        )
        assert len(set(pids)) == 2


# ----------------------------------------------------------------------
# Failure semantics
# ----------------------------------------------------------------------
class TestFailureParity:
    def test_error_aborts_world_and_reraises(self):
        def main(comm):
            if comm.rank == 1:
                raise ValueError("boom")
            comm.recv(1, 5)  # would block forever without the abort

        with pytest.raises(RuntimeError, match=r"rank 1 failed.*boom"):
            World(2, backend="process").run(main, timeout=60.0)

    def test_keyboard_interrupt_propagates_as_itself(self):
        def main(comm):
            if comm.rank == 0:
                raise KeyboardInterrupt
            comm.barrier()

        with pytest.raises(KeyboardInterrupt):
            World(2, backend="process").run(main, timeout=60.0)

    def test_watchdog_timeout_typed(self):
        def main(comm):
            if comm.rank == 0:
                comm.recv(1, 9)  # never sent
            return None

        world = World(2, watchdog=0.2, backend="process")
        with pytest.raises(WatchdogTimeout):
            world.run(main, timeout=60.0)

    def test_injected_fault_typed_and_one_shot_across_reruns(self):
        plan = FaultPlan.parse("crash:rank=1,cycle=2")

        def main(comm):
            for cycle in range(4):
                comm.fault_point("kmc.cycle", cycle)
                comm.barrier()
            return comm.rank

        world = World(2, faults=plan, backend="process")
        with pytest.raises(InjectedFault, match=r"rank 1 at kmc.cycle\[2\]"):
            world.run(main, timeout=60.0)
        assert world.faults.counters.crashes == 1
        # Recovery semantics: same injector, new world -> no second crash.
        retry = World(2, faults=world.faults, backend="process")
        assert retry.run(main, timeout=60.0) == [0, 1]
        assert world.faults.counters.crashes == 1

    def test_duplicate_send_deduplicated_and_counted(self):
        plan = FaultPlan.parse("dup:rank=0,nth=1")

        def main(comm):
            other = 1 - comm.rank
            comm.send(other, 2, comm.rank)
            _s, _t, first = comm.recv(other, 2)
            comm.barrier()
            return first

        world = World(2, faults=plan, backend="process")
        assert world.run(main, timeout=60.0) == [1, 0]
        assert world.faults.counters.duplicates == 1
        assert world.faults.counters.dropped == 1
        assert world.pending_messages() == 0


# ----------------------------------------------------------------------
# Observe aggregation
# ----------------------------------------------------------------------
class TestObserveAggregation:
    def test_child_phases_and_counters_merge(self):
        def main(comm):
            with obs.phase("kmc.work"):
                obs.add("test.events", comm.rank + 1)
            comm.barrier()
            return None

        registry = obs.enable(Registry())
        try:
            World(3, backend="process").run(main, timeout=60.0)
        finally:
            obs.disable()
        assert registry.counters["test.events"] == 6  # 1 + 2 + 3
        work = [s for p, s in registry.phases.items() if p[-1] == "kmc.work"]
        assert work and work[0].count == 3
        names = set(registry.thread_names.values())
        assert {"rank0/simmpi-rank-0", "rank1/simmpi-rank-1"} <= names

    def test_trace_events_rebased_monotonic(self):
        def main(comm):
            with obs.phase("kmc.tick"):
                pass
            return None

        registry = obs.enable(Registry(trace=True))
        try:
            World(2, backend="process").run(main, timeout=60.0)
        finally:
            obs.disable()
        ticks = [e for e in registry.events if e.name == "kmc.tick"]
        assert len(ticks) == 2
        assert all(e.ts >= 0.0 for e in ticks)


# ----------------------------------------------------------------------
# Engine bit-identity across backends
# ----------------------------------------------------------------------
class TestEngineBitIdentity:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_parallel_akmc_schemes(
        self, scheme, lattice8, potential, rate_params, kmc_initial_occ
    ):
        results = {}
        for backend in ("thread", "process"):
            engine = ParallelAKMC(
                lattice8,
                potential,
                rate_params,
                nranks=4,
                scheme=scheme,
                seed=5,
                backend=backend,
            )
            results[backend] = engine.run(kmc_initial_occ.copy(), max_cycles=5)
        t, p = results["thread"], results["process"]
        np.testing.assert_array_equal(t.occupancy, p.occupancy)
        assert t.time == p.time
        assert t.events == p.events
        assert t.cycles == p.cycles

    def test_parallel_damage_md(self):
        from repro.lattice.bcc import BCCLattice
        from repro.md.engine import MDConfig
        from repro.md.parallel_damage import ParallelDamageMD

        results = {}
        for backend in ("thread", "process"):
            engine = ParallelDamageMD(
                BCCLattice(6, 6, 6),
                config=MDConfig(temperature=300.0, seed=3),
                nranks=4,
                backend=backend,
            )
            results[backend] = engine.run(
                12, pka=(10, np.array([50.0, 30.0, 20.0]))
            )
        t, p = results["thread"], results["process"]
        np.testing.assert_array_equal(t.positions, p.positions)
        np.testing.assert_array_equal(t.velocities, p.velocities)
        np.testing.assert_array_equal(t.vacancy_ranks, p.vacancy_ranks)
        np.testing.assert_array_equal(t.runaway_ids, p.runaway_ids)

    def test_checkpoint_resume_crosses_backends(
        self, lattice8, potential, rate_params, kmc_initial_occ, tmp_path
    ):
        """A thread-backend checkpoint resumes bit-identically in processes."""
        from repro.io.checkpoint import load_kmc_checkpoint

        def engine(backend):
            return ParallelAKMC(
                lattice8,
                potential,
                rate_params,
                nranks=4,
                scheme="ondemand",
                seed=5,
                backend=backend,
            )

        ref = engine("thread").run(kmc_initial_occ.copy(), max_cycles=8)
        ckpt = tmp_path / "cross-backend.npz"
        engine("thread").run(
            kmc_initial_occ.copy(),
            max_cycles=5,
            checkpoint_every=5,
            checkpoint_path=ckpt,
        )
        snap = load_kmc_checkpoint(ckpt)
        resumed = engine("process").run(
            snap.occupancy, max_cycles=8, resume=snap
        )
        assert resumed.events == ref.events
        assert resumed.time == ref.time
        np.testing.assert_array_equal(resumed.occupancy, ref.occupancy)


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestCLIBackend:
    def test_kmc_schemes_accepts_backend(self, capsys):
        from repro.cli import main

        rc = main(
            [
                "kmc-schemes",
                "--cells",
                "8",
                "--ranks",
                "2",
                "--cycles",
                "2",
                "--vacancies",
                "8",
                "--backend",
                "process",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "traditional" in out and "onesided" in out

    def test_coupled_accepts_backend(self, capsys):
        from repro.cli import main

        rc = main(
            [
                "coupled",
                "--cells",
                "8",
                "--events",
                "20",
                "--md-steps",
                "15",
                "--kmc-ranks",
                "2",
                "--kmc-cycles",
                "3",
                "--backend",
                "process",
            ]
        )
        assert rc == 0
        assert "after KMC" in capsys.readouterr().out
