"""CLI tests (direct invocation, captured output)."""

import pytest

from repro.cli import FIGURES, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_all_figures_registered(self):
        assert set(FIGURES) == {
            "fig09",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "fig16",
            "fig17",
            "memory",
        }

    def test_figure_modules_importable(self):
        import importlib

        for module in FIGURES.values():
            importlib.import_module(f"repro.experiments.{module}")


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "ICPP 2018" in out
        assert "10,649,600" in out

    def test_cascade(self, capsys):
        assert main(["cascade", "--cells", "6", "--steps", "40"]) == 0
        out = capsys.readouterr().out
        assert "Frenkel pairs" in out

    def test_coupled(self, capsys):
        assert main(["coupled", "--cells", "6", "--events", "30"]) == 0
        out = capsys.readouterr().out
        assert "after MD" in out
        assert "after KMC" in out

    def test_figure_memory(self, capsys):
        assert main(["figure", "memory"]) == 0
        out = capsys.readouterr().out
        assert "lattice_list" in out

    def test_figure_fig10(self, capsys):
        assert main(["figure", "fig10"]) == 0
        out = capsys.readouterr().out
        assert "paper" in out

    def test_kmc_schemes(self, capsys):
        assert (
            main(
                [
                    "kmc-schemes",
                    "--cells",
                    "8",
                    "--cycles",
                    "3",
                    "--vacancies",
                    "10",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "identical trajectories" in out
