"""CLI tests (direct invocation, captured output)."""

import json

import pytest

from repro.cli import FIGURES, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_all_figures_registered(self):
        assert set(FIGURES) == {
            "fig09",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "fig16",
            "fig17",
            "memory",
        }

    def test_figure_modules_importable(self):
        import importlib

        for module in FIGURES.values():
            importlib.import_module(f"repro.experiments.{module}")


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "ICPP 2018" in out
        assert "10,649,600" in out

    def test_cascade(self, capsys):
        assert main(["cascade", "--cells", "6", "--steps", "40"]) == 0
        out = capsys.readouterr().out
        assert "Frenkel pairs" in out

    def test_coupled(self, capsys):
        assert main(["coupled", "--cells", "6", "--events", "30"]) == 0
        out = capsys.readouterr().out
        assert "after MD" in out
        assert "after KMC" in out

    def test_figure_memory(self, capsys):
        assert main(["figure", "memory"]) == 0
        out = capsys.readouterr().out
        assert "lattice_list" in out

    def test_figure_fig10(self, capsys):
        assert main(["figure", "fig10"]) == 0
        out = capsys.readouterr().out
        assert "paper" in out

    def test_coupled_profile_and_trace(self, capsys, tmp_path):
        """The acceptance run: profile + trace of a small coupled pipeline."""
        trace = tmp_path / "t.json"
        argv = [
            "coupled",
            "--cells", "4",  # below the minimum; the CLI must bump it
            "--events", "20",
            "--md-steps", "40",
            "--kmc-cycles", "5",
            "--profile",
            "--trace", str(trace),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "--cells raised from 4" in out
        assert "phase tree" in out
        # All five pipeline stages appear in the printed tree.
        for stage in ("setup", "cascade", "map_damage", "kmc", "analysis"):
            assert f"coupled.{stage}" in out
        assert "modeled SW26010 force step" in out
        data = json.loads(trace.read_text())
        events = data["traceEvents"]
        cats = {e.get("cat") for e in events if e.get("cat")}
        # At least one event from every instrumented subsystem.
        assert {"coupled", "md", "kmc", "runtime", "sunway"} <= cats
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)

    def test_coupled_profile_serial_kmc_opt_out(self, capsys):
        argv = [
            "coupled",
            "--cells", "5",
            "--events", "20",
            "--md-steps", "40",
            "--kmc-ranks", "0",
            "--profile",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "kmc.event_selection" in out  # serial engine phases
        assert "parallel engine" not in out

    def test_cascade_profile(self, capsys):
        argv = ["cascade", "--cells", "6", "--steps", "30", "--profile"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "md.step" in out
        assert "md.force" in out

    def test_trace_without_profile_writes_file_only(self, capsys, tmp_path):
        trace = tmp_path / "cascade.json"
        argv = [
            "cascade",
            "--cells", "6",
            "--steps", "30",
            "--trace", str(trace),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "phase tree" not in out  # report needs --profile
        assert "trace written" in out
        assert json.loads(trace.read_text())["traceEvents"]

    def test_unwritable_trace_path_fails_cleanly(self, capsys):
        argv = [
            "cascade",
            "--cells", "6",
            "--steps", "30",
            "--trace", "/nonexistent-dir/t.json",
        ]
        with pytest.raises(SystemExit):
            main(argv)
        assert "cannot write trace" in capsys.readouterr().err

    def test_observation_disabled_after_run(self):
        from repro import observe as obs

        assert main(["cascade", "--cells", "6", "--steps", "30",
                     "--profile"]) == 0
        assert not obs.enabled()

    def test_kmc_schemes(self, capsys):
        assert (
            main(
                [
                    "kmc-schemes",
                    "--cells",
                    "8",
                    "--cycles",
                    "3",
                    "--vacancies",
                    "10",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "identical trajectories" in out


class TestFaultFlags:
    def test_coupled_with_faults_and_recovery(self, capsys, tmp_path):
        """CI's fault-injection smoke: crash, recover, report, succeed."""
        rc = main(
            [
                "coupled",
                "--cells", "8",
                "--seed", "3",
                "--kmc-ranks", "2",
                "--kmc-cycles", "6",
                "--md-steps", "60",
                "--faults", "crash:rank=1,cycle=3",
                "--checkpoint-every", "2",
                "--checkpoint-dir", str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "fault plan: crash rank 1 at kmc.cycle[3]" in out
        assert "faults injected: 1 (1 crashes" in out
        assert "recoveries: 1" in out
        assert (tmp_path / "kmc_checkpoint.npz").exists()

    def test_bad_fault_plan_exits_2(self, capsys):
        # Routed through argparse (type=): usage error, SystemExit(2).
        with pytest.raises(SystemExit) as exc_info:
            main(["coupled", "--faults", "explode:rank=0,cycle=1"])
        err = capsys.readouterr().err
        assert exc_info.value.code == 2
        assert "bad --faults plan" in err
        assert "explode" in err
        assert "usage:" in err

    def test_bad_fault_plan_exits_2_on_submit(self, capsys, tmp_path):
        # Same validation path (argparse type=) on the service surface.
        with pytest.raises(SystemExit) as exc_info:
            main(
                [
                    "submit",
                    "--root", str(tmp_path),
                    "--faults", "explode:rank=0,cycle=1",
                ]
            )
        err = capsys.readouterr().err
        assert exc_info.value.code == 2
        assert "bad --faults plan" in err
        assert "explode" in err

    def test_watchdog_flag_accepted(self, capsys):
        rc = main(
            [
                "coupled",
                "--cells", "6",
                "--events", "30",
                "--kmc-ranks", "0",
                "--watchdog", "30",
            ]
        )
        assert rc == 0
        assert "after KMC" in capsys.readouterr().out


class TestValidationExitCodes:
    """Every usage error exits 2 via argparse, on every subcommand."""

    def test_trajectory_every_requires_trajectory(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["coupled", "--cells", "6", "--trajectory-every", "2"])
        err = capsys.readouterr().err
        assert exc_info.value.code == 2
        assert "--trajectory-every requires --trajectory" in err
        assert "usage:" in err

    def test_coupled_bad_spec_exits_2(self, capsys):
        # Spec-level validation (cells floor) also routes to exit 2.
        with pytest.raises(SystemExit) as exc_info:
            main(["coupled", "--cells", "6", "--temperature", "-10"])
        err = capsys.readouterr().err
        assert exc_info.value.code == 2
        assert "temperature" in err

    def test_submit_bad_spec_exits_2(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as exc_info:
            main(
                [
                    "submit",
                    "--root", str(tmp_path),
                    "--cells", "2",
                ]
            )
        err = capsys.readouterr().err
        assert exc_info.value.code == 2
        assert "cells" in err
        assert "usage:" in err
