"""The zero-copy shared-memory transport of the process backend.

Pool mechanics first (slot refcounts, exhaustion fallback, one-shot
segments, encode/decode walkers, release without copy), then the
end-to-end properties: a world whose arrays all travel through shared
memory produces the same results and traffic ledger as the pickle
transport, reclaims every slot even when a receiver exits with the slot
still held, and never leaves a segment behind in ``/dev/shm``.
"""

import multiprocessing
import os

import numpy as np
import pytest

from repro import observe as obs
from repro.observe.registry import Registry
from repro.runtime import shm
from repro.runtime.procbackend import fork_available
from repro.runtime.simmpi import World

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="process backend needs the fork start method"
)


@pytest.fixture
def ctx():
    return multiprocessing.get_context("fork")


@pytest.fixture
def pool(ctx):
    p = shm.ShmPool(ctx, nslots=4, slot_bytes=4096, min_bytes=1)
    yield p
    p.destroy()


def _shm_names() -> set:
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


# ----------------------------------------------------------------------
# Slot lifecycle
# ----------------------------------------------------------------------
class TestPoolSlots:
    def test_acquire_release_refcounts(self, pool):
        slot = pool.acquire(100, nrefs=3)
        assert slot is not None
        assert pool.free_slots() == pool.nslots - 1
        pool.release(slot)
        pool.release(slot)
        assert pool.free_slots() == pool.nslots - 1  # still pinned
        pool.release(slot)
        assert pool.free_slots() == pool.nslots  # last ref frees

    def test_exhaustion_returns_none_then_reclaims(self, pool):
        held = [pool.acquire(10) for _ in range(pool.nslots)]
        assert all(s is not None for s in held)
        assert pool.acquire(10) is None  # ring full: caller falls back
        pool.release(held[2])
        assert pool.acquire(10) == held[2]  # freed slot recycles

    def test_oversized_payload_rejected(self, pool):
        assert pool.acquire(pool.slot_bytes + 1) is None

    def test_release_is_idempotent_past_zero(self, pool):
        slot = pool.acquire(10)
        pool.release(slot)
        pool.release(slot)  # double release must not underflow
        assert pool.free_slots() == pool.nslots


# ----------------------------------------------------------------------
# Encode / decode walkers
# ----------------------------------------------------------------------
class TestEncodeDecode:
    def test_nested_payload_roundtrip(self, pool):
        payload = {
            "rows": np.arange(64, dtype=np.int64),
            "x": [np.linspace(0, 1, 50), ("tag", np.ones((4, 5)))],
            "meta": 7,
        }
        enc = pool.encode(payload)
        assert isinstance(enc["rows"], shm.SlotRef)
        assert enc["meta"] == 7
        out = pool.decode(enc)
        assert np.array_equal(out["rows"], payload["rows"])
        assert np.array_equal(out["x"][0], payload["x"][0])
        assert out["x"][1][0] == "tag"
        assert np.array_equal(out["x"][1][1], payload["x"][1][1])
        assert pool.free_slots() == pool.nslots  # decode released all

    def test_noncontiguous_and_fortran_arrays(self, pool):
        base = np.arange(120, dtype=np.float64).reshape(10, 12)
        for arr in (base[::2, ::3], base.T, np.asfortranarray(base)):
            out = pool.decode(pool.encode(arr))
            assert np.array_equal(out, arr)
            assert out.flags.c_contiguous  # same layout _freeze produces

    def test_structured_dtype_roundtrip(self, pool):
        dt = np.dtype([("row", np.int64), ("e", np.float64)])
        arr = np.zeros(16, dtype=dt)
        arr["row"] = np.arange(16)
        arr["e"] = np.linspace(-1, 1, 16)
        out = pool.decode(pool.encode(arr))
        assert np.array_equal(out, arr)

    def test_object_dtype_stays_inline(self, pool):
        arr = np.array([{"a": 1}, None, "s"], dtype=object)
        assert pool.encode(arr) is arr  # pickle path, never shm

    def test_small_and_empty_arrays_stay_inline(self, ctx):
        p = shm.ShmPool(ctx, nslots=2, slot_bytes=4096, min_bytes=256)
        try:
            small = np.arange(4)  # 32 bytes < min_bytes
            assert p.encode(small) is small
            empty = np.empty(0)
            assert p.encode(empty) is empty
        finally:
            p.destroy()

    def test_exhausted_pool_falls_back_inline(self, pool):
        held = [pool.acquire(10) for _ in range(pool.nslots)]
        arr = np.arange(8, dtype=np.int64)
        assert pool.encode(arr) is arr  # small enough for a slot, none free
        for s in held:
            pool.release(s)

    def test_oversized_array_uses_oneshot_segment(self, pool):
        before = _shm_names()
        big = np.arange(pool.slot_bytes // 8 + 10, dtype=np.float64)
        enc = pool.encode(big)
        assert isinstance(enc, shm.SegRef)
        out = pool.decode(enc)
        assert np.array_equal(out, big)
        # The consumer unlinked the one-shot segment.
        assert _shm_names() <= before
        with pytest.raises(FileNotFoundError):
            from multiprocessing import shared_memory

            shared_memory.SharedMemory(name=enc.name)

    def test_oversized_broadcast_stays_inline(self, pool):
        big = np.arange(pool.slot_bytes // 8 + 10, dtype=np.float64)
        # Multi-consumer one-shots would need shared teardown; the pool
        # keeps broadcasts that miss the ring on the pickle path instead.
        assert pool.encode(big, nrefs=2) is big

    def test_release_refs_frees_without_copy(self, pool):
        enc = pool.encode([np.arange(64), np.ones(32)])
        assert pool.free_slots() == pool.nslots - 2
        pool.release_refs(enc)
        assert pool.free_slots() == pool.nslots

    def test_release_refs_unlinks_oneshot(self, pool):
        big = np.arange(pool.slot_bytes // 8 + 10, dtype=np.float64)
        enc = pool.encode(big)
        assert isinstance(enc, shm.SegRef)
        pool.release_refs(enc)
        with pytest.raises(FileNotFoundError):
            from multiprocessing import shared_memory

            shared_memory.SharedMemory(name=enc.name)


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
class TestCreatePool:
    def test_disabled_by_env(self, ctx, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "0")
        assert shm.create_pool(ctx, 4) is None
        monkeypatch.setenv("REPRO_SHM", "off")
        assert shm.create_pool(ctx, 4) is None

    def test_geometry_env_knobs(self, ctx, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_SLOTS", "3")
        monkeypatch.setenv("REPRO_SHM_SLOT_BYTES", "512")
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "0")
        p = shm.create_pool(ctx, 4)
        try:
            assert (p.nslots, p.slot_bytes, p.min_bytes) == (3, 512, 0)
        finally:
            p.destroy()

    def test_default_geometry_scales_with_world(self, ctx, monkeypatch):
        for var in ("REPRO_SHM_SLOTS", "REPRO_SHM_SLOT_BYTES"):
            monkeypatch.delenv(var, raising=False)
        p = shm.create_pool(ctx, 6)
        try:
            assert p.nslots == 4 * 6 + 8
            assert p.slot_bytes == 1 << 20
        finally:
            p.destroy()

    def test_bad_geometry_rejected(self, ctx, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_SLOTS", "three")
        with pytest.raises(ValueError, match="must be integers"):
            shm.create_pool(ctx, 4)
        monkeypatch.setenv("REPRO_SHM_SLOTS", "3")
        with pytest.raises(ValueError, match="positive"):
            shm.ShmPool(multiprocessing.get_context("fork"), 0, 1024)


# ----------------------------------------------------------------------
# End-to-end through the process backend
# ----------------------------------------------------------------------
def _bulk_main(comm):
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    data = np.full(5000, float(comm.rank))
    comm.send(right, 11, {"ghost": data, "step": comm.rank})
    _s, _t, payload = comm.recv(left, 11)
    gathered = comm.allgather(np.full(2000, float(comm.rank)))
    win = comm.win_create()
    win.put(right, np.full(3000, float(comm.rank) + 0.5))
    puts = win.fence()
    comm.barrier()
    return (
        float(payload["ghost"][0]),
        payload["step"],
        [float(g[0]) for g in gathered],
        [(origin, float(arr[0])) for origin, arr in puts],
    )


class TestWorldIntegration:
    def test_bulk_traffic_travels_via_shm(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "0")
        registry = obs.enable(Registry())
        try:
            results = World(3, backend="process").run(_bulk_main, timeout=60.0)
        finally:
            obs.disable()
        assert results == World(3, backend="thread").run(_bulk_main, 60.0)
        # Sends, gathers, broadcasts, and puts all moved through slots.
        assert registry.counters["runtime.shm.slot_msgs"] >= 9
        assert "runtime.shm.leaked_slots" not in registry.counters

    def test_traffic_ledger_matches_pickle_transport(self, monkeypatch):
        ledgers = {}
        for env in ("0", "1"):
            monkeypatch.setenv("REPRO_SHM", {"0": "0", "1": ""}[env] or "1")
            world = World(3, backend="process")
            world.run(_bulk_main, timeout=60.0)
            ledgers[env] = world.stats.snapshot()
        for key in ("total_sent_bytes", "total_messages", "total_collectives"):
            assert ledgers["0"][key] == ledgers["1"][key]

    def test_abort_while_slot_held_reclaims(self, monkeypatch):
        """A receiver that exits with envelopes undelivered leaks nothing."""
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "0")
        before = _shm_names()

        def main(comm):
            if comm.rank == 0:
                comm.send(1, 3, np.arange(4000, dtype=np.float64))
            comm.barrier()
            return None  # rank 1 never receives: the slot stays held

        registry = obs.enable(Registry())
        try:
            world = World(2, backend="process")
            world.run(main, timeout=60.0)
        finally:
            obs.disable()
        assert world.pending_messages() == 1
        # The residual sweep released the orphaned slot, so teardown saw a
        # whole ring, and the pool segment itself is gone from /dev/shm.
        assert "runtime.shm.leaked_slots" not in registry.counters
        assert _shm_names() <= before

    def test_pool_disabled_world_still_runs(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "0")
        results = World(2, backend="process").run(_bulk_main, timeout=60.0)
        assert results == World(2, backend="thread").run(_bulk_main, 60.0)
