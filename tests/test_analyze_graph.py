"""Whole-program analysis: ProjectGraph plus the REP008/REP009 rules.

The fixture trees are written to disk and scanned through the real
runner (graph construction included), so these tests cover the exact
pipeline CI runs.
"""

import textwrap

from repro.analyze.graph import ProjectGraph, module_dotted_name
from repro.analyze.runner import analyze_paths


def write_tree(root, files):
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))


def scan(root, codes=None):
    result = analyze_paths([root / "src"], root=root)
    found = result.findings
    if codes is not None:
        found = [f for f in found if f.rule in codes]
    return found


def build_graph(root, files):
    import ast

    from repro.analyze.core import ModuleContext

    write_tree(root, files)
    modules = []
    for rel in sorted(files):
        source = (root / rel).read_text()
        modules.append(ModuleContext(rel, source, ast.parse(source)))
    return ProjectGraph(modules)


class TestModuleNames:
    def test_src_prefix_stripped_and_init_collapses(self):
        assert module_dotted_name("src/repro/kmc/comm.py") == "repro.kmc.comm"
        assert module_dotted_name("src/repro/observe/__init__.py") == (
            "repro.observe"
        )
        assert module_dotted_name("tests/test_x.py") == "tests.test_x"


class TestProjectGraph:
    def test_symbols_constants_and_call_edges(self, tmp_path):
        graph = build_graph(
            tmp_path,
            {
                "src/repro/a.py": """\
                TAG = 1000

                def helper():
                    return 1

                class Engine:
                    def step(self):
                        return self.inner()

                    def inner(self):
                        return helper()
                """,
            },
        )
        assert "repro.a.helper" in graph.functions
        assert "repro.a.Engine.step" in graph.functions
        assert graph.constants["repro.a.TAG"] == 1000
        # self.inner() resolves within the class; inner() -> helper().
        assert graph.functions["repro.a.Engine.step"].callees == [
            "repro.a.Engine.inner"
        ]
        assert graph.functions["repro.a.Engine.inner"].callees == [
            "repro.a.helper"
        ]

    def test_reexport_alias_chased_through_init(self, tmp_path):
        graph = build_graph(
            tmp_path,
            {
                "src/repro/pkg/__init__.py": "from repro.pkg.impl import work\n",
                "src/repro/pkg/impl.py": "def work():\n    return 1\n",
                "src/repro/user.py": """\
                from repro.pkg import work

                def use():
                    return work()
                """,
            },
        )
        assert graph.deref("repro.pkg.work") == "repro.pkg.impl.work"
        assert graph.functions["repro.user.use"].callees == [
            "repro.pkg.impl.work"
        ]

    def test_cross_module_constant_resolution(self, tmp_path):
        import ast

        graph = build_graph(
            tmp_path,
            {
                "src/repro/tags.py": "TAG_GET = 1000\n",
                "src/repro/use.py": "from repro.tags import TAG_GET\n",
            },
        )
        module = graph.modules[1]
        expr = ast.parse("TAG_GET").body[0].value
        assert graph.resolve_constant(module, expr) == 1000

    def test_transitive_closure_carries_witness_chain(self, tmp_path):
        graph = build_graph(
            tmp_path,
            {
                "src/repro/chain.py": """\
                def deep():
                    return 0

                def mid():
                    return deep()

                def top():
                    return mid()
                """,
            },
        )
        closed = graph.transitive_closure({"repro.chain.deep": ("SOURCE",)})
        assert closed["repro.chain.top"] == (
            "repro.chain.mid",
            "repro.chain.deep",
            "SOURCE",
        )


class TestREP008CrossFunctionNondeterminism:
    """A violation the per-file REP001 cannot see: the source sits in a
    non-physics helper module, the call site sits in physics code."""

    FILES = {
        "src/repro/util/jitter.py": """\
        import time

        def jitter():
            return time.time() % 1.0
        """,
        "src/repro/kmc/engine.py": """\
        from repro.util.jitter import jitter

        def step(occ):
            return occ + jitter()
        """,
    }

    def test_old_per_file_rules_miss_it(self, tmp_path):
        write_tree(tmp_path, self.FILES)
        found = scan(tmp_path, codes={"REP001"})
        assert found == []  # wall-clock outside physics dirs: REP001-legal

    def test_rep008_reports_chain_at_physics_call_site(self, tmp_path):
        write_tree(tmp_path, self.FILES)
        found = scan(tmp_path, codes={"REP008"})
        assert len(found) == 1
        f = found[0]
        assert f.path == "src/repro/kmc/engine.py"
        assert "repro.util.jitter.jitter" in f.message
        assert "time.time" in f.message
        assert "src/repro/util/jitter.py:4" in f.message

    def test_noqa_on_source_does_not_hide_the_physics_flow(self, tmp_path):
        # An RNG draw justified for tooling is still a violation when
        # physics calls it — the pragma suppresses REP001, not the flow.
        write_tree(
            tmp_path,
            {
                "src/repro/tooling.py": """\
                import numpy as np

                def shake():
                    return np.random.rand()  # repro: noqa(REP001) tooling-only
                """,
                "src/repro/md/relax.py": """\
                from repro.tooling import shake

                def relax(x):
                    return x + shake()
                """,
            },
        )
        assert scan(tmp_path, codes={"REP001"}) == []
        found = scan(tmp_path, codes={"REP008"})
        assert len(found) == 1
        assert found[0].path == "src/repro/md/relax.py"
        assert "numpy.random.rand" in found[0].message

    def test_observe_layer_is_trusted(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/observe/api.py": """\
                import time

                def phase(name):
                    return time.perf_counter()
                """,
                "src/repro/kmc/engine.py": """\
                from repro.observe.api import phase

                def step(occ):
                    phase("kmc.step")
                    return occ
                """,
            },
        )
        assert scan(tmp_path, codes={"REP008"}) == []

    def test_seeded_helpers_stay_clean(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/util/rngs.py": """\
                import numpy as np

                def stream(seed):
                    return np.random.default_rng(seed)
                """,
                "src/repro/kmc/engine.py": """\
                from repro.util.rngs import stream

                def step(occ, seed):
                    return occ + stream(seed).random()
                """,
            },
        )
        assert scan(tmp_path, codes={"REP008"}) == []


class TestREP009CrossFunctionProtocol:
    """Violations REP002 cannot see: the tag crosses a function boundary
    as a parameter, or a collective hides behind a helper call."""

    UNPAIRED = {
        "src/repro/kmc/proto.py": """\
        TAG_HALO = 77

        def ship(comm, dest, tag, payload):
            comm.send(dest, tag, payload)

        def run(comm):
            ship(comm, 1, TAG_HALO, b"x")
            comm.recv(source=0, tag=78)
        """,
    }

    def test_old_per_file_rule_misses_it(self, tmp_path):
        # The parameterised tag looks dynamic to REP002 and mutes its
        # pairing check entirely — neither side is reported.
        write_tree(tmp_path, self.UNPAIRED)
        assert scan(tmp_path, codes={"REP002"}) == []

    def test_rep009_resolves_tag_value_through_the_helper(self, tmp_path):
        write_tree(tmp_path, self.UNPAIRED)
        found = scan(tmp_path, codes={"REP009"})
        assert len(found) == 1
        f = found[0]
        assert f.path == "src/repro/kmc/proto.py"
        assert "send tag 77" in f.message
        assert "repro.kmc.proto.run -> repro.kmc.proto.ship" in f.message

    def test_paired_through_helpers_is_clean(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/kmc/tags.py": "TAG_HALO = 77\n",
                "src/repro/kmc/send_side.py": """\
                from repro.kmc.tags import TAG_HALO

                def ship(comm, dest, tag, payload):
                    comm.send(dest, tag, payload)

                def run(comm):
                    ship(comm, 1, TAG_HALO, b"x")
                """,
                "src/repro/kmc/recv_side.py": """\
                def pull(comm):
                    return comm.recv(source=0, tag=77)
                """,
            },
        )
        assert scan(tmp_path, codes={"REP009"}) == []

    def test_offset_tags_pair_by_base_value(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/kmc/proto.py": """\
                TAG_GET = 1000

                def ship(comm, dest, tag, sector, payload):
                    comm.send(dest, tag + sector, payload)

                def run(comm, sector):
                    ship(comm, 1, TAG_GET, sector, b"x")
                    comm.recv(source=0, tag=1000 + sector)
                """,
            },
        )
        assert scan(tmp_path, codes={"REP009"}) == []

    def test_dynamic_recv_mutes_send_findings(self, tmp_path):
        files = dict(self.UNPAIRED)
        files["src/repro/kmc/ondemand.py"] = """\
        def pump(comm, status):
            return comm.recv(source=0, tag=status.tag)
        """
        write_tree(tmp_path, files)
        assert scan(tmp_path, codes={"REP009"}) == []

    def test_rank_conditional_collective_behind_helper(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/kmc/sync.py": """\
                def settle(comm):
                    comm.barrier()

                def run(comm, rank):
                    if rank == 0:
                        settle(comm)
                """,
            },
        )
        # REP002 only sees a plain function call under the branch.
        assert scan(tmp_path, codes={"REP002"}) == []
        found = scan(tmp_path, codes={"REP009"})
        assert len(found) == 1
        f = found[0]
        assert "barrier" in f.message
        assert "repro.kmc.sync.settle" in f.message
        assert "deadlock" in f.message

    def test_same_collective_in_both_branches_is_clean(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/kmc/sync.py": """\
                def settle(comm):
                    comm.barrier()

                def run(comm, rank):
                    if rank == 0:
                        settle(comm)
                    else:
                        comm.barrier()
                """,
            },
        )
        assert scan(tmp_path, codes={"REP009"}) == []

    def test_runtime_is_exempt(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/runtime/hub.py": """\
                TAG_CTL = 9

                def ship(comm, dest, tag, payload):
                    comm.send(dest, tag, payload)

                def run(comm):
                    ship(comm, 1, TAG_CTL, b"x")
                """,
            },
        )
        assert scan(tmp_path, codes={"REP009"}) == []


class TestSelfScanStaysClean:
    def test_repo_scan_has_no_interprocedural_findings(self):
        from pathlib import Path

        root = Path(__file__).resolve().parents[1]
        result = analyze_paths([root / "src"], root=root)
        inter = [f for f in result.findings if f.rule in ("REP008", "REP009")]
        assert inter == []
