"""Memory accounting tests (the 4e12 vs 8e11 atoms claim)."""

import pytest

from repro.md.neighbors.memory import (
    BASE_ATOM_RECORD,
    lattice_list_footprint,
    linked_cell_footprint,
    max_atoms_in_memory,
    neighbors_within,
    verlet_list_footprint,
)

CUTOFF = 5.6


class TestNeighborCensus:
    def test_first_shell(self):
        assert neighbors_within(2.5) == 8

    def test_two_shells(self):
        assert neighbors_within(2.9) == 14

    def test_md_cutoff(self):
        assert neighbors_within(5.6) == 58

    def test_with_skin(self):
        assert neighbors_within(6.0) > 58


class TestFootprints:
    def test_lattice_list_near_base_record(self):
        fp = lattice_list_footprint(CUTOFF)
        assert fp.bytes_per_atom == pytest.approx(BASE_ATOM_RECORD, rel=1e-3)

    def test_verlet_list_dominated_by_neighbor_indexes(self):
        fp = verlet_list_footprint(CUTOFF)
        m = neighbors_within(CUTOFF + 0.4)
        assert fp.bytes_per_atom > BASE_ATOM_RECORD + m * 4 - 1

    def test_linked_cell_between(self):
        lat = lattice_list_footprint(CUTOFF).bytes_per_atom
        cell = linked_cell_footprint(CUTOFF).bytes_per_atom
        verlet = verlet_list_footprint(CUTOFF).bytes_per_atom
        assert lat < cell < verlet

    def test_total_bytes_linear(self):
        fp = verlet_list_footprint(CUTOFF)
        assert fp.total_bytes(2000) == pytest.approx(
            2 * fp.total_bytes(1000) - fp.fixed_bytes
        )

    def test_max_atoms_inverse_of_total(self):
        fp = lattice_list_footprint(CUTOFF)
        n = fp.max_atoms(1 << 30)
        assert fp.total_bytes(n) <= (1 << 30)
        assert fp.total_bytes(n + 2) > (1 << 30)

    def test_zero_capacity(self):
        assert verlet_list_footprint(CUTOFF).max_atoms(0) == 0

    def test_negative_atoms_rejected(self):
        with pytest.raises(ValueError):
            lattice_list_footprint(CUTOFF).total_bytes(-1)


class TestPaperClaim:
    def test_lattice_list_advantage_matches_paper_band(self):
        # Paper: 4e12 atoms (lattice list) vs ~8e11 (neighbor list) on the
        # same machine — a ~5x advantage.  Our accounting gives 4-5x.
        atoms = max_atoms_in_memory(8 * 1024**3, CUTOFF)
        advantage = atoms["lattice_list"] / atoms["verlet_list"]
        assert 3.5 < advantage < 6.5

    def test_full_machine_capacity_magnitude(self):
        # 102,400 CGs x 8 GB must hold ~1e13 atoms with the lattice list —
        # comfortably above the paper's 4e12 production point.
        capacity = 102_400 * 8 * 1024**3
        atoms = max_atoms_in_memory(capacity, CUTOFF)
        assert atoms["lattice_list"] > 4e12
        # And the Verlet list must NOT reach 4e12 (the paper's reason for
        # the new structure).
        assert atoms["verlet_list"] < 4e12
