"""Shared fixtures.

Expensive artifacts (potentials, parallel-run results) are session-scoped
so many tests can assert against one computation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.kmc.akmc import ParallelAKMC, place_random_vacancies
from repro.kmc.events import KMCModel, RateParameters
from repro.lattice.bcc import BCCLattice
from repro.lattice.box import Box
from repro.md.state import AtomState
from repro.potential.fe import FeParameters, make_fe_potential


@pytest.fixture(scope="session")
def potential():
    """The iron-like EAM potential at test-friendly table resolution."""
    return make_fe_potential(n=1000)


@pytest.fixture(scope="session")
def potential_compacted(potential):
    return potential.with_layout("compacted")


@pytest.fixture(scope="session")
def fe_params():
    return FeParameters()


@pytest.fixture(scope="session")
def lattice5():
    """Smallest lattice accepted by the MD neighbor machinery."""
    return BCCLattice(5, 5, 5)


@pytest.fixture(scope="session")
def lattice8():
    """A lattice large enough for 2x2x2 parallel decompositions."""
    return BCCLattice(8, 8, 8)


@pytest.fixture(scope="session")
def box5(lattice5):
    return Box.for_lattice(lattice5)


@pytest.fixture()
def perturbed_state(lattice5):
    """A thermal-amplitude perturbed perfect crystal (fresh per test)."""
    state = AtomState.perfect(lattice5)
    rng = np.random.default_rng(12345)
    state.x = state.x + rng.normal(0.0, 0.05, state.x.shape)
    return state


@pytest.fixture(scope="session")
def rate_params():
    return RateParameters()


@pytest.fixture(scope="session")
def kmc_model8(lattice8, potential, rate_params):
    return KMCModel(lattice8, potential, rate_params)


@pytest.fixture(scope="session")
def kmc_initial_occ(kmc_model8):
    """20 random vacancies on the 8^3 lattice."""
    return place_random_vacancies(kmc_model8, 20, np.random.default_rng(1))


@pytest.fixture(scope="session")
def parallel_kmc_results(lattice8, potential, rate_params, kmc_initial_occ):
    """One parallel AKMC run per communication scheme, same workload.

    The expensive fixture of the suite: three 8-rank runs whose results
    back all the scheme-equivalence, conservation and traffic tests.
    """
    results = {}
    for scheme in ("traditional", "ondemand", "onesided"):
        engine = ParallelAKMC(
            lattice8,
            potential,
            rate_params,
            nranks=8,
            scheme=scheme,
            seed=5,
        )
        results[scheme] = engine.run(kmc_initial_occ, max_cycles=10)
    return results
