"""Cross-module property-based tests (hypothesis).

Invariants that cut across subsystems: symmetry of the physics, exactness
of pack/unpack paths, conservation under arbitrary event sequences.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kmc.events import ATOM, VACANCY, KMCModel, RateParameters
from repro.lattice.bcc import BCCLattice
from repro.lattice.box import Box
from repro.md.state import AtomState
from repro.potential.fe import FeParameters, make_fe_potential


@pytest.fixture(scope="module")
def small_potential():
    return make_fe_potential(n=400)


@pytest.fixture(scope="module")
def model(small_potential):
    return KMCModel(BCCLattice(6, 6, 6), small_potential, RateParameters())


class TestPhysicalSymmetries:
    @given(
        shift_x=st.floats(-10, 10),
        shift_y=st.floats(-10, 10),
        shift_z=st.floats(-10, 10),
    )
    @settings(max_examples=20, deadline=None)
    def test_energy_translation_invariant(
        self, small_potential, shift_x, shift_y, shift_z
    ):
        lat = BCCLattice(5, 5, 5)
        box = Box.for_lattice(lat)
        rng = np.random.default_rng(0)
        x = lat.all_positions() + rng.normal(0, 0.05, (lat.nsites, 3))
        e0 = small_potential.total_energy(x, box)
        shifted = box.wrap(x + np.array([shift_x, shift_y, shift_z]))
        e1 = small_potential.total_energy(shifted, box)
        assert e1 == pytest.approx(e0, rel=1e-9)

    @given(axis_perm=st.permutations([0, 1, 2]))
    @settings(max_examples=6, deadline=None)
    def test_energy_axis_permutation_invariant(
        self, small_potential, axis_perm
    ):
        # Cubic symmetry: permuting the coordinate axes of a cubic box
        # leaves the total energy unchanged.
        lat = BCCLattice(5, 5, 5)
        box = Box.for_lattice(lat)
        rng = np.random.default_rng(3)
        x = lat.all_positions() + rng.normal(0, 0.05, (lat.nsites, 3))
        e0 = small_potential.total_energy(x, box)
        e1 = small_potential.total_energy(x[:, list(axis_perm)], box)
        assert e1 == pytest.approx(e0, rel=1e-9)

    @given(seed=st.integers(0, 100))
    @settings(max_examples=10, deadline=None)
    def test_forces_are_energy_gradient(self, small_potential, seed):
        # Random atom, random direction: finite differences must match.
        lat = BCCLattice(5, 5, 5)
        box = Box.for_lattice(lat)
        rng = np.random.default_rng(seed)
        x = lat.all_positions() + rng.normal(0, 0.05, (lat.nsites, 3))
        atom = int(rng.integers(0, lat.nsites))
        direction = rng.normal(size=3)
        direction /= np.linalg.norm(direction)
        h = 1e-6
        xp = x.copy()
        xp[atom] += h * direction
        xm = x.copy()
        xm[atom] -= h * direction
        grad = (
            small_potential.total_energy(xp, box)
            - small_potential.total_energy(xm, box)
        ) / (2 * h)
        f = small_potential.pairwise_forces(x, box)[atom]
        assert float(f @ direction) == pytest.approx(-grad, abs=1e-4)


class TestKMCInvariants:
    @given(seed=st.integers(0, 1000), nevents=st.integers(1, 40))
    @settings(max_examples=15, deadline=None)
    def test_vacancy_count_invariant_under_any_event_sequence(
        self, model, seed, nevents
    ):
        from repro.kmc.akmc import SerialAKMC, place_random_vacancies

        occ0 = place_random_vacancies(model, 8, np.random.default_rng(seed))
        engine = SerialAKMC(
            model.lattice, model.potential, model.params, occ0, seed=seed
        )
        engine.run(max_events=nevents)
        assert int(np.sum(engine.occ == VACANCY)) == 8

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_rates_strictly_positive_and_finite(self, model, seed):
        rng = np.random.default_rng(seed)
        occ = model.perfect_occupancy()
        rows = rng.choice(model.nrows, size=6, replace=False)
        occ[rows] = VACANCY
        for v in rows:
            targets, rates = model.vacancy_events(int(v), occ)
            assert np.all(np.isfinite(rates))
            assert np.all(rates > 0)
            assert len(targets) <= 8

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_swap_is_self_inverse(self, model, seed):
        rng = np.random.default_rng(seed)
        occ = model.perfect_occupancy()
        v = int(rng.integers(0, model.nrows))
        occ[v] = VACANCY
        t = int(model.first_matrix[v][rng.integers(0, 8)])
        if occ[t] != ATOM:
            return
        before = occ.copy()
        model.execute_swap(occ, v, t)
        model.execute_swap(occ, t, v)
        assert np.array_equal(occ, before)


class TestStateInvariants:
    @given(
        rows=st.lists(st.integers(0, 249), min_size=0, max_size=20, unique=True)
    )
    @settings(max_examples=30, deadline=None)
    def test_vacancy_bookkeeping_consistent(self, rows):
        lat = BCCLattice(5, 5, 5)
        state = AtomState.perfect(lat)
        for row in rows:
            state.make_vacancy(row)
        assert state.natoms + state.nvacancies == state.n
        assert set(state.vacancy_rows().tolist()) == set(rows)

    @given(seed=st.integers(0, 1000), temperature=st.floats(1.0, 2000.0))
    @settings(max_examples=25, deadline=None)
    def test_thermal_init_exact_temperature_and_no_drift(
        self, seed, temperature
    ):
        from repro.md.thermostat import maxwell_boltzmann_velocities

        lat = BCCLattice(5, 5, 5)
        state = AtomState.perfect(lat)
        maxwell_boltzmann_velocities(
            state, temperature, np.random.default_rng(seed)
        )
        assert state.temperature() == pytest.approx(temperature, rel=1e-6)
        assert np.allclose(state.momentum(), 0.0, atol=1e-8)


class TestTableProperties:
    @given(
        d=st.floats(0.3, 1.2),
        alpha=st.floats(1.5, 3.5),
        x=st.floats(0.0, 5.5),
    )
    @settings(max_examples=40, deadline=None)
    def test_layout_equivalence_over_random_potentials(self, d, alpha, x):
        params = FeParameters(d_morse=d, alpha=alpha)
        from repro.potential.compact import CompactTable
        from repro.potential.spline import SplineTable

        trad = SplineTable.from_function(params.pair, params.cutoff, n=64)
        comp = CompactTable.from_spline(trad)
        assert float(trad(x)) == pytest.approx(float(comp(x)), abs=1e-12)
