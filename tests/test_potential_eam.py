"""EAM potential tests: Equations (1)-(3), forces, layout invariance."""

import numpy as np
import pytest

from repro.lattice.box import Box
from repro.potential.eam import EAMPotential
from repro.potential.fe import make_fe_tables


class TestTableSet:
    def test_layout_conversion_roundtrip(self, potential):
        comp = potential.tables.compacted()
        trad = comp.traditional()
        assert comp.layout == "compacted"
        assert trad.layout == "traditional"
        assert np.allclose(trad.pair.samples, potential.tables.pair.samples)

    def test_nbytes_ordering(self, potential):
        comp = potential.tables.compacted()
        assert comp.nbytes * 6 < potential.tables.nbytes

    def test_cutoff_validation(self):
        tables = make_fe_tables(n=100)
        with pytest.raises(ValueError, match="cutoff"):
            EAMPotential(tables, cutoff=100.0)
        with pytest.raises(ValueError, match="cutoff"):
            EAMPotential(tables, cutoff=-1.0)

    def test_unknown_layout_rejected(self, potential):
        with pytest.raises(ValueError, match="layout"):
            potential.with_layout("mystery")


class TestPointQueries:
    def test_phi_zero_beyond_cutoff(self, potential):
        assert potential.phi(potential.cutoff + 0.1) == 0.0
        assert potential.dphi(potential.cutoff + 1.0) == 0.0

    def test_density_zero_beyond_cutoff(self, potential):
        assert potential.fdens(potential.cutoff + 0.1) == 0.0

    def test_phi_repulsive_at_short_range(self, potential):
        assert potential.phi(1.0) > 0
        assert potential.phi(0.5) > potential.phi(1.0)

    def test_phi_attractive_at_first_shell(self, potential, fe_params):
        assert potential.phi(fe_params.r0) < 0

    def test_density_decreasing(self, potential):
        r = np.linspace(1.0, 5.0, 50)
        f = potential.fdens(r)
        assert np.all(np.diff(f) < 0)

    def test_embedding_negative_and_decreasing(self, potential):
        rho = np.linspace(0.5, 10.0, 20)
        emb = potential.embed(rho)
        assert np.all(emb < 0)
        assert np.all(np.diff(emb) < 0)


class TestEnergies:
    def test_site_energy_of_isolated_atom_zero(self, potential):
        assert potential.site_energy(np.array([])) == pytest.approx(0.0)

    def test_site_energy_counts_half_bonds(self, potential):
        d = np.array([2.4])
        e = potential.site_energy(d)
        expected = 0.5 * float(potential.phi(2.4)) + float(
            potential.embed(potential.fdens(2.4))
        )
        assert e == pytest.approx(expected)

    def test_dimer_total_energy(self, potential):
        pos = np.array([[0.0, 0, 0], [2.4, 0, 0]])
        e = potential.total_energy(pos)
        expected = float(potential.phi(2.4)) + 2 * float(
            potential.embed(potential.fdens(2.4))
        )
        assert e == pytest.approx(expected)

    def test_total_energy_negative_for_crystal(self, potential, lattice5):
        pos = lattice5.all_positions()
        box = Box.for_lattice(lattice5)
        assert potential.total_energy(pos, box) < 0

    def test_cohesive_energy_per_atom_reasonable(self, potential, lattice5):
        pos = lattice5.all_positions()
        box = Box.for_lattice(lattice5)
        per_atom = potential.total_energy(pos, box) / len(pos)
        # Order of magnitude of metallic cohesion (not calibrated to Fe).
        assert -15.0 < per_atom < -0.5


class TestForces:
    def test_perfect_lattice_forces_vanish(self, potential, lattice5):
        pos = lattice5.all_positions()
        box = Box.for_lattice(lattice5)
        f = potential.pairwise_forces(pos, box)
        assert np.max(np.abs(f)) < 1e-10

    def test_dimer_forces_equal_opposite(self, potential):
        pos = np.array([[0.0, 0, 0], [2.2, 0, 0]])
        f = potential.pairwise_forces(pos)
        assert np.allclose(f[0], -f[1])

    def test_dimer_force_matches_energy_gradient(self, potential):
        h = 1e-6
        def energy(r):
            return potential.total_energy(np.array([[0.0, 0, 0], [r, 0, 0]]))
        r = 2.3
        grad = (energy(r + h) - energy(r - h)) / (2 * h)
        f = potential.pairwise_forces(np.array([[0.0, 0, 0], [r, 0, 0]]))
        assert f[1][0] == pytest.approx(-grad, rel=1e-4)

    def test_force_restoring_for_displaced_atom(self, potential, lattice5):
        # A small displacement must produce a restoring force (crystal
        # stability around the perfect configuration).
        pos = lattice5.all_positions().copy()
        box = Box.for_lattice(lattice5)
        pos[10, 0] += 0.15
        f = potential.pairwise_forces(pos, box)
        assert f[10, 0] < 0

    def test_total_force_zero(self, potential, lattice5):
        rng = np.random.default_rng(4)
        pos = lattice5.all_positions() + rng.normal(0, 0.08, (lattice5.nsites, 3))
        box = Box.for_lattice(lattice5)
        f = potential.pairwise_forces(pos, box)
        assert np.allclose(f.sum(axis=0), 0.0, atol=1e-9)


class TestLayoutInvariance:
    def test_energies_identical_across_layouts(
        self, potential, potential_compacted, lattice5
    ):
        rng = np.random.default_rng(11)
        pos = lattice5.all_positions() + rng.normal(0, 0.05, (lattice5.nsites, 3))
        box = Box.for_lattice(lattice5)
        e1 = potential.total_energy(pos, box)
        e2 = potential_compacted.total_energy(pos, box)
        assert e1 == pytest.approx(e2, abs=1e-10)

    def test_forces_identical_across_layouts(
        self, potential, potential_compacted, lattice5
    ):
        rng = np.random.default_rng(12)
        pos = lattice5.all_positions() + rng.normal(0, 0.05, (lattice5.nsites, 3))
        box = Box.for_lattice(lattice5)
        f1 = potential.pairwise_forces(pos, box)
        f2 = potential_compacted.pairwise_forces(pos, box)
        assert np.allclose(f1, f2, atol=1e-10)
