"""Compacted-table tests: layout size and exact equivalence (Figure 5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.potential.compact import CompactTable, compaction_ratio
from repro.potential.spline import SplineTable


class TestLayout:
    def test_nbytes_about_39kb_at_5000(self):
        # "a compacted interpolation table, of which size is only 39 KB".
        t = CompactTable.from_function(np.sin, 5.0, n=5000)
        assert t.nbytes == pytest.approx(39 * 1024, rel=0.03)

    def test_compaction_ratio_is_one_seventh(self):
        # "(1/7 of the traditional table)".
        assert compaction_ratio(5000) == pytest.approx(1 / 7)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            CompactTable(np.zeros(3), 1.0)
        with pytest.raises(ValueError):
            CompactTable(np.zeros(10), -1.0)

    def test_roundtrip_through_spline(self):
        t = SplineTable.from_function(np.cos, 2.0, n=50)
        back = CompactTable.from_spline(t).to_spline()
        assert np.allclose(back.coeff, t.coeff)


class TestEquivalence:
    """The compacted table must reproduce the traditional one exactly —
    the paper's correctness premise ("all the values in the traditional
    table can be calculated on the fly")."""

    @pytest.mark.parametrize(
        "func",
        [np.sin, np.cos, lambda r: np.exp(-r), lambda r: r**3 - 2 * r],
        ids=["sin", "cos", "exp", "cubic"],
    )
    def test_values_identical(self, func):
        xmax, n = 4.0, 200
        trad = SplineTable.from_function(func, xmax, n=n)
        comp = CompactTable.from_function(func, xmax, n=n)
        x = np.linspace(0, xmax, 4096)
        assert np.allclose(trad(x), comp(x), atol=1e-13, rtol=0)

    def test_derivatives_identical(self):
        trad = SplineTable.from_function(np.sin, 4.0, n=200)
        comp = CompactTable.from_function(np.sin, 4.0, n=200)
        x = np.linspace(0, 4.0, 4096)
        assert np.allclose(
            trad.derivative(x), comp.derivative(x), atol=1e-11, rtol=0
        )

    def test_value_and_derivative_identical(self):
        trad = SplineTable.from_function(np.cos, 3.0, n=100)
        comp = CompactTable.from_spline(trad)
        x = np.linspace(0, 3.0, 512)
        tv, td = trad.value_and_derivative(x)
        cv, cd = comp.value_and_derivative(x)
        assert np.allclose(tv, cv, atol=1e-13)
        assert np.allclose(td, cd, atol=1e-11)

    @given(
        seed=st.integers(0, 2**31),
        x=st.floats(0.0, 1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_equivalence_property_random_tables(self, seed, x):
        rng = np.random.default_rng(seed)
        samples = rng.normal(size=16)
        trad = SplineTable(samples.copy(), 1.0)
        comp = CompactTable(samples.copy(), 1.0)
        assert float(trad(x)) == pytest.approx(float(comp(x)), abs=1e-12)

    def test_boundary_knots_identical(self):
        # The fallback derivative formulas at m in {0, 1, n-1, n} must
        # also agree between layouts.
        rng = np.random.default_rng(7)
        samples = rng.normal(size=12)
        trad = SplineTable(samples, 1.0)
        comp = CompactTable(samples, 1.0)
        edges = np.array([0.0, 0.04, 0.09, 0.91, 0.96, 0.999])
        assert np.allclose(trad(edges), comp(edges), atol=1e-13)
        assert np.allclose(
            trad.derivative(edges), comp.derivative(edges), atol=1e-12
        )

    def test_hits_knots_exactly(self):
        samples = np.random.default_rng(3).normal(size=40)
        comp = CompactTable(samples, 2.0)
        x = np.linspace(0, 2.0, 40)
        assert np.allclose(comp(x[:-1]), samples[:-1], atol=1e-12)
