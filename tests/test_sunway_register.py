"""Register-communication mesh tests (§2.1.2 alternative + §5 proposal)."""

import numpy as np
import pytest

from repro.sunway.localstore import LocalStoreOverflow
from repro.sunway.register import (
    MESH_COLS,
    DistributedTable,
    OneSidedRegisterProtocol,
    RegisterMesh,
    TwoSidedRegisterProtocol,
    lookup_strategy_comparison,
)


class TestMeshTopology:
    def test_coords_roundtrip(self):
        for cpe in range(64):
            r, c = RegisterMesh.coords(cpe)
            assert r * MESH_COLS + c == cpe

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            RegisterMesh.coords(64)

    def test_self_is_zero_hops(self):
        assert RegisterMesh.hops_between(20, 20) == 0

    def test_row_and_column_are_one_hop(self):
        assert RegisterMesh.hops_between(0, 5) == 1  # same row
        assert RegisterMesh.hops_between(0, 56) == 1  # same column

    def test_diagonal_is_two_hops(self):
        assert RegisterMesh.hops_between(0, 9) == 2
        assert RegisterMesh.hops_between(0, 63) == 2

    def test_symmetric(self):
        for a, b in [(3, 17), (0, 63), (8, 9)]:
            assert RegisterMesh.hops_between(a, b) == RegisterMesh.hops_between(
                b, a
            )


class TestTransferPricing:
    def test_self_transfer_free(self):
        mesh = RegisterMesh()
        assert mesh.transfer_time(5, 5, 1000) == 0.0

    def test_two_hop_costs_double(self):
        mesh = RegisterMesh()
        one = mesh.transfer_time(0, 1, 32)
        two = mesh.transfer_time(0, 9, 32)
        assert two == pytest.approx(2 * one)

    def test_packets_rounded_up(self):
        mesh = RegisterMesh()
        t33 = mesh.transfer_time(0, 1, 33)  # needs 2 packets
        t32 = mesh.transfer_time(0, 1, 32)
        assert t33 == pytest.approx(2 * t32)

    def test_stats_accumulate(self):
        mesh = RegisterMesh()
        mesh.transfer_time(0, 1, 64)
        mesh.sync_round_time(64)
        assert mesh.stats.transfers == 1
        assert mesh.stats.bytes == 64
        assert mesh.stats.sync_rounds == 1
        mesh.reset()
        assert mesh.stats.transfers == 0

    def test_validation(self):
        mesh = RegisterMesh()
        with pytest.raises(ValueError):
            mesh.transfer_time(0, 1, -1)
        with pytest.raises(ValueError):
            mesh.sync_round_time(0)


class TestDistributedTable:
    def test_sharding_covers_table(self):
        table = DistributedTable(200_000)
        owners = {table.owner_of(o) for o in range(0, 200_000, 7919)}
        assert owners  # several segments across CPEs
        assert table.owner_of(0) == 0

    def test_aggregate_capacity_enforced(self):
        # 64 CPEs x 24 KB free = 1.5 MB aggregate; more must fail.
        with pytest.raises(LocalStoreOverflow):
            DistributedTable(3 * 1024 * 1024)

    def test_reserve_must_leave_room(self):
        with pytest.raises(LocalStoreOverflow):
            DistributedTable(1000, reserve_bytes=64 * 1024)

    def test_offset_validation(self):
        table = DistributedTable(1000)
        with pytest.raises(ValueError):
            table.owner_of(1000)

    def test_three_fecu_table_sets_fit_distributed(self):
        # The paper's alloy problem: 3 x ~117 KB of compacted tables
        # cannot fit ONE local store but shard comfortably over 64.
        DistributedTable(3 * 3 * 40008)  # 9 tables ~ 352 KB


class TestStrategyComparison:
    @pytest.fixture(scope="class")
    def comparison(self):
        return lookup_strategy_comparison(lookups=500)

    def test_resident_is_free(self, comparison):
        assert comparison["resident"] == 0.0

    def test_onesided_register_beats_dma(self, comparison):
        # The §5 thesis: one-sided register communication would beat the
        # per-lookup DMA path.
        assert comparison["register_onesided"] < comparison["dma"]

    def test_twosided_register_loses_to_dma(self, comparison):
        # Why the paper rejected the distribution approach with the
        # existing two-sided interface.
        assert comparison["register_twosided"] > comparison["dma"]

    def test_full_ordering_tells_papers_story(self, comparison):
        assert (
            comparison["resident"]
            < comparison["register_onesided"]
            < comparison["dma"]
            < comparison["register_twosided"]
        )

    def test_protocols_price_batches_consistently(self):
        table = DistributedTable(100_000)
        offsets = np.array([0, 50_000, 99_999])
        one = OneSidedRegisterProtocol(table, RegisterMesh())
        two = TwoSidedRegisterProtocol(table, RegisterMesh())
        t1 = one.batch_time(27, offsets, 40)
        t2 = two.batch_time(27, offsets, 40)
        assert t2 > t1  # sync rounds always cost extra
