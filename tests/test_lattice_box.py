"""Periodic box tests (incl. hypothesis properties)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lattice.bcc import BCCLattice
from repro.lattice.box import Box


class TestConstruction:
    def test_volume(self):
        assert Box([2.0, 3.0, 4.0]).volume == pytest.approx(24.0)

    def test_for_lattice(self):
        lat = BCCLattice(3, 4, 5, a=2.0)
        assert np.allclose(Box.for_lattice(lat).lengths, [6.0, 8.0, 10.0])

    @pytest.mark.parametrize("bad", [[0, 1, 1], [1, -2, 1]])
    def test_rejects_nonpositive_lengths(self, bad):
        with pytest.raises(ValueError, match="positive"):
            Box(bad)

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError, match="shape"):
            Box([1.0, 2.0])


class TestWrap:
    def test_wrap_inside_unchanged(self):
        box = Box([10.0, 10.0, 10.0])
        p = np.array([1.0, 5.0, 9.9])
        assert np.allclose(box.wrap(p), p)

    def test_wrap_negative(self):
        box = Box([10.0, 10.0, 10.0])
        assert np.allclose(box.wrap([-1.0, -11.0, 0.0]), [9.0, 9.0, 0.0])

    def test_wrap_beyond(self):
        box = Box([10.0, 20.0, 30.0])
        assert np.allclose(box.wrap([15.0, 45.0, 30.0]), [5.0, 5.0, 0.0])

    @given(
        x=st.floats(-100, 100),
        y=st.floats(-100, 100),
        z=st.floats(-100, 100),
    )
    @settings(max_examples=100, deadline=None)
    def test_wrap_idempotent_and_in_range(self, x, y, z):
        box = Box([7.0, 11.0, 13.0])
        w = box.wrap([x, y, z])
        assert np.all(w >= 0)
        assert np.all(w < box.lengths)
        assert np.allclose(box.wrap(w), w, atol=1e-9)


class TestMinimumImage:
    def test_short_vector_unchanged(self):
        box = Box([10.0, 10.0, 10.0])
        d = np.array([1.0, -2.0, 3.0])
        assert np.allclose(box.minimum_image(d), d)

    def test_long_vector_folded(self):
        box = Box([10.0, 10.0, 10.0])
        assert np.allclose(box.minimum_image([9.0, 0.0, 0.0]), [-1.0, 0.0, 0.0])
        assert np.allclose(box.minimum_image([-6.0, 0.0, 0.0]), [4.0, 0.0, 0.0])

    @given(
        dx=st.floats(-50, 50),
        dy=st.floats(-50, 50),
        dz=st.floats(-50, 50),
    )
    @settings(max_examples=100, deadline=None)
    def test_minimum_image_bounds(self, dx, dy, dz):
        box = Box([8.0, 9.0, 10.0])
        m = box.minimum_image([dx, dy, dz])
        assert np.all(np.abs(m) <= box.lengths / 2 + 1e-9)

    @given(dx=st.floats(-50, 50))
    @settings(max_examples=50, deadline=None)
    def test_minimum_image_preserves_congruence(self, dx):
        box = Box([8.0, 8.0, 8.0])
        m = box.minimum_image([dx, 0.0, 0.0])
        assert (m[0] - dx) % 8.0 == pytest.approx(0.0, abs=1e-9) or (
            m[0] - dx
        ) % 8.0 == pytest.approx(8.0, abs=1e-9)


class TestDistance:
    def test_symmetric(self):
        box = Box([10.0, 10.0, 10.0])
        a, b = np.array([1.0, 2.0, 3.0]), np.array([9.5, 2.0, 3.0])
        assert box.distance(a, b) == pytest.approx(box.distance(b, a))

    def test_across_boundary(self):
        box = Box([10.0, 10.0, 10.0])
        assert box.distance([0.5, 0, 0], [9.5, 0, 0]) == pytest.approx(1.0)

    def test_vectorized(self):
        box = Box([10.0, 10.0, 10.0])
        a = np.zeros((4, 3))
        b = np.array([[1, 0, 0], [0, 2, 0], [0, 0, 3], [9, 0, 0]], dtype=float)
        assert np.allclose(box.distance(a, b), [1, 2, 3, 1])
