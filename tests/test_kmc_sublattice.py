"""Sector schedule tests: geometry, strip sets, conflict-freedom."""

import numpy as np
import pytest

from repro.kmc.akmc import ghost_width_cells
from repro.kmc.events import RateParameters
from repro.kmc.sublattice import SectorSchedule
from repro.lattice.bcc import BCCLattice
from repro.lattice.domain import DomainDecomposition


@pytest.fixture(scope="module")
def schedules8():
    lattice = BCCLattice(8, 8, 8)
    decomp = DomainDecomposition(lattice, (2, 2, 2))
    width = ghost_width_cells(lattice, RateParameters())
    out = []
    for rank in range(decomp.nprocs):
        sub = decomp.subdomain(rank)
        owned = sub.owned_site_ranks(lattice)
        ghosts = sub.all_ghost_site_ranks(lattice, width)
        sites = np.union1d(owned, ghosts)
        out.append(SectorSchedule(decomp, rank, sites, width))
    return lattice, decomp, width, out


class TestGeometry:
    def test_ghost_width_for_default_params(self):
        lattice = BCCLattice(8, 8, 8)
        assert ghost_width_cells(lattice, RateParameters()) == 2

    def test_eight_sectors(self, schedules8):
        _lat, _dec, _w, scheds = schedules8
        assert all(s.nsectors == 8 for s in scheds)

    def test_sector_rows_partition_owned(self, schedules8):
        lattice, decomp, _w, scheds = schedules8
        for rank, sched in enumerate(scheds):
            owned = decomp.subdomain(rank).owned_site_ranks(lattice)
            merged = np.sort(np.concatenate(sched.sector_rows))
            owned_rows = np.searchsorted(sched.sites, owned)
            assert np.array_equal(merged, np.sort(owned_rows))

    def test_too_small_subdomain_rejected(self):
        lattice = BCCLattice(4, 4, 4)
        decomp = DomainDecomposition(lattice, (2, 2, 2))
        sub = decomp.subdomain(0)
        sites = np.union1d(
            sub.owned_site_ranks(lattice),
            sub.all_ghost_site_ranks(lattice, 2),
        )
        with pytest.raises(ValueError, match="2\\*width"):
            SectorSchedule(decomp, 0, sites, 2)

    def test_neighbors_deduplicated(self, schedules8):
        _lat, _dec, _w, scheds = schedules8
        # On a 2^3 grid every other rank is a neighbor exactly once.
        assert scheds[0].neighbors == list(range(1, 8))


class TestStrips:
    def test_get_strips_pair_up(self, schedules8):
        # My get_send to n for sector s == n's get_recv from me.
        _lat, _dec, _w, scheds = schedules8
        for rank, sched in enumerate(scheds):
            for s in range(8):
                for sc in sched.sector_comm[s]:
                    peer = scheds[sc.neighbor]
                    peer_sc = next(
                        p for p in peer.sector_comm[s] if p.neighbor == rank
                    )
                    sent = sched.sites[sc.get_send_rows]
                    received = peer.sites[peer_sc.get_recv_rows]
                    assert np.array_equal(sent, received)

    def test_put_strips_pair_up(self, schedules8):
        _lat, _dec, _w, scheds = schedules8
        for rank, sched in enumerate(scheds):
            for s in (0, 5):
                for sc in sched.sector_comm[s]:
                    peer = scheds[sc.neighbor]
                    peer_sc = next(
                        p for p in peer.sector_comm[s] if p.neighbor == rank
                    )
                    assert np.array_equal(
                        sched.sites[sc.put_send_rows],
                        peer.sites[peer_sc.put_recv_rows],
                    )

    def test_put_strips_within_get_strips(self, schedules8):
        # Event reach (1 cell) is a subset of the rate stencil (2 cells).
        _lat, _dec, _w, scheds = schedules8
        sched = scheds[0]
        for s in range(8):
            for sc in sched.sector_comm[s]:
                assert set(sc.put_send_rows.tolist()) <= set(
                    sc.get_recv_rows.tolist()
                )

    def test_concurrent_event_reach_disjoint(self, schedules8):
        # The conflict-freedom invariant of synchronous sublattices: for
        # each sector position, the event-reach envelopes (sector + 1
        # cell) of different ranks never overlap.
        lattice, decomp, _w, scheds = schedules8
        for s in range(8):
            envelopes = []
            for rank in range(decomp.nprocs):
                sector = decomp.subdomain(rank).sectors()[s]
                env = np.union1d(
                    sector.owned_site_ranks(lattice),
                    sector.all_ghost_site_ranks(lattice, 1),
                )
                envelopes.append(set(env.tolist()))
            for a in range(len(envelopes)):
                for b in range(a + 1, len(envelopes)):
                    assert envelopes[a].isdisjoint(envelopes[b]), (s, a, b)

    def test_interest_rows_filter(self, schedules8):
        _lat, decomp, w, scheds = schedules8
        sched = scheds[0]
        dirty = np.arange(len(sched.sites), dtype=np.int64)
        filtered = sched.interest_rows(1, dirty)
        interest = set(sched.interest[1].tolist())
        assert set(sched.sites[filtered].tolist()) <= interest

    def test_traditional_strip_volume_positive(self, schedules8):
        _lat, _dec, _w, scheds = schedules8
        assert scheds[0].traditional_strip_sites() > 0
