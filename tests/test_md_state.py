"""Atom state array tests."""

import numpy as np
import pytest

from repro.constants import FE_MASS
from repro.lattice.box import Box
from repro.md.state import VACANCY_ID, AtomState


class TestConstruction:
    def test_perfect_occupies_all_sites(self, lattice5):
        state = AtomState.perfect(lattice5)
        assert state.n == lattice5.nsites
        assert state.natoms == lattice5.nsites
        assert state.nvacancies == 0
        assert np.array_equal(state.x, state.site_pos)

    def test_for_sites_subsets(self, lattice5):
        ranks = np.array([0, 5, 10])
        state = AtomState.for_sites(lattice5, ranks)
        assert state.n == 3
        assert np.array_equal(state.ids, ranks)
        assert np.allclose(state.x, lattice5.position_of(ranks))

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="shape"):
            AtomState(np.arange(3), np.zeros((2, 3)), np.zeros((3, 3)))

    def test_mass_validation(self, lattice5):
        pos = lattice5.all_positions()
        with pytest.raises(ValueError, match="mass"):
            AtomState(np.arange(len(pos)), pos, pos, mass=-1.0)


class TestVacancies:
    def test_make_vacancy(self, lattice5):
        state = AtomState.perfect(lattice5)
        state.v[7] = [1.0, 2.0, 3.0]
        state.make_vacancy(7)
        assert state.ids[7] == VACANCY_ID
        assert state.nvacancies == 1
        assert np.array_equal(state.x[7], state.site_pos[7])
        assert np.all(state.v[7] == 0)

    def test_vacancy_rows(self, lattice5):
        state = AtomState.perfect(lattice5)
        for row in (3, 17, 60):
            state.make_vacancy(row)
        assert np.array_equal(state.vacancy_rows(), [3, 17, 60])

    def test_occupy_fills_vacancy(self, lattice5):
        state = AtomState.perfect(lattice5)
        state.make_vacancy(5)
        state.occupy(5, atom_id=99, x=[1, 1, 1], v=[0.1, 0, 0])
        assert state.ids[5] == 99
        assert state.natoms == lattice5.nsites

    def test_occupy_occupied_row_rejected(self, lattice5):
        state = AtomState.perfect(lattice5)
        with pytest.raises(ValueError, match="already occupied"):
            state.occupy(0, atom_id=1, x=[0, 0, 0], v=[0, 0, 0])

    def test_occupy_negative_id_rejected(self, lattice5):
        state = AtomState.perfect(lattice5)
        state.make_vacancy(0)
        with pytest.raises(ValueError, match="non-negative"):
            state.occupy(0, atom_id=-3, x=[0, 0, 0], v=[0, 0, 0])


class TestDiagnostics:
    def test_displacement_zero_for_perfect(self, lattice5):
        assert np.all(AtomState.perfect(lattice5).displacement() == 0)

    def test_displacement_measures_offset(self, lattice5):
        state = AtomState.perfect(lattice5)
        state.x[3] += [0.3, 0.4, 0.0]
        assert state.displacement()[3] == pytest.approx(0.5)

    def test_displacement_minimum_image(self, lattice5):
        state = AtomState.perfect(lattice5)
        box = Box.for_lattice(lattice5)
        state.x[0] = box.wrap(state.x[0] - np.array([0.2, 0, 0]))
        assert state.displacement(box)[0] == pytest.approx(0.2)

    def test_vacancies_have_zero_displacement(self, lattice5):
        state = AtomState.perfect(lattice5)
        state.x[2] += 5.0
        state.make_vacancy(2)
        assert state.displacement()[2] == 0.0

    def test_temperature_from_equipartition(self, lattice5):
        state = AtomState.perfect(lattice5)
        rng = np.random.default_rng(0)
        from repro.constants import thermal_velocity_sigma

        sigma = thermal_velocity_sigma(600.0, FE_MASS)
        state.v[:] = rng.normal(0, sigma, state.v.shape)
        assert state.temperature() == pytest.approx(600.0, rel=0.1)

    def test_kinetic_energy_matches_definition(self, lattice5):
        state = AtomState.perfect(lattice5)
        state.v[0] = [1.0, 0.0, 0.0]
        from repro.constants import MVV2E

        assert state.kinetic_energy() == pytest.approx(
            0.5 * FE_MASS * MVV2E
        )

    def test_zero_momentum(self, lattice5):
        state = AtomState.perfect(lattice5)
        state.v[:] = np.random.default_rng(1).normal(0, 1, state.v.shape)
        state.zero_momentum()
        assert np.allclose(state.momentum(), 0.0, atol=1e-9)

    def test_temperature_empty_state(self, lattice5):
        state = AtomState.perfect(lattice5)
        for row in range(state.n):
            state.make_vacancy(row)
        assert state.temperature() == 0.0

    def test_copy_is_deep(self, lattice5):
        state = AtomState.perfect(lattice5)
        clone = state.copy()
        clone.x[0] = 99.0
        clone.ids[0] = VACANCY_ID
        assert state.x[0, 0] != 99.0
        assert state.ids[0] == 0
