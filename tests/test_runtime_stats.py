"""Traffic accounting and payload sizing tests."""

import numpy as np
import pytest

from repro.runtime.netmodel import NetworkModel
from repro.runtime.simmpi import World
from repro.runtime.stats import TrafficStats, payload_nbytes


class Counting:
    """Payload object that counts how often it gets pickled."""

    pickles = 0

    def __reduce__(self):
        Counting.pickles += 1
        return (Counting, ())


class Mutating:
    """Payload object whose pickled size changes with its state."""

    def __init__(self):
        self.blob = b""

    def __getstate__(self):
        return {"blob": self.blob}

    def __setstate__(self, state):
        self.blob = state["blob"]


class TestPayloadNbytes:
    def test_none_is_zero(self):
        assert payload_nbytes(None) == 0

    def test_numpy_exact(self):
        assert payload_nbytes(np.zeros(10)) == 80
        assert payload_nbytes(np.zeros((4, 3), dtype=np.int32)) == 48

    def test_bytes_exact(self):
        assert payload_nbytes(b"abcde") == 5

    def test_scalars(self):
        assert payload_nbytes(7) == 8
        assert payload_nbytes(1.5) == 8
        assert payload_nbytes(np.float64(2.0)) == 8

    def test_containers_sum(self):
        payload = (np.zeros(2), [np.zeros(3), b"xy"])
        assert payload_nbytes(payload) == 16 + 24 + 2

    def test_dict_counts_keys_and_values(self):
        assert payload_nbytes({1: np.zeros(1)}) == 16

    def test_unpicklable_fallback(self):
        import threading

        assert payload_nbytes(threading.Lock()) == 64

    def test_numpy_scalar_fast_path(self):
        # numpy scalars cost one word, same as their Python counterparts
        # (not their pickled size, which is ~10x larger).
        assert payload_nbytes(np.int32(7)) == 8
        assert payload_nbytes(np.bool_(True)) == 8

    def test_pickle_fallback_memoized_within_message(self):
        single = payload_nbytes(Counting())
        Counting.pickles = 0
        obj = Counting()
        assert payload_nbytes([obj] * 10) == 10 * single
        # One pickle.dumps for all ten references to the same object.
        assert Counting.pickles == 1

    def test_memo_does_not_leak_across_messages(self):
        obj = Mutating()
        before = payload_nbytes([obj])
        obj.blob = b"x" * 100
        after = payload_nbytes([obj])
        assert after > before  # a new message re-measures the object

    def test_views_and_noncontiguous_cost_logical_nbytes(self, monkeypatch):
        """The array fast path covers every numeric layout, pickle-free.

        What crosses the shm transport is a C-contiguous copy of the
        logical elements, so a strided view costs its own nbytes — not
        the base buffer's, and never a pickle round-trip.
        """
        import pickle as _pickle

        def forbidden(*a, **k):  # arrays must never reach pickle costing
            raise AssertionError("pickle.dumps called for an array payload")

        monkeypatch.setattr(
            "repro.runtime.stats.pickle.dumps", forbidden
        )
        base = np.arange(120, dtype=np.float64).reshape(10, 12)
        assert payload_nbytes(base[::2, ::3]) == 5 * 4 * 8
        assert payload_nbytes(base.T) == base.nbytes
        assert payload_nbytes(np.asfortranarray(base)) == base.nbytes
        assert payload_nbytes(base[3]) == 12 * 8  # view of a row
        structured = np.zeros(4, dtype=[("a", np.int64), ("b", np.float32)])
        assert payload_nbytes(structured) == structured.nbytes
        del _pickle

    def test_object_dtype_arrays_cost_pickled_size(self):
        """Object arrays hold pointers; nbytes would undercount wildly."""
        arr = np.array([b"x" * 1000, b"y" * 1000], dtype=object)
        cost = payload_nbytes(arr)
        assert cost > 2000  # the referents, not 2 x 8 pointer bytes
        assert cost != arr.nbytes


class TestTrafficStats:
    def test_record_send_accumulates(self):
        stats = TrafficStats(2)
        stats.record_send(0, 1, 100)
        stats.record_send(0, 1, 50)
        assert stats.total_sent_bytes == 150
        assert stats.total_messages == 2

    def test_comm_time_uses_network_model(self):
        net = NetworkModel(alpha=1e-6, beta=1e-9, contention_coeff=0.0)
        stats = TrafficStats(2, network=net)
        stats.record_send(0, 1, 1000)
        assert stats.ranks[0].comm_time == pytest.approx(1e-6 + 1000e-9)

    def test_collective_charged_to_all_ranks(self):
        stats = TrafficStats(4)
        stats.record_collective(8)
        assert stats.total_collectives == 4
        assert all(c.comm_time > 0 for c in stats.ranks)

    def test_reset(self):
        stats = TrafficStats(2)
        stats.record_send(0, 1, 10)
        stats.reset()
        assert stats.total_sent_bytes == 0
        assert stats.max_comm_time == 0.0

    def test_snapshot_keys(self):
        snap = TrafficStats(3).snapshot()
        assert set(snap) == {
            "nranks",
            "total_sent_bytes",
            "total_messages",
            "total_collectives",
            "max_comm_time",
            "mean_comm_time",
        }

    def test_world_counts_real_traffic(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(1, tag=0, payload=np.zeros(100))
            else:
                comm.recv()

        w = World(2)
        w.run(main)
        assert w.stats.total_sent_bytes == 800
        assert w.stats.ranks[1].recv_bytes == 800


class TestNetworkModel:
    def test_point_to_point_components(self):
        net = NetworkModel(alpha=2e-6, beta=1e-9)
        assert net.point_to_point(0) == pytest.approx(2e-6)
        assert net.point_to_point(1000) == pytest.approx(2e-6 + 1e-6)

    def test_contention_inflates_beta(self):
        net = NetworkModel(alpha=0.0, beta=1e-9, contention_coeff=0.1)
        assert net.point_to_point(1000, nranks=1024) > net.point_to_point(
            1000, nranks=2
        )

    def test_collective_scales_logarithmically(self):
        net = NetworkModel()
        t4 = net.collective(4)
        t256 = net.collective(256)
        assert t256 == pytest.approx(4 * t4, rel=0.3)

    def test_single_rank_collective_free(self):
        assert NetworkModel().collective(1) == 0.0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel().point_to_point(-1)
