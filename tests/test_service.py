"""Service-layer acceptance tests: dedup, cache hits, crash retries.

The cache-hit contract of the issue, end to end:

* identical specs submitted concurrently execute **once** and publish
  bit-identical deterministic artifacts;
* a spec differing only in its seed misses the cache;
* a worker crash mid-job is retried (bounded attempts) and the final
  published store is bit-identical to a fault-free run's.
"""

import json
import multiprocessing
import os
from pathlib import Path

import pytest

from repro.service import (
    DONE,
    FAILED,
    JobQueue,
    ResultCache,
    ScenarioSpec,
    ServiceClient,
    ServiceError,
    ServicePool,
    run_service,
)
from repro.service import worker as worker_mod
from repro.service.cache import MANIFEST_NAME
from repro.service.scheduler import summarize

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="crash-injection targets require the fork start method",
)


def _spec(**kw):
    """A sub-second scenario (serial KMC on the smallest MD-legal box)."""
    base = dict(
        cells=5, md_steps=30, kmc_max_events=25, seed=7,
        table_points=500, trajectory_every=1,
    )
    base.update(kw)
    return ScenarioSpec(**base)


def _det_artifacts(entry):
    """rel path -> raw bytes of every deterministic artifact of an entry."""
    manifest = json.loads((entry / MANIFEST_NAME).read_text())
    return {
        rel: (entry / rel).read_bytes()
        for rel, meta in sorted(manifest["artifacts"].items())
        if meta["deterministic"]
    }


# Module-level so the fork-context Process can target them.
def _crash_first_attempt(spec_dict, staging, root, obs_path=None, attempt=1):
    if attempt == 1:
        # Leave a partial staging dir behind, then die without notice —
        # the harshest crash the scheduler must absorb.
        (Path(staging) / "partial.bin").write_bytes(b"\x00" * 64)
        os._exit(17)
    worker_mod.run_job(spec_dict, staging, root, obs_path, attempt)


def _always_crash(spec_dict, staging, root, obs_path=None, attempt=1):
    os._exit(23)


class TestDedupAndCache:
    def test_identical_specs_execute_once_bit_identical(self, tmp_path):
        spec = _spec()
        root_a = tmp_path / "a"
        records = run_service(root_a, [spec, spec], workers=2)
        assert [r.state for r in records] == [DONE, DONE]
        assert records[0].mode == "executed"
        assert records[1].mode in ("attached", "cached")
        stats = summarize(records)
        assert stats["executions"] == 1
        assert stats["deduplicated"] == 1
        entry_a = ResultCache(root_a).lookup(spec.key())
        assert entry_a is not None
        # Both jobs resolve to the same artifacts.
        client = ServiceClient(root_a)
        results = [client.result(r.job_id) for r in records]
        assert results[0].path == results[1].path
        # An independent root reproduces them bit-exactly.
        root_b = tmp_path / "b"
        run_service(root_b, [spec], workers=1)
        entry_b = ResultCache(root_b).lookup(spec.key())
        arts_a, arts_b = _det_artifacts(entry_a), _det_artifacts(entry_b)
        assert set(arts_a) == set(arts_b)
        assert arts_a == arts_b
        # The contract covers the real payloads, not a stray file.
        assert "result.json" in arts_a
        assert "vacancies_after_kmc.npy" in arts_a
        assert any(rel.startswith("trajectory/") for rel in arts_a)

    def test_seed_only_differs_misses_cache(self, tmp_path):
        specs = [_spec(seed=7), _spec(seed=8)]
        assert specs[0].key() != specs[1].key()
        records = run_service(tmp_path, specs, workers=2)
        stats = summarize(records)
        assert stats["executions"] == 2
        assert stats["deduplicated"] == 0
        cache = ResultCache(tmp_path)
        assert cache.lookup(specs[0].key()) is not None
        assert cache.lookup(specs[1].key()) is not None

    def test_resubmission_is_a_cache_hit(self, tmp_path):
        spec = _spec()
        run_service(tmp_path, [spec], workers=1)
        records = run_service(tmp_path, [spec], workers=1)
        assert records[0].state == DONE
        assert records[0].mode == "cached"
        # Exactly one entry ever existed: nothing re-executed.
        stats = summarize(records)
        assert stats["executions"] == 0

    def test_observe_snapshot_streams_to_done(self, tmp_path):
        spec = _spec()
        records = run_service(tmp_path, [spec], workers=1)
        snapshot = ServiceClient(tmp_path).observe_snapshot(
            records[0].job_id
        )
        assert snapshot is not None
        assert snapshot["stage"] == "done"
        assert "counters" in snapshot or "phases" in snapshot


class TestCrashRetry:
    @needs_fork
    def test_crash_mid_job_retried_bit_identical(self, tmp_path):
        spec = _spec()
        crashy_root = tmp_path / "crashy"
        records = run_service(
            crashy_root, [spec], workers=1, target=_crash_first_attempt
        )
        assert records[0].state == DONE
        assert records[0].attempts == 2  # one crash, one success
        assert summarize(records)["retries"] == 1
        # The crashed attempt's staging dir was discarded, not published.
        assert list((crashy_root / "tmp").iterdir()) == []
        clean_root = tmp_path / "clean"
        run_service(clean_root, [spec], workers=1)
        assert _det_artifacts(
            ResultCache(crashy_root).lookup(spec.key())
        ) == _det_artifacts(ResultCache(clean_root).lookup(spec.key()))

    @needs_fork
    def test_attempts_are_bounded(self, tmp_path):
        spec = _spec()
        records = run_service(
            tmp_path, [spec, spec], workers=1,
            max_attempts=2, target=_always_crash,
        )
        assert [r.state for r in records] == [FAILED, FAILED]
        assert all(r.attempts == 2 for r in records)
        assert "exit code 23" in records[0].error
        assert ResultCache(tmp_path).lookup(spec.key()) is None
        with pytest.raises(ServiceError, match="failed"):
            ServiceClient(tmp_path).result(records[0].job_id)

    @needs_fork
    def test_orphaned_staging_swept_on_next_scheduler(self, tmp_path):
        cache = ResultCache(tmp_path)
        leftover = cache.open_staging("deadbeef" * 8)
        (leftover / "junk.bin").write_bytes(b"\xff" * 32)
        ServicePool(tmp_path, workers=1)  # init sweeps tmp/
        assert not leftover.exists()


class TestExecutionFieldNeutrality:
    def test_fault_plan_publishes_bit_identical_to_fault_free(self, tmp_path):
        # Fault plan + recovery are execution concerns: same key, same
        # deterministic bytes.  Parallel KMC (2 ranks) with a mid-run
        # rank crash recovered from checkpoint.
        base = dict(
            cells=8, md_steps=30, seed=3, table_points=500,
            trajectory_every=1, kmc_nranks=2, kmc_max_cycles=4,
            checkpoint_every=1,
        )
        faulted = ScenarioSpec(**base, faults="crash:rank=1,cycle=2")
        clean = ScenarioSpec(**base)
        assert faulted.key() == clean.key()
        root_f, root_c = tmp_path / "faulted", tmp_path / "clean"
        records = run_service(root_f, [faulted], workers=1)
        assert records[0].state == DONE
        run_service(root_c, [clean], workers=1)
        entry_f = ResultCache(root_f).lookup(faulted.key())
        entry_c = ResultCache(root_c).lookup(clean.key())
        assert _det_artifacts(entry_f) == _det_artifacts(entry_c)
        # The faulted run really did crash and recover.
        run_meta = json.loads((entry_f / "run.json").read_text())
        assert run_meta["recoveries"] == 1


class TestClient:
    def test_wait_times_out_without_scheduler(self, tmp_path):
        client = ServiceClient(tmp_path)
        record = client.submit(_spec())
        with pytest.raises(ServiceError, match=record.job_id):
            client.wait(timeout=0.2, poll=0.05)

    def test_result_of_pending_job_raises(self, tmp_path):
        client = ServiceClient(tmp_path)
        record = client.submit(_spec())
        with pytest.raises(ServiceError, match="pending"):
            client.result(record.job_id)

    def test_missing_artifact_raises(self, tmp_path):
        spec = _spec()
        records = run_service(tmp_path, [spec], workers=1)
        result = ServiceClient(tmp_path).result(records[0].job_id)
        assert result.artifact("result.json").is_file()
        with pytest.raises(ServiceError, match="unobtainium"):
            result.artifact("unobtainium.npy")

    def test_pool_validation(self, tmp_path):
        with pytest.raises(ValueError, match="workers"):
            ServicePool(tmp_path, workers=0)
        with pytest.raises(ValueError, match="max_attempts"):
            ServicePool(tmp_path, max_attempts=0)

    def test_queue_visible_across_handles(self, tmp_path):
        # Submission from one handle, scheduling from another: the disk
        # is the only shared state.
        ServiceClient(tmp_path).submit(_spec())
        assert JobQueue(tmp_path).counts()["pending"] == 1
