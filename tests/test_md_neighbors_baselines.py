"""Verlet-list and linked-cell baseline tests + cross-structure equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lattice.bcc import BCCLattice
from repro.lattice.box import Box
from repro.md.neighbors.lattice_list import LatticeNeighborList
from repro.md.neighbors.linked_cell import LinkedCellList
from repro.md.neighbors.verlet_list import VerletNeighborList
from repro.md.state import AtomState

CUTOFF = 5.6


def brute_force_pairs(box, x, cutoff):
    """Reference O(n^2) half pair set."""
    d = box.minimum_image(x[None, :, :] - x[:, None, :])
    r = np.linalg.norm(d, axis=-1)
    ii, jj = np.nonzero(np.triu(r <= cutoff, k=1))
    return set(zip(ii.tolist(), jj.tolist(), strict=True))


def pair_set_within(box, x, i, j, cutoff):
    d = box.minimum_image(x[j] - x[i])
    keep = np.linalg.norm(d, axis=-1) <= cutoff
    return set(zip(i[keep].tolist(), j[keep].tolist(), strict=True))


@pytest.fixture(scope="module")
def crystal():
    lat = BCCLattice(5, 5, 5)
    box = Box.for_lattice(lat)
    rng = np.random.default_rng(42)
    x = lat.all_positions() + rng.normal(0, 0.06, (lat.nsites, 3))
    return lat, box, x


class TestVerletList:
    def test_pairs_match_brute_force(self, crystal):
        _lat, box, x = crystal
        vl = VerletNeighborList(box, CUTOFF)
        i, j = vl.pairs(x)
        assert pair_set_within(box, x, i, j, CUTOFF) == brute_force_pairs(
            box, x, CUTOFF
        )

    def test_no_rebuild_for_small_motion(self, crystal):
        _lat, box, x = crystal
        vl = VerletNeighborList(box, CUTOFF, skin=0.4)
        vl.pairs(x)
        builds = vl.builds
        vl.pairs(x + 0.05)  # uniform shift below skin/2
        assert vl.builds == builds

    def test_rebuild_when_skin_exceeded(self, crystal):
        _lat, box, x = crystal
        vl = VerletNeighborList(box, CUTOFF, skin=0.4)
        vl.pairs(x)
        builds = vl.builds
        x2 = x.copy()
        x2[0] += 0.5  # beyond skin/2
        vl.pairs(x2)
        assert vl.builds == builds + 1

    def test_stale_list_still_correct(self, crystal):
        # Between rebuilds the list over-approximates; the distance filter
        # must keep results exact.
        _lat, box, x = crystal
        vl = VerletNeighborList(box, CUTOFF, skin=0.6)
        vl.pairs(x)
        x2 = x + np.random.default_rng(1).normal(0, 0.05, x.shape)
        if not vl.needs_rebuild(x2):
            i, j = vl.pairs(x2)
            assert pair_set_within(box, x2, i, j, CUTOFF) == brute_force_pairs(
                box, x2, CUTOFF
            )

    def test_box_size_validation(self):
        with pytest.raises(ValueError, match="too small"):
            VerletNeighborList(Box([10.0, 10.0, 10.0]), CUTOFF)

    def test_stored_pairs_include_skin(self, crystal):
        _lat, box, x = crystal
        vl = VerletNeighborList(box, CUTOFF, skin=0.4)
        i, j = vl.pairs(x)
        within = pair_set_within(box, x, i, j, CUTOFF)
        assert vl.stored_pairs >= len(within)


class TestLinkedCell:
    def test_pairs_match_brute_force(self, crystal):
        _lat, box, x = crystal
        lc = LinkedCellList(box, CUTOFF)
        i, j = lc.pairs(x)
        assert set(zip(i.tolist(), j.tolist(), strict=True)) == brute_force_pairs(
            box, x, CUTOFF
        )

    def test_rebuilds_every_call(self, crystal):
        # "it should update the atoms within each cell at each time step".
        _lat, box, x = crystal
        lc = LinkedCellList(box, CUTOFF)
        lc.pairs(x)
        lc.pairs(x)
        assert lc.rebuilds == 2

    def test_linked_arrays_cover_all_atoms(self, crystal):
        _lat, box, x = crystal
        lc = LinkedCellList(box, CUTOFF)
        lc.rebuild(x)
        members = []
        for c in range(lc.total_cells):
            members.extend(lc.cell_members(c))
        assert sorted(members) == list(range(len(x)))

    def test_cell_members_before_build_rejected(self, crystal):
        _lat, box, _x = crystal
        lc = LinkedCellList(box, CUTOFF)
        with pytest.raises(RuntimeError, match="rebuild"):
            lc.cell_members(0)

    def test_unwrapped_positions_handled(self, crystal):
        # Positions outside [0, L) must bin correctly (wrap first).
        _lat, box, x = crystal
        lc = LinkedCellList(box, CUTOFF)
        shifted = x + box.lengths  # whole box shift
        i, j = lc.pairs(shifted)
        assert set(zip(i.tolist(), j.tolist(), strict=True)) == brute_force_pairs(
            box, x, CUTOFF
        )


class TestCrossStructureEquivalence:
    """All three structures must expose the same interaction set."""

    def test_three_structures_same_pairs(self, crystal):
        lat, box, x = crystal
        state = AtomState.perfect(lat)
        state.x = x.copy()
        lattice_list = LatticeNeighborList(lat, CUTOFF)
        li, lj = lattice_list.lattice_pairs(state)
        got_lattice = pair_set_within(box, x, li, lj, CUTOFF)
        vi, vj = VerletNeighborList(box, CUTOFF).pairs(x)
        got_verlet = pair_set_within(box, x, vi, vj, CUTOFF)
        ci, cj = LinkedCellList(box, CUTOFF).pairs(x)
        got_cell = set(zip(ci.tolist(), cj.tolist(), strict=True))
        assert got_lattice == got_verlet == got_cell

    @given(seed=st.integers(0, 1000), sigma=st.floats(0.0, 0.12))
    @settings(max_examples=15, deadline=None)
    def test_equivalence_property_random_thermal_states(self, seed, sigma):
        # The lattice list's exactness contract: every on-lattice atom
        # stays within skin/2 of its site (beyond that it would be a
        # run-away).  Clip the noise to that contract.
        lat = BCCLattice(5, 5, 5)
        box = Box.for_lattice(lat)
        rng = np.random.default_rng(seed)
        noise = rng.normal(0, sigma, (lat.nsites, 3))
        norms = np.linalg.norm(noise, axis=1, keepdims=True)
        cap = 0.29  # just under skin/2 = 0.3
        scale = np.where(norms > cap, cap / np.maximum(norms, 1e-300), 1.0)
        noise = noise * scale
        x = lat.all_positions() + noise
        state = AtomState.perfect(lat)
        state.x = x.copy()
        li, lj = LatticeNeighborList(lat, CUTOFF).lattice_pairs(state)
        vi, vj = VerletNeighborList(box, CUTOFF).pairs(x)
        assert pair_set_within(box, x, li, lj, CUTOFF) == pair_set_within(
            box, x, vi, vj, CUTOFF
        )
