"""Event-catalog tests: sum-tree invariants, exact selection, batched
rate kernels, and catalog/driver trajectory equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kmc.akmc import ParallelAKMC, SerialAKMC, place_random_vacancies
from repro.kmc.catalog import EventCatalog
from repro.kmc.events import ATOM, VACANCY


def _fill(catalog, table):
    for row, rates in table.items():
        rates = np.asarray(rates, dtype=float)
        catalog.set_row(row, np.arange(len(rates), dtype=np.int64), rates)


class TestSumTree:
    def test_total_and_row_rates(self):
        cat = EventCatalog(10)
        _fill(cat, {0: [1.0, 2.0], 7: [3.0]})
        assert cat.total == pytest.approx(6.0)
        assert cat.row_rate(0) == pytest.approx(3.0)
        assert cat.row_rate(7) == pytest.approx(3.0)
        assert cat.row_rate(3) == 0.0
        assert cat.n_active == 2

    def test_clear_row(self):
        cat = EventCatalog(4)
        _fill(cat, {1: [2.0], 2: [5.0]})
        cat.clear_row(1)
        assert cat.total == pytest.approx(5.0)
        assert cat.n_active == 1
        t, r = cat.row_events(1)
        assert len(t) == 0 and len(r) == 0
        cat.clear_row(1)  # idempotent
        assert cat.n_active == 1

    def test_prefix_sums(self):
        cat = EventCatalog(6)
        _fill(cat, {0: [1.0], 2: [2.0], 5: [4.0]})
        assert cat.prefix(0) == 0.0
        assert cat.prefix(1) == pytest.approx(1.0)
        assert cat.prefix(3) == pytest.approx(3.0)
        assert cat.prefix(6) == pytest.approx(7.0)

    def test_empty_catalog_rejects_sampling(self):
        cat = EventCatalog(3)
        with pytest.raises(ValueError, match="empty"):
            cat.sample(0.5)

    def test_non_power_of_two_rows(self):
        cat = EventCatalog(5)
        _fill(cat, {4: [1.0]})
        assert cat.total == pytest.approx(1.0)
        assert cat.sample(0.5) == (4, 0)


class TestSelection:
    def test_mass_boundaries(self):
        cat = EventCatalog(8)
        _fill(cat, {1: [1.0, 2.0], 4: [3.0], 6: [2.0]})
        # Cumulative layout: [0,1) -> (1,0); [1,3) -> (1,1);
        # [3,6) -> (4,0); [6,8) -> (6,0); total 8.
        assert cat.sample(0.0) == (1, 0)
        assert cat.sample(0.9 / 8.0) == (1, 0)
        assert cat.sample(1.5 / 8.0) == (1, 1)
        assert cat.sample(3.5 / 8.0) == (4, 0)
        assert cat.sample(7.5 / 8.0) == (6, 0)

    def test_target_past_total_picks_rightmost_positive(self):
        # Regression for the searchsorted(cumsum)+clamp idiom: when
        # u*total rounds past the last partial sum the old path clamped
        # onto whatever the last flat slot was; the catalog must land on
        # the rightmost row that actually carries rate mass.
        cat = EventCatalog(16)
        _fill(cat, {2: [1e-30, 1e-30], 9: [0.7, 0.3]})
        row, idx = cat.sample(1.0)  # u == 1.0: past every partial sum
        assert row == 9
        assert cat.rates[9][idx] > 0.0

    def test_zero_rate_events_never_selected(self):
        cat = EventCatalog(4)
        _fill(cat, {1: [0.0, 0.0, 5.0, 0.0]})
        for u in np.linspace(0.0, 1.0, 23):
            row, idx = cat.sample(float(u))
            assert (row, idx) == (1, 2)

    def test_adversarial_magnitude_spread(self):
        # Tiny rates followed by a huge one: partial sums collapse onto
        # the big value; every sample must still land on a positive rate
        # inside its bracket.
        rates = np.array([*[1e-300] * 7, 1e8])
        cat = EventCatalog(2)
        cat.set_row(0, np.arange(8, dtype=np.int64), rates)
        for u in [0.0, 1e-16, 0.3, 0.999999, 1.0 - 1e-16, 1.0]:
            row, idx = cat.sample(float(u))
            assert row == 0
            assert rates[idx] > 0.0

    def test_sample_consistent_with_prefix(self):
        rng = np.random.default_rng(0)
        cat = EventCatalog(64)
        rows = rng.choice(64, size=20, replace=False)
        for row in rows:
            k = int(rng.integers(1, 9))
            cat.set_row(
                int(row), np.arange(k, dtype=np.int64), rng.uniform(0.1, 9.0, k)
            )
        for u in rng.uniform(0.0, 1.0, 200):
            row, _idx = cat.sample(float(u))
            target = float(u) * cat.total
            assert cat.prefix(row) <= target * (1 + 1e-12) + 1e-300
            assert target <= (cat.prefix(row) + cat.row_rate(row)) * (1 + 1e-12)


class TestIncrementalExactness:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 999), min_size=1, max_size=120), st.integers(0, 2**32 - 1))
    def test_storm_matches_brute_force_and_rebuild(self, ops, seed):
        """Random insert/remove/update storms: totals match brute-force
        sums, and the incrementally maintained tree is bit-identical to
        one rebuilt from scratch over the same rows."""
        rng = np.random.default_rng(seed)
        nrows = 37
        cat = EventCatalog(nrows)
        table: dict[int, np.ndarray] = {}
        for op in ops:
            row = op % nrows
            if op % 3 == 0 and row in table:
                cat.clear_row(row)
                del table[row]
            else:
                k = int(rng.integers(0, 9))
                rates = rng.uniform(1e-6, 1e3, k)
                cat.set_row(row, np.arange(k, dtype=np.int64), rates)
                table[row] = rates
        brute = sum(float(np.sum(r)) for r in table.values())
        assert cat.total == pytest.approx(brute, rel=1e-12, abs=1e-300)
        rebuilt = EventCatalog(nrows)
        for row, rates in table.items():
            rebuilt.set_row(row, np.arange(len(rates), dtype=np.int64), rates)
        assert np.array_equal(cat.tree, rebuilt.tree)
        assert cat.n_active == rebuilt.n_active == len(table)

    def test_bulk_set_rows_matches_per_row(self):
        rng = np.random.default_rng(7)
        nrows = 300
        rows = np.sort(rng.choice(nrows, size=150, replace=False))
        counts = rng.integers(0, 9, size=len(rows))
        rates = rng.uniform(0.1, 10.0, int(counts.sum()))
        targets = rng.integers(0, nrows, size=len(rates))
        bulk = EventCatalog(nrows)  # 150 rows: vectorized rebuild path
        bulk.set_rows(rows, counts, targets, rates)
        single = EventCatalog(nrows)
        start = 0
        for row, c in zip(rows, counts, strict=True):
            single.set_row(int(row), targets[start : start + c], rates[start : start + c])
            start += c
        assert np.array_equal(bulk.tree, single.tree)
        assert bulk.n_active == single.n_active


class TestBatchedRates:
    def test_batch_matches_scalar_bitwise(self, kmc_model8):
        """vacancy_events_batch must reproduce vacancy_events exactly —
        same targets, bit-identical rates — across random occupancies."""
        rng = np.random.default_rng(11)
        for _trial in range(5):
            occ = place_random_vacancies(kmc_model8, 40, rng)
            vrows = np.flatnonzero(occ == VACANCY)
            counts, targets, rates = kmc_model8.vacancy_events_batch(vrows, occ)
            start = 0
            for v, c in zip(vrows, counts, strict=True):
                t_ref, r_ref = kmc_model8.vacancy_events(int(v), occ)
                assert np.array_equal(targets[start : start + c], t_ref)
                assert np.array_equal(rates[start : start + c], r_ref)
                start += c
            assert start == len(targets)

    def test_batch_validates_occupancy(self, kmc_model8):
        occ = kmc_model8.perfect_occupancy()
        occ[4] = VACANCY
        with pytest.raises(ValueError, match="does not hold a vacancy"):
            kmc_model8.vacancy_events_batch(np.array([4, 9]), occ)

    def test_batch_empty_rows(self, kmc_model8):
        occ = kmc_model8.perfect_occupancy()
        counts, targets, rates = kmc_model8.vacancy_events_batch(
            np.empty(0, dtype=np.int64), occ
        )
        assert len(counts) == len(targets) == len(rates) == 0

    def test_batch_isolated_vacancy_cluster(self, kmc_model8):
        """A vacancy fully surrounded by vacancies contributes no events."""
        occ = kmc_model8.perfect_occupancy()
        center = 100
        shell = kmc_model8.first_matrix[center][kmc_model8.first_valid[center]]
        occ[center] = VACANCY
        occ[shell] = VACANCY
        vrows = np.flatnonzero(occ == VACANCY)
        counts, targets, rates = kmc_model8.vacancy_events_batch(vrows, occ)
        row_pos = int(np.searchsorted(vrows, center))
        assert counts[row_pos] == 0
        assert counts.sum() == len(targets) == len(rates)
        assert np.all(occ[targets] == ATOM)


class TestDriverEquivalence:
    def test_serial_catalog_matches_flat_rebuild(
        self, lattice8, potential, rate_params, kmc_initial_occ
    ):
        """Fixed seed, with and without the catalog: identical event
        sequences (occupancy after every step) and times."""
        cat = SerialAKMC(
            lattice8, potential, rate_params, kmc_initial_occ, seed=7
        )
        flat = SerialAKMC(
            lattice8,
            potential,
            rate_params,
            kmc_initial_occ,
            seed=7,
            use_catalog=False,
        )
        assert cat.use_catalog and not flat.use_catalog
        for step in range(150):
            dt_c, dt_f = cat.step(), flat.step()
            assert np.array_equal(cat.occ, flat.occ), f"diverged at step {step}"
            assert dt_c == pytest.approx(dt_f, rel=1e-12)
        assert cat.time == pytest.approx(flat.time, rel=1e-12)

    def test_serial_incremental_matches_full_rebuild_bitwise(
        self, lattice8, potential, rate_params, kmc_initial_occ
    ):
        """Forcing a from-scratch catalog rebuild before every step must
        change nothing at all — times bit-identical — because set-leaf
        updates never accumulate drift."""
        inc = SerialAKMC(
            lattice8, potential, rate_params, kmc_initial_occ, seed=13
        )
        reb = SerialAKMC(
            lattice8, potential, rate_params, kmc_initial_occ, seed=13
        )
        for _ in range(100):
            inc.step()
            reb.catalog = EventCatalog(reb.model.nrows)
            reb._dirty = None  # full build pending
            reb.step()
        assert np.array_equal(inc.occ, reb.occ)
        assert inc.time == reb.time  # exactly, not approximately

    def test_frozen_lattice_with_catalog(self, lattice8, potential, rate_params):
        engine = SerialAKMC(lattice8, potential, rate_params, seed=1)
        assert engine.step() is None
        assert engine.events == 0

    @pytest.mark.parametrize("scheme", ["traditional", "ondemand", "onesided"])
    def test_parallel_catalog_matches_flat_rebuild(
        self, lattice8, potential, rate_params, kmc_initial_occ, scheme
    ):
        """The sector-synchronous driver with persistent per-sector
        catalogs reproduces the pre-catalog trajectory for every
        communication scheme."""
        runs = {}
        for use_catalog in (True, False):
            engine = ParallelAKMC(
                lattice8,
                potential,
                rate_params,
                nranks=8,
                scheme=scheme,
                seed=5,
                use_catalog=use_catalog,
            )
            runs[use_catalog] = engine.run(kmc_initial_occ, max_cycles=10)
        assert np.array_equal(runs[True].occupancy, runs[False].occupancy)
        assert runs[True].events == runs[False].events
        assert runs[True].time == runs[False].time
        assert runs[True].events > 0
