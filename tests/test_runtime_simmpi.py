"""In-process runtime tests: messaging semantics, collectives, failure."""

import numpy as np
import pytest

from repro.runtime.simmpi import ANY_SOURCE, World, WorldAborted


class TestMessaging:
    def test_ring_exchange(self):
        def main(comm):
            right = (comm.rank + 1) % comm.size
            comm.send(right, tag=1, payload=comm.rank)
            src, tag, value = comm.recv(tag=1)
            assert src == (comm.rank - 1) % comm.size
            return value

        results = World(4).run(main)
        assert results == [3, 0, 1, 2]

    def test_fifo_per_source_and_tag(self):
        def main(comm):
            if comm.rank == 0:
                for i in range(5):
                    comm.send(1, tag=7, payload=i)
                return None
            received = [comm.recv(source=0, tag=7)[2] for _ in range(5)]
            return received

        assert World(2).run(main)[1] == [0, 1, 2, 3, 4]

    def test_tag_selectivity(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(1, tag=1, payload="a")
                comm.send(1, tag=2, payload="b")
                return None
            # Receive tag 2 first even though tag 1 arrived first.
            _s, _t, b = comm.recv(source=0, tag=2)
            _s, _t, a = comm.recv(source=0, tag=1)
            return (a, b)

        assert World(2).run(main)[1] == ("a", "b")

    def test_wildcard_source(self):
        def main(comm):
            if comm.rank == 0:
                got = {comm.recv(source=ANY_SOURCE, tag=3)[0] for _ in range(3)}
                return got
            comm.send(0, tag=3, payload=None)
            return None

        from repro.runtime.sanitize import SanitizerError, sanitize_enabled

        if sanitize_enabled():
            # Wildcard delivery from concurrent senders is exactly the
            # schedule dependence the sanitizer exists to flag; the set
            # of sources is stable but the match order is not.
            with pytest.raises(SanitizerError, match="recv race"):
                World(4).run(main)
        else:
            assert World(4).run(main)[0] == {1, 2, 3}

    def test_send_buffering_allows_reuse(self):
        # MPI eager semantics: mutating the buffer after send must not
        # corrupt the message.
        def main(comm):
            if comm.rank == 0:
                buf = np.arange(5)
                comm.send(1, tag=1, payload=buf)
                buf[:] = -1
                return None
            _s, _t, data = comm.recv()
            return data.tolist()

        assert World(2).run(main)[1] == [0, 1, 2, 3, 4]

    def test_send_validation(self):
        def main(comm):
            with pytest.raises(ValueError, match="destination"):
                comm.send(99, tag=0)
            with pytest.raises(ValueError, match="tag"):
                comm.send(0, tag=-1)

        World(1).run(main)

    def test_no_messages_left_behind(self):
        def main(comm):
            comm.send((comm.rank + 1) % comm.size, tag=0, payload=b"x")
            comm.recv(tag=0)

        w = World(3)
        w.run(main)
        assert w.pending_messages() == 0


class TestProbe:
    def test_probe_reports_envelope_without_consuming(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(1, tag=9, payload=b"12345")
                return None
            status = comm.probe(source=0)
            assert status.tag == 9
            assert status.nbytes == 5
            # Message still there.
            _s, _t, data = comm.recv(source=status.source, tag=status.tag)
            return data

        assert World(2).run(main)[1] == b"12345"

    def test_iprobe_nonblocking(self):
        def main(comm):
            if comm.rank == 0:
                assert comm.iprobe(source=1) is None  # nothing sent yet...
                comm.send(1, tag=1, payload=None)
                comm.recv(source=1, tag=2)
                return None
            comm.recv(source=0, tag=1)
            comm.send(0, tag=2, payload=None)
            return None

        World(2).run(main)

    def test_probe_zero_size_message(self):
        # The §2.2.1 pattern: zero-size messages still match probes.
        def main(comm):
            if comm.rank == 0:
                comm.send(1, tag=5, payload=np.empty(0, dtype=np.int64))
                return None
            status = comm.probe(source=0, tag=5)
            assert status.nbytes == 0
            comm.recv(source=0, tag=5)

        World(2).run(main)


class TestCollectives:
    def test_allreduce_sum(self):
        results = World(5).run(lambda comm: comm.allreduce(comm.rank))
        assert results == [10] * 5

    def test_allreduce_min_max(self):
        def main(comm):
            return (
                comm.allreduce(comm.rank + 3, op="min"),
                comm.allreduce(comm.rank + 3, op="max"),
            )

        assert World(4).run(main) == [(3, 6)] * 4

    def test_allreduce_arrays_elementwise(self):
        def main(comm):
            v = np.array([comm.rank, 1.0])
            return comm.allreduce(v)

        for out in World(3).run(main):
            assert np.allclose(out, [3.0, 3.0])

    def test_allreduce_unknown_op(self):
        def main(comm):
            with pytest.raises(ValueError, match="op"):
                comm.allreduce(1, op="median")

        World(2).run(main)

    def test_allgather_ordered_by_rank(self):
        results = World(4).run(lambda comm: comm.allgather(comm.rank * 10))
        assert results == [[0, 10, 20, 30]] * 4

    def test_bcast(self):
        def main(comm):
            return comm.bcast("hello" if comm.rank == 2 else None, root=2)

        assert World(4).run(main) == ["hello"] * 4

    def test_bcast_bad_root(self):
        def main(comm):
            with pytest.raises(ValueError, match="root"):
                comm.bcast(1, root=9)

        World(2).run(main)

    def test_barrier_many_rounds(self):
        # Reusability of the barrier across many generations.
        def main(comm):
            for _ in range(20):
                comm.barrier()
            return True

        assert all(World(6).run(main))


class TestFailures:
    def test_error_propagates_and_unblocks(self):
        def main(comm):
            if comm.rank == 0:
                raise RuntimeError("boom")
            comm.recv()  # would deadlock without abort

        with pytest.raises(RuntimeError, match="boom"):
            World(3).run(main)

    def test_error_during_collective_unblocks(self):
        def main(comm):
            if comm.rank == 1:
                raise ValueError("bad rank")
            comm.barrier()

        with pytest.raises(RuntimeError, match="bad rank"):
            World(3).run(main)

    def test_abort_unblocks_blocking_probe(self):
        def main(comm):
            if comm.rank == 0:
                raise RuntimeError("boom")
            comm.probe()  # blocked in peek, not take

        with pytest.raises(RuntimeError, match="boom"):
            World(3).run(main)

    def test_abort_wakes_blocked_ranks_promptly(self):
        # Blocked waiters sleep on a condition and are notified on abort
        # (no polling): a failing world must not hang its siblings.
        import time

        def main(comm):
            if comm.rank == 0:
                time.sleep(0.01)
                raise RuntimeError("late failure")
            comm.recv()

        t0 = time.perf_counter()
        with pytest.raises(RuntimeError, match="late failure"):
            World(8).run(main)
        # Generous: a lost wakeup would hit World.run's join timeout.
        assert time.perf_counter() - t0 < 2.0

    def test_send_wakes_blocked_receiver(self):
        import time

        def main(comm):
            if comm.rank == 0:
                time.sleep(0.05)
                comm.send(1, tag=1, payload=b"go")
                return None
            t0 = time.perf_counter()
            comm.recv(source=0, tag=1)
            return time.perf_counter() - t0

        waited = World(2).run(main)[1]
        # Receiver was asleep for the sender's 50 ms, then woke on the
        # deposit notification rather than a poll tick.
        assert 0.0 < waited < 1.0

    def test_world_size_validation(self):
        with pytest.raises(ValueError, match="nranks"):
            World(0)

    def test_results_indexed_by_rank(self):
        results = World(7).run(lambda comm: comm.rank**2)
        assert results == [r**2 for r in range(7)]


class TestAbortRecoveryContract:
    """The failure-semantics contract the recovery supervisor builds on."""

    def test_raise_mid_collective_delivers_worldaborted_to_all_peers(self):
        # Every surviving rank blocked in the collective must come back
        # with WorldAborted (not hang, not see a partial exchange).
        # Observed through a shared list, so this needs the thread
        # backend; the process backend's abort contract is covered by
        # test_runtime_procbackend.TestFailureParity.
        import threading

        seen = []
        seen_lock = threading.Lock()

        def main(comm):
            if comm.rank == 2:
                raise RuntimeError("rank 2 dies mid-collective")
            try:
                comm.allgather(comm.rank)
            except WorldAborted as exc:
                with seen_lock:
                    seen.append((comm.rank, type(exc).__name__))
                raise

        with pytest.raises(RuntimeError, match="rank 2 dies"):
            World(4, backend="thread").run(main)
        assert sorted(r for r, _ in seen) == [0, 1, 3]
        assert all(name == "WorldAborted" for _, name in seen)

    def test_raise_mid_recv_delivers_worldaborted_to_all_peers(self):
        import threading

        seen = []
        seen_lock = threading.Lock()

        def main(comm):
            if comm.rank == 0:
                raise RuntimeError("boom")
            try:
                comm.recv()
            except WorldAborted:
                with seen_lock:
                    seen.append(comm.rank)
                raise

        # Thread backend: the shared `seen` list needs shared memory.
        with pytest.raises(RuntimeError, match="boom"):
            World(3, backend="thread").run(main)
        assert sorted(seen) == [1, 2]

    def test_keyboard_interrupt_propagates_unwrapped(self):
        # An interrupt is the user's request to stop — it must reach the
        # caller as KeyboardInterrupt, not be reported as a rank failure.
        def main(comm):
            if comm.rank == 0:
                raise KeyboardInterrupt
            comm.recv()

        with pytest.raises(KeyboardInterrupt):
            World(2).run(main)

    def test_keyboard_interrupt_still_unblocks_peers(self):
        import time

        def main(comm):
            if comm.rank == 0:
                raise KeyboardInterrupt
            comm.recv()

        t0 = time.perf_counter()
        with pytest.raises(KeyboardInterrupt):
            World(4).run(main)
        assert time.perf_counter() - t0 < 2.0

    def test_timeout_reports_still_alive_ranks(self):
        # A rank that ignores the abort (stuck in non-runtime code) must
        # be named in the TimeoutError instead of silently leaking.
        import time

        def main(comm):
            if comm.rank == 1:
                time.sleep(1.5)  # longer than timeout + grace
            return comm.rank

        with pytest.raises(TimeoutError, match="simmpi-rank-1"):
            World(2).run(main, timeout=0.2, grace=0.2)

    def test_timeout_message_when_ranks_exit_after_abort(self):
        # Ranks blocked in the runtime DO exit on abort: the message
        # says so instead of naming leaked threads.
        def main(comm):
            if comm.rank == 0:
                comm.recv()  # blocks forever; woken by the abort
            return comm.rank

        with pytest.raises(TimeoutError, match="all ranks exited"):
            World(2).run(main, timeout=0.2, grace=1.0)
