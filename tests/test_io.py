"""I/O tests: XYZ, state dumps, checkpoints."""

import numpy as np
import pytest

from repro.io.checkpoint import CheckpointError, load_checkpoint, save_checkpoint
from repro.io.dump import dump_state, load_state
from repro.io.xyz import read_xyz, write_vacancy_xyz, write_xyz
from repro.lattice.bcc import BCCLattice
from repro.md.engine import MDConfig, MDEngine
from repro.md.state import AtomState


class TestXYZ:
    def test_roundtrip(self, tmp_path, lattice5):
        path = tmp_path / "frame.xyz"
        pos = lattice5.all_positions()[:10]
        write_xyz(path, "Fe", pos, comment="test", lengths=lattice5.lengths)
        symbols, read_pos = read_xyz(path)
        assert symbols == ["Fe"] * 10
        assert np.allclose(read_pos, pos)

    def test_per_atom_symbols(self, tmp_path):
        path = tmp_path / "frame.xyz"
        write_xyz(path, ["Fe", "Cu"], np.zeros((2, 3)))
        symbols, _ = read_xyz(path)
        assert symbols == ["Fe", "Cu"]

    def test_symbol_count_mismatch(self, tmp_path):
        with pytest.raises(ValueError, match="symbols"):
            write_xyz(tmp_path / "f.xyz", ["Fe"], np.zeros((2, 3)))

    def test_shape_validation(self, tmp_path):
        with pytest.raises(ValueError, match="positions"):
            write_xyz(tmp_path / "f.xyz", "Fe", np.zeros((3, 2)))

    def test_append_mode(self, tmp_path):
        path = tmp_path / "traj.xyz"
        write_xyz(path, "Fe", np.zeros((1, 3)))
        write_xyz(path, "Fe", np.ones((1, 3)), append=True)
        assert path.read_text().count("Fe ") == 2

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "bad.xyz"
        path.write_text("5\ncomment\nFe 0 0 0\n")
        with pytest.raises(ValueError, match="truncated"):
            read_xyz(path)

    def test_vacancy_dump(self, tmp_path, lattice5):
        path = tmp_path / "vac.xyz"
        write_vacancy_xyz(path, lattice5, np.array([3, 7, 11]))
        symbols, pos = read_xyz(path)
        assert symbols == ["V"] * 3
        assert np.allclose(pos, lattice5.position_of(np.array([3, 7, 11])))

    def test_vacancy_dump_empty(self, tmp_path, lattice5):
        path = tmp_path / "vac.xyz"
        write_vacancy_xyz(path, lattice5, np.array([], dtype=np.int64))
        _symbols, pos = read_xyz(path)
        assert len(pos) == 0

    def test_bad_atom_count_names_file_and_line(self, tmp_path):
        path = tmp_path / "bad.xyz"
        path.write_text("not-a-number\ncomment\nFe 0 0 0\n")
        with pytest.raises(ValueError, match=r"bad\.xyz:1: expected an atom"):
            read_xyz(path)

    def test_short_atom_line_names_file_and_line(self, tmp_path):
        path = tmp_path / "bad.xyz"
        path.write_text("2\ncomment\nFe 0 0 0\nFe 1 1\n")
        with pytest.raises(ValueError, match=r"bad\.xyz:4: malformed atom"):
            read_xyz(path)

    def test_blank_line_inside_frame_rejected(self, tmp_path):
        path = tmp_path / "bad.xyz"
        path.write_text("2\ncomment\nFe 0 0 0\n\nFe 1 1 1\n")
        with pytest.raises(ValueError, match=r"bad\.xyz:4: malformed atom"):
            read_xyz(path)

    def test_non_numeric_coordinate_names_file_and_line(self, tmp_path):
        path = tmp_path / "bad.xyz"
        path.write_text("1\ncomment\nFe zero 0 0\n")
        with pytest.raises(ValueError, match=r"bad\.xyz:3: non-numeric"):
            read_xyz(path)

    def test_trailing_blank_lines_tolerated(self, tmp_path):
        path = tmp_path / "ok.xyz"
        path.write_text("1\ncomment\nFe 0.5 1.5 2.5\n\n\n")
        symbols, pos = read_xyz(path)
        assert symbols == ["Fe"]
        assert np.allclose(pos[0], [0.5, 1.5, 2.5])


class TestDump:
    def test_state_roundtrip(self, tmp_path, lattice5):
        state = AtomState.perfect(lattice5)
        state.v[:] = 0.5
        state.make_vacancy(3)
        path = tmp_path / "state.npz"
        dump_state(path, state, extra={"step": np.array(42)})
        loaded, extra = load_state(path)
        assert np.array_equal(loaded.ids, state.ids)
        assert np.allclose(loaded.v, state.v)
        assert loaded.mass == state.mass
        assert int(extra["step"]) == 42

    def test_extra_key_collision_rejected(self, tmp_path, lattice5):
        state = AtomState.perfect(lattice5)
        with pytest.raises(ValueError, match="collides"):
            dump_state(tmp_path / "s.npz", state, extra={"ids": np.zeros(1)})

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, format=np.array("something-else"), junk=np.zeros(1))
        with pytest.raises(ValueError, match="not a"):
            load_state(path)


class TestCheckpoint:
    def _engine_with_damage(self, potential):
        lattice = BCCLattice(6, 6, 6)
        engine = MDEngine(lattice, potential, MDConfig(temperature=300.0, seed=3))
        engine.initialize()
        engine.state.x[20] += np.array([1.5, 0.0, 0.0])
        engine.nblist.update_runaways(engine.state, threshold=1.2)
        engine.run(nsteps=3, displacement_threshold=1.2)
        return engine

    def test_roundtrip_restores_everything(self, tmp_path, potential):
        engine = self._engine_with_damage(potential)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, engine)

        fresh = MDEngine(
            BCCLattice(6, 6, 6), potential, MDConfig(temperature=300.0, seed=3)
        )
        load_checkpoint(path, fresh)
        assert np.array_equal(fresh.state.ids, engine.state.ids)
        assert np.allclose(fresh.state.x, engine.state.x)
        assert fresh._step == engine._step
        assert fresh.nblist.n_runaways == engine.nblist.n_runaways

    def test_resumed_run_matches_uninterrupted(self, tmp_path, potential):
        # Checkpoint fidelity: resume must continue the same trajectory.
        a = self._engine_with_damage(potential)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, a)
        b = MDEngine(
            BCCLattice(6, 6, 6), potential, MDConfig(temperature=300.0, seed=3)
        )
        load_checkpoint(path, b)
        a.run(nsteps=3, displacement_threshold=1.2)
        b.run(nsteps=3, displacement_threshold=1.2)
        assert np.allclose(a.state.x, b.state.x, atol=1e-15)

    def test_lattice_mismatch_rejected(self, tmp_path, potential, lattice5):
        engine = self._engine_with_damage(potential)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, engine)
        other = MDEngine(lattice5, potential)
        with pytest.raises(CheckpointError, match="lattice mismatch"):
            load_checkpoint(path, other)


class TestKMCCheckpoint:
    def _occ(self, n=128):
        rng = np.random.default_rng(4)
        occ = np.zeros(n, dtype=np.int8)
        occ[rng.choice(n, size=9, replace=False)] = 1
        return occ

    def test_roundtrip(self, tmp_path):
        from repro.io.checkpoint import (
            load_kmc_checkpoint,
            save_kmc_checkpoint,
        )

        occ = self._occ()
        path = tmp_path / "kmc.npz"
        save_kmc_checkpoint(
            path, occ, time=1.5, cycle=7, events=42, rng_state=None
        )
        ckpt = load_kmc_checkpoint(path)
        np.testing.assert_array_equal(ckpt.occupancy, occ)
        assert (ckpt.time, ckpt.cycle, ckpt.events) == (1.5, 7, 42)
        assert ckpt.rng_state is None
        # Atomic write: no .tmp sibling left behind.
        assert not list(tmp_path.glob("*.tmp.npz"))

    def test_wrong_format_rejected(self, tmp_path):
        from repro.io.checkpoint import load_kmc_checkpoint

        path = tmp_path / "bogus.npz"
        np.savez(path, format="something-else", occupancy=self._occ())
        with pytest.raises(CheckpointError):
            load_kmc_checkpoint(path)

    def test_md_checkpoint_is_not_a_kmc_checkpoint(self, tmp_path, potential):
        from repro.io.checkpoint import load_kmc_checkpoint

        engine = MDEngine(
            BCCLattice(5, 5, 5), potential, MDConfig(temperature=300.0, seed=1)
        )
        engine.initialize()
        path = tmp_path / "md.npz"
        save_checkpoint(path, engine)
        with pytest.raises(CheckpointError):
            load_kmc_checkpoint(path)

    def test_rng_state_roundtrip(self, tmp_path):
        from repro.io.checkpoint import (
            load_kmc_checkpoint,
            restore_rng_state,
            rng_state_json,
            save_kmc_checkpoint,
        )

        rng = np.random.default_rng(77)
        rng.random(13)  # advance past the seed point
        path = tmp_path / "rng.npz"
        save_kmc_checkpoint(
            path, self._occ(), time=0.0, rng_state=rng_state_json(rng)
        )
        expected = rng.random(5)

        fresh = np.random.default_rng(0)
        restore_rng_state(fresh, load_kmc_checkpoint(path).rng_state)
        np.testing.assert_array_equal(fresh.random(5), expected)

    def test_bad_rng_state_rejected(self):
        from repro.io.checkpoint import restore_rng_state

        with pytest.raises(CheckpointError):
            restore_rng_state(np.random.default_rng(0), "not json at all")


class TestAtomicWrites:
    """Crash-mid-write and concurrency behavior of the shared write path."""

    def _occ(self, fill, n=64):
        occ = np.full(n, 1, dtype=np.int8)
        occ[:fill] = 0
        return occ

    def test_atomic_write_failure_keeps_original_and_cleans_temp(
        self, tmp_path
    ):
        from repro.io.atomic import atomic_write

        path = tmp_path / "data.bin"
        path.write_bytes(b"good")
        with pytest.raises(RuntimeError, match="mid-write"):
            with atomic_write(path) as fh:
                fh.write(b"half-written")
                raise RuntimeError("crash mid-write")
        assert path.read_bytes() == b"good"
        assert not list(tmp_path.glob("*.tmp"))

    def test_crash_mid_md_checkpoint_preserves_previous(
        self, tmp_path, potential, monkeypatch
    ):
        from repro.io.checkpoint import load_checkpoint, save_checkpoint

        lattice = BCCLattice(5, 5, 5)
        engine = MDEngine(
            lattice, potential, MDConfig(temperature=300.0, seed=1)
        )
        engine.initialize()
        path = tmp_path / "md.npz"
        save_checkpoint(path, engine)
        good = path.read_bytes()

        real = np.savez_compressed

        def torn(fh, **kw):
            fh.write(b"partial checkpoint bytes")
            raise OSError("disk gone mid-write")

        engine.run(nsteps=2)
        monkeypatch.setattr(np, "savez_compressed", torn)
        with pytest.raises(OSError, match="disk gone"):
            save_checkpoint(path, engine)
        monkeypatch.setattr(np, "savez_compressed", real)
        # The previous checkpoint is intact and still loads.
        assert path.read_bytes() == good
        fresh = MDEngine(
            lattice, potential, MDConfig(temperature=300.0, seed=1)
        )
        load_checkpoint(path, fresh)
        assert fresh._step == 0
        assert not list(tmp_path.glob("*.tmp"))

    def test_crash_mid_kmc_checkpoint_preserves_previous(
        self, tmp_path, monkeypatch
    ):
        from repro.io.checkpoint import (
            load_kmc_checkpoint,
            save_kmc_checkpoint,
        )

        path = tmp_path / "kmc.npz"
        save_kmc_checkpoint(path, self._occ(5), time=1.0, cycle=3)

        def torn(fh, **kw):
            fh.write(b"partial")
            raise OSError("power loss")

        monkeypatch.setattr(np, "savez_compressed", torn)
        with pytest.raises(OSError, match="power loss"):
            save_kmc_checkpoint(path, self._occ(9), time=2.0, cycle=6)
        monkeypatch.undo()
        ckpt = load_kmc_checkpoint(path)
        assert ckpt.cycle == 3
        np.testing.assert_array_equal(ckpt.occupancy, self._occ(5))
        assert not list(tmp_path.glob("*.tmp"))

    def test_concurrent_kmc_checkpointers_never_corrupt(self, tmp_path):
        # Many writers race on one path (a recovery supervisor re-running
        # next to a straggling first attempt): the survivor must be one
        # complete snapshot, never a mixture, with no temp debris.
        import threading

        from repro.io.checkpoint import (
            load_kmc_checkpoint,
            save_kmc_checkpoint,
        )

        path = tmp_path / "shared.npz"
        errors = []

        def writer(k):
            try:
                for _ in range(5):
                    save_kmc_checkpoint(
                        path, self._occ(k), time=float(k), cycle=k
                    )
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(k,)) for k in range(1, 5)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        ckpt = load_kmc_checkpoint(path)
        assert ckpt.cycle in (1, 2, 3, 4)
        np.testing.assert_array_equal(ckpt.occupancy, self._occ(ckpt.cycle))
        assert not list(tmp_path.glob("*.tmp"))
