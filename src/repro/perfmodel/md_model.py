"""MD strong/weak scaling model (Figures 10 and 11).

Per step and per core group:

    T = N_cg * t_atom                          (CPE compute)
      + S(N_cg) * t_pack                       (MPE pack/unpack)
      + 26 * alpha + S(N_cg) * bytes * beta(P) (halo exchange, 2 phases)
      + collective(P) + F                      (sync + fixed overhead)

where ``N_cg`` is atoms per core group and ``S`` the boundary-site count
of a cubic subdomain with a 2-cell ghost shell.  Strong scaling shrinks
``N_cg`` (surface-to-volume and fixed costs erode efficiency — the
paper's 41.3% at 6.24M cores); weak scaling keeps ``N_cg`` fixed and the
contention term grows (the paper's 85% at 6.656M cores).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.perfmodel.calibrate import CalibratedCosts
from repro.perfmodel.machine import TAIHULIGHT, MachineSpec

#: Ghost shell width in conventional cells for the MD cutoff (5.6 A).
GHOST_WIDTH_CELLS = 2


def boundary_sites(atoms_per_cg: float, width: int = GHOST_WIDTH_CELLS) -> float:
    """Boundary-site count of a cubic subdomain of ``atoms_per_cg`` sites.

    The sites within ``width`` cells of the faces — what one rank packs
    and ships per exchange phase.
    """
    if atoms_per_cg <= 0:
        raise ValueError(f"atoms_per_cg must be positive, got {atoms_per_cg}")
    cells = atoms_per_cg / 2.0
    side = cells ** (1.0 / 3.0)
    inner = max(side - 2 * width, 0.0)
    return (side**3 - inner**3) * 2.0


@dataclass
class MDScalingModel:
    """Evaluates the MD step-time model over machine scales."""

    costs: CalibratedCosts
    machine: MachineSpec = field(default_factory=lambda: TAIHULIGHT)
    exchange_phases: int = 2  # positions, then densities (§2.1 two-pass EAM)

    def step_time(self, total_atoms: float, cores: int) -> dict:
        """Modeled per-step time breakdown at a core count."""
        cgs = self.machine.cgs_from_cores(cores)
        atoms_per = total_atoms / cgs
        compute = atoms_per * self.costs.md_atom_step_time
        surface = boundary_sites(atoms_per)
        pack = surface * self.costs.mpe_pack_time_per_site
        net = self.machine.network
        comm_bytes = surface * self.costs.md_ghost_bytes_per_site
        comm = self.exchange_phases * net.exchange(26, comm_bytes, cgs)
        sync = net.collective(cgs) + self.costs.md_fixed_step_overhead
        total = compute + pack + comm + sync
        return {
            "cores": cores,
            "cgs": cgs,
            "atoms_per_cg": atoms_per,
            "compute": compute,
            "pack": pack,
            "comm": pack + comm,  # the paper lumps pack into comm time
            "network": comm,
            "sync": sync,
            "total": total,
        }

    # ------------------------------------------------------------------
    def strong_scaling(self, total_atoms: float, cores_list: list[int]) -> list[dict]:
        """Speedup/efficiency rows against the first core count (Fig 10)."""
        if not cores_list:
            raise ValueError("cores_list must not be empty")
        base = self.step_time(total_atoms, cores_list[0])
        rows = []
        for cores in cores_list:
            r = self.step_time(total_atoms, cores)
            ideal = cores / cores_list[0]
            speedup = base["total"] / r["total"]
            rows.append(
                {
                    **r,
                    "ideal_speedup": ideal,
                    "speedup": speedup,
                    "efficiency": speedup / ideal,
                }
            )
        return rows

    def weak_scaling(
        self, atoms_per_cg: float, cores_list: list[int]
    ) -> list[dict]:
        """Compute/comm breakdown at fixed per-CG load (Fig 11)."""
        if not cores_list:
            raise ValueError("cores_list must not be empty")
        rows = []
        base_total = None
        for cores in cores_list:
            cgs = self.machine.cgs_from_cores(cores)
            r = self.step_time(atoms_per_cg * cgs, cores)
            if base_total is None:
                base_total = r["total"]
            rows.append({**r, "efficiency": base_total / r["total"]})
        return rows

    def max_atoms_per_cg(self, bytes_per_atom: float) -> float:
        """Memory headroom of a CG at the given per-atom record size."""
        return self.machine.arch.memory_per_cg / bytes_per_atom


def paper_core_counts_strong() -> list[int]:
    """The Fig 10 x-axis: 97,500 .. 6,240,000 master+slave cores."""
    return [97500 * (2**k) for k in range(7)]  # 97.5k, 195k, ..., 6.24M


def paper_core_counts_weak() -> list[int]:
    """The Fig 11 x-axis: 104,000 .. 6,656,000 master+slave cores."""
    return [104000 * (2**k) for k in range(7)]


def paper_kmc_strong_cores() -> list[int]:
    """The Fig 14 x-axis (master cores only): 1,500 .. 48,000."""
    return [1500 * (2**k) for k in range(6)]


def strong_scaling_atoms() -> float:
    """Fig 10 workload: 3.2e10 atoms."""
    return 3.2e10


def weak_scaling_atoms_per_cg() -> float:
    """Fig 11 workload: 3.9e7 atoms per core group."""
    return 3.9e7


def weak_efficiency(rows: list[dict]) -> float:
    """Efficiency at the largest scale of a weak-scaling table."""
    return rows[-1]["efficiency"]


def strong_efficiency(rows: list[dict]) -> float:
    """Efficiency at the largest scale of a strong-scaling table."""
    return rows[-1]["efficiency"]


def check_math() -> None:  # pragma: no cover - manual sanity helper
    """Quick self-check of the surface formula (survives ``python -O``)."""
    s = boundary_sites(2.13e7)
    if not 1e6 < s < 2e6:
        raise ValueError(f"boundary_sites(2.13e7) outside [1e6, 2e6]: {s}")
    if not math.isclose(boundary_sites(2.0), 2.0, rel_tol=1e-9):
        raise ValueError("boundary_sites must be the identity for tiny boxes")
