"""Coupled MD-KMC weak scaling model (Figure 16).

One coupled run is an MD phase (50,000 steps of 1 fs = 50 ps of cascade
evolution) followed by a KMC phase (cycles to the time threshold); the
weak-scaling efficiency of the whole is the workload-weighted combination
of the two phases' models at 3.3e5 atoms per core group.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.perfmodel.calibrate import CalibratedCosts
from repro.perfmodel.kmc_model import KMCScalingModel
from repro.perfmodel.machine import TAIHULIGHT, MachineSpec
from repro.perfmodel.md_model import MDScalingModel


@dataclass
class CoupledScalingModel:
    """Weak scaling of the full MD -> KMC pipeline."""

    costs: CalibratedCosts
    machine: MachineSpec = field(default_factory=lambda: TAIHULIGHT)
    #: MD steps of the coupled run (50 ps at 1 fs).
    md_steps: int = 50_000
    #: KMC cycles to the time threshold.
    kmc_cycles: int = 100_000
    #: Vacancy concentration after the cascade (paper: 2e-6).
    vacancy_concentration: float = 2e-6

    def __post_init__(self) -> None:
        self.md = MDScalingModel(self.costs, self.machine)
        self.kmc = KMCScalingModel(
            self.costs,
            self.machine,
            vacancy_concentration=self.vacancy_concentration,
        )

    def run_time(self, atoms_per_cg: float, cores: int) -> dict:
        """Modeled total runtime of one coupled run at a core count.

        KMC runs on the master cores of the same allocation (one per CG).
        """
        cgs = self.machine.cgs_from_cores(cores)
        md_row = self.md.step_time(atoms_per_cg * cgs, cores)
        kmc_row = self.kmc.cycle_time(atoms_per_cg * cgs, cgs)
        md_time = md_row["total"] * self.md_steps
        kmc_time = kmc_row["total"] * self.kmc_cycles
        return {
            "cores": cores,
            "cgs": cgs,
            "md_time": md_time,
            "kmc_time": kmc_time,
            "total": md_time + kmc_time,
        }

    def weak_scaling(
        self, atoms_per_cg: float, cores_list: list[int]
    ) -> list[dict]:
        """Efficiency rows at fixed per-CG workload (Fig 16)."""
        if not cores_list:
            raise ValueError("cores_list must not be empty")
        rows = []
        base_total = None
        for cores in cores_list:
            r = self.run_time(atoms_per_cg, cores)
            if base_total is None:
                base_total = r["total"]
            rows.append({**r, "efficiency": base_total / r["total"]})
        return rows


def paper_coupled_cores() -> list[int]:
    """Fig 16 x-axis: 97,500 .. 6,240,000 master+slave cores."""
    return [97500, 390000, 1560000, 6240000]


def paper_coupled_atoms_per_cg() -> float:
    """Fig 16 workload: 3.3e5 atoms per core group."""
    return 3.3e5
