"""Machine constants of the scaling models.

:class:`ScalingNetwork` extends the postal model with a *power-law*
contention term: at full-machine scale the effective per-byte cost of the
TaihuLight interconnect degrades roughly as ``(P / P0)^gamma`` (shared
links, adaptive routing pressure) — the effect behind the paper's "the
communication time for larger number of cores is a little higher, which is
caused by the communication contention".

:data:`TAIHULIGHT` collects the system-level facts of §3 ("total 40,960
computing nodes", 4 CGs per node, 8 GB per CG, 1.45 GHz, 256 KB MPE L2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sunway.arch import SunwayArch


@dataclass(frozen=True)
class ScalingNetwork:
    """Postal network model with power-law contention.

    Attributes
    ----------
    alpha:
        Per-message latency (s).
    beta0:
        Per-byte cost (s) at the normalization scale ``p0``.
    gamma:
        Contention exponent: ``beta_eff = beta0 * (P / p0)^gamma`` for
        ``P > p0``.
    p0:
        Rank count at which ``beta0`` is quoted.
    sync_alpha:
        Per-hop cost of the synchronization collectives (s); scaled by
        tree depth and a contention factor of its own.
    sync_contention:
        Linear-in-depth inflation of collective hops at scale.
    """

    alpha: float = 5.0e-6
    beta0: float = 2.0e-9
    gamma: float = 0.3
    p0: int = 1000
    sync_alpha: float = 1.0e-5
    sync_contention: float = 1.5

    def beta(self, nranks: int) -> float:
        """Effective per-byte cost at ``nranks`` ranks."""
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        if nranks <= self.p0:
            return self.beta0
        return self.beta0 * (nranks / self.p0) ** self.gamma

    def exchange(self, messages: int, nbytes: float, nranks: int) -> float:
        """Time of one halo-exchange phase on the critical rank."""
        return messages * self.alpha + nbytes * self.beta(nranks)

    def collective(self, nranks: int) -> float:
        """Time of one global synchronization (allreduce/barrier)."""
        if nranks <= 1:
            return 0.0
        depth = math.log2(nranks)
        return self.sync_alpha * depth * (1.0 + self.sync_contention * depth)


@dataclass(frozen=True)
class MachineSpec:
    """System-level facts of the Sunway TaihuLight."""

    arch: SunwayArch = SunwayArch()
    nodes: int = 40960
    cgs_per_node: int = 4
    network: ScalingNetwork = ScalingNetwork()

    @property
    def total_cgs(self) -> int:
        return self.nodes * self.cgs_per_node

    @property
    def total_cores(self) -> int:
        """Master + slave cores of the full machine (10,649,600)."""
        return self.total_cgs * self.arch.cores_per_cg

    def cgs_from_cores(self, cores: int) -> int:
        """Core groups represented by a paper-style master+slave core count."""
        cgs, rem = divmod(cores, self.arch.cores_per_cg)
        if rem or cgs < 1:
            raise ValueError(
                f"{cores} cores is not a whole number of {self.arch.cores_per_cg}"
                "-core groups"
            )
        return cgs


#: The evaluation platform of §3.
TAIHULIGHT = MachineSpec()
