"""Analytical scaling models for the paper's large-scale figures.

The paper's scaling results (Figs 10, 11, 14, 15, 16) were measured on up
to 6,656,000 Sunway cores; a Python reproduction cannot run them.  Per
DESIGN.md, we regenerate their *shape* from first-principles arithmetic:

    T(P) = compute(workload / P) + pack(boundary) + network(P) + sync(P)

with per-unit costs calibrated from this repository's own executable
models (the blocked CPE kernel for MD compute, the measured ghost-exchange
traffic of the parallel engines for communication volume) plus documented
machine constants for the network.  The models make the same qualitative
predictions the paper measures: strong-scaling decay to ~40% at 64x for
MD, the KMC L2 super-linear window, flat compute/growing communication in
weak scaling, and coupled efficiency of ~76% at 6.24M cores.
"""

from repro.perfmodel.machine import ScalingNetwork, TAIHULIGHT, MachineSpec
from repro.perfmodel.calibrate import CalibratedCosts, calibrate_from_kernels
from repro.perfmodel.md_model import MDScalingModel
from repro.perfmodel.kmc_model import KMCScalingModel
from repro.perfmodel.coupled_model import CoupledScalingModel

__all__ = [
    "CalibratedCosts",
    "CoupledScalingModel",
    "KMCScalingModel",
    "MDScalingModel",
    "MachineSpec",
    "ScalingNetwork",
    "TAIHULIGHT",
    "calibrate_from_kernels",
]
