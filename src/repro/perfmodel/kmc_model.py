"""KMC strong/weak scaling model (Figures 14 and 15).

KMC runs on master cores only ("only master cores are used").  Per cycle
and per rank:

    T = sites_per_rank * t_scan * l2(ws)       (sweep bookkeeping)
      + vac_per_rank * t_event * l2(ws)        (rate computation + events)
      + 8 * (26 * alpha + strip_bytes * beta)  (per-sector exchanges)
      + collective(P)                          (time synchronization)

``l2(ws)`` is the L2-residence factor: when the active working set
(vacancy records) fits the MPE's 256 KB L2, event service accelerates by
``kmc_l2_speedup`` — the mechanism behind the paper's super-linear window
("the benefit of L2 cache on the master cores, which can store the entire
dataset").  Weak scaling is dominated by the growth of the collective
time-synchronization cost ("the increased communication time is due to
the collective operations used for time synchronization").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.perfmodel.calibrate import CalibratedCosts
from repro.perfmodel.machine import TAIHULIGHT, MachineSpec

#: Sites shipped per sector exchange, as a fraction of a subdomain's
#: boundary sites, for the on-demand scheme (tiny) — Fig 14/15 are run
#: with the paper's own (on-demand) code, so strips carry only affected
#: sites.
ONDEMAND_BYTES_PER_EVENT = 24.0


@dataclass
class KMCScalingModel:
    """Evaluates the KMC cycle-time model over machine scales."""

    costs: CalibratedCosts
    machine: MachineSpec = field(default_factory=lambda: TAIHULIGHT)
    vacancy_concentration: float = 4.5e-5
    sectors: int = 8

    def _l2_factor(self, vacancies_per_rank: float) -> float:
        """Penalty multiplier when the active set spills out of L2."""
        ws = vacancies_per_rank * self.costs.kmc_vacancy_record_bytes
        if ws <= self.machine.arch.mpe_l2_bytes:
            return 1.0
        return self.costs.kmc_l2_speedup

    def cycle_time(self, total_sites: float, cores: int) -> dict:
        """Modeled per-cycle time breakdown at a master-core count."""
        if cores < 1:
            raise ValueError(f"cores must be >= 1, got {cores}")
        sites_per = total_sites / cores
        vac_per = sites_per * self.vacancy_concentration
        l2 = self._l2_factor(vac_per)
        compute = (
            sites_per * self.costs.kmc_site_scan_time
            + vac_per * self.costs.kmc_event_time
        ) * l2
        net = self.machine.network
        # Events per rank per sector bound the on-demand traffic.
        strip_bytes = max(vac_per, 1.0) * ONDEMAND_BYTES_PER_EVENT
        comm = self.sectors * net.exchange(26, strip_bytes, cores)
        sync = net.collective(cores)
        total = compute + comm + sync
        return {
            "cores": cores,
            "sites_per_core": sites_per,
            "vacancies_per_core": vac_per,
            "l2_resident": l2 == 1.0,
            "compute": compute,
            "comm": comm + sync,
            "sync": sync,
            "total": total,
        }

    def strong_scaling(self, total_sites: float, cores_list: list[int]) -> list[dict]:
        """Speedup/efficiency rows against the first core count (Fig 14)."""
        if not cores_list:
            raise ValueError("cores_list must not be empty")
        base = self.cycle_time(total_sites, cores_list[0])
        rows = []
        for cores in cores_list:
            r = self.cycle_time(total_sites, cores)
            ideal = cores / cores_list[0]
            speedup = base["total"] / r["total"]
            rows.append(
                {
                    **r,
                    "ideal_speedup": ideal,
                    "speedup": speedup,
                    "efficiency": speedup / ideal,
                }
            )
        return rows

    def weak_scaling(
        self, sites_per_core: float, cores_list: list[int]
    ) -> list[dict]:
        """Compute/comm breakdown at fixed per-core load (Fig 15)."""
        if not cores_list:
            raise ValueError("cores_list must not be empty")
        rows = []
        base_total = None
        for cores in cores_list:
            r = self.cycle_time(sites_per_core * cores, cores)
            if base_total is None:
                base_total = r["total"]
            rows.append({**r, "efficiency": base_total / r["total"]})
        return rows


def paper_kmc_strong_cores() -> list[int]:
    """Fig 14 x-axis: 1,500 .. 48,000 master cores."""
    return [1500 * (2**k) for k in range(6)]


def paper_kmc_weak_cores() -> list[int]:
    """Fig 15 x-axis: 1,600 .. 102,400 master cores."""
    return [1600 * (2**k) for k in range(7)]
