"""Calibration of the scaling-model unit costs from executable components.

Wherever a per-unit cost can be *measured* from this repository's own
models, it is: the MD per-atom step cost comes from one run of the blocked
CPE kernel (the same cost model Figure 9 uses), and the MD ghost traffic
per boundary site comes from the actual pack sizes of the parallel
engine's exchange plans.  The remaining constants (MPE pack cost, KMC
event service cost) are documented estimates.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache

import numpy as np

from repro.lattice.bcc import BCCLattice
from repro.md.neighbors.lattice_list import LatticeNeighborList
from repro.md.state import AtomState
from repro.potential.fe import make_fe_potential
from repro.sunway.arch import SunwayArch
from repro.sunway.kernel import STRATEGY_LADDER, BlockedEAMKernel


@dataclass(frozen=True)
class CalibratedCosts:
    """Per-unit costs feeding the scaling models.

    Attributes
    ----------
    md_atom_step_time:
        Seconds per atom per MD step on one CG (64 CPEs working), under
        the fully optimized kernel.
    md_ghost_bytes_per_site:
        Bytes exchanged per boundary site per step (positions out +
        densities out, both directions counted once for the sender).
    mpe_pack_time_per_site:
        Seconds the master core spends packing/unpacking one boundary
        site ("the master cores are responsible for inter-node
        communication").
    md_fixed_step_overhead:
        Per-step fixed cost (kernel launches, Athread dispatch, MPI
        progression) in seconds.
    kmc_event_time:
        Seconds to compute the rates of one vacancy and service one event
        on an MPE, *outside* the L2-resident regime.
    kmc_l2_speedup:
        Factor by which L2 residence accelerates event service ("the
        benefit of L2 cache on the master cores").
    kmc_vacancy_record_bytes:
        Active working-set bytes per vacancy (site neighborhood, event
        list, rate cache) — decides when the dataset fits L2.
    kmc_site_scan_time:
        Per-site bookkeeping cost of a cycle sweep on an MPE.
    """

    md_atom_step_time: float
    md_ghost_bytes_per_site: float = 32.0
    mpe_pack_time_per_site: float = 1.5e-7
    md_fixed_step_overhead: float = 5.0e-3
    kmc_event_time: float = 5.0e-5
    kmc_l2_speedup: float = 1.6
    kmc_vacancy_record_bytes: float = 2048.0
    kmc_site_scan_time: float = 1.0e-9


@lru_cache(maxsize=4)
def _kernel_atom_time(cells: int, table_points: int) -> float:
    """Per-atom-per-step cost of the optimized kernel on one CG."""
    lattice = BCCLattice(cells, cells, cells)
    potential = make_fe_potential(n=min(table_points, 2000))
    state = AtomState.perfect(lattice)
    rng = np.random.default_rng(0)
    state.x = state.x + rng.normal(0.0, 0.05, state.x.shape)
    nblist = LatticeNeighborList(lattice, potential.cutoff)
    strategy = STRATEGY_LADDER[-1]  # compacted + reuse + double buffer
    kernel = BlockedEAMKernel(
        SunwayArch(), potential, strategy, table_points=table_points
    )
    report = kernel.run_step(state, nblist)
    return report.total_time / lattice.nsites


def calibrate_from_kernels(
    cells: int = 16, table_points: int = 5000
) -> CalibratedCosts:
    """Build the cost set, measuring what the executable models provide."""
    return CalibratedCosts(md_atom_step_time=_kernel_atom_time(cells, table_points))


def calibrate_from_measured(
    md_measured: dict | None = None,
    kmc_measured: dict | None = None,
    base: CalibratedCosts | None = None,
) -> CalibratedCosts:
    """Refine the cost set from *executed* overdecomposed scaling runs.

    ``md_measured`` / ``kmc_measured`` are the result dicts of
    :func:`repro.experiments.fig10_md_strong_scaling.run_measured` and
    :func:`repro.experiments.fig14_kmc_strong_scaling.run_measured`.
    The per-atom MD step cost and the per-event KMC service cost are
    re-derived from the fastest observed row (the best wall-clock bounds
    the unit cost from above: every measured run also pays scheduling
    and communication overhead, so the minimum is the least-contaminated
    sample).  Costs with no measurement keep their ``base`` values.
    """
    costs = base if base is not None else calibrate_from_kernels()
    updates: dict[str, float] = {}
    if md_measured is not None:
        natoms = md_measured["natoms"]
        nsteps = md_measured["nsteps"]
        per_atom = [
            row["wall_s"] / (natoms * nsteps)
            for row in md_measured["rows"]
            if row["wall_s"] > 0
        ]
        if per_atom:
            updates["md_atom_step_time"] = min(per_atom)
    if kmc_measured is not None:
        per_event = [
            row["wall_s"] / row["events"]
            for row in kmc_measured["rows"]
            if row.get("events") and row["wall_s"] > 0
        ]
        if per_event:
            updates["kmc_event_time"] = min(per_event)
    return replace(costs, **updates) if updates else costs
