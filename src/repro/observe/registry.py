"""The observation registry: hierarchical phase timing, counters, gauges.

One :class:`Registry` collects everything a run wants to know about
itself.  Phases form a per-thread stack (the nesting *is* the hierarchy
— dotted names like ``md.force`` only label subsystems), so the same
registry aggregates records from every rank thread of a
:class:`~repro.runtime.simmpi.World` without coordination beyond one
lock taken at phase exit.

The registry never samples wall clocks on its own: all timestamps come
from ``time.perf_counter()`` relative to the registry's creation, which
keeps trace timestamps monotonic and comparable across threads.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass


@dataclass
class PhaseStat:
    """Aggregate of all completions of one phase path."""

    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = 0.0

    def add(self, duration: float) -> None:
        self.count += 1
        self.total += duration
        if duration < self.min:
            self.min = duration
        if duration > self.max:
            self.max = duration


@dataclass(frozen=True)
class TraceEvent:
    """One completed phase occurrence (Chrome-trace ``X`` event)."""

    name: str
    ts: float  # seconds since registry creation
    dur: float  # seconds
    tid: int

    @property
    def category(self) -> str:
        """Subsystem label: the dotted-name prefix (``md.force`` -> ``md``)."""
        return self.name.split(".", 1)[0]


class _PhaseHandle:
    """Context manager produced by :meth:`Registry.phase`.

    Cheap by construction: two attribute slots, no allocation beyond the
    handle itself, and all aggregation deferred to ``__exit__``.
    """

    __slots__ = ("_registry", "_name")

    def __init__(self, registry: "Registry", name: str) -> None:
        self._registry = registry
        self._name = name

    def __enter__(self) -> "_PhaseHandle":
        stack = self._registry._stack()
        stack.append((self._name, time.perf_counter()))
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        t1 = time.perf_counter()
        reg = self._registry
        stack = reg._stack()
        name, t0 = stack.pop()
        path = tuple(frame[0] for frame in stack) + (name,)
        reg._commit(path, name, t0, t1 - t0)
        return False


class Registry:
    """Thread-safe store of phase statistics, counters, and gauges.

    Parameters
    ----------
    trace:
        Keep individual phase occurrences for Chrome-trace export.  When
        ``False`` only the aggregates survive (lighter for long runs).
    max_events:
        Cap on retained trace events; occurrences beyond it are counted
        in :attr:`dropped_events` instead of growing without bound.
    """

    def __init__(self, trace: bool = True, max_events: int = 1_000_000) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self._t0 = time.perf_counter()
        self._trace = trace
        self._max_events = max_events
        self.phases: dict[tuple[str, ...], PhaseStat] = {}
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.events: list[TraceEvent] = []
        self.dropped_events: int = 0
        self.thread_names: dict[int, str] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def phase(self, name: str) -> _PhaseHandle:
        """A context manager timing one occurrence of ``name``."""
        return _PhaseHandle(self, name)

    def add(self, name: str, value: float = 1) -> None:
        """Increment counter ``name`` by ``value``."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest ``value``."""
        with self._lock:
            self.gauges[name] = value

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _commit(
        self, path: tuple[str, ...], name: str, t0: float, duration: float
    ) -> None:
        thread = threading.current_thread()
        tid = thread.ident or 0
        with self._lock:
            stat = self.phases.get(path)
            if stat is None:
                stat = self.phases[path] = PhaseStat()
            stat.add(duration)
            if tid not in self.thread_names:
                self.thread_names[tid] = thread.name
            if self._trace:
                if len(self.events) < self._max_events:
                    self.events.append(
                        TraceEvent(
                            name=name, ts=t0 - self._t0, dur=duration, tid=tid
                        )
                    )
                else:
                    self.dropped_events += 1

    # ------------------------------------------------------------------
    # Cross-process aggregation (the simmpi process backend)
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Everything a child process measured, as one picklable dict.

        ``t0`` is the registry's absolute ``time.perf_counter()`` origin:
        on Linux that clock is ``CLOCK_MONOTONIC``, shared across
        processes, so a parent registry can rebase the child's trace
        timestamps onto its own origin exactly.
        """
        with self._lock:
            return {
                "t0": self._t0,
                "phases": {
                    path: (stat.count, stat.total, stat.min, stat.max)
                    for path, stat in self.phases.items()
                },
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "events": [(e.name, e.ts, e.dur, e.tid) for e in self.events],
                "thread_names": dict(self.thread_names),
                "dropped_events": self.dropped_events,
            }

    def absorb_state(self, state: dict, label: str = "") -> None:
        """Merge an :meth:`export_state` dict from another process.

        Phase aggregates and counters sum, gauges take the child's
        latest value, and trace events are rebased onto this registry's
        time origin.  Child thread ids are remapped to fresh synthetic
        ids (raw ids can collide across processes); ``label`` prefixes
        the remapped thread names (e.g. ``"rank2/"``).
        """
        offset = state["t0"] - self._t0
        with self._lock:
            for path, (count, total, mn, mx) in state["phases"].items():
                stat = self.phases.get(path)
                if stat is None:
                    stat = self.phases[path] = PhaseStat()
                stat.count += count
                stat.total += total
                stat.min = min(stat.min, mn)
                stat.max = max(stat.max, mx)
            for name, value in state["counters"].items():
                self.counters[name] = self.counters.get(name, 0) + value
            self.gauges.update(state["gauges"])
            tid_map: dict[int, int] = {}
            next_tid = max(self.thread_names, default=0) + 1_000_000
            for tid, name in state["thread_names"].items():
                new = tid_map[tid] = next_tid
                next_tid += 1
                self.thread_names[new] = f"{label}{name}"
            if self._trace:
                for name, ts, dur, tid in state["events"]:
                    if len(self.events) < self._max_events:
                        self.events.append(
                            TraceEvent(
                                name=name,
                                ts=ts + offset,
                                dur=dur,
                                tid=tid_map.get(tid, tid),
                            )
                        )
                    else:
                        self.dropped_events += 1
            self.dropped_events += state["dropped_events"]

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def elapsed(self) -> float:
        """Seconds since the registry was created."""
        return time.perf_counter() - self._t0

    def subsystems(self) -> set[str]:
        """Dotted-name prefixes seen across phases and counters."""
        with self._lock:
            names = {path[-1] for path in self.phases}
            names.update(self.counters)
            names.update(self.gauges)
        return {n.split(".", 1)[0] for n in names}

    def summary(self) -> dict:
        """Machine-readable snapshot (JSON-serializable)."""
        with self._lock:
            return {
                "phases": [
                    {
                        "path": "/".join(path),
                        "name": path[-1],
                        "depth": len(path) - 1,
                        "count": stat.count,
                        "total_s": stat.total,
                        "min_s": stat.min,
                        "max_s": stat.max,
                    }
                    for path, stat in sorted(self.phases.items())
                ],
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "dropped_events": self.dropped_events,
            }
