"""Chrome-trace (``chrome://tracing`` / Perfetto) JSON export.

The exported file follows the Trace Event Format: phase occurrences
become complete (``"ph": "X"``) events, counters become counter
(``"ph": "C"``) events sampled at the end of the run, and thread-name
metadata maps the runtime's ``simmpi-rank-N`` threads onto labeled trace
rows.  Timestamps are microseconds since registry creation and the event
list is emitted in non-decreasing ``ts`` order.
"""

from __future__ import annotations

import json

from repro.observe.registry import Registry


def chrome_trace(registry: Registry) -> dict:
    """The registry's content as a Trace Event Format dictionary."""
    with registry._lock:
        events = list(registry.events)
        counters = dict(registry.counters)
        gauges = dict(registry.gauges)
        thread_names = dict(registry.thread_names)
    trace_events: list[dict] = []
    for tid, name in sorted(thread_names.items()):
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "ts": 0,
                "args": {"name": name},
            }
        )
    end_ts = 0.0
    for ev in sorted(events, key=lambda e: e.ts):
        ts = ev.ts * 1e6
        dur = ev.dur * 1e6
        end_ts = max(end_ts, ts + dur)
        trace_events.append(
            {
                "name": ev.name,
                "cat": ev.category,
                "ph": "X",
                "ts": ts,
                "dur": dur,
                "pid": 0,
                "tid": ev.tid,
            }
        )
    for name in sorted(set(counters) | set(gauges)):
        value = counters.get(name, gauges.get(name))
        trace_events.append(
            {
                "name": name,
                "cat": name.split(".", 1)[0],
                "ph": "C",
                "ts": end_ts,
                "pid": 0,
                "tid": 0,
                "args": {"value": value},
            }
        )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"dropped_events": registry.dropped_events},
    }


def write_chrome_trace(registry: Registry, path: str) -> None:
    """Serialize :func:`chrome_trace` to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(registry), fh)
