"""Plain-text performance report: the phase tree, counters, gauges.

The tree mirrors the runtime nesting recorded by the phase stack; a
phase's share is reported against its parent's total (threads aggregate,
so a parallel region's children can legitimately sum past 100% of the
wall clock — that is the concurrency showing).
"""

from __future__ import annotations

from repro.observe.registry import PhaseStat, Registry


def _format_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:8.3f} s"
    if value >= 1e-3:
        return f"{value * 1e3:8.3f} ms"
    return f"{value * 1e6:8.1f} us"


def format_report(registry: Registry, counters: bool = True) -> str:
    """Render the registry as an indented phase tree plus counter tables."""
    with registry._lock:
        phases = {path: stat for path, stat in registry.phases.items()}
        counter_items = sorted(registry.counters.items())
        gauge_items = sorted(registry.gauges.items())
        dropped = registry.dropped_events
    lines: list[str] = ["phase tree (aggregated over threads):"]
    if not phases:
        lines.append("  (no phases recorded)")

    roots = sorted({path[:1] for path in phases})

    def emit(path: tuple[str, ...], parent_total: float | None) -> None:
        stat: PhaseStat = phases[path]
        indent = "  " * len(path)
        share = (
            f" {100.0 * stat.total / parent_total:5.1f}%"
            if parent_total
            else ""
        )
        lines.append(
            f"{indent}{path[-1]:<{max(44 - 2 * len(path), 8)}} "
            f"{stat.count:>7}x {_format_seconds(stat.total)}{share}"
        )
        children = sorted(
            {p[: len(path) + 1] for p in phases if p[: len(path)] == path and len(p) > len(path)}
        )
        for child in children:
            emit(child, stat.total)

    for root in roots:
        emit(root, None)
    if counters and counter_items:
        lines.append("")
        lines.append("counters:")
        for name, value in counter_items:
            if float(value).is_integer():
                lines.append(f"  {name:<44} {int(value):>16,}")
            else:
                lines.append(f"  {name:<44} {value:>16.6g}")
    if counters and gauge_items:
        lines.append("")
        lines.append("gauges:")
        for name, value in gauge_items:
            lines.append(f"  {name:<44} {value:>16.6g}")
    if dropped:
        lines.append("")
        lines.append(f"({dropped} trace events dropped beyond the retention cap)")
    return "\n".join(lines)
