"""Module-level observation API with a near-zero-cost disabled path.

Instrumented code calls :func:`phase`, :func:`add`, and :func:`set_gauge`
unconditionally.  When no registry is active (the default), every one of
these is a single global load plus a ``None`` check: :func:`phase`
returns a shared no-op context manager and the counter functions return
immediately, so hot paths pay effectively nothing for being observable.

Enable observation around a region of interest::

    from repro import observe as obs

    with obs.observing() as registry:
        run_workload()
    print(obs.format_report(registry))
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.observe.registry import Registry

_active: Registry | None = None


class _NullPhase:
    """The shared do-nothing context manager of the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_PHASE = _NullPhase()


def enable(registry: Registry | None = None, trace: bool = True) -> Registry:
    """Install ``registry`` (or a fresh one) as the active registry."""
    global _active
    _active = registry if registry is not None else Registry(trace=trace)
    return _active


def disable() -> Registry | None:
    """Deactivate observation; returns the registry that was active."""
    global _active
    registry, _active = _active, None
    return registry


def active() -> Registry | None:
    """The currently active registry, or ``None`` when disabled."""
    return _active


def enabled() -> bool:
    """Whether observation is currently on."""
    return _active is not None


@contextmanager
def observing(registry: Registry | None = None, trace: bool = True):
    """Context manager activating a registry and restoring the previous one."""
    global _active
    previous = _active
    registry = registry if registry is not None else Registry(trace=trace)
    _active = registry
    try:
        yield registry
    finally:
        _active = previous


def phase(name: str):
    """Time a phase (``with obs.phase("md.force"): ...``); no-op when disabled."""
    registry = _active
    if registry is None:
        return NULL_PHASE
    return registry.phase(name)


def add(name: str, value: float = 1) -> None:
    """Increment a named counter; no-op when disabled."""
    registry = _active
    if registry is not None:
        registry.add(name, value)


def set_gauge(name: str, value: float) -> None:
    """Set a named gauge; no-op when disabled."""
    registry = _active
    if registry is not None:
        registry.set_gauge(name, value)
