"""Unified observability spine: phase timers, counters, trace export.

Every execution layer of the reproduction — the MD engines, the AKMC
drivers and their communication schemes, the simulated-MPI runtime, and
the Sunway machine model — emits through this package:

* ``with obs.phase("md.force"):`` times a (nested, per-thread) phase;
* ``obs.add("runtime.sent_bytes", n)`` bumps a named counter;
* ``obs.set_gauge("sunway.athread.imbalance", r)`` records a level.

Observation is **disabled by default**: without an active
:class:`Registry` each call is one global load and a ``None`` check, so
instrumented hot paths stay as fast as uninstrumented ones.  Activate
with :func:`enable`/:func:`disable` or the :func:`observing` context
manager; render with :func:`format_report` (plain-text phase tree) or
:func:`write_chrome_trace` (``chrome://tracing`` / Perfetto JSON).

Dotted phase/counter names carry the subsystem as their first component
(``md``, ``kmc``, ``runtime``, ``sunway``, ``coupled``); the runtime
nesting of ``phase`` blocks — not the dots — defines the tree.

Well-known fault-tolerance names (emitted by :mod:`repro.runtime.faults`
and the recovery supervisor in :mod:`repro.core.coupling`):

* counters ``runtime.faults.injected`` (plus per-kind
  ``runtime.faults.crashes`` / ``.delays`` / ``.duplicates`` /
  ``.stalls`` and ``runtime.faults.duplicates_dropped`` on delivery),
  ``runtime.watchdog.expired``, ``runtime.recoveries``,
  ``coupling.recover.from_checkpoint`` / ``.from_scratch``, and
  ``kmc.checkpoints_written``;
* phases ``coupling.recover`` (checkpoint restore during recovery) and
  ``kmc.checkpoint`` (periodic snapshot writes).
"""

from repro.observe.api import (
    NULL_PHASE,
    active,
    add,
    disable,
    enable,
    enabled,
    observing,
    phase,
    set_gauge,
)
from repro.observe.registry import PhaseStat, Registry, TraceEvent
from repro.observe.report import format_report
from repro.observe.trace import chrome_trace, write_chrome_trace

__all__ = [
    "NULL_PHASE",
    "PhaseStat",
    "Registry",
    "TraceEvent",
    "active",
    "add",
    "chrome_trace",
    "disable",
    "enable",
    "enabled",
    "format_report",
    "observing",
    "phase",
    "set_gauge",
    "write_chrome_trace",
]
