"""The on-demand communication strategy (paper §2.2.1, Figure 8d).

"When a vacancy transition (an event) occurs, it only affects the
potential of atoms within the cutoff radius and the other sites keep
steady. To keep the sites in the subdomain and the ghost sites always in
the latest state, we only have to transfer the affected sites to the
corresponding neighbor processes after the simulation of a sector within
a time step is finished."

Two-sided variant: the receiver cannot know message sizes in advance
("the source, the tag, and the size of the messages are determined at
runtime"), so it probes first — and every neighbor pair exchanges a
message each sector even when empty ("the sender has to send a zero-size
message to the receiver even there is no update in the ghost sites").

Payloads carry (global site rank: int64, site value: int32) per affected
site; with the very low vacancy concentrations of the paper's workloads
this is a tiny fraction of the full-strip traffic.
"""

from __future__ import annotations

import numpy as np

from repro import observe as obs
from repro.kmc.comm import ExchangeScheme, TAG_ONDEMAND


def pack_updates(sites: np.ndarray, occ: np.ndarray, rows: np.ndarray):
    """Wire format of an on-demand update: (ranks, values) arrays."""
    return (
        sites[rows].astype(np.int64),
        occ[rows].astype(np.int32),
    )


def apply_updates(sites: np.ndarray, occ: np.ndarray, ranks, values) -> int:
    """Apply received (ranks, values) to the local occupancy; returns count.

    Every received rank must be inside the local site set — senders only
    address sites in the receiver's interest region.
    """
    ranks = np.asarray(ranks, dtype=np.int64)
    if len(ranks) == 0:
        return 0
    rows = np.searchsorted(sites, ranks)
    if np.any(rows >= len(sites)) or np.any(
        sites[np.minimum(rows, len(sites) - 1)] != ranks
    ):
        raise ValueError("on-demand update addresses a site outside this rank")
    occ[rows] = np.asarray(values).astype(occ.dtype)
    return len(rows)


class OnDemandExchange(ExchangeScheme):
    """Dirty-site exchange over two-sided probe + recv."""

    name = "ondemand"

    def before_sector(self, sector: int) -> None:
        """No get phase: ghosts are kept current by the after phases."""

    def after_sector(self, sector: int, dirty_rows: np.ndarray) -> None:
        with obs.phase("kmc.ghost_sync"):
            sched = self.schedule
            dirty_rows = np.asarray(dirty_rows, dtype=np.int64)
            for n in sched.neighbors:
                rows = sched.interest_rows(n, dirty_rows)
                # A message goes to every neighbor — zero-size when clean —
                # because the two-sided receive must be matched.
                self.comm.send(
                    n,
                    TAG_ONDEMAND + sector,
                    pack_updates(sched.sites, self.occ, rows),
                )
            for n in sched.neighbors:
                # The paper's receive protocol: probe for the
                # runtime-determined envelope, then post the actual receive.
                status = self.comm.probe(source=n, tag=TAG_ONDEMAND + sector)
                _src, _tag, payload = self.comm.recv(source=n, tag=status.tag)
                ranks, values = payload
                apply_updates(sched.sites, self.occ, ranks, values)
