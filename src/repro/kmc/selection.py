"""Shared BKL event selection over a flat rate vector.

Historically the serial AKMC driver, the sector-synchronous flat path,
and the alloy engine each carried their own copy of the idiom::

    pick = np.searchsorted(np.cumsum(rates), u * rates.sum())
    pick = min(pick, len(rates) - 1)

which harbours a physical bug: NumPy's pairwise ``sum`` and the
sequential ``cumsum`` can disagree in the last ulp, so ``u * total`` may
land *past* the final cumulative value.  The blind clamp then returns
the last index regardless of its rate — and when the event list ends in
a zero-rate entry, a physically forbidden event executes.  The
incremental :class:`~repro.kmc.catalog.EventCatalog` fixed this for the
catalog paths (PR 2); :func:`select_event` extracts the same
rightmost-positive clamp for every flat selector, so all engines share
one correct implementation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["select_event"]


def select_event(rates: np.ndarray, u: float) -> int:
    """Index of the event at cumulative rate mass ``u * sum(rates)``.

    Selection follows the BKL residence-time rule: event ``i`` owns the
    half-open interval ``[cum[i-1], cum[i])`` of the cumulative rate
    line, and ``u`` (uniform in ``[0, 1)``) picks the interval containing
    ``u * total``.  Two guarantees the naive ``searchsorted`` + clamp
    lacks:

    * a zero-rate event is **never** selected — if floating-point
      round-off pushes the target past the last positive cumulative
      value (pairwise ``sum`` vs sequential ``cumsum`` disagreeing in
      the last ulp), the rightmost event with positive rate is taken,
      matching :meth:`repro.kmc.catalog.EventCatalog.sample`;
    * ``u == 0.0`` with leading zero-rate events selects the first
      positive-rate event, not index 0.

    Raises ``ValueError`` when the vector is empty or carries no
    positive rate (callers check the total before drawing ``u``).
    """
    rates = np.asarray(rates, dtype=float)
    n = len(rates)
    if n == 0:
        raise ValueError("cannot select from an empty rate vector")
    total = float(np.sum(rates))
    if not total > 0.0:
        raise ValueError("cannot select an event from a zero total rate")
    cum = np.cumsum(rates)
    idx = int(np.searchsorted(cum, u * total, side="right"))
    if idx >= n:
        idx = n - 1
    # Only the round-off overshoot lands on a zero-rate entry (inside the
    # range, searchsorted's first-strictly-greater index always has
    # positive rate); fall back to the rightmost positive-rate event.
    while idx > 0 and not rates[idx] > 0.0:
        idx -= 1
    return idx
