"""AKMC drivers: serial BKL and the parallel sector-synchronous engine.

:class:`SerialAKMC` is the textbook residence-time (BKL) algorithm over
the full lattice — the physics reference and the engine the coupled
pipeline uses at small scale.

:class:`ParallelAKMC` executes the paper's Figure 7 flowchart on the
in-process runtime: per-cycle global time step from a max-rate allreduce
("#1: Compute dt"), eight Shim-Amar sectors processed in lockstep, events
by residence-time sampling inside each sector, and ghost reconciliation
after every sector through a pluggable
:class:`~repro.kmc.comm.ExchangeScheme` — the knob Figures 12-13 turn.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro import observe as obs
from repro.kmc.comm import ExchangeScheme, TraditionalExchange
from repro.kmc.events import VACANCY, KMCModel, RateParameters
from repro.kmc.ondemand import OnDemandExchange
from repro.kmc.onesided import OneSidedExchange
from repro.kmc.rng import sector_rng
from repro.kmc.sublattice import SectorSchedule
from repro.lattice.bcc import BCCLattice
from repro.lattice.domain import DomainDecomposition, choose_grid
from repro.potential.eam import EAMPotential
from repro.runtime.simmpi import World

#: Registry of the selectable communication schemes.
SCHEMES: dict[str, type[ExchangeScheme]] = {
    "traditional": TraditionalExchange,
    "ondemand": OnDemandExchange,
    "onesided": OneSidedExchange,
}


def ghost_width_cells(lattice: BCCLattice, params: RateParameters) -> int:
    """Cells needed so a boundary vacancy's full rate stencil is local.

    An event reaches one first shell out (the hop target) and the energy
    cutoff around the target.
    """
    first_shell = math.sqrt(3.0) / 2.0 * lattice.a
    return max(1, math.ceil((first_shell + params.energy_cutoff) / lattice.a))


@dataclass
class KMCResult:
    """Outcome of a KMC run."""

    occupancy: np.ndarray
    time: float
    cycles: int
    events: int
    vacancy_ranks: np.ndarray
    comm_stats: dict | None = None

    @property
    def nvacancies(self) -> int:
        return len(self.vacancy_ranks)


def place_random_vacancies(
    model: KMCModel, count: int, rng: np.random.Generator
) -> np.ndarray:
    """A perfect-lattice occupancy with ``count`` random vacancies."""
    if count < 0 or count > model.nrows:
        raise ValueError(f"cannot place {count} vacancies on {model.nrows} sites")
    occ = model.perfect_occupancy()
    rows = rng.choice(model.nrows, size=count, replace=False)
    occ[rows] = VACANCY
    return occ


class SerialAKMC:
    """Residence-time AKMC over the full lattice.

    Parameters
    ----------
    lattice, potential, params:
        The physical system.
    occupancy:
        Initial site array (``None`` = perfect lattice; add vacancies via
        :func:`place_random_vacancies` or from an MD cascade result).
    seed:
        RNG seed for event selection.
    """

    def __init__(
        self,
        lattice: BCCLattice,
        potential: EAMPotential,
        params: RateParameters | None = None,
        occupancy: np.ndarray | None = None,
        seed: int = 2018,
    ) -> None:
        self.params = params or RateParameters()
        self.model = KMCModel(lattice, potential, self.params)
        if occupancy is None:
            occupancy = self.model.perfect_occupancy()
        occupancy = np.asarray(occupancy, dtype=np.int8)
        if len(occupancy) != self.model.nrows:
            raise ValueError("occupancy length does not match the lattice")
        self.occ = occupancy.copy()
        self.rng = np.random.default_rng(seed)
        self.time = 0.0
        self.events = 0
        self._rate_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    @property
    def vacancy_rows(self) -> np.ndarray:
        return np.flatnonzero(self.occ == VACANCY)

    def step(self) -> float | None:
        """One BKL event; returns the time increment (None if frozen).

        Event rates are cached per vacancy and invalidated within the
        influence radius of each executed swap, so a step costs O(events
        affected) instead of O(all vacancies).
        """
        with obs.phase("kmc.rate_update"):
            vrows = self.vacancy_rows
            all_v: list[int] = []
            all_t: list[int] = []
            all_r: list[float] = []
            for v in vrows:
                iv = int(v)
                if iv not in self._rate_cache:
                    self._rate_cache[iv] = self.model.vacancy_events(iv, self.occ)
                targets, rates = self._rate_cache[iv]
                all_v.extend([iv] * len(targets))
                all_t.extend(int(t) for t in targets)
                all_r.extend(float(r) for r in rates)
        if not all_r:
            return None
        with obs.phase("kmc.event_selection"):
            rates = np.asarray(all_r)
            total = float(rates.sum())
            dt = -math.log(self.rng.random()) / total
            pick = np.searchsorted(np.cumsum(rates), self.rng.random() * total)
            pick = min(pick, len(rates) - 1)
            self.model.execute_swap(self.occ, all_v[pick], all_t[pick])
            for row in self.model.influence_rows([all_v[pick], all_t[pick]]):
                self._rate_cache.pop(int(row), None)
        obs.add("kmc.events")
        self.time += dt
        self.events += 1
        return dt

    def run(
        self,
        max_events: int | None = None,
        t_threshold: float | None = None,
    ) -> KMCResult:
        """Run until either bound is hit (at least one must be given)."""
        if max_events is None and t_threshold is None:
            raise ValueError("provide max_events and/or t_threshold")
        while True:
            if max_events is not None and self.events >= max_events:
                break
            if t_threshold is not None and self.time >= t_threshold:
                break
            if self.step() is None:
                break
        vac = self.vacancy_rows
        return KMCResult(
            occupancy=self.occ.copy(),
            time=self.time,
            cycles=self.events,
            events=self.events,
            vacancy_ranks=self.model.sites[vac],
        )


class ParallelAKMC:
    """Sector-synchronous parallel AKMC (Figure 7) on the runtime.

    Parameters
    ----------
    lattice, potential, params:
        The physical system.
    grid / nranks:
        Process decomposition (see :class:`~repro.md.engine.ParallelMD`).
    scheme:
        One of ``"traditional"``, ``"ondemand"``, ``"onesided"``.
    seed:
        Base seed; event streams derive from (seed, rank, cycle, sector),
        so all three schemes reproduce identical trajectories.
    """

    def __init__(
        self,
        lattice: BCCLattice,
        potential: EAMPotential,
        params: RateParameters | None = None,
        grid: tuple[int, int, int] | None = None,
        nranks: int | None = None,
        scheme: str = "ondemand",
        seed: int = 2018,
        network=None,
    ) -> None:
        if scheme not in SCHEMES:
            raise ValueError(f"unknown scheme {scheme!r}; choose from {list(SCHEMES)}")
        self.lattice = lattice
        self.potential = potential
        self.params = params or RateParameters()
        if grid is None:
            if nranks is None:
                raise ValueError("provide either grid or nranks")
            grid = choose_grid(nranks, (lattice.nx, lattice.ny, lattice.nz))
        self.decomp = DomainDecomposition(lattice, grid)
        self.scheme_name = scheme
        self.seed = seed
        self.network = network
        self.width = ghost_width_cells(lattice, self.params)

    @property
    def nranks(self) -> int:
        return self.decomp.nprocs

    # ------------------------------------------------------------------
    # Model hooks (overridden by multi-species engines)
    # ------------------------------------------------------------------
    def _make_model(self, sites: np.ndarray):
        """Build the rank-local rate model over a site subset."""
        return KMCModel(self.lattice, self.potential, self.params, sites=sites)

    def _rate_bound_per_vacancy(self) -> float:
        """Upper bound on one vacancy's total rate, for the cycle dt."""
        return 8.0 * self.params.reference_rate

    def run(
        self,
        occupancy: np.ndarray,
        max_cycles: int = 50,
        t_threshold: float | None = None,
    ) -> KMCResult:
        """Run from a *global* occupancy array; returns the global outcome."""
        occupancy = np.asarray(occupancy, dtype=np.int8)
        if len(occupancy) != self.lattice.nsites:
            raise ValueError("occupancy must cover the full lattice")
        lattice = self.lattice
        width = self.width
        seed = self.seed
        rate_bound = self._rate_bound_per_vacancy()
        scheme_cls = SCHEMES[self.scheme_name]

        def rank_main(comm):
            sub = self.decomp.subdomain(comm.rank)
            owned = sub.owned_site_ranks(lattice)
            ghosts = sub.all_ghost_site_ranks(lattice, width)
            sites = np.union1d(owned, ghosts)
            central_rows = np.searchsorted(sites, owned)
            model = self._make_model(sites)
            occ = occupancy[sites].copy()
            schedule = SectorSchedule(self.decomp, comm.rank, sites, width)
            scheme = scheme_cls(comm, schedule, occ)
            t = 0.0
            cycle = 0
            events = 0
            while cycle < max_cycles and (t_threshold is None or t < t_threshold):
                with obs.phase("kmc.cycle"):
                    # "#1: Compute dt for the subdomain" + global time sync —
                    # the collective the weak-scaling analysis blames.  The
                    # cycle step derives from the reference rate (the hop rate
                    # at the nominal barrier) times the busiest rank's vacancy
                    # count x 8 candidate hops.  It depends only on owned-site
                    # occupancy — guaranteed current under every communication
                    # scheme — so all schemes draw identical dt.
                    nv_local = int(np.count_nonzero(occ[central_rows] == VACANCY))
                    with obs.phase("kmc.dt_sync"):
                        nv_max = comm.allreduce(nv_local, op="max")
                    if nv_max == 0:
                        break
                    dt = 1.0 / (rate_bound * nv_max)
                    for s in range(schedule.nsectors):
                        scheme.before_sector(s)
                        rng = sector_rng(seed, comm.rank, cycle, s)
                        dirty: list[int] = []
                        t_sector = 0.0
                        rows_s = schedule.sector_rows[s]
                        # Rate cache for this sector pass; invalidated within
                        # the influence radius of each swap.  (Ghost refreshes
                        # happened before this pass, so cached rates stay
                        # valid between events.)
                        cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}
                        while True:
                            with obs.phase("kmc.rate_update"):
                                vrows = rows_s[occ[rows_s] == VACANCY]
                                ev_v: list[int] = []
                                ev_t: list[int] = []
                                ev_r: list[float] = []
                                for v in vrows:
                                    iv = int(v)
                                    if iv not in cache:
                                        cache[iv] = model.vacancy_events(iv, occ)
                                    targets, rates = cache[iv]
                                    ev_v.extend([iv] * len(targets))
                                    ev_t.extend(int(x) for x in targets)
                                    ev_r.extend(float(r) for r in rates)
                            if not ev_r:
                                break
                            with obs.phase("kmc.event_selection"):
                                rates = np.asarray(ev_r)
                                total = float(rates.sum())
                                t_sector += -math.log(rng.random()) / total
                                if t_sector > dt:
                                    break
                                pick = np.searchsorted(
                                    np.cumsum(rates), rng.random() * total
                                )
                                pick = min(pick, len(rates) - 1)
                                model.execute_swap(occ, ev_v[pick], ev_t[pick])
                                for row in model.influence_rows(
                                    [ev_v[pick], ev_t[pick]]
                                ):
                                    cache.pop(int(row), None)
                                dirty.extend((ev_v[pick], ev_t[pick]))
                                obs.add("kmc.events")
                                events += 1
                        scheme.after_sector(s, np.asarray(dirty, dtype=np.int64))
                    t += dt
                    cycle += 1
            scheme.finalize()
            total_events = comm.allreduce(events)
            return {
                "owned": owned,
                "occ": occ[central_rows].copy(),
                "time": t,
                "cycles": cycle,
                "events": total_events,
            }

        world = World(self.nranks, network=self.network)
        results = world.run(rank_main)
        global_occ = np.empty(lattice.nsites, dtype=np.int8)
        for res in results:
            global_occ[res["owned"]] = res["occ"]
        vac = np.flatnonzero(global_occ == VACANCY)
        return KMCResult(
            occupancy=global_occ,
            time=results[0]["time"],
            cycles=results[0]["cycles"],
            events=results[0]["events"],
            vacancy_ranks=vac,
            comm_stats=world.stats.snapshot(),
        )
