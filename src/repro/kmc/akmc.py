"""AKMC drivers: serial BKL and the parallel sector-synchronous engine.

:class:`SerialAKMC` is the textbook residence-time (BKL) algorithm over
the full lattice — the physics reference and the engine the coupled
pipeline uses at small scale.

:class:`ParallelAKMC` executes the paper's Figure 7 flowchart on the
in-process runtime: per-cycle global time step from a max-rate allreduce
("#1: Compute dt"), eight Shim-Amar sectors processed in lockstep, events
by residence-time sampling inside each sector, and ghost reconciliation
after every sector through a pluggable
:class:`~repro.kmc.comm.ExchangeScheme` — the knob Figures 12-13 turn.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro import observe as obs
from repro.kmc.catalog import EventCatalog
from repro.kmc.comm import ExchangeScheme, TraditionalExchange
from repro.kmc.events import VACANCY, KMCModel, RateParameters
from repro.kmc.ondemand import OnDemandExchange
from repro.kmc.onesided import OneSidedExchange
from repro.kmc.rng import sector_rng
from repro.kmc.selection import select_event
from repro.kmc.sublattice import SectorSchedule
from repro.lattice.bcc import BCCLattice
from repro.lattice.domain import DomainDecomposition, choose_grid
from repro.potential.eam import EAMPotential
from repro.runtime.simmpi import World

#: Registry of the selectable communication schemes.
SCHEMES: dict[str, type[ExchangeScheme]] = {
    "traditional": TraditionalExchange,
    "ondemand": OnDemandExchange,
    "onesided": OneSidedExchange,
}


def ghost_width_cells(lattice: BCCLattice, params: RateParameters) -> int:
    """Cells needed so a boundary vacancy's full rate stencil is local.

    An event reaches one first shell out (the hop target) and the energy
    cutoff around the target.
    """
    first_shell = math.sqrt(3.0) / 2.0 * lattice.a
    return max(1, math.ceil((first_shell + params.energy_cutoff) / lattice.a))


@dataclass
class KMCResult:
    """Outcome of a KMC run."""

    occupancy: np.ndarray
    time: float
    cycles: int
    events: int
    vacancy_ranks: np.ndarray
    comm_stats: dict | None = None

    @property
    def nvacancies(self) -> int:
        return len(self.vacancy_ranks)


def place_random_vacancies(
    model: KMCModel, count: int, rng: np.random.Generator
) -> np.ndarray:
    """A perfect-lattice occupancy with ``count`` random vacancies."""
    if count < 0 or count > model.nrows:
        raise ValueError(f"cannot place {count} vacancies on {model.nrows} sites")
    occ = model.perfect_occupancy()
    rows = rng.choice(model.nrows, size=count, replace=False)
    occ[rows] = VACANCY
    return occ


class SerialAKMC:
    """Residence-time AKMC over the full lattice.

    Parameters
    ----------
    lattice, potential, params:
        The physical system.
    occupancy:
        Initial site array (``None`` = perfect lattice; add vacancies via
        :func:`place_random_vacancies` or from an MD cascade result).
    seed:
        RNG seed for event selection.
    use_catalog:
        With the default ``True``, events live in an incremental
        :class:`~repro.kmc.catalog.EventCatalog` (O(log N) selection,
        O(influence) updates per hop).  ``False`` keeps the historical
        flat-list rebuild — the reference baseline the equivalence tests
        and kernel benchmarks compare against.
    faults:
        Optional :class:`~repro.runtime.faults.FaultInjector` consulted
        at the top of every event (site ``"kmc.event"``); a planned
        crash raises :class:`~repro.runtime.faults.InjectedFault` there,
        which the recovery supervisor in :mod:`repro.core.coupling`
        survives by restoring the last checkpoint.
    """

    def __init__(
        self,
        lattice: BCCLattice,
        potential: EAMPotential,
        params: RateParameters | None = None,
        occupancy: np.ndarray | None = None,
        seed: int = 2018,
        use_catalog: bool = True,
        faults=None,
    ) -> None:
        self.params = params or RateParameters()
        self.model = KMCModel(lattice, potential, self.params)
        if occupancy is None:
            occupancy = self.model.perfect_occupancy()
        occupancy = np.asarray(occupancy, dtype=np.int8)
        if len(occupancy) != self.model.nrows:
            raise ValueError("occupancy length does not match the lattice")
        self.occ = occupancy.copy()
        self.rng = np.random.default_rng(seed)
        self.time = 0.0
        self.events = 0
        self.use_catalog = use_catalog
        self.faults = faults
        self._rate_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self.catalog = EventCatalog(self.model.nrows) if use_catalog else None
        #: Rows to re-derive before the next selection; ``None`` means the
        #: catalog has not been populated yet (full build pending).
        self._dirty: np.ndarray | None = None

    @property
    def vacancy_rows(self) -> np.ndarray:
        return np.flatnonzero(self.occ == VACANCY)

    def step(self) -> float | None:
        """One BKL event; returns the time increment (None if frozen).

        Event rates live in the incremental catalog and only rows inside
        the influence radius of the executed swap are re-derived, so a
        step costs O(log N + influence) instead of O(all vacancies).
        """
        if self.faults is not None:
            self.faults.crash_point(0, "kmc.event", self.events)
        if not self.use_catalog:
            return self._step_flat()
        with obs.phase("kmc.catalog_update"):
            catalog = self.catalog
            if self._dirty is None:
                refreshed, _ = catalog.refresh(
                    self.model, self.occ, self.vacancy_rows, VACANCY
                )
            elif len(self._dirty):
                refreshed, cleared = catalog.refresh(
                    self.model, self.occ, self._dirty, VACANCY
                )
                obs.add("kmc.catalog.rows_refreshed", refreshed)
                obs.add("kmc.catalog.rows_cleared", cleared)
                obs.add("kmc.catalog.rows_reused", catalog.n_active - refreshed)
            self._dirty = np.empty(0, dtype=np.int64)
        total = catalog.total
        if not total > 0.0:
            return None
        with obs.phase("kmc.event_selection"):
            dt = -math.log(self.rng.random()) / total
            vrow, trow = catalog.sample_event(self.rng.random())
            self.model.execute_swap(self.occ, vrow, trow)
            self._dirty = self.model.influence_rows([vrow, trow])
        obs.add("kmc.events")
        self.time += dt
        self.events += 1
        return dt

    def _step_flat(self) -> float | None:
        """The pre-catalog step: per-event flat list rebuild + cumsum."""
        with obs.phase("kmc.rate_update"):
            vrows = self.vacancy_rows
            all_v: list[int] = []
            all_t: list[int] = []
            all_r: list[float] = []
            for v in vrows:
                iv = int(v)
                if iv not in self._rate_cache:
                    self._rate_cache[iv] = self.model.vacancy_events(iv, self.occ)
                targets, rates = self._rate_cache[iv]
                all_v.extend([iv] * len(targets))
                all_t.extend(int(t) for t in targets)
                all_r.extend(float(r) for r in rates)
        if not all_r:
            return None
        with obs.phase("kmc.event_selection"):
            rates = np.asarray(all_r)
            total = float(rates.sum())
            dt = -math.log(self.rng.random()) / total
            pick = select_event(rates, self.rng.random())
            self.model.execute_swap(self.occ, all_v[pick], all_t[pick])
            for row in self.model.influence_rows([all_v[pick], all_t[pick]]):
                self._rate_cache.pop(int(row), None)
        obs.add("kmc.events")
        self.time += dt
        self.events += 1
        return dt

    def run(
        self,
        max_events: int | None = None,
        t_threshold: float | None = None,
        checkpoint_every: int | None = None,
        checkpoint_path=None,
        trajectory=None,
        trajectory_every: int | None = None,
    ) -> KMCResult:
        """Run until either bound is hit (at least one must be given).

        With ``checkpoint_every``/``checkpoint_path`` set, a resumable
        snapshot (occupancy, clock, event count, exact RNG state) is
        written atomically every N events; :meth:`restore` continues a
        run from such a snapshot bit-identically to one that was never
        interrupted.

        With ``trajectory`` set — a store path or an open
        :class:`~repro.io.store.TrajectoryWriter` — the occupancy is
        appended to the streaming chunked store every
        ``trajectory_every`` events (default 1) plus once at run end,
        so frames land on disk incrementally instead of accumulating in
        memory.  A path is opened in append mode and closed (without
        finalizing) when the run ends; a writer object's lifecycle stays
        with the caller.
        """
        if max_events is None and t_threshold is None:
            raise ValueError("provide max_events and/or t_threshold")
        if checkpoint_every is not None and checkpoint_path is None:
            raise ValueError("checkpoint_every requires checkpoint_path")
        if trajectory_every is not None and trajectory is None:
            raise ValueError("trajectory_every requires trajectory")
        writer, own_writer = self._open_trajectory(trajectory)
        every_t = trajectory_every if trajectory_every is not None else 1

        def record_frame():
            # BKL time increments are strictly positive, so a frame at
            # a non-advancing clock is a resume/replay re-record of one
            # already on disk — skipping it keeps appends idempotent.
            if writer.last_time is None or self.time > writer.last_time:
                with obs.phase("io.trajectory.append"):
                    writer.append(self.time, self.occ)

        recorded = None
        try:
            while True:
                if max_events is not None and self.events >= max_events:
                    break
                if t_threshold is not None and self.time >= t_threshold:
                    break
                if self.step() is None:
                    break
                if writer is not None and self.events % every_t == 0:
                    record_frame()
                    recorded = self.events
                if (
                    checkpoint_every is not None
                    and self.events % checkpoint_every == 0
                ):
                    if writer is not None:
                        # Durability fence: frames at or before this
                        # checkpoint must be on disk before it publishes
                        # (recovery rewinds the store to the checkpoint
                        # clock and resumes from there).
                        writer.flush()
                    with obs.phase("kmc.checkpoint"):
                        self.checkpoint(checkpoint_path)
            if writer is not None and recorded != self.events:
                # The closing frame, whether or not the bound landed on
                # a fence — the store always ends at the final state.
                record_frame()
        finally:
            if own_writer and writer is not None:
                writer.close(final=False)
        vac = self.vacancy_rows
        return KMCResult(
            occupancy=self.occ.copy(),
            time=self.time,
            cycles=self.events,
            events=self.events,
            vacancy_ranks=self.model.sites[vac],
        )

    def _open_trajectory(self, trajectory):
        """Resolve a ``trajectory`` argument to ``(writer, owned)``."""
        if trajectory is None:
            return None, False
        if hasattr(trajectory, "append") and hasattr(trajectory, "flush"):
            return trajectory, False
        from repro.io.store import TrajectoryWriter

        return TrajectoryWriter(trajectory, self.model.lattice), True

    # ------------------------------------------------------------------
    # Checkpoint / restore (the recovery supervisor's primitives)
    # ------------------------------------------------------------------
    def checkpoint(self, path) -> None:
        """Atomically write this engine's resumable state to ``path``."""
        from repro.io.checkpoint import rng_state_json, save_kmc_checkpoint

        save_kmc_checkpoint(
            path,
            self.occ,
            time=self.time,
            cycle=self.events,
            events=self.events,
            rng_state=rng_state_json(self.rng),
        )

    def restore(self, checkpoint) -> None:
        """Resume from a checkpoint (path or loaded object), in place.

        Restores the occupancy, clock, event counter, and the exact RNG
        state, and discards every derived structure (rate cache, event
        catalog) so they rebuild from the restored occupancy — the
        continuation is bit-identical to a run that never stopped.
        """
        from repro.io.checkpoint import (
            KMCCheckpoint,
            load_kmc_checkpoint,
            restore_rng_state,
        )

        ckpt = (
            checkpoint
            if isinstance(checkpoint, KMCCheckpoint)
            else load_kmc_checkpoint(checkpoint)
        )
        if len(ckpt.occupancy) != self.model.nrows:
            raise ValueError(
                f"checkpoint covers {len(ckpt.occupancy)} sites, "
                f"engine has {self.model.nrows}"
            )
        self.occ = ckpt.occupancy.astype(np.int8).copy()
        self.time = float(ckpt.time)
        self.events = int(ckpt.events)
        if ckpt.rng_state is not None:
            restore_rng_state(self.rng, ckpt.rng_state)
        self._rate_cache.clear()
        if self.catalog is not None:
            self.catalog = EventCatalog(self.model.nrows)
        self._dirty = None


def _sector_events_flat(model, occ, rows_s, rng, dt) -> tuple[list[int], int]:
    """Pre-catalog sector pass: flat event list rebuilt after every hop."""
    dirty: list[int] = []
    events = 0
    t_sector = 0.0
    cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    while True:
        with obs.phase("kmc.rate_update"):
            vrows = rows_s[occ[rows_s] == VACANCY]
            ev_v: list[int] = []
            ev_t: list[int] = []
            ev_r: list[float] = []
            for v in vrows:
                iv = int(v)
                if iv not in cache:
                    cache[iv] = model.vacancy_events(iv, occ)
                targets, rates = cache[iv]
                ev_v.extend([iv] * len(targets))
                ev_t.extend(int(x) for x in targets)
                ev_r.extend(float(r) for r in rates)
        if not ev_r:
            break
        with obs.phase("kmc.event_selection"):
            rates = np.asarray(ev_r)
            total = float(rates.sum())
            t_sector += -math.log(rng.random()) / total
            if t_sector > dt:
                break
            pick = select_event(rates, rng.random())
            model.execute_swap(occ, ev_v[pick], ev_t[pick])
            for row in model.influence_rows([ev_v[pick], ev_t[pick]]):
                cache.pop(int(row), None)
            dirty.extend((ev_v[pick], ev_t[pick]))
            obs.add("kmc.events")
            events += 1
    return dirty, events


def _sector_events_catalog(
    model,
    occ,
    rows_s,
    member,
    catalog: EventCatalog,
    snapshot: np.ndarray | None,
    rng,
    dt,
) -> tuple[list[int], int, np.ndarray]:
    """Catalog sector pass: incremental invalidation, O(log N) selection.

    ``snapshot`` is the occupancy as of the end of this sector's previous
    visit; diffing against it captures every change made since — own
    events in other sectors and ghost writes by *any* communication
    scheme — and only rows inside the influence radius of those changes
    (intersected with this sector) re-enter the catalog.  Returns the
    dirty rows, the event count, and the new snapshot.
    """
    with obs.phase("kmc.catalog_update"):
        if snapshot is None:
            catalog.refresh(
                model, occ, rows_s[occ[rows_s] == VACANCY], VACANCY
            )
        else:
            changed = np.flatnonzero(occ != snapshot)
            if len(changed):
                inval = model.influence_rows(changed)
                inval = inval[member[inval]]
                refreshed, cleared = catalog.refresh(model, occ, inval, VACANCY)
                obs.add("kmc.catalog.rows_refreshed", refreshed)
                obs.add("kmc.catalog.rows_cleared", cleared)
                obs.add(
                    "kmc.catalog.rows_reused", catalog.n_active - refreshed
                )
    dirty: list[int] = []
    events = 0
    t_sector = 0.0
    while True:
        total = catalog.total
        if not total > 0.0:
            break
        with obs.phase("kmc.event_selection"):
            t_sector += -math.log(rng.random()) / total
            if t_sector > dt:
                break
            vrow, trow = catalog.sample_event(rng.random())
            model.execute_swap(occ, vrow, trow)
        with obs.phase("kmc.catalog_update"):
            inval = model.influence_rows([vrow, trow])
            catalog.refresh(model, occ, inval[member[inval]], VACANCY)
        dirty.extend((vrow, trow))
        obs.add("kmc.events")
        events += 1
    return dirty, events, occ.copy()


class ParallelAKMC:
    """Sector-synchronous parallel AKMC (Figure 7) on the runtime.

    Parameters
    ----------
    lattice, potential, params:
        The physical system.
    grid / nranks:
        Process decomposition (see :class:`~repro.md.engine.ParallelMD`).
    scheme:
        One of ``"traditional"``, ``"ondemand"``, ``"onesided"``.
    seed:
        Base seed; event streams derive from (seed, rank, cycle, sector),
        so all three schemes reproduce identical trajectories.
    use_catalog:
        With the default ``True``, each sector keeps a persistent
        :class:`~repro.kmc.catalog.EventCatalog` across cycles; between
        visits only rows inside the influence radius of occupancy
        changes (own events elsewhere, ghost refreshes from any
        communication scheme) re-enter the catalog.  ``False`` keeps the
        historical per-event flat rebuild for baseline comparisons.
    faults:
        Optional fault plan/injector handed to the :class:`World`; every
        cycle starts with a ``fault_point("kmc.cycle", cycle)`` so a
        planned rank crash aborts the world exactly where the plan says.
    watchdog:
        Optional per-wait deadline (seconds) for the world's blocking
        recv/probe/collectives; ``None`` keeps them deadline-free.
    backend:
        Execution backend for the :class:`World`: ``"thread"``,
        ``"process"``, ``"overdecomposed"``, or ``None`` to defer to
        ``REPRO_BACKEND`` / thread.  Trajectories are bit-identical
        across backends.
    workers:
        Physical worker count for the overdecomposed / rank-group
        backends; ``None`` defers to ``REPRO_WORKERS`` / cpu count.
    rate_bound:
        How the per-vacancy rate bound behind the cycle dt is enforced.
        The EAM correction can drive a barrier below the ``e_m0``
        reference (only the ``de_min`` floor limits it), so raw event
        rates can exceed the nominal ``8 * nu * exp(-e_m0/kT)`` that dt
        is derived from.  ``"clamp"`` (default) keeps the
        reference-rate dt and caps each event's rate at the reference
        rate, counting every clamp on ``kmc.rate_bound.clamped`` — the
        documented invariant then truly holds.  ``"strict"`` derives dt
        from the true supremum ``8 * nu * exp(-de_min/kT)`` instead
        (physically exact, but the dt shrinks by orders of magnitude,
        so cycles advance the clock far more slowly).
    """

    #: Accepted ``rate_bound`` enforcement modes.
    RATE_BOUND_MODES = ("clamp", "strict")

    def __init__(
        self,
        lattice: BCCLattice,
        potential: EAMPotential,
        params: RateParameters | None = None,
        grid: tuple[int, int, int] | None = None,
        nranks: int | None = None,
        scheme: str = "ondemand",
        seed: int = 2018,
        network=None,
        use_catalog: bool = True,
        faults=None,
        watchdog: float | None = None,
        backend: str | None = None,
        workers: int | None = None,
        rate_bound: str = "clamp",
    ) -> None:
        if scheme not in SCHEMES:
            raise ValueError(f"unknown scheme {scheme!r}; choose from {list(SCHEMES)}")
        if rate_bound not in self.RATE_BOUND_MODES:
            raise ValueError(
                f"unknown rate_bound {rate_bound!r}; "
                f"choose from {list(self.RATE_BOUND_MODES)}"
            )
        self.rate_bound = rate_bound
        self.lattice = lattice
        self.potential = potential
        self.params = params or RateParameters()
        if grid is None:
            if nranks is None:
                raise ValueError("provide either grid or nranks")
            grid = choose_grid(nranks, (lattice.nx, lattice.ny, lattice.nz))
        self.decomp = DomainDecomposition(lattice, grid)
        self.scheme_name = scheme
        self.seed = seed
        self.network = network
        self.use_catalog = use_catalog
        self.faults = faults
        self.watchdog = watchdog
        self.backend = backend
        self.workers = workers
        self.width = ghost_width_cells(lattice, self.params)

    @property
    def nranks(self) -> int:
        return self.decomp.nprocs

    # ------------------------------------------------------------------
    # Model hooks (overridden by multi-species engines)
    # ------------------------------------------------------------------
    def _make_model(self, sites: np.ndarray):
        """Build the rank-local rate model over a site subset."""
        return KMCModel(
            self.lattice,
            self.potential,
            self.params,
            sites=sites,
            rate_cap=self._rate_cap(),
        )

    def _rate_bound_per_vacancy(self) -> float:
        """Upper bound on one vacancy's total rate, for the cycle dt.

        In ``"clamp"`` mode this is the historical reference-rate bound,
        made an actual bound by the per-event cap (:meth:`_rate_cap`).
        In ``"strict"`` mode it is the true supremum: ``de_min`` is the
        only floor below a corrected barrier, so no event can exceed
        ``nu * exp(-de_min/kT)`` and a vacancy's 8 candidate hops cannot
        exceed eight times that.
        """
        if self.rate_bound == "strict":
            return 8.0 * self.params.nu * math.exp(
                -self.params.de_min / self.params.kt
            )
        return 8.0 * self.params.reference_rate

    def _rate_cap(self) -> float | None:
        """Per-event rate ceiling enforcing :meth:`_rate_bound_per_vacancy`.

        A vacancy has at most 8 candidate hops, so capping each event at
        bound/8 guarantees the per-vacancy total never exceeds the bound
        the cycle dt was derived from.  ``None`` in strict mode — the dt
        bound is already a true supremum there.
        """
        if self.rate_bound == "strict":
            return None
        return self._rate_bound_per_vacancy() / 8.0

    def run(
        self,
        occupancy: np.ndarray,
        max_cycles: int = 50,
        t_threshold: float | None = None,
        checkpoint_every: int | None = None,
        checkpoint_path=None,
        resume=None,
        trajectory=None,
        trajectory_every: int | None = None,
    ) -> KMCResult:
        """Run from a *global* occupancy array; returns the global outcome.

        Parameters
        ----------
        checkpoint_every / checkpoint_path:
            Every N completed cycles, gather the global occupancy and
            let rank 0 write an atomic
            :class:`~repro.io.checkpoint.KMCCheckpoint`.  Because event
            streams are pure functions of (seed, rank, cycle, sector),
            the snapshot needs no RNG state.
        resume:
            A :class:`~repro.io.checkpoint.KMCCheckpoint` to continue
            from: pass its ``occupancy`` as this call's ``occupancy``
            and the run re-enters at its cycle/clock/event counters,
            producing a trajectory bit-identical to one that never
            stopped.
        trajectory / trajectory_every:
            Path of a streaming chunked trajectory store
            (:mod:`repro.io.store`); every N completed cycles (default
            1, plus once at run end) the global occupancy is gathered
            through the same path the checkpoints use and rank 0
            appends it incrementally.  Must be a path — the writer is
            opened inside rank 0's worker, so the wiring works
            identically on the thread, process, and overdecomposed
            backends.  Fence positions derive from the absolute cycle
            number, so a resumed run appends at the same fences as an
            uninterrupted one.
        """
        occupancy = np.asarray(occupancy, dtype=np.int8)
        if len(occupancy) != self.lattice.nsites:
            raise ValueError("occupancy must cover the full lattice")
        if checkpoint_every is not None and checkpoint_path is None:
            raise ValueError("checkpoint_every requires checkpoint_path")
        if trajectory_every is not None and trajectory is None:
            raise ValueError("trajectory_every requires trajectory")
        if trajectory is not None and hasattr(trajectory, "append"):
            raise TypeError(
                "ParallelAKMC takes a trajectory store *path*, not a "
                "writer: rank 0 opens the writer inside its worker"
            )
        traj_path = None if trajectory is None else str(trajectory)
        traj_every = trajectory_every if trajectory_every is not None else 1
        lattice = self.lattice
        width = self.width
        seed = self.seed
        rate_bound = self._rate_bound_per_vacancy()
        scheme_cls = SCHEMES[self.scheme_name]
        start_cycle = 0 if resume is None else int(resume.cycle)
        start_time = 0.0 if resume is None else float(resume.time)
        events_base = 0 if resume is None else int(resume.events)

        use_catalog = self.use_catalog

        def rank_main(comm):
            sub = self.decomp.subdomain(comm.rank)
            owned = sub.owned_site_ranks(lattice)
            ghosts = sub.all_ghost_site_ranks(lattice, width)
            sites = np.union1d(owned, ghosts)
            central_rows = np.searchsorted(sites, owned)
            model = self._make_model(sites)
            occ = occupancy[sites].copy()
            schedule = SectorSchedule(self.decomp, comm.rank, sites, width)
            scheme = scheme_cls(comm, schedule, occ)
            if use_catalog:
                # One persistent catalog per sector: sector row sets
                # repeat every cycle, so incremental invalidation can
                # carry rates across cycles.  The snapshot records the
                # occupancy each catalog was last consistent with.
                catalogs = [
                    EventCatalog(model.nrows) for _ in range(schedule.nsectors)
                ]
                snapshots: list[np.ndarray | None] = [None] * schedule.nsectors
            t = start_time
            cycle = start_cycle
            events = 0
            traj_writer = None
            traj_cycle = None

            def record_frame():
                """Gather the global occupancy; rank 0 appends a frame.

                Uses the same gather path as the checkpoints, so the
                store holds merged global frames regardless of the rank
                count.  Appends are skipped when the clock has not
                advanced past the shard's newest frame, which makes the
                write idempotent under journal replay (a migrated rank 0
                re-executes from the top) and under resumed attempts.
                """
                nonlocal traj_writer
                with obs.phase("io.trajectory.gather"):
                    gathered = comm.allgather((owned, occ[central_rows].copy()))
                if comm.rank != 0:
                    return
                g_occ = np.empty(lattice.nsites, dtype=np.int8)
                for g_owned, g_vals in gathered:
                    g_occ[g_owned] = g_vals
                if traj_writer is None:
                    from repro.io.store import TrajectoryWriter

                    traj_writer = TrajectoryWriter(traj_path, lattice)
                if traj_writer.last_time is None or t > traj_writer.last_time:
                    with obs.phase("io.trajectory.append"):
                        traj_writer.append(t, g_occ)

            while cycle < max_cycles and (t_threshold is None or t < t_threshold):
                comm.fault_point("kmc.cycle", cycle)
                with obs.phase("kmc.cycle"):
                    # "#1: Compute dt for the subdomain" + global time sync —
                    # the collective the weak-scaling analysis blames.  The
                    # cycle step derives from the per-vacancy rate bound
                    # (reference rate in clamp mode, de_min supremum in
                    # strict mode) times the busiest rank's vacancy
                    # count x 8 candidate hops.  It depends only on owned-site
                    # occupancy — guaranteed current under every communication
                    # scheme — so all schemes draw identical dt.
                    nv_local = int(np.count_nonzero(occ[central_rows] == VACANCY))
                    with obs.phase("kmc.dt_sync"):
                        nv_max = comm.allreduce(nv_local, op="max")
                    if nv_max == 0:
                        break
                    dt = 1.0 / (rate_bound * nv_max)
                    for s in range(schedule.nsectors):
                        scheme.before_sector(s)
                        rng = sector_rng(seed, comm.rank, cycle, s)
                        rows_s = schedule.sector_rows[s]
                        if use_catalog:
                            dirty, n_ev, snapshots[s] = _sector_events_catalog(
                                model,
                                occ,
                                rows_s,
                                schedule.sector_member[s],
                                catalogs[s],
                                snapshots[s],
                                rng,
                                dt,
                            )
                        else:
                            dirty, n_ev = _sector_events_flat(
                                model, occ, rows_s, rng, dt
                            )
                        events += n_ev
                        scheme.after_sector(s, np.asarray(dirty, dtype=np.int64))
                    t += dt
                    cycle += 1
                if traj_path is not None and cycle % traj_every == 0:
                    record_frame()
                    traj_cycle = cycle
                if (
                    checkpoint_every is not None
                    and cycle % checkpoint_every == 0
                ):
                    # Gather the global occupancy; rank 0 writes the
                    # snapshot atomically.  Pure extra collectives — the
                    # event streams (seed, rank, cycle, sector) are
                    # untouched, so checkpointing never perturbs the
                    # trajectory.
                    with obs.phase("kmc.checkpoint"):
                        gathered = comm.allgather(
                            (owned, occ[central_rows].copy(), events)
                        )
                        if comm.rank == 0:
                            from repro.io.checkpoint import save_kmc_checkpoint

                            if traj_writer is not None:
                                # Durability fence: every trajectory
                                # frame at or before this checkpoint
                                # must be on disk before the checkpoint
                                # publishes — recovery rewinds the store
                                # to the checkpoint clock and resumes.
                                traj_writer.flush()
                            g_occ = np.empty(lattice.nsites, dtype=np.int8)
                            total = events_base
                            for g_owned, g_vals, g_events in gathered:
                                g_occ[g_owned] = g_vals
                                total += g_events
                            save_kmc_checkpoint(
                                checkpoint_path,
                                g_occ,
                                time=t,
                                cycle=cycle,
                                events=total,
                            )
                            obs.add("kmc.checkpoints_written")
            if traj_path is not None and traj_cycle != cycle:
                # The closing frame: the store always ends at the final
                # state even when the cycle budget missed a fence.
                record_frame()
            if traj_writer is not None:
                traj_writer.close(final=False)
            scheme.finalize()
            total_events = events_base + comm.allreduce(events)
            return {
                "owned": owned,
                "occ": occ[central_rows].copy(),
                "time": t,
                "cycles": cycle,
                "events": total_events,
            }

        world = World(
            self.nranks,
            network=self.network,
            faults=self.faults,
            watchdog=self.watchdog,
            backend=self.backend,
            workers=self.workers,
        )
        results = world.run(rank_main)
        global_occ = np.empty(lattice.nsites, dtype=np.int8)
        for res in results:
            global_occ[res["owned"]] = res["occ"]
        vac = np.flatnonzero(global_occ == VACANCY)
        stats = world.stats.snapshot()
        stats["migrations"] = world.migrations
        return KMCResult(
            occupancy=global_occ,
            time=results[0]["time"],
            cycles=results[0]["cycles"],
            events=results[0]["events"],
            vacancy_ranks=vac,
            comm_stats=stats,
        )
