"""Synchronous sublattice sectoring (Shim-Amar [26]) and exchange geometry.

Each subdomain is split into 8 octant sectors processed sequentially; all
processes work on the *same* octant position concurrently, so active
regions on different processes are separated by at least the inactive
remainder of a subdomain and never conflict within a cycle.

:class:`SectorSchedule` precomputes, per (sector, neighbor) pair, every
row set the communication schemes need:

* ``get_send`` / ``get_recv`` — the full-strip transfers of the
  traditional two-phase exchange (Figure 8b: "Get the latest ghost sites
  from neighbor processes"); the put phase (Figure 8c) reuses the same
  sets mirrored.
* ``interest`` — per neighbor, the global ranks that neighbor can see
  (its owned sites plus its ghost shell); the on-demand scheme intersects
  the event-affected sites against these (Figure 8d).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lattice.bcc import BCCLattice
from repro.lattice.domain import DIRECTIONS, DomainDecomposition


@dataclass(frozen=True)
class SectorComm:
    """Traditional-exchange row sets of one (sector, neighbor) pair.

    Get strips span the full *rate stencil* (``width`` cells) around a
    sector — everything event rates can read.  Put strips span only the
    *event-reachable* shell (``event_width`` cells, one first-neighbor
    hop) — everything a sector's events can have written.  Keeping the
    put strips inside the event reach is what makes concurrent sectors
    conflict-free: a wider put would ship back stale copies of sites some
    *other* rank just modified, silently undoing its events.
    """

    neighbor: int
    #: Rows (into the local site array) whose *current* values the
    #: neighbor needs before it processes this sector (we own them and
    #: they fall in the neighbor's sector rate-stencil ghost region).
    get_send_rows: np.ndarray
    #: Rows of our sector's rate-stencil ghost region owned by this
    #: neighbor, refreshed in the get phase.
    get_recv_rows: np.ndarray
    #: Rows of our sector's event-reach ghost shell owned by this
    #: neighbor — our possible writes, shipped back in the put phase.
    put_send_rows: np.ndarray
    #: Rows of our owned sites inside the neighbor's sector event-reach
    #: shell — its possible writes to us, received in the put phase.
    put_recv_rows: np.ndarray


class SectorSchedule:
    """Per-rank sector geometry and precomputed communication row sets.

    Parameters
    ----------
    decomp:
        Global domain decomposition.
    rank:
        This process.
    sites:
        Sorted global ranks of the local arrays (owned + ghost shell).
    width:
        Rate-stencil ghost width in cells; must cover the KMC interaction
        envelope (first shell + energy cutoff).
    event_width:
        Event-reach width in cells (one first-neighbor hop; 1 for BCC).
        Sectors of adjacent processes must be separated by more than
        ``2 * event_width`` so their writes never collide.
    """

    def __init__(
        self,
        decomp: DomainDecomposition,
        rank: int,
        sites: np.ndarray,
        width: int,
        event_width: int = 1,
    ) -> None:
        lattice: BCCLattice = decomp.lattice
        self.rank = rank
        self.sites = sites
        self.event_width = event_width
        sub = decomp.subdomain(rank)
        if any(s < 2 * width for s in sub.shape):
            raise ValueError(
                f"subdomain shape {sub.shape} must be >= 2*width={2 * width} "
                "per axis for conflict-free sectoring"
            )
        if any(s // 2 < 2 * event_width for s in sub.shape):
            raise ValueError(
                f"sector separation {min(sub.shape) // 2} cells does not "
                f"exceed twice the event reach ({event_width}); concurrent "
                "sector writes could collide"
            )
        self.sectors = sub.sectors()
        self.nsectors = len(self.sectors)
        if self.nsectors != 8:
            raise ValueError(
                f"expected 8 sectors, got {self.nsectors}; subdomains must "
                "be at least 2 cells wide per axis"
            )
        # Rows of each sector's owned sites (event sites).
        self.sector_rows: list[np.ndarray] = [
            _rows_in(sites, sec.owned_site_ranks(lattice)) for sec in self.sectors
        ]
        # Boolean membership masks over the local rows — the O(1) lookup
        # the incremental event catalogs use to intersect an influence
        # set with a sector's event sites.
        self.sector_member: list[np.ndarray] = []
        for rows in self.sector_rows:
            mask = np.zeros(len(sites), dtype=bool)
            mask[rows] = True
            self.sector_member.append(mask)
        # Distinct neighbor ranks (small grids alias directions).
        neighbor_ranks = sorted(
            {
                decomp.neighbor_rank(rank, d)
                for d in DIRECTIONS
                if decomp.neighbor_rank(rank, d) != rank
            }
        )
        self.neighbors = neighbor_ranks
        # Interest sets: what each neighbor can see (owned + ghost shell).
        self.interest: dict[int, np.ndarray] = {}
        for n in neighbor_ranks:
            nsub = decomp.subdomain(n)
            owned_n = nsub.owned_site_ranks(lattice)
            ghost_n = nsub.all_ghost_site_ranks(lattice, width)
            self.interest[n] = np.union1d(owned_n, ghost_n)
        # Traditional per-sector strip sets.
        my_owned = sub.owned_site_ranks(lattice)
        owned_by = {
            n: decomp.subdomain(n).owned_site_ranks(lattice) for n in neighbor_ranks
        }
        self.sector_comm: list[list[SectorComm]] = []
        for s, sector in enumerate(self.sectors):
            my_rate_ghost = sector.all_ghost_site_ranks(lattice, width)
            my_event_ghost = sector.all_ghost_site_ranks(lattice, event_width)
            per_neighbor = []
            for n in neighbor_ranks:
                n_sector = decomp.subdomain(n).sectors()[s]
                n_rate_ghost = n_sector.all_ghost_site_ranks(lattice, width)
                n_event_ghost = n_sector.all_ghost_site_ranks(lattice, event_width)
                per_neighbor.append(
                    SectorComm(
                        neighbor=n,
                        get_send_rows=_rows_in(
                            sites, np.intersect1d(n_rate_ghost, my_owned)
                        ),
                        get_recv_rows=_rows_in(
                            sites, np.intersect1d(my_rate_ghost, owned_by[n])
                        ),
                        put_send_rows=_rows_in(
                            sites, np.intersect1d(my_event_ghost, owned_by[n])
                        ),
                        put_recv_rows=_rows_in(
                            sites, np.intersect1d(n_event_ghost, my_owned)
                        ),
                    )
                )
            self.sector_comm.append(per_neighbor)

    def interest_rows(self, neighbor: int, dirty_rows: np.ndarray) -> np.ndarray:
        """Subset of ``dirty_rows`` the given neighbor can see."""
        dirty_ranks = self.sites[dirty_rows]
        mask = np.isin(dirty_ranks, self.interest[neighbor], assume_unique=False)
        return dirty_rows[mask]

    def traditional_strip_sites(self) -> int:
        """Total strip sites moved per full cycle by the traditional scheme
        (get + put over all sectors and neighbors) — a planning figure for
        the experiments."""
        total = 0
        for per_neighbor in self.sector_comm:
            for sc in per_neighbor:
                total += len(sc.get_send_rows) + len(sc.get_recv_rows)
                total += len(sc.put_send_rows) + len(sc.put_recv_rows)
        return total


def _rows_in(sites: np.ndarray, ranks: np.ndarray) -> np.ndarray:
    """Rows of ``ranks`` within sorted ``sites``; all must be present."""
    ranks = np.asarray(ranks, dtype=np.int64)
    if len(ranks) == 0:
        return np.empty(0, dtype=np.int64)
    rows = np.searchsorted(sites, ranks)
    if np.any(rows >= len(sites)) or np.any(
        sites[np.minimum(rows, len(sites) - 1)] != ranks
    ):
        raise ValueError("requested ranks missing from the local site set")
    return rows
