"""Exchange-scheme interface and the traditional two-phase ghost exchange.

"Before processing a sector, each process has to get partial ghost sites
(except those in the local subdomain) from the subdomains of its neighbor
processes ... After finishing the simulation of the current sector, each
process has to put the ghost sites back to its neighbor processes ...
This two-time communication pattern is widely used in the KMC software,
such as SPPARKS and KMCLib.  All the sites in the ghost region have to be
transferred regardless of whether all the sites are updated or not."
(§2.2.1, Figures 8b-8c)

Payloads are int32 site values — the per-site record a production lattice
KMC code ships.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro import observe as obs
from repro.kmc.sublattice import SectorSchedule

#: Tag bases of the exchange phases (sector index 0..7 is added).
TAG_GET = 1000
TAG_PUT = 2000
TAG_ONDEMAND = 3000


class ExchangeScheme(ABC):
    """Strategy object reconciling ghost sites around each sector.

    Subclasses mutate the shared occupancy array in place; the engine
    reports which rows its events modified via ``after_sector``.
    """

    name: str = "abstract"

    def __init__(self, comm, schedule: SectorSchedule, occ: np.ndarray) -> None:
        self.comm = comm
        self.schedule = schedule
        self.occ = occ

    @abstractmethod
    def before_sector(self, sector: int) -> None:
        """Bring the sector's ghost region up to date (if the scheme needs to)."""

    @abstractmethod
    def after_sector(self, sector: int, dirty_rows: np.ndarray) -> None:
        """Publish this sector's modifications to the neighbors."""

    def finalize(self) -> None:
        """Hook for schemes with collective teardown (default: nothing)."""


class TraditionalExchange(ExchangeScheme):
    """SPPARKS/KMCLib-style full-strip get + put around every sector."""

    name = "traditional"

    def before_sector(self, sector: int) -> None:
        """Get phase: refresh our sector's ghost strips from their owners."""
        with obs.phase("kmc.ghost_sync"):
            plans = self.schedule.sector_comm[sector]
            for sc in plans:
                self.comm.send(
                    sc.neighbor,
                    TAG_GET + sector,
                    self.occ[sc.get_send_rows].astype(np.int32),
                )
            for sc in plans:
                _src, _tag, data = self.comm.recv(
                    source=sc.neighbor, tag=TAG_GET + sector
                )
                self.occ[sc.get_recv_rows] = data.astype(self.occ.dtype)

    def after_sector(self, sector: int, dirty_rows: np.ndarray) -> None:
        """Put phase: return (possibly modified) ghost strips to owners.

        The full strip travels "regardless of whether all the sites are
        updated or not" — that is the redundancy the on-demand strategy
        removes; ``dirty_rows`` is deliberately ignored here.
        """
        with obs.phase("kmc.ghost_sync"):
            plans = self.schedule.sector_comm[sector]
            for sc in plans:
                self.comm.send(
                    sc.neighbor,
                    TAG_PUT + sector,
                    self.occ[sc.put_send_rows].astype(np.int32),
                )
            for sc in plans:
                _src, _tag, data = self.comm.recv(
                    source=sc.neighbor, tag=TAG_PUT + sector
                )
                self.occ[sc.put_recv_rows] = data.astype(self.occ.dtype)
