"""Incremental BKL event catalog: a sum tree over per-row total rates.

The serial and sector-synchronous AKMC drivers used to rebuild a flat
``(vacancy, target, rate)`` list — Python ``extend`` loops plus a full
``cumsum`` — on *every* event, making one hop cost O(all vacancies).
:class:`EventCatalog` replaces that rebuild with the classic BKL data
structure the large-scale KMC codes rely on: a binary sum tree (a
segment tree; the array layout is the same as a Fenwick tree's implicit
heap) keyed by site row, holding each row's total event rate in a leaf
and subtree sums in the internal nodes.  It supports

* O(log N) event sampling by exact prefix-sum descent,
* O(log N) rate updates when a row's events are set or cleared,
* an exact O(1) total-rate query (the root),

so one hop costs O(rows inside the influence radius), matching the
incremental-bookkeeping design of the companion hundred-billion-atom
cascade paper.

Two properties matter for reproducibility:

* **Set-leaf updates, not deltas.**  Every update rewrites the leaf and
  recomputes its ancestors as exact children sums, so the tree never
  accumulates floating-point drift: an incrementally maintained catalog
  is *bit-identical* to one rebuilt from scratch over the same rows.
* **Exact selection.**  Sampling descends the tree's own partial sums,
  so the selected row always brackets the target mass exactly; the
  ``searchsorted(cumsum, u*total)`` + clamp idiom it replaces could
  mis-select when ``u*total`` landed past the last partial sum (the
  pairwise ``sum`` and the sequential ``cumsum`` disagree in the last
  ulp).  If rounding pushes the target past the total, the catalog
  falls back to the rightmost row with positive rate — never a
  zero-rate row.
"""

from __future__ import annotations

import numpy as np

__all__ = ["EventCatalog"]

_EMPTY_I = np.empty(0, dtype=np.int64)
_EMPTY_F = np.empty(0)

#: Bulk population threshold: above it, a vectorized full-tree rebuild
#: beats per-row update walks.  Both produce bit-identical trees (every
#: internal node is always the exact sum of its two children).
_BULK_THRESHOLD = 64


class EventCatalog:
    """Per-row event tables + sum tree over per-row total rates.

    Parameters
    ----------
    nrows:
        Number of addressable rows (sites of the local model).  Leaves
        are keyed by row index, so prefix order is ascending row order —
        the same order the flat-list drivers enumerated events in.
    """

    __slots__ = ("nrows", "size", "tree", "targets", "rates", "_cums", "n_active")

    def __init__(self, nrows: int) -> None:
        if nrows < 1:
            raise ValueError(f"nrows must be >= 1, got {nrows}")
        self.nrows = int(nrows)
        size = 1
        while size < self.nrows:
            size <<= 1
        self.size = size
        self.tree = np.zeros(2 * size)
        self.targets: list[np.ndarray | None] = [None] * self.nrows
        self.rates: list[np.ndarray | None] = [None] * self.nrows
        self._cums: list[np.ndarray | None] = [None] * self.nrows
        #: Number of rows currently holding an event table.
        self.n_active = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def total(self) -> float:
        """Exact total rate over all rows (the root of the sum tree)."""
        return float(self.tree[1])

    def row_events(self, row: int) -> tuple[np.ndarray, np.ndarray]:
        """(targets, rates) currently stored for ``row`` (empty if none)."""
        t = self.targets[row]
        if t is None:
            return _EMPTY_I, _EMPTY_F
        return t, self.rates[row]

    def row_rate(self, row: int) -> float:
        """Total rate stored at ``row`` (0 when the row is out of the catalog)."""
        return float(self.tree[self.size + row])

    def prefix(self, row: int) -> float:
        """Sum of leaf rates over rows ``[0, row)``.

        Accumulated top-down in the same association order
        :meth:`sample` subtracts partial sums, so
        ``prefix(r) <= u * total < prefix(r) + row_rate(r)`` holds for
        the sampled row ``r`` (up to the final-ulp clamp).
        """
        if not 0 <= row <= self.nrows:
            raise IndexError(f"row {row} out of range")
        tree = self.tree
        i = 1
        lo, hi = 0, self.size
        acc = 0.0
        while i < self.size:
            mid = (lo + hi) // 2
            if row < mid:
                i = 2 * i
                hi = mid
            else:
                acc += float(tree[2 * i])
                i = 2 * i + 1
                lo = mid
        return acc

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def _set_leaf(self, row: int, value: float) -> None:
        tree = self.tree
        i = self.size + row
        tree[i] = value
        i >>= 1
        while i:
            tree[i] = tree[2 * i] + tree[2 * i + 1]
            i >>= 1

    def _rebuild_tree(self) -> None:
        """Recompute every internal node from the leaves, vectorized."""
        tree = self.tree
        half = self.size
        while half > 1:
            child = tree[half : 2 * half]
            half >>= 1
            tree[half : 2 * half] = child[0::2] + child[1::2]

    def set_row(self, row: int, targets: np.ndarray, rates: np.ndarray) -> None:
        """Install the event table of ``row`` (replacing any previous one)."""
        if self.targets[row] is None:
            self.n_active += 1
        self.targets[row] = targets
        self.rates[row] = rates
        self._cums[row] = None
        self._set_leaf(row, float(np.sum(rates)) if len(rates) else 0.0)

    def clear_row(self, row: int) -> None:
        """Remove ``row`` from the catalog (no-op if absent)."""
        if self.targets[row] is None:
            return
        self.targets[row] = None
        self.rates[row] = None
        self._cums[row] = None
        self.n_active -= 1
        if self.tree[self.size + row] != 0.0:  # repro: noqa(REP003) exact 0
            # A leaf is 0.0 only by assignment (cleared row), never by
            # rounding, so exact comparison is the correct idle check.
            self._set_leaf(row, 0.0)

    def set_rows(
        self,
        rows: np.ndarray,
        counts: np.ndarray,
        targets_flat: np.ndarray,
        rates_flat: np.ndarray,
    ) -> None:
        """Bulk :meth:`set_row` from a batched rate-kernel result.

        ``counts[k]`` events of ``rows[k]`` sit consecutively in
        ``targets_flat`` / ``rates_flat``.  Large batches rebuild the
        whole tree vectorized; the result is bit-identical to per-row
        updates either way.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if len(rows) == 0:
            return
        splits = np.cumsum(counts)[:-1]
        per_t = np.split(np.asarray(targets_flat, dtype=np.int64), splits)
        per_r = np.split(np.asarray(rates_flat), splits)
        if len(rows) < _BULK_THRESHOLD:
            for row, t, r in zip(rows, per_t, per_r, strict=True):
                self.set_row(int(row), t, r)
            return
        leaves = np.fromiter(
            (float(np.sum(r)) if len(r) else 0.0 for r in per_r),
            dtype=float,
            count=len(rows),
        )
        for row, t, r in zip(rows, per_t, per_r, strict=True):
            row = int(row)
            if self.targets[row] is None:
                self.n_active += 1
            self.targets[row] = t
            self.rates[row] = r
            self._cums[row] = None
        self.tree[self.size + rows] = leaves
        self._rebuild_tree()

    def refresh(self, model, occ: np.ndarray, rows, vacancy_code: int = 0):
        """Re-derive the event tables of ``rows`` from current occupancy.

        Rows holding a vacancy re-enter the catalog with freshly
        evaluated rates (batched through ``model.vacancy_events_batch``
        when the model provides it); all other rows leave it.  This is
        the invalidation entry point: drivers pass exactly the rows
        inside the influence radius of an occupancy change.

        Returns ``(n_refreshed, n_cleared)``.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if len(rows) == 0:
            return 0, 0
        is_vac = occ[rows] == vacancy_code
        vac = rows[is_vac]
        cleared = 0
        for row in rows[~is_vac]:
            row = int(row)
            if self.targets[row] is not None:
                self.clear_row(row)
                cleared += 1
        if len(vac) == 0:
            return 0, cleared
        batch = getattr(model, "vacancy_events_batch", None)
        if batch is not None:
            counts, targets_flat, rates_flat = batch(vac, occ)
            self.set_rows(vac, counts, targets_flat, rates_flat)
        else:
            for row in vac:
                t, r = model.vacancy_events(int(row), occ)
                self.set_row(int(row), t, r)
        return len(vac), cleared

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(self, u: float) -> tuple[int, int]:
        """Select the event at cumulative mass ``u * total``.

        Returns ``(row, index)`` into :meth:`row_events`.  Requires a
        positive total.  Selection is exact against the tree's own
        partial sums; rounding at the far edge falls back to the
        rightmost positive-rate row instead of clamping blindly.
        """
        tree = self.tree
        total = float(tree[1])
        if not total > 0.0:
            raise ValueError("cannot sample from an empty catalog")
        target = u * total
        size = self.size
        i = 1
        while i < size:
            left = float(tree[2 * i])
            if target < left:
                i = 2 * i
            else:
                target -= left
                i = 2 * i + 1
        row = i - size
        if row >= self.nrows or not tree[size + row] > 0.0:
            # u*total landed at/past the total (last-ulp drift): take the
            # rightmost row holding rate mass.
            i = 1
            while i < size:
                i = 2 * i + 1 if tree[2 * i + 1] > 0.0 else 2 * i
            row = i - size
            target = float(tree[size + row])
        rates = self.rates[row]
        cums = self._cums[row]
        if cums is None:
            cums = self._cums[row] = np.cumsum(rates)
        idx = int(np.searchsorted(cums, target, side="right"))
        if idx >= len(rates):
            idx = len(rates) - 1
        while idx > 0 and not rates[idx] > 0.0:
            idx -= 1
        return row, idx

    def sample_event(self, u: float) -> tuple[int, int]:
        """Select an event and return it as ``(vacancy_row, target_row)``."""
        row, idx = self.sample(u)
        return row, int(self.targets[row][idx])
