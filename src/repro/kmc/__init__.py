"""Atomistic Kinetic Monte Carlo (paper §2.2).

AKMC "uses an on-lattice approximation method to map each atom or vacancy
to a lattice point"; events are vacancy/atom exchanges between first-shell
BCC neighbors, with transition rates from Equation (4):

    k_ij = nu * exp(-dE_ij / (kB * T))

where the migration energy ``dE_ij`` is computed from the EAM potential.

Parallelization follows the semirigorous synchronous sublattice method of
Shim & Amar [26]: each subdomain is split into 8 sectors processed
sequentially so concurrently active regions on different processes never
conflict (Figure 7).  After each sector, ghost sites are reconciled with
the neighbors through one of three interchangeable communication schemes:

* :class:`~repro.kmc.comm.TraditionalExchange` — the SPPARKS/KMCLib
  two-phase full-strip exchange (Figures 8b, 8c).
* :class:`~repro.kmc.ondemand.OnDemandExchange` — the paper's §2.2.1
  contribution: only event-affected sites travel, via two-sided
  probe/recv (Figure 8d).
* :class:`~repro.kmc.onesided.OneSidedExchange` — the same on-demand
  strategy over one-sided put + fence, eliminating zero-size messages.

All three produce bitwise-identical trajectories (asserted by tests);
they differ only in measured communication volume and modeled time.
"""

from repro.kmc.rng import sector_rng, cycle_seed
from repro.kmc.catalog import EventCatalog
from repro.kmc.events import KMCModel, RateParameters
from repro.kmc.sublattice import SectorSchedule
from repro.kmc.comm import TraditionalExchange, ExchangeScheme
from repro.kmc.ondemand import OnDemandExchange
from repro.kmc.onesided import OneSidedExchange
from repro.kmc.akmc import SerialAKMC, ParallelAKMC, KMCResult
from repro.kmc.alloy import (
    AlloyKMCModel,
    AlloySerialAKMC,
    AlloyRateParameters,
    make_parallel_alloy_akmc,
    S_VACANCY,
    S_FE,
    S_CU,
)

__all__ = [
    "AlloyKMCModel",
    "AlloyRateParameters",
    "AlloySerialAKMC",
    "EventCatalog",
    "ExchangeScheme",
    "KMCModel",
    "KMCResult",
    "OnDemandExchange",
    "OneSidedExchange",
    "ParallelAKMC",
    "RateParameters",
    "S_CU",
    "S_FE",
    "S_VACANCY",
    "SectorSchedule",
    "SerialAKMC",
    "TraditionalExchange",
    "cycle_seed",
    "make_parallel_alloy_akmc",
    "sector_rng",
]
