"""On-demand exchange over one-sided windows (paper §2.2.1, final variant).

"Alternatively, we can use MPI one-sided communication interfaces, by
which only one side is involved in the communication, to eliminate these
zero-size messages. Firstly, each process opens a globally-shared window
on the subdomain. Secondly, each process puts the updates in the ghost
sites to its neighbor processes. Thirdly, a global synchronization is
carried out to guarantee the completion of the communications."

Puts happen only for neighbors with actual updates; the per-sector fence
replaces the per-pair zero-size messages with one global synchronization.
"""

from __future__ import annotations

import numpy as np

from repro import observe as obs
from repro.kmc.comm import ExchangeScheme
from repro.kmc.ondemand import apply_updates, pack_updates
from repro.kmc.sublattice import SectorSchedule


class OneSidedExchange(ExchangeScheme):
    """Dirty-site exchange over put + fence."""

    name = "onesided"

    def __init__(self, comm, schedule: SectorSchedule, occ: np.ndarray) -> None:
        super().__init__(comm, schedule, occ)
        # "each process opens a globally-shared window on the subdomain"
        self.window = comm.win_create()

    def before_sector(self, sector: int) -> None:
        """No get phase; the epoch fence after each sector keeps ghosts current."""

    def after_sector(self, sector: int, dirty_rows: np.ndarray) -> None:
        with obs.phase("kmc.ghost_sync"):
            sched = self.schedule
            dirty_rows = np.asarray(dirty_rows, dtype=np.int64)
            for n in sched.neighbors:
                rows = sched.interest_rows(n, dirty_rows)
                if len(rows) == 0:
                    # The one-sided advantage: a clean neighbor costs nothing.
                    continue
                self.window.put(n, pack_updates(sched.sites, self.occ, rows))
            for _origin, payload in self.window.fence():
                ranks, values = payload
                apply_updates(sched.sites, self.occ, ranks, values)
