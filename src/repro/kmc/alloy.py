"""Multi-species (alloy) AKMC: Cu precipitation in alpha-iron.

The paper's application "also supports the simulation of different atoms,
e.g., the alloy materials. To achieve this, more interpolation tables
should be used" (§1, §2.1.2) — and its temporal-scale formula comes from
Castin et al. [2], a study of "the first stages of Cu precipitation in
alpha-Fe using a hybrid atomistic kinetic Monte Carlo approach".  This
module closes that loop: an AKMC model over Fe/Cu/vacancy site states
whose energetics read the per-pair alloy tables, with vacancy-mediated
diffusion driving Cu atoms to precipitate.

Physics: a vacancy exchanging with Cu atoms lets them random-walk; the
mixing penalty of the Fe-Cu cross interaction (see
:func:`repro.potential.alloy.make_fe_cu_alloy`) makes Cu-Cu contacts
energetically favorable, so Cu clusters nucleate and grow — the classic
early-stage precipitation sequence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro import observe as obs
from repro.constants import KB_EV
from repro.kmc.events import build_static_matrix
from repro.kmc.selection import select_event
from repro.lattice.bcc import BCCLattice
from repro.potential.alloy import AlloyTables, make_fe_cu_alloy

#: Site-state codes of the alloy occupancy array.
S_VACANCY: int = 0
S_FE: int = 1
S_CU: int = 2

#: Species symbols by state code (index 0 unused).
SPECIES_SYMBOLS: tuple[str, ...] = ("", "Fe", "Cu")


@dataclass(frozen=True)
class AlloyRateParameters:
    """Rate parameters of the alloy hop model.

    Per-species reference barriers: a vacancy-Cu exchange in Fe has a
    lower barrier than vacancy-Fe (literature: ~0.55 vs ~0.65 eV), which
    is what makes the vacancy an efficient Cu transporter.
    """

    nu: float = 10.0
    e_m0_fe: float = 0.65
    e_m0_cu: float = 0.55
    temperature: float = 600.0
    energy_cutoff: float = 2.9
    de_min: float = 0.02

    def __post_init__(self) -> None:
        if self.nu <= 0 or self.temperature <= 0:
            raise ValueError("nu and temperature must be positive")
        if self.energy_cutoff <= 0:
            raise ValueError("energy_cutoff must be positive")

    @property
    def kt(self) -> float:
        return KB_EV * self.temperature

    def e_m0(self, species: int) -> float:
        """Reference barrier of the hopping atom's species."""
        if species == S_FE:
            return self.e_m0_fe
        if species == S_CU:
            return self.e_m0_cu
        raise ValueError(f"no barrier for species code {species}")


class AlloyKMCModel:
    """On-lattice alloy energetics over the per-pair interpolation tables.

    Parameters
    ----------
    lattice:
        The BCC lattice.
    alloy:
        The Fe-Cu table system (defaults to
        :func:`~repro.potential.alloy.make_fe_cu_alloy`).
    params:
        Rate parameters.
    rate_cap:
        Optional per-event rate ceiling (see
        :class:`~repro.kmc.events.KMCModel`): the EAM correction can
        push a barrier below the species reference, so the parallel
        engine passes its dt bound's per-event share here; clamped
        events are counted on ``kmc.rate_bound.clamped``.
    """

    def __init__(
        self,
        lattice: BCCLattice,
        alloy: AlloyTables | None = None,
        params: AlloyRateParameters | None = None,
        table_points: int = 1000,
        sites: np.ndarray | None = None,
        rate_cap: float | None = None,
    ) -> None:
        if rate_cap is not None and rate_cap <= 0:
            raise ValueError(f"rate_cap must be positive, got {rate_cap}")
        self.lattice = lattice
        self.rate_cap = rate_cap
        self.params = params or AlloyRateParameters()
        self.alloy = alloy or make_fe_cu_alloy(n=table_points)
        if sites is None:
            self.sites = np.arange(lattice.nsites, dtype=np.int64)
        else:
            self.sites = np.asarray(sites, dtype=np.int64)
        # Non-strict: outer-ghost rows see truncated stencils, but rates
        # are only ever evaluated where the ghost width guarantees
        # completeness (same contract as the single-species model).
        self.e_matrix, self.e_valid, dist = build_static_matrix(
            lattice, self.params.energy_cutoff, self.sites, strict=False
        )
        # First shell (exchange partners), mapped into the local rows.
        first = lattice.first_shell_ranks(self.sites)
        local = np.searchsorted(self.sites, first)
        local = np.clip(local, 0, len(self.sites) - 1)
        self.first_valid = self.sites[local] == first
        local[~self.first_valid] = 0
        self.first_matrix = local.astype(np.int64)
        # Per-slot pair/density values for every ordered species pair;
        # species 0 (vacancy) rows/columns are zero so masked gathers are
        # free of branches.
        m = self.e_matrix.shape[1]
        self.phi_slots = np.zeros((3, 3, len(self.sites), m))
        self.f_slots = np.zeros((3, 3, len(self.sites), m))
        safe = np.where(self.e_valid, dist, 1.0)
        for a in (S_FE, S_CU):
            for b in (S_FE, S_CU):
                tables = self.alloy.tables_for(
                    SPECIES_SYMBOLS[a], SPECIES_SYMBOLS[b]
                )
                self.phi_slots[a, b] = np.where(
                    self.e_valid, tables.pair(safe), 0.0
                )
                self.f_slots[a, b] = np.where(
                    self.e_valid, tables.density(safe), 0.0
                )
        self._embedding = {
            S_FE: self.alloy.embedding_tables["Fe"],
            S_CU: self.alloy.embedding_tables["Cu"],
        }
        self._influence: tuple[np.ndarray, np.ndarray] | None = None

    @property
    def nrows(self) -> int:
        return len(self.sites)

    # ------------------------------------------------------------------
    # Occupancy construction
    # ------------------------------------------------------------------
    def random_solution(
        self,
        cu_count: int,
        vacancy_count: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """A random dilute solid solution: Fe matrix + Cu solutes + vacancies."""
        if cu_count + vacancy_count > self.nrows:
            raise ValueError("more solutes+vacancies than sites")
        occ = np.full(self.nrows, S_FE, dtype=np.int8)
        rows = rng.choice(self.nrows, size=cu_count + vacancy_count, replace=False)
        occ[rows[:cu_count]] = S_CU
        occ[rows[cu_count:]] = S_VACANCY
        return occ

    # ------------------------------------------------------------------
    # Energetics
    # ------------------------------------------------------------------
    def site_energy(self, row: int, occ: np.ndarray, species: int | None = None) -> float:
        """EAM energy of the atom at ``row`` (or a hypothetical ``species``)."""
        s = int(occ[row]) if species is None else int(species)
        if s == S_VACANCY:
            raise ValueError(f"row {row} holds a vacancy")
        nbrs = self.e_matrix[row]
        sn = occ[nbrs]
        # Gather phi/f by the neighbor's species (vacancy rows give 0).
        phi = self.phi_slots[s, sn, row, np.arange(len(nbrs))]
        f = self.f_slots[s, sn, row, np.arange(len(nbrs))]
        rho = float(np.sum(f))
        return 0.5 * float(np.sum(phi)) + float(self._embedding[s](rho))

    def configuration_energy(self, occ: np.ndarray) -> float:
        """Total energy of a configuration (sum of site energies)."""
        return sum(
            self.site_energy(int(r), occ)
            for r in np.flatnonzero(occ != S_VACANCY)
        )

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def vacancy_events(
        self, vrow: int, occ: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """(target rows, rates) for the vacancy at ``vrow``.

        Targets of either species; barriers are species-referenced and
        EAM-corrected exactly as in the single-species model.
        """
        if occ[vrow] != S_VACANCY:
            raise ValueError(f"row {vrow} does not hold a vacancy")
        cand = self.first_matrix[vrow][self.first_valid[vrow]]
        targets = cand[occ[cand] != S_VACANCY]
        if len(targets) == 0:
            return targets, np.empty(0)
        rates = np.empty(len(targets))
        occ2 = occ.copy()
        for idx, t in enumerate(targets):
            t = int(t)
            species = int(occ[t])
            e_before = self.site_energy(t, occ)
            occ2[t] = S_VACANCY
            e_after = self.site_energy(vrow, occ2, species=species)
            occ2[t] = species
            de = max(
                self.params.e_m0(species) + 0.5 * (e_after - e_before),
                self.params.de_min,
            )
            rates[idx] = self.params.nu * math.exp(-de / self.params.kt)
        cap = self.rate_cap
        if cap is not None:
            over = int(np.count_nonzero(rates > cap))
            if over:
                obs.add("kmc.rate_bound.clamped", over)
                rates = np.minimum(rates, cap)
        return targets, rates

    def execute_swap(self, occ: np.ndarray, vrow: int, trow: int) -> None:
        """Move the atom at ``trow`` into the vacancy at ``vrow``."""
        if occ[vrow] != S_VACANCY or occ[trow] == S_VACANCY:
            raise ValueError(
                f"invalid swap: occ[{vrow}]={occ[vrow]}, occ[{trow}]={occ[trow]}"
            )
        occ[vrow] = occ[trow]
        occ[trow] = S_VACANCY

    def influence_rows(self, rows) -> np.ndarray:
        """Rows whose rates may depend on occupancy at ``rows`` (for caches)."""
        if self._influence is None:
            reach = (
                math.sqrt(3.0) / 2.0 * self.lattice.a
                + self.params.energy_cutoff
                + 1e-9
            )
            self._influence = build_static_matrix(
                self.lattice, reach, self.sites, strict=False
            )[:2]
        matrix, valid = self._influence
        rows = np.atleast_1d(np.asarray(rows, dtype=np.int64))
        out = matrix[rows][valid[rows]]
        return np.unique(np.concatenate([out, rows]))


def make_parallel_alloy_akmc(
    lattice: BCCLattice,
    alloy: AlloyTables | None = None,
    params: AlloyRateParameters | None = None,
    table_points: int = 500,
    **kwargs,
):
    """Sector-synchronous parallel AKMC engine over the alloy model.

    A thin specialization of :class:`~repro.kmc.akmc.ParallelAKMC`: the
    occupancy array carries species codes (0 = vacancy, 1 = Fe, 2 = Cu),
    the rank-local model is an :class:`AlloyKMCModel`, and the cycle time
    step derives from the fastest species' reference rate.  All three
    communication schemes work unchanged — the on-demand payload already
    ships full site values, species included.  ``kwargs`` are forwarded
    to :class:`~repro.kmc.akmc.ParallelAKMC` (grid/nranks, scheme, seed,
    network).
    """
    from repro.kmc.akmc import ParallelAKMC

    params = params or AlloyRateParameters()
    tables = alloy or make_fe_cu_alloy(n=table_points)

    class _AlloyEngine(ParallelAKMC):
        def _make_model(self, sites):
            return AlloyKMCModel(
                self.lattice,
                alloy=tables,
                params=params,
                sites=sites,
                rate_cap=self._rate_cap(),
            )

        def _rate_bound_per_vacancy(self) -> float:
            # Strict mode: de_min is the only floor under the EAM
            # correction, so the true supremum is species-independent.
            if self.rate_bound == "strict":
                return 8.0 * params.nu * math.exp(-params.de_min / params.kt)
            fastest = min(params.e_m0_fe, params.e_m0_cu)
            return 8.0 * params.nu * math.exp(-fastest / params.kt)

    # ParallelAKMC only touches ``params.energy_cutoff`` (ghost width)
    # outside the hooks; the alloy parameter object provides it.
    return _AlloyEngine(lattice, potential=None, params=params, **kwargs)


@dataclass
class AlloyKMCResult:
    """Outcome of an alloy KMC run."""

    occupancy: np.ndarray
    time: float
    events: int
    cu_ranks: np.ndarray
    vacancy_ranks: np.ndarray


class AlloySerialAKMC:
    """Residence-time AKMC over the alloy model (BKL with rate caching)."""

    def __init__(
        self,
        model: AlloyKMCModel,
        occupancy: np.ndarray,
        seed: int = 2018,
    ) -> None:
        occupancy = np.asarray(occupancy, dtype=np.int8)
        if len(occupancy) != model.nrows:
            raise ValueError("occupancy length does not match the lattice")
        self.model = model
        self.occ = occupancy.copy()
        self.rng = np.random.default_rng(seed)
        self.time = 0.0
        self.events = 0
        self._cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    @property
    def vacancy_rows(self) -> np.ndarray:
        return np.flatnonzero(self.occ == S_VACANCY)

    @property
    def cu_rows(self) -> np.ndarray:
        return np.flatnonzero(self.occ == S_CU)

    def step(self) -> float | None:
        """One BKL event; returns the time increment (None if frozen)."""
        all_v: list[int] = []
        all_t: list[int] = []
        all_r: list[float] = []
        for v in self.vacancy_rows:
            iv = int(v)
            if iv not in self._cache:
                self._cache[iv] = self.model.vacancy_events(iv, self.occ)
            targets, rates = self._cache[iv]
            all_v.extend([iv] * len(targets))
            all_t.extend(int(t) for t in targets)
            all_r.extend(float(r) for r in rates)
        if not all_r:
            return None
        rates = np.asarray(all_r)
        total = float(rates.sum())
        dt = -math.log(self.rng.random()) / total
        pick = select_event(rates, self.rng.random())
        self.model.execute_swap(self.occ, all_v[pick], all_t[pick])
        for row in self.model.influence_rows([all_v[pick], all_t[pick]]):
            self._cache.pop(int(row), None)
        self.time += dt
        self.events += 1
        return dt

    def run(self, max_events: int) -> AlloyKMCResult:
        """Run to the event budget (or until frozen)."""
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        while self.events < max_events:
            if self.step() is None:
                break
        return AlloyKMCResult(
            occupancy=self.occ.copy(),
            time=self.time,
            events=self.events,
            cu_ranks=self.model.sites[self.cu_rows],
            vacancy_ranks=self.model.sites[self.vacancy_rows],
        )
