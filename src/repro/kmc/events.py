"""On-lattice EAM energetics and vacancy-hop event rates (Equation 4).

The AKMC model maps every atom/vacancy to a lattice point, so all
interaction distances are *static* shell distances and the EAM site energy
reduces to masked dot products over precomputed per-slot constants:

    E_site(s) = 1/2 * sum_m occ[nbr_m(s)] * phi(d_m)
              + F( sum_m occ[nbr_m(s)] * f(d_m) )

A vacancy at site v may exchange with any occupied first-shell neighbor t
("eight possible events for a vacancy"); the transition rate is

    k = nu * exp(-dE / (kB * T)),
    dE = max(e_m0 + (E_after - E_before) / 2, dE_min)

with ``E_before`` the EAM site energy of the hopping atom at t and
``E_after`` its energy once placed at v (with t vacated) — the standard
broken-bond AKMC form with the EAM supplying the bond energies, matching
"KMC uses the EAM potential to calculate the probability of the vacancy
transition".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro import kernels
from repro import observe as obs
from repro.constants import KB_EV
from repro.lattice.bcc import BCCLattice
from repro.potential.eam import EAMPotential

#: Occupancy codes of the site array.
ATOM: int = 1
VACANCY: int = 0


@dataclass(frozen=True)
class RateParameters:
    """Physical parameters of the vacancy-hop rate model.

    Attributes
    ----------
    nu:
        Attempt frequency (pre-exponential factor) in 1/ps; the canonical
        Debye-scale value is ~10/ps (1e13 Hz).
    e_m0:
        Reference migration barrier in eV (Fe vacancy ~0.65 eV).
    temperature:
        Temperature in K (the paper evaluates at 600 K).
    energy_cutoff:
        EAM shell radius (angstrom) used for on-lattice site energies.
        The default covers the first two BCC shells — the dominant bond
        contributions — keeping ghost shells thin.
    de_min:
        Floor on the migration energy (a hop is never barrier-free).
    """

    nu: float = 10.0
    e_m0: float = 0.65
    temperature: float = 600.0
    energy_cutoff: float = 2.9
    de_min: float = 0.02

    def __post_init__(self) -> None:
        if self.nu <= 0:
            raise ValueError(f"nu must be positive, got {self.nu}")
        if self.temperature <= 0:
            raise ValueError(f"temperature must be positive, got {self.temperature}")
        if self.energy_cutoff <= 0:
            raise ValueError("energy_cutoff must be positive")

    @property
    def kt(self) -> float:
        """kB*T in eV."""
        return KB_EV * self.temperature

    @property
    def reference_rate(self) -> float:
        """The hop rate at the reference barrier, ``nu * exp(-e_m0/kT)``.

        Occupancy-independent, so every rank (and every communication
        scheme) derives identical synchronous time steps from it.
        """
        return self.nu * math.exp(-self.e_m0 / self.kt)


def build_static_matrix(
    lattice: BCCLattice,
    cutoff: float,
    sites: np.ndarray,
    strict: bool = True,
):
    """Static neighbor matrix over a site subset, with per-slot distances.

    Returns ``(matrix, valid, dist)``: row indices into ``sites`` of each
    site's neighbors within ``cutoff``, the valid-slot mask, and the
    (static) lattice distances per slot.  With ``strict`` the function
    raises if a neighbor is missing from ``sites`` (too-thin ghost shell);
    otherwise such slots are marked invalid.
    """
    offsets = lattice.offsets_within(cutoff)
    b, i, j, k = lattice.coords_of(sites)
    m = offsets.max_count
    n = len(sites)
    matrix_global = np.zeros((n, m), dtype=np.int64)
    valid = np.zeros((n, m), dtype=bool)
    dist = np.zeros((n, m))
    for basis in (0, 1):
        rows = offsets.for_basis(basis)
        d_a = (
            offsets.corner_distances if basis == 0 else offsets.center_distances
        ) * lattice.a
        sel = np.flatnonzero(b == basis)
        if len(sel) == 0:
            continue
        nb = np.where(rows[:, 0] == 0, basis, 1 - basis)
        gi = i[sel, None] + rows[None, :, 1]
        gj = j[sel, None] + rows[None, :, 2]
        gk = k[sel, None] + rows[None, :, 3]
        ranks = lattice.rank_of(np.broadcast_to(nb, gi.shape), gi, gj, gk)
        matrix_global[sel[:, None], np.arange(len(rows))[None, :]] = ranks
        valid[sel, : len(rows)] = True
        dist[sel, : len(rows)] = d_a[None, :]
    local = np.searchsorted(sites, matrix_global)
    local = np.clip(local, 0, n - 1)
    found = sites[local] == matrix_global
    missing = valid & ~found
    if np.any(missing):
        if strict:
            raise ValueError(
                "neighbor outside the provided site set; widen the ghost shell"
            )
        valid = valid & found
    local[~valid] = 0
    return local, valid, dist


class KMCModel:
    """Static on-lattice energetics of one site set (rank-local or global).

    Parameters
    ----------
    lattice:
        Global BCC lattice.
    potential:
        EAM potential supplying phi / f / F.
    params:
        Rate parameters.
    sites:
        Sorted global site ranks covered (``None`` = full lattice).
    rate_cap:
        Optional per-event rate ceiling.  The EAM correction can push a
        barrier below the ``e_m0`` reference (only the ``de_min`` floor
        limits it), so event rates can exceed the nominal
        ``nu * exp(-e_m0/kT)`` reference rate.  Engines whose cycle dt
        is derived from that reference (the sector-synchronous parallel
        engines) pass a cap here so the dt invariant actually holds;
        every clamped event is counted on the
        ``kmc.rate_bound.clamped`` observe counter.  ``None`` (the
        default, used by the exact serial engines) leaves rates
        untouched.

    The model itself is stateless with respect to occupancy: engines own
    the occupancy array and pass it in.
    """

    def __init__(
        self,
        lattice: BCCLattice,
        potential: EAMPotential,
        params: RateParameters,
        sites: np.ndarray | None = None,
        rate_cap: float | None = None,
    ) -> None:
        if rate_cap is not None and rate_cap <= 0:
            raise ValueError(f"rate_cap must be positive, got {rate_cap}")
        self.lattice = lattice
        self.potential = potential
        self.params = params
        self.rate_cap = rate_cap
        if sites is None:
            sites = np.arange(lattice.nsites, dtype=np.int64)
        self.sites = np.asarray(sites, dtype=np.int64)
        n = len(self.sites)
        # Energy shell: per-slot static EAM constants.  Built non-strictly:
        # rows deep in the ghost shell miss some neighbors, but energies
        # are only ever evaluated within one hop of owned sites, where the
        # ghost width guarantees a complete stencil.
        self.e_matrix, self.e_valid, e_dist = build_static_matrix(
            lattice, params.energy_cutoff, self.sites, strict=False
        )
        safe = np.where(self.e_valid, e_dist, potential.cutoff)
        self.phi_slots = np.where(self.e_valid, potential.phi(safe), 0.0)
        self.f_slots = np.where(self.e_valid, potential.fdens(safe), 0.0)
        # First shell: the 8 exchange partners of every site.
        first = lattice.first_shell_ranks(self.sites)
        local = np.searchsorted(self.sites, first)
        local = np.clip(local, 0, n - 1)
        self.first_valid = self.sites[local] == first
        local[~self.first_valid] = 0
        self.first_matrix = local
        self._influence: tuple[np.ndarray, np.ndarray] | None = None

    def influence_rows(self, rows) -> np.ndarray:
        """Rows whose event rates can depend on occupancy at ``rows``.

        A vacancy's rates read occupancy within (first shell + energy
        cutoff) of it; inverting, a change at site s can affect vacancies
        within that radius.  Used to invalidate cached rates after a swap.
        Built lazily (non-strict: edge-of-ghost rows simply see fewer
        influencers, which is safe because no rates are evaluated there).
        """
        if self._influence is None:
            reach = (
                math.sqrt(3.0) / 2.0 * self.lattice.a
                + self.params.energy_cutoff
                + 1e-9
            )
            self._influence = build_static_matrix(
                self.lattice, reach, self.sites, strict=False
            )[:2]
        matrix, valid = self._influence
        rows = np.atleast_1d(np.asarray(rows, dtype=np.int64))
        out = matrix[rows][valid[rows]]
        return np.unique(np.concatenate([out, rows]))

    @property
    def nrows(self) -> int:
        return len(self.sites)

    def perfect_occupancy(self) -> np.ndarray:
        """All-atom occupancy array."""
        return np.full(self.nrows, ATOM, dtype=np.int8)

    # ------------------------------------------------------------------
    # Energetics
    # ------------------------------------------------------------------
    def site_energy(self, rows, occ: np.ndarray) -> np.ndarray:
        """EAM site energy of an atom at each of ``rows`` under ``occ``."""
        rows = np.atleast_1d(np.asarray(rows, dtype=np.int64))
        occ_n = occ[self.e_matrix[rows]] * self.e_valid[rows]
        pair = 0.5 * np.sum(occ_n * self.phi_slots[rows], axis=1)
        rho = np.sum(occ_n * self.f_slots[rows], axis=1)
        return pair + self.potential.embed(rho)

    def _energy_sums(self, row: int, occ: np.ndarray) -> tuple[float, float]:
        """(sum phi, sum f) over occupied neighbors of ``row``."""
        occ_n = occ[self.e_matrix[row]] * self.e_valid[row]
        return (
            float(np.sum(occ_n * self.phi_slots[row])),
            float(np.sum(occ_n * self.f_slots[row])),
        )

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def vacancy_events(
        self, vrow: int, occ: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """(target rows, rates) of all possible hops of the vacancy at ``vrow``.

        Requires ``occ[vrow] == VACANCY``.  Targets are the occupied
        first-shell neighbors; rates follow Equation (4).
        """
        if occ[vrow] != VACANCY:
            raise ValueError(f"row {vrow} does not hold a vacancy")
        cand = self.first_matrix[vrow][self.first_valid[vrow]]
        targets = cand[occ[cand] == ATOM]
        if len(targets) == 0:
            return targets, np.empty(0)
        e_before = self.site_energy(targets, occ)
        # E_after: the atom sits at vrow with its origin t vacated.  Start
        # from the sums at vrow under current occupancy and subtract each
        # target's own contribution (vectorized over the targets).
        s_phi, s_f = self._energy_sums(vrow, occ)
        slots = self.e_matrix[vrow]
        vvalid = self.e_valid[vrow]
        match = vvalid[None, :] & (slots[None, :] == targets[:, None])
        dphi = np.sum(self.phi_slots[vrow][None, :] * match, axis=1)
        df = np.sum(self.f_slots[vrow][None, :] * match, axis=1)
        e_after = 0.5 * (s_phi - dphi) + self.potential.embed(s_f - df)
        de = np.maximum(
            self.params.e_m0 + 0.5 * (e_after - e_before), self.params.de_min
        )
        rates = self.params.nu * np.exp(-de / self.params.kt)
        return targets, self._apply_rate_cap(rates)

    def _apply_rate_cap(self, rates: np.ndarray) -> np.ndarray:
        """Clamp rates to ``rate_cap`` and count every clamped event.

        Applied after the exp, outside the kernels, so the numba and
        NumPy rate paths stay bit-identical under the cap.
        """
        cap = self.rate_cap
        if cap is None or len(rates) == 0:
            return rates
        over = int(np.count_nonzero(rates > cap))
        if over:
            obs.add("kmc.rate_bound.clamped", over)
            rates = np.minimum(rates, cap)
        return rates

    def vacancy_events_batch(
        self, vrows, occ: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized :meth:`vacancy_events` over many vacancy rows at once.

        Returns ``(counts, targets, rates)``: ``counts[k]`` events of
        ``vrows[k]`` stored consecutively in the flat ``targets`` /
        ``rates`` arrays, in the same per-vacancy order the scalar method
        produces.  One batched evaluation replaces ``len(vrows)`` Python
        calls on the catalog-refresh hot path; every array reduction runs
        row-wise exactly as in the scalar method, so the rates are
        bit-identical to one-row-at-a-time evaluation.
        """
        vrows = np.atleast_1d(np.asarray(vrows, dtype=np.int64))
        nv = len(vrows)
        if nv == 0:
            return (
                np.zeros(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0),
            )
        if np.any(occ[vrows] != VACANCY):
            bad = vrows[occ[vrows] != VACANCY][0]
            raise ValueError(f"row {int(bad)} does not hold a vacancy")
        if (
            kernels.selected() == "numba"
            and self.e_matrix.shape[1] <= kernels.MAX_ROW_WIDTH
        ):
            emb_payload = kernels.table_payload(self.potential.tables.embedding)
            if emb_payload is not None:
                counts, targets, de = kernels.rate_batch(
                    emb_payload,
                    self.e_matrix,
                    self.e_valid,
                    self.phi_slots,
                    self.f_slots,
                    self.first_matrix,
                    self.first_valid,
                    occ,
                    vrows,
                    self.params.e_m0,
                    self.params.de_min,
                )
                if len(targets) == 0:
                    return counts, targets, np.empty(0)
                # exp stays NumPy-side in both kernel backends: libm and
                # NumPy's SIMD exp differ in the last ulp.
                rates = self.params.nu * np.exp(-de / self.params.kt)
                return counts, targets, self._apply_rate_cap(rates)
        cand = self.first_matrix[vrows]
        ev_mask = self.first_valid[vrows] & (occ[cand] == ATOM)
        counts = ev_mask.sum(axis=1).astype(np.int64)
        vidx, slot = np.nonzero(ev_mask)  # row-major: per-vacancy order kept
        targets = cand[vidx, slot]
        if len(targets) == 0:
            return counts, targets, np.empty(0)
        e_before = self.site_energy(targets, occ)
        # Per-vacancy (sum phi, sum f), then per-event removal of the
        # hopping atom's own contribution — the vectorized twin of the
        # scalar _energy_sums + match-subtraction path.
        occ_n = occ[self.e_matrix[vrows]] * self.e_valid[vrows]
        s_phi = np.sum(occ_n * self.phi_slots[vrows], axis=1)
        s_f = np.sum(occ_n * self.f_slots[vrows], axis=1)
        slots_e = self.e_matrix[vrows][vidx]
        match = self.e_valid[vrows][vidx] & (slots_e == targets[:, None])
        dphi = np.sum(self.phi_slots[vrows][vidx] * match, axis=1)
        df = np.sum(self.f_slots[vrows][vidx] * match, axis=1)
        e_after = 0.5 * (s_phi[vidx] - dphi) + self.potential.embed(s_f[vidx] - df)
        de = np.maximum(
            self.params.e_m0 + 0.5 * (e_after - e_before), self.params.de_min
        )
        rates = self.params.nu * np.exp(-de / self.params.kt)
        return counts, targets, self._apply_rate_cap(rates)

    def total_rate(self, vacancy_rows, occ: np.ndarray) -> float:
        """Sum of all event rates of the given vacancies."""
        total = 0.0
        for v in vacancy_rows:
            _t, rates = self.vacancy_events(int(v), occ)
            total += float(np.sum(rates))
        return total

    def execute_swap(self, occ: np.ndarray, vrow: int, trow: int) -> None:
        """Apply a vacancy(v) <-> atom(t) exchange in place."""
        if occ[vrow] != VACANCY or occ[trow] != ATOM:
            raise ValueError(
                f"invalid swap: occ[{vrow}]={occ[vrow]}, occ[{trow}]={occ[trow]}"
            )
        occ[vrow] = ATOM
        occ[trow] = VACANCY
