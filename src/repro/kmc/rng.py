"""Deterministic RNG streams for KMC.

Correctness of the communication-scheme equivalence tests (traditional vs
on-demand vs one-sided must produce *identical* trajectories) requires
that randomness be a pure function of (seed, rank, cycle, sector) — never
of message arrival order.  ``numpy``'s ``SeedSequence`` spawn keys give
exactly that: independent, reproducible streams per logical position in
the simulation schedule.
"""

from __future__ import annotations

import numpy as np


def cycle_seed(seed: int, rank: int, cycle: int, sector: int) -> np.random.SeedSequence:
    """The seed sequence of one (rank, cycle, sector) work unit."""
    if rank < 0 or cycle < 0 or sector < 0:
        raise ValueError("rank, cycle and sector must be non-negative")
    return np.random.SeedSequence(entropy=seed, spawn_key=(rank, cycle, sector))


def sector_rng(seed: int, rank: int, cycle: int, sector: int) -> np.random.Generator:
    """Generator for one sector's event selection."""
    return np.random.default_rng(cycle_seed(seed, rank, cycle, sector))


def global_rng(seed: int, cycle: int) -> np.random.Generator:
    """Generator shared by all ranks within a cycle (time-step draws)."""
    return np.random.default_rng(np.random.SeedSequence(entropy=seed, spawn_key=(cycle,)))
