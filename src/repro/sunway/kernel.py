"""Block-wise EAM force kernel under the paper's four optimization variants.

"Since our simulation has large spatial scale, the atoms information of
one slab cannot be loaded into the local store at one time either. Thus,
each slab is further partitioned into blocks, and each slave core
processes the blocks one by one." (§2.1.2)

The kernel executes the real EAM computation (NumPy over block slices;
verified force-identical to the MD engine) while a :class:`DMAEngine`
and cycle counters price every variant:

========================  ====================================================
variant                   cost structure
========================  ====================================================
traditional table         tables stay in main memory; each neighbor
                          evaluation performs a *blocking* DMA get of one
                          7-double coefficient row — "3 times for each
                          neighbor atom at each time step" across the
                          density pass (1) and the two force sub-passes (2)
compacted table           39 KB sample tables loaded into the local store
                          once per pass; segment coefficients reconstructed
                          on the fly (extra cycles per evaluation)
+ data reuse              the ghost ring shared by consecutive blocks of a
                          slab is kept in the local store, shrinking the
                          per-block gather
+ double buffer           block transfers stream through two buffers and
                          overlap with compute: a pass costs
                          sum(max(compute_b, transfer_b)) instead of
                          sum(compute_b + transfer_b)
========================  ====================================================

The EAM step is organized in four table-passes (density, embedding,
pair-force, density-force) so that each pass needs at most ONE resident
compacted table — that is how three 39 KB tables coexist with a 64 KB
local store.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import observe as obs
from repro.md.forces import star_density, star_forces
from repro.md.neighbors.lattice_list import LatticeNeighborList
from repro.md.state import AtomState
from repro.potential.eam import EAMPotential
from repro.sunway.arch import SunwayArch
from repro.sunway.athread import AthreadPool
from repro.sunway.dma import DMAEngine, DMAStats
from repro.sunway.localstore import LocalStore, LocalStoreOverflow

#: Bytes of one traditional-table coefficient row (7 doubles).
TABLE_ROW_BYTES = 7 * 8
#: Bytes of a position record / force record / scalar record.
POS_BYTES = 24
FORCE_BYTES = 24
SCALAR_BYTES = 8


@dataclass(frozen=True)
class KernelStrategy:
    """One rung of the paper's optimization ladder."""

    name: str
    table_layout: str = "compacted"
    data_reuse: bool = False
    double_buffer: bool = False

    def __post_init__(self) -> None:
        if self.table_layout not in ("traditional", "compacted"):
            raise ValueError(f"unknown table layout {self.table_layout!r}")


#: The four variants of Figure 9, in the paper's order.
STRATEGY_LADDER: tuple[KernelStrategy, ...] = (
    KernelStrategy("TraditionalTable", table_layout="traditional"),
    KernelStrategy("CompactedTable", table_layout="compacted"),
    KernelStrategy("CompactedTable+DataReuse", table_layout="compacted", data_reuse=True),
    KernelStrategy(
        "CompactedTable+DataReuse+DoubleBuffer",
        table_layout="compacted",
        data_reuse=True,
        double_buffer=True,
    ),
)


@dataclass
class PassCost:
    """Accounting of one table-pass on one thread."""

    compute: float = 0.0
    transfer: float = 0.0
    blocks: list = field(default_factory=list)  # (compute_b, transfer_b)

    def wall_time(self, double_buffer: bool) -> float:
        """Thread wall time of the pass under the chosen buffering."""
        if not self.blocks:
            return 0.0
        if not double_buffer:
            return sum(c + x for c, x in self.blocks)
        # Prefetch pipeline: transfer of block b+1 overlaps compute of b.
        t = self.blocks[0][1]
        for b, (c, _x) in enumerate(self.blocks):
            nxt = self.blocks[b + 1][1] if b + 1 < len(self.blocks) else 0.0
            t += max(c, nxt)
        return t


@dataclass
class KernelReport:
    """Outcome of one blocked EAM step."""

    strategy: KernelStrategy
    forces: np.ndarray
    energy: float
    total_time: float
    compute_time: float
    dma_time: float
    dma: DMAStats
    interactions: int
    natoms: int
    nblocks: int
    block_sites: int


class BlockedEAMKernel:
    """Executes one EAM step block-by-block under a strategy.

    Parameters
    ----------
    arch, potential, strategy:
        Machine model, potential (any layout; the strategy decides the
        layout actually priced), and the optimization variant.
    nthreads:
        Slave cores per core group (64 on the SW26010).
    table_points:
        Knots of the tables being priced (5000 in the paper).
    """

    def __init__(
        self,
        arch: SunwayArch,
        potential: EAMPotential,
        strategy: KernelStrategy,
        nthreads: int = 64,
        table_points: int = 5000,
    ) -> None:
        self.arch = arch
        self.potential = potential
        self.strategy = strategy
        self.pool = AthreadPool(nthreads)
        self.table_points = table_points
        self.block_sites = self._plan_block_size()

    # ------------------------------------------------------------------
    # Local-store planning
    # ------------------------------------------------------------------
    @property
    def compacted_table_bytes(self) -> int:
        """Payload of one compacted table (39 KB at 5000 knots)."""
        return (self.table_points + 1) * 8

    @property
    def traditional_table_bytes(self) -> int:
        """Payload of one traditional table (273 KB at 5000 knots)."""
        return (self.table_points + 1) * 7 * 8

    def _per_site_buffer_bytes(self, ghost_factor: float = 3.0) -> float:
        """Local-store bytes per block site across the widest pass.

        Input positions for the block and its ghost ring (``ghost_factor``
        approximates ring/block at the planned sizes), per-neighbor demb
        gather, and the force output.
        """
        return (1 + ghost_factor) * (POS_BYTES + SCALAR_BYTES) + FORCE_BYTES

    def _plan_block_size(self) -> int:
        """Largest block size whose buffers fit the local store.

        The plan must leave room for the resident compacted table (one per
        pass) and, with double buffering, a second set of streaming
        buffers.  A traditional-table plan reserves no table space — the
        whole 273 KB table *cannot* fit, which is the premise of the
        optimization (asserted in tests via :class:`LocalStoreOverflow`).
        """
        store = LocalStore(self.arch.local_store_bytes)
        if self.strategy.table_layout == "compacted":
            store.alloc("table", self.compacted_table_bytes)
        buffers = 2 if self.strategy.double_buffer else 1
        per_site = self._per_site_buffer_bytes() * buffers
        block = int(store.free // per_site)
        if block < 8:
            raise LocalStoreOverflow(
                f"cannot fit even an 8-site block: {store.free} B free, "
                f"{per_site:.0f} B/site"
            )
        return block

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_step(
        self,
        state: AtomState,
        nblist: LatticeNeighborList,
        central_range: tuple[int, int] | None = None,
    ) -> KernelReport:
        """One full EAM force step over the given central-row range.

        Executes the real computation and prices it.  ``central_range``
        restricts the step to a row slice (one core group's share when an
        experiment models several CGs).
        """
        with obs.phase("sunway.kernel"):
            report = self._run_step(state, nblist, central_range)
        if obs.enabled():
            obs.add("sunway.kernel.steps")
            obs.add("sunway.kernel.interactions", report.interactions)
            obs.add("sunway.kernel.time_modeled_s", report.total_time)
        return report

    def _run_step(
        self,
        state: AtomState,
        nblist: LatticeNeighborList,
        central_range: tuple[int, int] | None = None,
    ) -> KernelReport:
        arch = self.arch
        strat = self.strategy
        pot = (
            self.potential
            if self.potential.tables.layout == strat.table_layout
            else self.potential.with_layout(strat.table_layout)
        )
        occ = state.occupied
        lo, hi = central_range if central_range is not None else (0, state.n)
        if not 0 <= lo <= hi <= state.n:
            raise ValueError(f"invalid central range ({lo}, {hi})")
        dma = DMAEngine(arch)
        forces = np.zeros((state.n, 3))
        rho = np.zeros(state.n)
        total_interactions = 0
        nblocks_total = 0

        matrix, valid, box = nblist.matrix, nblist.valid, nblist.box
        slabs = self.pool.partition(hi - lo)
        # Per-pass per-thread accounting.
        pass_names = ("density", "embedding", "force_pair", "force_density")
        pass_costs = {p: [PassCost() for _ in slabs] for p in pass_names}

        per_eval_cycles = (
            arch.eval_cycles
            + (arch.reconstruct_cycles if strat.table_layout == "compacted" else 0.0)
        ) / arch.simd_factor

        def account_block(
            pass_name: str,
            tidx: int,
            n_atoms: int,
            n_inter: int,
            gather_bytes: int,
            put_bytes: int,
            per_neighbor_gets: int,
        ) -> None:
            cost = pass_costs[pass_name][tidx]
            compute = arch.compute_time(
                n_inter * per_eval_cycles + n_atoms * arch.atom_cycles
            )
            if per_neighbor_gets:
                # Blocking gets of individual coefficient rows; they
                # serialize with compute and cannot be double-buffered.
                compute += dma.get(TABLE_ROW_BYTES, count=per_neighbor_gets)
            transfer = dma.get(gather_bytes) + dma.put(put_bytes)
            cost.compute += compute
            cost.transfer += transfer
            cost.blocks.append((compute, transfer))

        for tidx, slab in enumerate(slabs):
            rows_all = np.arange(lo + slab.start, lo + slab.stop)
            blocks = [
                rows_all[i : i + self.block_sites]
                for i in range(0, len(rows_all), self.block_sites)
            ]
            nblocks_total += len(blocks)
            # Reuse window: the loads of the two most recent blocks (the
            # halo stencil spans two cells, so a block's ghost overlaps
            # both predecessors; keeping them matches what the streaming
            # buffers hold anyway).
            recent_loads: list[set[int]] = []
            for rows in blocks:
                nbrs = matrix[rows]
                vmask = valid[rows]
                ghost = np.setdiff1d(np.unique(nbrs[vmask]), rows)
                n_inter = int(
                    np.count_nonzero(vmask & occ[nbrs] & occ[rows][:, None])
                )
                total_interactions += n_inter
                n_atoms = int(np.count_nonzero(occ[rows]))
                # Gather footprint, possibly shrunk by ghost-ring reuse.
                # The measured set overlap is combined with the arch's
                # reuse-efficiency calibration (production blocks sweep
                # faces and overlap far more than toy rank-order pencils).
                loaded = set(rows.tolist()) | set(ghost.tolist())
                new_ghost = len(ghost)
                if strat.data_reuse and recent_loads:
                    window = set().union(*recent_loads)
                    measured = len(set(ghost.tolist()) - window)
                    modeled = int(len(ghost) * (1.0 - arch.reuse_efficiency))
                    new_ghost = min(measured, modeled)
                recent_loads = [*recent_loads, loaded][-2:]
                trad = strat.table_layout == "traditional"
                # --- pass 1: density (rho per central) -------------------
                rho[rows] = star_density(
                    pot, state.x, occ, rows, matrix[rows], valid[rows], box
                )[0]
                account_block(
                    "density",
                    tidx,
                    n_atoms,
                    n_inter,
                    gather_bytes=(len(rows) + new_ghost) * POS_BYTES,
                    put_bytes=len(rows) * SCALAR_BYTES,
                    per_neighbor_gets=n_inter if trad else 0,
                )
                # --- pass 2: embedding (demb per atom) --------------------
                account_block(
                    "embedding",
                    tidx,
                    n_atoms,
                    0,
                    gather_bytes=len(rows) * SCALAR_BYTES,
                    put_bytes=len(rows) * SCALAR_BYTES,
                    per_neighbor_gets=n_atoms if trad else 0,
                )
                # --- passes 3+4: the two force terms ----------------------
                for pass_name in ("force_pair", "force_density"):
                    account_block(
                        pass_name,
                        tidx,
                        n_atoms,
                        n_inter,
                        gather_bytes=(len(rows) + new_ghost)
                        * (POS_BYTES + SCALAR_BYTES),
                        put_bytes=len(rows) * FORCE_BYTES,
                        per_neighbor_gets=n_inter if trad else 0,
                    )

        # The force computation itself is correct per row partition; one
        # vectorized sweep per slab block set was executed for rho above,
        # and the force sweep needs converged rho for *all* rows first.
        centrals = np.arange(lo, hi)
        if central_range is not None:
            # Rho outside the range is needed for demb of ghost neighbors;
            # compute it directly (owned by other CGs in the modeled run).
            others = np.setdiff1d(np.arange(state.n), centrals)
            if len(others):
                rho[others] = star_density(
                    pot, state.x, occ, others, matrix[others], valid[others], box
                )[0]
        forces[centrals] = star_forces(
            pot, state.x, occ, rho, centrals, matrix[centrals], valid[centrals], box
        )
        _rho_c, pair_e = star_density(
            pot, state.x, occ, centrals, matrix[centrals], valid[centrals], box
        )
        energy = pair_e + float(np.sum(pot.embed(rho[centrals][occ[centrals]])))

        # Per-pass team times (synchronized threads: slowest slab wins),
        # plus the once-per-pass resident table load of the compacted path.
        compute_time = 0.0
        dma_time = dma.stats.time
        total_time = 0.0
        for p in pass_names:
            costs = pass_costs[p]
            table_load = (
                self.arch.dma_time(self.compacted_table_bytes)
                if strat.table_layout == "compacted"
                else 0.0
            )
            team = self.pool.team_time(
                [c.wall_time(strat.double_buffer) for c in costs]
            )
            total_time += team + table_load
            compute_time += self.pool.team_time([c.compute for c in costs])
        return KernelReport(
            strategy=strat,
            forces=forces,
            energy=energy,
            total_time=total_time,
            compute_time=compute_time,
            dma_time=dma_time,
            dma=dma.stats,
            interactions=total_interactions,
            natoms=int(np.count_nonzero(occ[lo:hi])),
            nblocks=nblocks_total,
            block_sites=self.block_sites,
        )
