"""DMA engine: operation accounting + cost model.

Every transfer between main memory and a CPE local store goes through
here.  The counters are the ground truth behind the Figure 9 comparison:
the traditional-table variant's "3 DMA gets per neighbor atom per time
step" show up as measured operation counts, and the compacted variant's
win is the measured disappearance of those operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import observe as obs
from repro.sunway.arch import SunwayArch


@dataclass
class DMAStats:
    """Accumulated DMA counters of one kernel execution."""

    gets: int = 0
    puts: int = 0
    get_bytes: int = 0
    put_bytes: int = 0
    time: float = 0.0

    @property
    def operations(self) -> int:
        return self.gets + self.puts

    @property
    def total_bytes(self) -> int:
        return self.get_bytes + self.put_bytes

    def merge(self, other: "DMAStats") -> None:
        self.gets += other.gets
        self.puts += other.puts
        self.get_bytes += other.get_bytes
        self.put_bytes += other.put_bytes
        self.time += other.time


@dataclass
class DMAEngine:
    """Prices and records get/put operations for one CPE."""

    arch: SunwayArch = field(default_factory=SunwayArch)

    def __post_init__(self) -> None:
        self.stats = DMAStats()

    def get(self, nbytes: int, count: int = 1) -> float:
        """Record ``count`` DMA gets of ``nbytes`` each; returns the cost."""
        if count < 0 or nbytes < 0:
            raise ValueError("count and nbytes must be non-negative")
        t = count * self.arch.dma_time(nbytes)
        self.stats.gets += count
        self.stats.get_bytes += count * nbytes
        self.stats.time += t
        if obs.enabled():
            obs.add("sunway.dma.gets", count)
            obs.add("sunway.dma.get_bytes", count * nbytes)
            obs.add("sunway.dma.time_modeled_s", t)
        return t

    def put(self, nbytes: int, count: int = 1) -> float:
        """Record ``count`` DMA puts of ``nbytes`` each; returns the cost."""
        if count < 0 or nbytes < 0:
            raise ValueError("count and nbytes must be non-negative")
        t = count * self.arch.dma_time(nbytes)
        self.stats.puts += count
        self.stats.put_bytes += count * nbytes
        self.stats.time += t
        if obs.enabled():
            obs.add("sunway.dma.puts", count)
            obs.add("sunway.dma.put_bytes", count * nbytes)
            obs.add("sunway.dma.time_modeled_s", t)
        return t

    def reset(self) -> None:
        self.stats = DMAStats()
