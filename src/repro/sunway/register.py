"""Register communication across the 8x8 CPE mesh (§2.1.2 / §5).

The paper discusses — and rejects for its workload — an alternative to
table compaction: "Another method is to distribute all the tables to the
local stores of neighbor slave cores, and use register communication
supported by Sunway many-core architecture to transfer data between the
local stores. However, since which data in the tables should be
transferred cannot be known before runtime, it is very difficult to
describe these irregular communications using register communication."

Its §5 then proposes the fix as future work: "efficient one-sided
register communication, which facilitates the describing of irregular
data transfers, is a promising alternative."

This module builds both so the trade-off is measurable:

* :class:`RegisterMesh` — the hardware constraint: register transfers
  only connect CPEs in the same row or column of the 8x8 mesh; anything
  else hops through an intermediate (row-then-column routing).
* :class:`TwoSidedRegisterProtocol` — the production interface: both
  sides must post matching operations, so an *irregular* (data-dependent)
  access pattern forces every potential partner to participate in every
  round (the difficulty the paper describes), which is priced here as
  full-round synchronization.
* :class:`OneSidedRegisterProtocol` — the paper's proposed alternative:
  the reader fetches a remote local-store segment directly; only the
  requester pays.
* :class:`DistributedTable` — the actual use case: a table sharded
  across the 64 CPE local stores, with per-lookup cost under either
  protocol, comparable against the DMA-per-lookup and compacted-resident
  strategies of :mod:`repro.sunway.kernel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sunway.arch import SunwayArch
from repro.sunway.localstore import LocalStore, LocalStoreOverflow

#: CPE mesh dimensions.
MESH_ROWS = 8
MESH_COLS = 8


@dataclass
class RegisterStats:
    """Transfer accounting of one register-communication session."""

    transfers: int = 0
    hops: int = 0
    bytes: int = 0
    sync_rounds: int = 0
    time: float = 0.0


@dataclass(frozen=True)
class RegisterCosts:
    """Cost constants of the register mesh.

    Register communication is the CPE mesh's fast path: ~10 cycles per
    256-bit transfer between row/column peers, plus a per-round
    synchronization cost for the two-sided protocol.
    """

    cycles_per_hop: float = 11.0
    payload_bytes: int = 32  # one 256-bit register
    sync_cycles: float = 120.0  # two-sided round synchronization


class RegisterMesh:
    """Topology and pricing of the 8x8 CPE register-communication mesh."""

    def __init__(
        self, arch: SunwayArch | None = None, costs: RegisterCosts | None = None
    ) -> None:
        self.arch = arch or SunwayArch()
        self.costs = costs or RegisterCosts()
        self.stats = RegisterStats()

    @staticmethod
    def coords(cpe: int) -> tuple[int, int]:
        """(row, col) of a CPE index in 0..63."""
        if not 0 <= cpe < MESH_ROWS * MESH_COLS:
            raise ValueError(f"CPE index {cpe} out of range")
        return divmod(cpe, MESH_COLS)

    @classmethod
    def hops_between(cls, src: int, dst: int) -> int:
        """Register hops between two CPEs.

        0 for self; 1 within a row or column; 2 otherwise (row-then-column
        through an intermediate CPE).
        """
        r1, c1 = cls.coords(src)
        r2, c2 = cls.coords(dst)
        if src == dst:
            return 0
        if r1 == r2 or c1 == c2:
            return 1
        return 2

    def transfer_time(self, src: int, dst: int, nbytes: int) -> float:
        """Price one register transfer of ``nbytes`` from src to dst."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        hops = self.hops_between(src, dst)
        if hops == 0:
            return 0.0
        packets = -(-nbytes // self.costs.payload_bytes)  # ceil division
        cycles = packets * hops * self.costs.cycles_per_hop
        t = self.arch.compute_time(cycles)
        self.stats.transfers += 1
        self.stats.hops += hops
        self.stats.bytes += nbytes
        self.stats.time += t
        return t

    def sync_round_time(self, participants: int) -> float:
        """Price one two-sided synchronization round across ``participants``."""
        if participants < 1:
            raise ValueError("participants must be >= 1")
        t = self.arch.compute_time(self.costs.sync_cycles)
        self.stats.sync_rounds += 1
        self.stats.time += t
        return t

    def reset(self) -> None:
        self.stats = RegisterStats()


@dataclass
class ShardMap:
    """Placement of table segments across the 64 CPE local stores."""

    nsegments: int
    segment_bytes: int
    #: segment index -> owning CPE.
    owner: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))

    def __post_init__(self) -> None:
        if len(self.owner) == 0:
            self.owner = np.arange(self.nsegments, dtype=np.int64) % (
                MESH_ROWS * MESH_COLS
            )


class DistributedTable:
    """An interpolation table sharded across CPE local stores.

    Parameters
    ----------
    table_bytes:
        Total payload of the table(s) being distributed (e.g. the three
        compacted Fe-Cu table sets at once: ~351 KB).
    arch:
        Machine model; each CPE contributes its free local store.
    reserve_bytes:
        Local-store bytes kept free per CPE for the kernel's own buffers.
    """

    def __init__(
        self,
        table_bytes: int,
        arch: SunwayArch | None = None,
        reserve_bytes: int = 40 * 1024,
    ) -> None:
        self.arch = arch or SunwayArch()
        if table_bytes <= 0:
            raise ValueError(f"table_bytes must be positive, got {table_bytes}")
        per_cpe_budget = self.arch.local_store_bytes - reserve_bytes
        if per_cpe_budget <= 0:
            raise LocalStoreOverflow(
                f"reserve {reserve_bytes} leaves no room for table shards"
            )
        total_budget = per_cpe_budget * MESH_ROWS * MESH_COLS
        if table_bytes > total_budget:
            raise LocalStoreOverflow(
                f"{table_bytes} B of tables exceed the mesh aggregate "
                f"budget {total_budget} B"
            )
        self.table_bytes = int(table_bytes)
        self.segment_bytes = per_cpe_budget
        nsegments = -(-table_bytes // per_cpe_budget)
        self.shards = ShardMap(nsegments=nsegments, segment_bytes=per_cpe_budget)
        # Validate the placement against real capacity accounting.
        for cpe in range(MESH_ROWS * MESH_COLS):
            store = LocalStore(self.arch.local_store_bytes)
            store.alloc("kernel_buffers", reserve_bytes)
            owned = int(np.sum(self.shards.owner == cpe))
            if owned:
                store.alloc("table_shard", min(owned * per_cpe_budget, per_cpe_budget))

    def segment_of(self, offset: int) -> int:
        """Which segment holds byte ``offset`` of the table."""
        if not 0 <= offset < self.table_bytes:
            raise ValueError(f"offset {offset} outside the table")
        return offset // self.segment_bytes

    def owner_of(self, offset: int) -> int:
        """Which CPE's local store holds byte ``offset``."""
        return int(self.shards.owner[self.segment_of(offset)])

    # ------------------------------------------------------------------
    # Lookup pricing under the two protocols
    # ------------------------------------------------------------------
    def lookup_time_onesided(
        self, mesh: RegisterMesh, reader: int, offset: int, nbytes: int
    ) -> float:
        """One-sided lookup: the reader fetches the remote segment bytes.

        The §5 proposal: only the requester participates, so an irregular
        (data-dependent) access pattern costs exactly its own transfers.
        """
        owner = self.owner_of(offset)
        return mesh.transfer_time(owner, reader, nbytes)

    def lookup_time_twosided(
        self, mesh: RegisterMesh, reader: int, offset: int, nbytes: int
    ) -> float:
        """Two-sided lookup: a full mesh round per irregular access.

        "which data in the tables should be transferred cannot be known
        before runtime" — with matching-send semantics every potential
        owner must participate in a synchronization round before the
        actual transfer can be posted.
        """
        owner = self.owner_of(offset)
        t = mesh.sync_round_time(MESH_ROWS * MESH_COLS)
        return t + mesh.transfer_time(owner, reader, nbytes)


class TwoSidedRegisterProtocol:
    """Strategy handle: price a batch of irregular lookups, two-sided."""

    name = "register_twosided"

    def __init__(self, table: DistributedTable, mesh: RegisterMesh) -> None:
        self.table = table
        self.mesh = mesh

    def batch_time(self, reader: int, offsets, nbytes: int) -> float:
        return sum(
            self.table.lookup_time_twosided(self.mesh, reader, int(o), nbytes)
            for o in offsets
        )


class OneSidedRegisterProtocol:
    """Strategy handle: price a batch of irregular lookups, one-sided."""

    name = "register_onesided"

    def __init__(self, table: DistributedTable, mesh: RegisterMesh) -> None:
        self.table = table
        self.mesh = mesh

    def batch_time(self, reader: int, offsets, nbytes: int) -> float:
        return sum(
            self.table.lookup_time_onesided(self.mesh, reader, int(o), nbytes)
            for o in offsets
        )


def lookup_strategy_comparison(
    arch: SunwayArch | None = None,
    table_bytes: int = 3 * 40008,  # three compacted tables (Fe-Cu density set)
    lookups: int = 1000,
    lookup_bytes: int = 40,  # five samples for on-the-fly reconstruction
    seed: int = 0,
) -> dict[str, float]:
    """Per-lookup cost of the four table-access strategies (§2.1.2 + §5).

    Returns modeled seconds per lookup for:

    * ``dma`` — the traditional path: one DMA get per lookup;
    * ``register_twosided`` — distributed shards, production register
      interface (the paper's "very difficult" variant);
    * ``register_onesided`` — distributed shards with the §5 proposal;
    * ``resident`` — a compacted table resident in the local store
      (the paper's chosen design; zero transfer).
    """
    arch = arch or SunwayArch()
    rng = np.random.default_rng(seed)
    offsets = rng.integers(0, table_bytes, size=lookups)
    reader = 27  # an interior CPE
    table = DistributedTable(table_bytes, arch)
    out: dict[str, float] = {}
    out["dma"] = arch.dma_time(lookup_bytes)
    mesh = RegisterMesh(arch)
    out["register_twosided"] = (
        TwoSidedRegisterProtocol(table, mesh).batch_time(
            reader, offsets, lookup_bytes
        )
        / lookups
    )
    mesh2 = RegisterMesh(arch)
    out["register_onesided"] = (
        OneSidedRegisterProtocol(table, mesh2).batch_time(
            reader, offsets, lookup_bytes
        )
        / lookups
    )
    out["resident"] = 0.0
    return out
