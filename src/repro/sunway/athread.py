"""Slave-core thread pool: slab partitioning of a subdomain.

"we use one process on each master core, and each process launches 64
threads (running on 64 slave cores) using the Athread multithreading
library ... The subdomain of each process is further equally partitioned
into slabs, and each thread is responsible for one slab." (§2.1.2)

:class:`AthreadPool` performs the slab split over the site-rank order
(which is spatial order, so slabs are contiguous space) and combines
per-slab kernel timings the way a synchronized thread team does: the
pass takes as long as its slowest slab.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import observe as obs


@dataclass(frozen=True)
class SlabPartition:
    """One slave core's contiguous share of the site rows."""

    thread: int
    start: int
    stop: int

    @property
    def nsites(self) -> int:
        return self.stop - self.start

    def rows(self) -> np.ndarray:
        return np.arange(self.start, self.stop, dtype=np.int64)


class AthreadPool:
    """A 64-thread (by default) slab scheduler."""

    def __init__(self, nthreads: int = 64) -> None:
        if nthreads < 1:
            raise ValueError(f"nthreads must be >= 1, got {nthreads}")
        self.nthreads = nthreads

    def partition(self, nsites: int) -> list[SlabPartition]:
        """Split ``nsites`` rows into contiguous near-equal slabs.

        Threads beyond the work (tiny inputs) receive empty slabs, as a
        real dispatch would leave those CPEs idle.
        """
        if nsites < 0:
            raise ValueError(f"nsites must be non-negative, got {nsites}")
        base, extra = divmod(nsites, self.nthreads)
        slabs = []
        start = 0
        for t in range(self.nthreads):
            size = base + (1 if t < extra else 0)
            slabs.append(SlabPartition(thread=t, start=start, stop=start + size))
            start += size
        return slabs

    @staticmethod
    def team_time(slab_times: list[float]) -> float:
        """Wall time of one synchronized pass: the slowest slab."""
        slowest = max(slab_times, default=0.0)
        if obs.enabled() and slab_times:
            obs.add("sunway.athread.team_passes")
            obs.add("sunway.athread.team_time_modeled_s", slowest)
            mean = sum(slab_times) / len(slab_times)
            obs.set_gauge(
                "sunway.athread.imbalance",
                slowest / mean if mean > 0 else 1.0,
            )
        return slowest
