"""Executable model of the Sunway SW26010 many-core processor (§2.1.2).

No Sunway hardware is available to a reproduction, so this package builds
the machine as an explicit, *executable* model:

* :class:`~repro.sunway.arch.SunwayArch` — the machine description
  (4 core groups x (1 MPE + 64 CPEs), 64 KB CPE local store, DMA between
  main memory and local store, 1.45 GHz) plus the cycle/latency constants
  of the cost model.
* :class:`~repro.sunway.localstore.LocalStore` — a capacity-enforcing
  allocator: a kernel plan that does not fit 64 KB *fails*, exactly like
  the real chip.
* :class:`~repro.sunway.dma.DMAEngine` — counts every get/put and prices
  it with a latency + bandwidth model.
* :class:`~repro.sunway.athread.AthreadPool` — slab partitioning of a
  subdomain over the 64 slave cores.
* :class:`~repro.sunway.kernel.BlockedEAMKernel` — the EAM force kernel
  executed block-by-block under the paper's four optimization variants
  (traditional table / compacted table / + ghost data reuse / + double
  buffer).  The kernel computes *real forces* (verified against the MD
  engine) while the DMA/compute accounting prices each variant — the
  mechanism behind Figure 9.
"""

from repro.sunway.arch import SunwayArch, CoreGroup
from repro.sunway.localstore import LocalStore, LocalStoreOverflow
from repro.sunway.dma import DMAEngine, DMAStats
from repro.sunway.athread import AthreadPool, SlabPartition
from repro.sunway.kernel import (
    KernelStrategy,
    BlockedEAMKernel,
    KernelReport,
    STRATEGY_LADDER,
)
from repro.sunway.register import (
    RegisterMesh,
    DistributedTable,
    TwoSidedRegisterProtocol,
    OneSidedRegisterProtocol,
    lookup_strategy_comparison,
)

__all__ = [
    "AthreadPool",
    "BlockedEAMKernel",
    "CoreGroup",
    "DMAEngine",
    "DMAStats",
    "DistributedTable",
    "KernelReport",
    "KernelStrategy",
    "LocalStore",
    "LocalStoreOverflow",
    "OneSidedRegisterProtocol",
    "RegisterMesh",
    "STRATEGY_LADDER",
    "SlabPartition",
    "SunwayArch",
    "TwoSidedRegisterProtocol",
    "lookup_strategy_comparison",
]
