"""Sunway SW26010 machine description and cost-model constants.

Figures from the paper's §2.1.2/§3 and the TaihuLight system paper [6]:
four core groups per processor, each with one management processing
element (MPE, "master core"), an 8x8 mesh of computing processing
elements (CPEs, "slave cores"), and 8 GB DDR3 per CG; all cores at
1.45 GHz; 64 KB user-controlled local store per CPE; 32 KB L1 + 256 KB
L2 on the MPE.

The cycle and DMA constants below are the calibration points of the cost
model.  They are not vendor numbers — the reproduction matches *ratios
and shapes*, not absolute Sunway performance — and every experiment that
depends on them says so in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SunwayArch:
    """Machine and cost-model constants of one SW26010 processor."""

    #: Core clock (MPE and CPE) in Hz.
    clock_hz: float = 1.45e9
    #: Core groups per processor.
    core_groups: int = 4
    #: Slave cores (CPEs) per core group.
    cpes_per_cg: int = 64
    #: CPE local store capacity in bytes.
    local_store_bytes: int = 64 * 1024
    #: Main memory per core group in bytes (8 GB DDR3).
    memory_per_cg: int = 8 * 1024**3
    #: MPE L2 cache in bytes.
    mpe_l2_bytes: int = 256 * 1024
    #: DMA startup latency per operation, in seconds.
    dma_latency_s: float = 2.0e-8
    #: DMA sustained bandwidth, bytes/second (per CPE).
    dma_bandwidth: float = 2.5e9
    #: CPE cycles to evaluate one tabulated cubic segment (gather
    #: coefficients + Horner).
    eval_cycles: float = 40.0
    #: Extra CPE cycles to reconstruct a segment's coefficients on the fly
    #: from the compacted table (the five-point formula of Figure 5).
    reconstruct_cycles: float = 25.0
    #: CPE cycles of per-atom overhead in each kernel pass (index
    #: arithmetic, accumulation, loop control).
    atom_cycles: float = 20.0
    #: Throughput factor of the 256-bit vector units on the tabulated
    #: arithmetic (4 doubles x fused multiply-add).  Applies to the
    #: eval/reconstruct cycles, NOT to DMA latencies — which is precisely
    #: why a vectorized CPE kernel ends up transfer-bound and the paper
    #: finds "not enough computation to overlap the data transfer".
    simd_factor: float = 2.0
    #: Fraction of a block's ghost-ring bytes the data-reuse optimization
    #: avoids re-fetching.  Our toy blocks are rank-order pencils whose
    #: halos overlap less than the face-sweeping blocks of a production
    #: slab decomposition; this calibration constant restores the
    #: production overlap fraction.  See EXPERIMENTS.md (Fig 9).
    reuse_efficiency: float = 0.9

    @property
    def cores_per_cg(self) -> int:
        """Master + slave cores of one CG (the paper's counting unit)."""
        return 1 + self.cpes_per_cg

    @property
    def cycle_s(self) -> float:
        """Seconds per core cycle."""
        return 1.0 / self.clock_hz

    def dma_time(self, nbytes: int) -> float:
        """Cost of one DMA get/put of ``nbytes``."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        return self.dma_latency_s + nbytes / self.dma_bandwidth

    def compute_time(self, cycles: float) -> float:
        """Seconds for the given CPE cycle count."""
        if cycles < 0:
            raise ValueError(f"cycles must be non-negative, got {cycles}")
        return cycles * self.cycle_s


@dataclass(frozen=True)
class CoreGroup:
    """One CG of the machine; convenience wrapper over the arch numbers."""

    arch: SunwayArch = SunwayArch()
    index: int = 0

    @property
    def total_cores(self) -> int:
        return self.arch.cores_per_cg

    def memory_fits_atoms(self, natoms: int, bytes_per_atom: float) -> bool:
        """Whether a CG's 8 GB holds ``natoms`` at the given record size."""
        return natoms * bytes_per_atom <= self.arch.memory_per_cg
