"""Capacity-enforcing local-store allocator.

Each CPE has 64 KB of user-controlled scratchpad ("Each slave core has
64 KB local store, which can be configured as either a user-controlled
buffer or a software-emulated cache ... we use it as a user-controlled
buffer").  Kernel planning allocates named buffers here; exceeding the
capacity raises :class:`LocalStoreOverflow`, which is what forces the
paper's design decisions (compacted tables, block processing, residency
policies) — and our tests assert those decisions are actually forced.
"""

from __future__ import annotations


class LocalStoreOverflow(MemoryError):
    """An allocation exceeded the CPE local store capacity."""


class LocalStore:
    """A named-buffer allocator over a fixed byte budget."""

    def __init__(self, capacity_bytes: int = 64 * 1024) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        self.capacity = int(capacity_bytes)
        self.buffers: dict[str, int] = {}

    @property
    def used(self) -> int:
        return sum(self.buffers.values())

    @property
    def free(self) -> int:
        return self.capacity - self.used

    def alloc(self, name: str, nbytes: int) -> None:
        """Reserve ``nbytes`` under ``name``; raises on overflow."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        if name in self.buffers:
            raise ValueError(f"buffer {name!r} already allocated")
        if nbytes > self.free:
            raise LocalStoreOverflow(
                f"allocating {name!r} ({nbytes} B) exceeds local store: "
                f"{self.used}/{self.capacity} B used"
            )
        self.buffers[name] = int(nbytes)

    def resize(self, name: str, nbytes: int) -> None:
        """Grow or shrink an existing buffer, enforcing capacity."""
        if name not in self.buffers:
            raise KeyError(f"no buffer named {name!r}")
        old = self.buffers.pop(name)
        try:
            self.alloc(name, nbytes)
        except LocalStoreOverflow:
            self.buffers[name] = old
            raise

    def release(self, name: str) -> None:
        """Free a buffer."""
        if name not in self.buffers:
            raise KeyError(f"no buffer named {name!r}")
        del self.buffers[name]

    def reset(self) -> None:
        """Free everything."""
        self.buffers.clear()

    def fits(self, nbytes: int) -> bool:
        """Whether ``nbytes`` more would fit right now."""
        return nbytes <= self.free

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LocalStore(used={self.used}/{self.capacity}, buffers={self.buffers})"
