"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Library, machine-model, and experiment inventory.
``coupled``
    Run the coupled MD-KMC pipeline at a chosen box size.
``cascade``
    Run one MD cascade and report the damage inventory.
``kmc-schemes``
    Compare the three parallel-KMC communication schemes.
``figure <id>``
    Regenerate a paper figure (``fig09`` .. ``fig17``, ``memory``).
"""

from __future__ import annotations

import argparse
import sys

#: Figure id -> experiment module name.
FIGURES = {
    "fig09": "fig09_md_optimizations",
    "fig10": "fig10_md_strong_scaling",
    "fig11": "fig11_md_weak_scaling",
    "fig12": "fig12_kmc_comm_volume",
    "fig13": "fig13_kmc_comm_time",
    "fig14": "fig14_kmc_strong_scaling",
    "fig15": "fig15_kmc_weak_scaling",
    "fig16": "fig16_coupled_weak_scaling",
    "fig17": "fig17_vacancy_clustering",
    "memory": "memory_table",
}


#: Smallest box the MD neighbor machinery accepts (cells per axis).
MIN_CELLS = 5


def _add_observe_flags(parser) -> None:
    """The shared profiling/tracing options of the run commands."""
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print the observed phase tree and counters after the run",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a Chrome-trace JSON (chrome://tracing / Perfetto)",
    )
    parser.add_argument(
        "--kernels",
        choices=("numpy", "numba", "auto"),
        default=None,
        help=(
            "compute-kernel backend for the EAM and rate evaluations: "
            "'numpy' (vectorized reference), 'numba' (compiled loops, "
            "bit-identical, falls back to numpy with a warning if numba "
            "is missing), or 'auto' (numba when importable; the "
            "default); the REPRO_KERNELS environment variable sets the "
            "default"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Coupled MD-KMC metal damage simulation "
            "(ICPP 2018 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="library and machine-model inventory")

    coupled = sub.add_parser("coupled", help="run the coupled MD-KMC pipeline")
    coupled.add_argument("--cells", type=int, default=8)
    coupled.add_argument("--events", type=int, default=500)
    coupled.add_argument("--temperature", type=float, default=600.0)
    coupled.add_argument("--seed", type=int, default=2018)
    coupled.add_argument(
        "--md-steps",
        type=int,
        default=None,
        help="MD cascade steps (default: the CascadeConfig default)",
    )
    coupled.add_argument(
        "--kmc-ranks",
        type=int,
        default=None,
        help=(
            "run the KMC stage on the parallel engine with N ranks "
            "(0 forces the serial engine; default: serial, or 1 rank "
            "when profiling so the trace covers the runtime layer)"
        ),
    )
    coupled.add_argument(
        "--kmc-cycles",
        type=int,
        default=50,
        help="parallel-KMC cycle budget (with --kmc-ranks)",
    )
    coupled.add_argument(
        "--faults",
        metavar="PLAN",
        default=None,
        help=(
            "fault-injection plan for the KMC stage, e.g. "
            '"crash:rank=1,cycle=3; dup:rank=0,nth=2"; the run recovers '
            "from the last checkpoint and finishes bit-identically to a "
            "fault-free run (see repro.runtime.faults for the syntax)"
        ),
    )
    coupled.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help=(
            "write a resumable KMC checkpoint every N cycles (parallel) "
            "or N events (serial)"
        ),
    )
    coupled.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help=(
            "directory for checkpoints (default: a fresh temporary "
            "directory, so nothing lands in the working tree)"
        ),
    )
    coupled.add_argument(
        "--trajectory",
        metavar="PATH",
        default=None,
        help=(
            "record the KMC occupancy trajectory into a chunked on-disk "
            "store at PATH (a directory); frames stream to disk as the "
            "run progresses, so memory stays bounded, and the store "
            "survives crash/recovery cycles (see repro.io.store)"
        ),
    )
    coupled.add_argument(
        "--trajectory-every",
        type=int,
        default=1,
        metavar="N",
        help=(
            "record a trajectory frame every N events (serial) or "
            "N cycles (parallel); requires --trajectory (default: 1)"
        ),
    )
    coupled.add_argument(
        "--watchdog",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "deadline for each blocking recv/probe/collective of the "
            "parallel KMC runtime (default: no deadline)"
        ),
    )
    coupled.add_argument(
        "--backend",
        choices=("thread", "process", "overdecomposed"),
        default=None,
        help=(
            "execution backend for the parallel KMC ranks: 'thread' "
            "(default), 'process' (one OS process per rank, real "
            "multi-core parallelism), or 'overdecomposed' (R logical "
            "ranks cooperatively scheduled on --workers OS workers; "
            "results are bit-identical across all three); "
            "the REPRO_BACKEND environment variable sets the default"
        ),
    )
    coupled.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="P",
        help=(
            "physical workers for the overdecomposed/rank-group "
            "backends (default: REPRO_WORKERS or the cpu count)"
        ),
    )
    _add_observe_flags(coupled)

    cascade = sub.add_parser("cascade", help="run one MD cascade")
    cascade.add_argument("--cells", type=int, default=6)
    cascade.add_argument("--pka", type=float, default=120.0)
    cascade.add_argument("--steps", type=int, default=150)
    cascade.add_argument("--temperature", type=float, default=300.0)
    cascade.add_argument("--seed", type=int, default=3)
    _add_observe_flags(cascade)

    schemes = sub.add_parser(
        "kmc-schemes", help="compare parallel-KMC communication schemes"
    )
    schemes.add_argument("--cells", type=int, default=8)
    schemes.add_argument("--ranks", type=int, default=8)
    schemes.add_argument("--cycles", type=int, default=8)
    schemes.add_argument("--vacancies", type=int, default=20)
    schemes.add_argument("--seed", type=int, default=5)
    schemes.add_argument(
        "--backend",
        choices=("thread", "process", "overdecomposed"),
        default=None,
        help="simmpi execution backend (default: REPRO_BACKEND or thread)",
    )
    schemes.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="P",
        help=(
            "physical workers for the overdecomposed/rank-group "
            "backends (default: REPRO_WORKERS or the cpu count)"
        ),
    )
    _add_observe_flags(schemes)

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("id", choices=sorted(FIGURES))
    _add_observe_flags(figure)

    return parser


def _profiling_requested(args) -> bool:
    return bool(getattr(args, "profile", False) or getattr(args, "trace", None))


def _start_observation(args):
    """Activate a fresh registry when ``--profile``/``--trace`` ask for one."""
    if not _profiling_requested(args):
        return None
    from repro import observe as obs

    return obs.enable()


def _finish_observation(args, registry) -> None:
    """Render/export the observation collected by a run command."""
    if registry is None:
        return
    from repro import observe as obs

    obs.disable()
    if args.profile:
        print()
        print(obs.format_report(registry))
    if args.trace:
        try:
            obs.write_chrome_trace(registry, args.trace)
        except OSError as exc:
            print(f"error: cannot write trace to {args.trace}: {exc}",
                  file=sys.stderr)
            raise SystemExit(1) from exc
        print(f"\ntrace written to {args.trace} (open in chrome://tracing)")


def cmd_info() -> int:
    import repro
    from repro.perfmodel.machine import TAIHULIGHT

    print(f"repro {repro.__version__} — ICPP 2018 reproduction")
    print(
        "paper: Massively Scaling the Metal Microscopic Damage Simulation "
        "on Sunway TaihuLight Supercomputer (Li et al.)"
    )
    arch = TAIHULIGHT.arch
    print(
        f"\nmachine model: {TAIHULIGHT.nodes:,} nodes x "
        f"{TAIHULIGHT.cgs_per_node} CGs x {arch.cores_per_cg} cores = "
        f"{TAIHULIGHT.total_cores:,} cores"
    )
    print(
        f"  CPE local store {arch.local_store_bytes // 1024} KB, "
        f"{arch.memory_per_cg / 1024**3:.0f} GB/CG, "
        f"{arch.clock_hz / 1e9:.2f} GHz"
    )
    print("\nregenerable figures:")
    for fid, module in sorted(FIGURES.items()):
        print(f"  {fid:7s} -> repro.experiments.{module}")
    return 0


def cmd_coupled(args) -> int:
    from repro.core.coupling import CoupledConfig, CoupledSimulation
    from repro.md.cascade import CascadeConfig
    from repro.runtime.faults import FaultPlan, FaultPlanError

    plan = None
    if args.faults is not None:
        try:
            plan = FaultPlan.parse(args.faults)
        except FaultPlanError as exc:
            print(f"error: bad --faults plan: {exc}", file=sys.stderr)
            return 2
        print(f"fault plan: {plan.describe()}")
    if args.trajectory is None and args.trajectory_every != 1:
        print(
            "error: --trajectory-every requires --trajectory", file=sys.stderr
        )
        return 2
    profiling = _profiling_requested(args)
    cells = args.cells
    if cells < MIN_CELLS:
        print(
            f"note: --cells raised from {cells} to {MIN_CELLS} "
            "(minimum box for the MD cutoff)"
        )
        cells = MIN_CELLS
    kmc_nranks = args.kmc_ranks
    if kmc_nranks is None and profiling:
        # Route the KMC stage through the parallel engine so the profile
        # covers the simulated-MPI runtime layer too (override with
        # --kmc-ranks 0 to keep the serial BKL engine).
        kmc_nranks = 1
        print("note: profiling runs the KMC stage on the parallel engine "
              "(1 rank); pass --kmc-ranks 0 to force the serial engine")
    if kmc_nranks == 0:
        kmc_nranks = None
    cascade_cfg = None
    if args.md_steps is not None:
        cascade_cfg = CascadeConfig(
            temperature=args.temperature, nsteps=args.md_steps
        )
    registry = _start_observation(args)
    sim = CoupledSimulation(
        CoupledConfig(
            cells=cells,
            temperature=args.temperature,
            cascade=cascade_cfg,
            kmc_max_events=args.events,
            kmc_nranks=kmc_nranks,
            kmc_backend=args.backend,
            kmc_workers=args.workers,
            kmc_max_cycles=args.kmc_cycles,
            seed=args.seed,
            sunway_model=profiling,
            faults=plan,
            checkpoint_every=args.checkpoint_every,
            checkpoint_dir=args.checkpoint_dir,
            watchdog=args.watchdog,
            trajectory=args.trajectory,
            trajectory_every=args.trajectory_every,
        )
    )
    print(f"coupled MD-KMC over {sim.lattice.nsites} sites ...")
    result = sim.run()
    print(f"after MD : {result.report_after_md}")
    print(f"after KMC: {result.report_after_kmc}")
    print(
        f"{result.kmc_events} events over {result.kmc_time:.3g} ps "
        f"-> {result.real_time_seconds:.3g} s real time"
    )
    if result.sunway_report is not None:
        sw = result.sunway_report
        print(
            f"modeled SW26010 force step ({sw['strategy']}): "
            f"{sw['modeled_step_time_s']:.3g} s, "
            f"{sw['dma_operations']:,} DMA ops / {sw['dma_bytes']:,} B"
        )
    if result.fault_report is not None:
        fr = result.fault_report
        print(
            f"faults injected: {fr['injected']} "
            f"({fr['crashes']} crashes, {fr['delays']} delays, "
            f"{fr['duplicates']} duplicates, {fr['stalls']} stalls); "
            f"recoveries: {result.recoveries}"
        )
    elif result.recoveries:
        print(f"recoveries: {result.recoveries}")
    if result.migrations:
        print(f"migrations: {result.migrations}")
    if result.trajectory_path is not None:
        print(
            f"trajectory: {result.trajectory_frames} frames "
            f"-> {result.trajectory_path}"
        )
    _finish_observation(args, registry)
    return 0


def cmd_cascade(args) -> int:
    from repro.lattice.bcc import BCCLattice
    from repro.md.cascade import CascadeConfig, run_cascade
    from repro.md.engine import MDConfig, MDEngine
    from repro.potential.fe import make_fe_potential

    registry = _start_observation(args)
    engine = MDEngine(
        BCCLattice(args.cells, args.cells, args.cells),
        make_fe_potential(n=2000),
        MDConfig(temperature=args.temperature, seed=args.seed),
    )
    result = run_cascade(
        engine,
        CascadeConfig(
            pka_energy=args.pka,
            nsteps=args.steps,
            temperature=args.temperature,
        ),
    )
    print(
        f"PKA {args.pka} eV -> {len(result.vacancy_rows)} vacancies, "
        f"{result.n_runaways} interstitials "
        f"({result.n_frenkel_pairs} Frenkel pairs); "
        f"final T {result.final_temperature:.0f} K"
    )
    _finish_observation(args, registry)
    return 0


def cmd_kmc_schemes(args) -> int:
    import numpy as np

    from repro.kmc.akmc import ParallelAKMC, place_random_vacancies
    from repro.kmc.events import KMCModel, RateParameters
    from repro.lattice.bcc import BCCLattice
    from repro.potential.fe import make_fe_potential

    lattice = BCCLattice(args.cells, args.cells, args.cells)
    potential = make_fe_potential(n=1000)
    params = RateParameters()
    occ0 = place_random_vacancies(
        KMCModel(lattice, potential, params),
        args.vacancies,
        np.random.default_rng(args.seed),
    )
    registry = _start_observation(args)
    reference = None
    print(f"{'scheme':>12} {'events':>7} {'bytes':>12} {'messages':>9}")
    for scheme in ("traditional", "ondemand", "onesided"):
        engine = ParallelAKMC(
            lattice,
            potential,
            params,
            nranks=args.ranks,
            scheme=scheme,
            seed=args.seed,
            backend=args.backend,
            workers=args.workers,
        )
        result = engine.run(occ0, max_cycles=args.cycles)
        stats = result.comm_stats
        print(
            f"{scheme:>12} {result.events:>7} "
            f"{stats['total_sent_bytes']:>12,} "
            f"{stats['total_messages']:>9,}"
        )
        if reference is None:
            reference = result.occupancy
        elif not np.array_equal(result.occupancy, reference):
            print("ERROR: schemes diverged", file=sys.stderr)
            _finish_observation(args, registry)
            return 1
    print("all schemes produced identical trajectories")
    _finish_observation(args, registry)
    return 0


def cmd_figure(args) -> int:
    import importlib

    registry = _start_observation(args)
    module = importlib.import_module(
        f"repro.experiments.{FIGURES[args.id]}"
    )
    module.main()
    _finish_observation(args, registry)
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    import os

    args = build_parser().parse_args(argv)
    if getattr(args, "kernels", None):
        # Every dispatch site resolves REPRO_KERNELS, so the flag just
        # pins the environment for this process (children inherit it).
        os.environ["REPRO_KERNELS"] = args.kernels
    if args.command == "info":
        return cmd_info()
    if args.command == "coupled":
        return cmd_coupled(args)
    if args.command == "cascade":
        return cmd_cascade(args)
    if args.command == "kmc-schemes":
        return cmd_kmc_schemes(args)
    if args.command == "figure":
        return cmd_figure(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
