"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Library, machine-model, and experiment inventory.
``coupled``
    Run the coupled MD-KMC pipeline at a chosen box size (a thin
    client of the same :class:`~repro.service.ScenarioSpec` path the
    service uses).
``cascade``
    Run one MD cascade and report the damage inventory.
``kmc-schemes``
    Compare the three parallel-KMC communication schemes.
``figure <id>``
    Regenerate a paper figure (``fig09`` .. ``fig17``, ``memory``).
``submit`` / ``serve`` / ``status`` / ``result``
    The simulation-as-a-service surface: enqueue scenario jobs on a
    service root, drain them with a worker pool, inspect the queue,
    and fetch published (content-addressed, deduplicated) results.

All argument validation — including cross-flag checks and fault-plan
parsing — routes through ``argparse``, so every usage error exits with
status 2 and a ``usage:`` message on stderr.
"""

from __future__ import annotations

import argparse
import os
import sys

#: Figure id -> experiment module name.
FIGURES = {
    "fig09": "fig09_md_optimizations",
    "fig10": "fig10_md_strong_scaling",
    "fig11": "fig11_md_weak_scaling",
    "fig12": "fig12_kmc_comm_volume",
    "fig13": "fig13_kmc_comm_time",
    "fig14": "fig14_kmc_strong_scaling",
    "fig15": "fig15_kmc_weak_scaling",
    "fig16": "fig16_coupled_weak_scaling",
    "fig17": "fig17_vacancy_clustering",
    "memory": "memory_table",
}


#: Smallest box the MD neighbor machinery accepts (cells per axis).
MIN_CELLS = 5


def _fault_plan_arg(value: str) -> str:
    """Validate a ``--faults`` plan at parse time (argparse ``type=``).

    Returns the DSL string unchanged — specs and configs carry the
    serializable form — but a malformed plan fails with argparse's own
    exit-2 usage error instead of a hand-rolled print-and-return.
    """
    from repro.runtime.faults import FaultPlan, FaultPlanError

    try:
        FaultPlan.parse(value)
    except FaultPlanError as exc:
        raise argparse.ArgumentTypeError(f"bad --faults plan: {exc}") from exc
    return value


def _add_observe_flags(parser) -> None:
    """The shared profiling/tracing options of the run commands."""
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print the observed phase tree and counters after the run",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a Chrome-trace JSON (chrome://tracing / Perfetto)",
    )
    parser.add_argument(
        "--kernels",
        choices=("numpy", "numba", "auto"),
        default=None,
        help=(
            "compute-kernel backend for the EAM and rate evaluations: "
            "'numpy' (vectorized reference), 'numba' (compiled loops, "
            "bit-identical, falls back to numpy with a warning if numba "
            "is missing), or 'auto' (numba when importable; the "
            "default); the REPRO_KERNELS environment variable sets the "
            "default"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Coupled MD-KMC metal damage simulation "
            "(ICPP 2018 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="library and machine-model inventory")

    coupled = sub.add_parser("coupled", help="run the coupled MD-KMC pipeline")
    coupled.add_argument("--cells", type=int, default=8)
    coupled.add_argument("--events", type=int, default=500)
    coupled.add_argument("--temperature", type=float, default=600.0)
    coupled.add_argument("--seed", type=int, default=2018)
    coupled.add_argument(
        "--md-steps",
        type=int,
        default=None,
        help="MD cascade steps (default: the CascadeConfig default)",
    )
    coupled.add_argument(
        "--kmc-ranks",
        type=int,
        default=None,
        help=(
            "run the KMC stage on the parallel engine with N ranks "
            "(0 forces the serial engine; default: serial, or 1 rank "
            "when profiling so the trace covers the runtime layer)"
        ),
    )
    coupled.add_argument(
        "--kmc-cycles",
        type=int,
        default=50,
        help="parallel-KMC cycle budget (with --kmc-ranks)",
    )
    coupled.add_argument(
        "--faults",
        metavar="PLAN",
        type=_fault_plan_arg,
        default=None,
        help=(
            "fault-injection plan for the KMC stage, e.g. "
            '"crash:rank=1,cycle=3; dup:rank=0,nth=2"; the run recovers '
            "from the last checkpoint and finishes bit-identically to a "
            "fault-free run (see repro.runtime.faults for the syntax)"
        ),
    )
    coupled.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help=(
            "write a resumable KMC checkpoint every N cycles (parallel) "
            "or N events (serial)"
        ),
    )
    coupled.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help=(
            "directory for checkpoints (default: a fresh temporary "
            "directory, so nothing lands in the working tree)"
        ),
    )
    coupled.add_argument(
        "--trajectory",
        metavar="PATH",
        default=None,
        help=(
            "record the KMC occupancy trajectory into a chunked on-disk "
            "store at PATH (a directory); frames stream to disk as the "
            "run progresses, so memory stays bounded, and the store "
            "survives crash/recovery cycles (see repro.io.store)"
        ),
    )
    coupled.add_argument(
        "--trajectory-every",
        type=int,
        default=1,
        metavar="N",
        help=(
            "record a trajectory frame every N events (serial) or "
            "N cycles (parallel); requires --trajectory (default: 1)"
        ),
    )
    coupled.add_argument(
        "--watchdog",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "deadline for each blocking recv/probe/collective of the "
            "parallel KMC runtime (default: no deadline)"
        ),
    )
    coupled.add_argument(
        "--backend",
        choices=("thread", "process", "overdecomposed"),
        default=None,
        help=(
            "execution backend for the parallel KMC ranks: 'thread' "
            "(default), 'process' (one OS process per rank, real "
            "multi-core parallelism), or 'overdecomposed' (R logical "
            "ranks cooperatively scheduled on --workers OS workers; "
            "results are bit-identical across all three); "
            "the REPRO_BACKEND environment variable sets the default"
        ),
    )
    coupled.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="P",
        help=(
            "physical workers for the overdecomposed/rank-group "
            "backends (default: REPRO_WORKERS or the cpu count)"
        ),
    )
    coupled.add_argument(
        "--sanitize",
        action="store_true",
        help=(
            "run with the communication sanitizer (vector-clock "
            "happens-before checking of every simmpi world; equivalent "
            "to REPRO_SANITIZE=1): unmatched sends, wildcard recv "
            "races, collective-order divergence, and leaked shm slots "
            "fail the run with a per-violation report"
        ),
    )
    _add_observe_flags(coupled)
    # Cross-flag validation in cmd_coupled routes through this parser's
    # own error() so it exits 2 exactly like argparse's built-in checks.
    coupled.set_defaults(_parser=coupled)

    cascade = sub.add_parser("cascade", help="run one MD cascade")
    cascade.add_argument("--cells", type=int, default=6)
    cascade.add_argument("--pka", type=float, default=120.0)
    cascade.add_argument("--steps", type=int, default=150)
    cascade.add_argument("--temperature", type=float, default=300.0)
    cascade.add_argument("--seed", type=int, default=3)
    _add_observe_flags(cascade)

    schemes = sub.add_parser(
        "kmc-schemes", help="compare parallel-KMC communication schemes"
    )
    schemes.add_argument("--cells", type=int, default=8)
    schemes.add_argument("--ranks", type=int, default=8)
    schemes.add_argument("--cycles", type=int, default=8)
    schemes.add_argument("--vacancies", type=int, default=20)
    schemes.add_argument("--seed", type=int, default=5)
    schemes.add_argument(
        "--backend",
        choices=("thread", "process", "overdecomposed"),
        default=None,
        help="simmpi execution backend (default: REPRO_BACKEND or thread)",
    )
    schemes.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="P",
        help=(
            "physical workers for the overdecomposed/rank-group "
            "backends (default: REPRO_WORKERS or the cpu count)"
        ),
    )
    _add_observe_flags(schemes)

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("id", choices=sorted(FIGURES))
    _add_observe_flags(figure)

    # ------------------------------------------------------------------
    # Simulation-as-a-service surface
    # ------------------------------------------------------------------
    def _root_flag(p) -> None:
        p.add_argument(
            "--root",
            required=True,
            metavar="DIR",
            help="service root directory (queue/, cache/, obs/ live here)",
        )

    submit = sub.add_parser(
        "submit",
        help="enqueue one scenario job on a service root",
        description=(
            "Build a declarative ScenarioSpec from the flags and append "
            "it durably to the service queue.  Identical specs dedupe "
            "to one execution when scheduled; results are published "
            "under the spec's content-addressed key."
        ),
    )
    _root_flag(submit)
    submit.add_argument("--cells", type=int, default=8)
    submit.add_argument("--events", type=int, default=500,
                        help="KMC event budget (serial engine)")
    submit.add_argument("--temperature", type=float, default=600.0)
    submit.add_argument("--seed", type=int, default=2018)
    submit.add_argument("--md-steps", type=int, default=None,
                        help="MD cascade steps (default: cascade default)")
    submit.add_argument("--pka", type=float, default=None, metavar="EV",
                        help="PKA energy (default: cascade default)")
    submit.add_argument("--table-points", type=int, default=2000)
    submit.add_argument("--recombination-radius", type=float, default=None,
                        metavar="A")
    submit.add_argument("--kmc-ranks", type=int, default=None,
                        help="parallel KMC rank count (default: serial)")
    submit.add_argument("--kmc-cycles", type=int, default=50)
    submit.add_argument("--kmc-scheme", default="ondemand",
                        choices=("traditional", "ondemand", "onesided"))
    submit.add_argument(
        "--trajectory-every", type=int, default=None, metavar="N",
        help=(
            "publish a chunked trajectory store recorded every N "
            "events/cycles as part of the result (default: no store)"
        ),
    )
    submit.add_argument("--faults", metavar="PLAN", type=_fault_plan_arg,
                        default=None,
                        help="fault-injection plan for the KMC stage")
    submit.add_argument("--checkpoint-every", type=int, default=None,
                        metavar="N")
    submit.add_argument("--backend", default=None,
                        choices=("thread", "process", "overdecomposed"))
    submit.add_argument("--workers", type=int, default=None, metavar="P")
    submit.set_defaults(_parser=submit)

    serve = sub.add_parser(
        "serve",
        help="run a worker pool draining a service root",
        description=(
            "Schedule pending jobs onto forked worker processes: "
            "identical specs share one execution, cached keys complete "
            "immediately, crashed workers are retried with bounded "
            "attempts."
        ),
    )
    _root_flag(serve)
    serve.add_argument("--workers", type=int, default=2, metavar="P",
                       help="concurrent worker processes (default: 2)")
    serve.add_argument("--max-attempts", type=int, default=3, metavar="N",
                       help="execution attempts per job key (default: 3)")
    serve.add_argument(
        "--drain", action="store_true",
        help="exit once the queue is fully processed (default: keep "
             "watching for new submissions)",
    )
    serve.add_argument("--poll", type=float, default=0.05, metavar="SECONDS",
                       help="scheduler poll interval (default: 0.05)")
    serve.set_defaults(_parser=serve)

    status = sub.add_parser(
        "status", help="show job states and queue statistics of a root"
    )
    _root_flag(status)
    status.add_argument("--job", default=None, metavar="ID",
                        help="show one job (with its live observe snapshot)")
    status.set_defaults(_parser=status)

    result = sub.add_parser(
        "result", help="show a completed job's published artifacts"
    )
    _root_flag(result)
    result.add_argument("job", metavar="ID", help="job id (e.g. job-000001)")
    result.add_argument("--json", action="store_true",
                        help="print the raw result.json payload")
    result.set_defaults(_parser=result)

    return parser


def _profiling_requested(args) -> bool:
    return bool(getattr(args, "profile", False) or getattr(args, "trace", None))


def _start_observation(args):
    """Activate a fresh registry when ``--profile``/``--trace`` ask for one."""
    if not _profiling_requested(args):
        return None
    from repro import observe as obs

    return obs.enable()


def _finish_observation(args, registry) -> None:
    """Render/export the observation collected by a run command."""
    if registry is None:
        return
    from repro import observe as obs

    obs.disable()
    if args.profile:
        print()
        print(obs.format_report(registry))
    if args.trace:
        try:
            obs.write_chrome_trace(registry, args.trace)
        except OSError as exc:
            print(f"error: cannot write trace to {args.trace}: {exc}",
                  file=sys.stderr)
            raise SystemExit(1) from exc
        print(f"\ntrace written to {args.trace} (open in chrome://tracing)")


def cmd_info() -> int:
    import repro
    from repro.perfmodel.machine import TAIHULIGHT

    print(f"repro {repro.__version__} — ICPP 2018 reproduction")
    print(
        "paper: Massively Scaling the Metal Microscopic Damage Simulation "
        "on Sunway TaihuLight Supercomputer (Li et al.)"
    )
    arch = TAIHULIGHT.arch
    print(
        f"\nmachine model: {TAIHULIGHT.nodes:,} nodes x "
        f"{TAIHULIGHT.cgs_per_node} CGs x {arch.cores_per_cg} cores = "
        f"{TAIHULIGHT.total_cores:,} cores"
    )
    print(
        f"  CPE local store {arch.local_store_bytes // 1024} KB, "
        f"{arch.memory_per_cg / 1024**3:.0f} GB/CG, "
        f"{arch.clock_hz / 1e9:.2f} GHz"
    )
    print("\nregenerable figures:")
    for fid, module in sorted(FIGURES.items()):
        print(f"  {fid:7s} -> repro.experiments.{module}")
    return 0


def cmd_coupled(args) -> int:
    from repro.core.coupling import CoupledSimulation
    from repro.runtime.faults import FaultPlan
    from repro.service import ScenarioSpec, SpecError

    if args.trajectory is None and args.trajectory_every != 1:
        args._parser.error("--trajectory-every requires --trajectory")
    if args.sanitize:
        # The env knob is the cross-process carrier: forked backend
        # children and service workers inherit it, and World.run reads
        # it at dispatch time.
        os.environ["REPRO_SANITIZE"] = "1"
    if args.faults is not None:
        # Parse-time validated (argparse type); describe for the log.
        print(f"fault plan: {FaultPlan.parse(args.faults).describe()}")
    profiling = _profiling_requested(args)
    cells = args.cells
    if cells < MIN_CELLS:
        print(
            f"note: --cells raised from {cells} to {MIN_CELLS} "
            "(minimum box for the MD cutoff)"
        )
        cells = MIN_CELLS
    kmc_nranks = args.kmc_ranks
    if kmc_nranks is None and profiling:
        # Route the KMC stage through the parallel engine so the profile
        # covers the simulated-MPI runtime layer too (override with
        # --kmc-ranks 0 to keep the serial BKL engine).
        kmc_nranks = 1
        print("note: profiling runs the KMC stage on the parallel engine "
              "(1 rank); pass --kmc-ranks 0 to force the serial engine")
    if kmc_nranks == 0:
        kmc_nranks = None
    # One spec path for batch and service runs: `coupled` builds the
    # same declarative ScenarioSpec `submit` enqueues, then executes it
    # inline with the run-local knobs (paths, profiling) layered on top.
    try:
        spec = ScenarioSpec(
            cells=cells,
            temperature=args.temperature,
            md_steps=args.md_steps,
            kmc_max_events=args.events,
            kmc_nranks=kmc_nranks,
            kmc_max_cycles=args.kmc_cycles,
            seed=args.seed,
            trajectory_every=(
                args.trajectory_every if args.trajectory is not None else None
            ),
            faults=args.faults,
            checkpoint_every=args.checkpoint_every,
            backend=args.backend,
            workers=args.workers,
            watchdog=args.watchdog,
        )
    except SpecError as exc:
        args._parser.error(str(exc))
    registry = _start_observation(args)
    sim = CoupledSimulation(
        spec.to_coupled_config(
            trajectory=args.trajectory,
            checkpoint_dir=args.checkpoint_dir,
            sunway_model=profiling,
        )
    )
    print(f"coupled MD-KMC over {sim.lattice.nsites} sites ...")
    result = sim.run()
    print(f"after MD : {result.report_after_md}")
    print(f"after KMC: {result.report_after_kmc}")
    print(
        f"{result.kmc_events} events over {result.kmc_time:.3g} ps "
        f"-> {result.real_time_seconds:.3g} s real time"
    )
    if result.sunway_report is not None:
        sw = result.sunway_report
        print(
            f"modeled SW26010 force step ({sw['strategy']}): "
            f"{sw['modeled_step_time_s']:.3g} s, "
            f"{sw['dma_operations']:,} DMA ops / {sw['dma_bytes']:,} B"
        )
    if result.fault_report is not None:
        fr = result.fault_report
        print(
            f"faults injected: {fr['injected']} "
            f"({fr['crashes']} crashes, {fr['delays']} delays, "
            f"{fr['duplicates']} duplicates, {fr['stalls']} stalls); "
            f"recoveries: {result.recoveries}"
        )
    elif result.recoveries:
        print(f"recoveries: {result.recoveries}")
    if result.migrations:
        print(f"migrations: {result.migrations}")
    if result.trajectory_path is not None:
        print(
            f"trajectory: {result.trajectory_frames} frames "
            f"-> {result.trajectory_path}"
        )
    if args.sanitize:
        from repro.runtime.sanitize import SUMMARY

        # A violation raises SanitizerError long before this line, so
        # reaching it means every checked world validated clean.
        print(f"sanitizer: clean ({SUMMARY['worlds']} world(s) checked)")
    _finish_observation(args, registry)
    return 0


def _spec_from_submit_args(args):
    from repro.service import ScenarioSpec, SpecError

    try:
        return ScenarioSpec(
            cells=args.cells,
            temperature=args.temperature,
            table_points=args.table_points,
            md_steps=args.md_steps,
            pka_energy=args.pka,
            kmc_max_events=args.events,
            kmc_nranks=args.kmc_ranks,
            kmc_max_cycles=args.kmc_cycles,
            recombination_radius=args.recombination_radius,
            trajectory_every=args.trajectory_every,
            seed=args.seed,
            kmc_scheme=args.kmc_scheme,
            backend=args.backend,
            workers=args.workers,
            faults=args.faults,
            checkpoint_every=args.checkpoint_every,
        )
    except SpecError as exc:
        args._parser.error(str(exc))


def cmd_submit(args) -> int:
    from repro.service import ServiceClient

    spec = _spec_from_submit_args(args)
    record = ServiceClient(args.root).submit(spec)
    print(
        f"submitted {record.job_id} key={record.key[:12]} "
        f"({record.state}) -> {args.root}"
    )
    return 0


def cmd_serve(args) -> int:
    from repro.service import ServicePool

    pool = ServicePool(
        args.root,
        workers=args.workers,
        max_attempts=args.max_attempts,
        notify=print,
    )
    mode = "drain" if args.drain else "watch"
    print(
        f"serving {args.root} with {args.workers} worker(s) "
        f"(max {args.max_attempts} attempt(s)/job, {mode} mode)"
    )
    try:
        pool.run(drain=args.drain, poll=args.poll)
    except KeyboardInterrupt:
        print("interrupted; leaving in-flight workers to finish")
        pool.shutdown(kill=False)
        return 130
    print("queue drained")
    return 0


def cmd_status(args) -> int:
    import json

    from repro.service import ServiceClient
    from repro.service.scheduler import summarize

    client = ServiceClient(args.root)
    if args.job is not None:
        record = client.job(args.job)
        print(
            f"{record.job_id}  {record.state:8s} key={record.key[:12]}  "
            f"attempts={record.attempts}  {record.mode or '-'}"
        )
        if record.error:
            print(f"  error: {record.error}")
        snapshot = client.observe_snapshot(args.job)
        if snapshot is not None:
            counters = snapshot.get("counters", {})
            print(f"  stage: {snapshot.get('stage', '?')}")
            for name in sorted(counters):
                print(f"  {name}: {counters[name]:g}")
        return 0
    records = client.jobs()
    for record in records:
        line = (
            f"{record.job_id}  {record.state:8s} key={record.key[:12]}  "
            f"attempts={record.attempts}  {record.mode or '-'}"
        )
        if record.error:
            line += f"  error: {record.error}"
        print(line)
    stats = summarize(records)
    states = stats["states"]
    print(
        f"jobs: {stats['total']} total, {states['done']} done, "
        f"{states['failed']} failed, {states['running']} running, "
        f"{states['pending']} pending"
    )
    print(
        f"executions: {stats['executions']}, "
        f"deduplicated: {stats['deduplicated']}, "
        f"retries: {stats['retries']}"
    )
    # Greppable by scripts (the CI smoke asserts on it).
    print("summary:", json.dumps(stats, sort_keys=True))
    return 0


def cmd_result(args) -> int:
    import json

    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.root)
    try:
        result = client.result(args.job)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(result.summary, indent=2, sort_keys=True))
        return 0
    summary = result.summary
    print(f"{result.job_id} key={result.key}")
    print(f"entry: {result.path}")
    print(
        f"{summary['kmc_events']} events over {summary['kmc_time_ps']:.3g} ps "
        f"-> {summary['real_time_seconds']:.3g} s real time"
    )
    print(
        f"vacancies: {summary['vacancies_after_md']} after MD, "
        f"{summary['vacancies_after_kmc']} after KMC"
    )
    if summary.get("trajectory_frames") is not None:
        print(f"trajectory: {summary['trajectory_frames']} frames")
    print("artifacts:")
    for rel, meta in sorted(result.manifest["artifacts"].items()):
        marker = "*" if meta.get("deterministic") else " "
        print(f" {marker} {rel}  {meta['bytes']} B  sha256={meta['sha256'][:12]}")
    print("(* = bit-deterministic artifact)")
    return 0


def cmd_cascade(args) -> int:
    from repro.lattice.bcc import BCCLattice
    from repro.md.cascade import CascadeConfig, run_cascade
    from repro.md.engine import MDConfig, MDEngine
    from repro.potential.fe import make_fe_potential

    registry = _start_observation(args)
    engine = MDEngine(
        BCCLattice(args.cells, args.cells, args.cells),
        make_fe_potential(n=2000),
        MDConfig(temperature=args.temperature, seed=args.seed),
    )
    result = run_cascade(
        engine,
        CascadeConfig(
            pka_energy=args.pka,
            nsteps=args.steps,
            temperature=args.temperature,
        ),
    )
    print(
        f"PKA {args.pka} eV -> {len(result.vacancy_rows)} vacancies, "
        f"{result.n_runaways} interstitials "
        f"({result.n_frenkel_pairs} Frenkel pairs); "
        f"final T {result.final_temperature:.0f} K"
    )
    _finish_observation(args, registry)
    return 0


def cmd_kmc_schemes(args) -> int:
    import numpy as np

    from repro.kmc.akmc import ParallelAKMC, place_random_vacancies
    from repro.kmc.events import KMCModel, RateParameters
    from repro.lattice.bcc import BCCLattice
    from repro.potential.fe import make_fe_potential

    lattice = BCCLattice(args.cells, args.cells, args.cells)
    potential = make_fe_potential(n=1000)
    params = RateParameters()
    occ0 = place_random_vacancies(
        KMCModel(lattice, potential, params),
        args.vacancies,
        np.random.default_rng(args.seed),
    )
    registry = _start_observation(args)
    reference = None
    print(f"{'scheme':>12} {'events':>7} {'bytes':>12} {'messages':>9}")
    for scheme in ("traditional", "ondemand", "onesided"):
        engine = ParallelAKMC(
            lattice,
            potential,
            params,
            nranks=args.ranks,
            scheme=scheme,
            seed=args.seed,
            backend=args.backend,
            workers=args.workers,
        )
        result = engine.run(occ0, max_cycles=args.cycles)
        stats = result.comm_stats
        print(
            f"{scheme:>12} {result.events:>7} "
            f"{stats['total_sent_bytes']:>12,} "
            f"{stats['total_messages']:>9,}"
        )
        if reference is None:
            reference = result.occupancy
        elif not np.array_equal(result.occupancy, reference):
            print("ERROR: schemes diverged", file=sys.stderr)
            _finish_observation(args, registry)
            return 1
    print("all schemes produced identical trajectories")
    _finish_observation(args, registry)
    return 0


def cmd_figure(args) -> int:
    import importlib

    registry = _start_observation(args)
    module = importlib.import_module(
        f"repro.experiments.{FIGURES[args.id]}"
    )
    module.main()
    _finish_observation(args, registry)
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    import os

    args = build_parser().parse_args(argv)
    if getattr(args, "kernels", None):
        # Every dispatch site resolves REPRO_KERNELS, so the flag just
        # pins the environment for this process (children inherit it).
        os.environ["REPRO_KERNELS"] = args.kernels
    if args.command == "info":
        return cmd_info()
    if args.command == "coupled":
        return cmd_coupled(args)
    if args.command == "cascade":
        return cmd_cascade(args)
    if args.command == "kmc-schemes":
        return cmd_kmc_schemes(args)
    if args.command == "figure":
        return cmd_figure(args)
    if args.command == "submit":
        return cmd_submit(args)
    if args.command == "serve":
        return cmd_serve(args)
    if args.command == "status":
        return cmd_status(args)
    if args.command == "result":
        return cmd_result(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
