"""Figure 17: vacancy clustering across the coupled MD-KMC run.

Paper finding (3.2e10 atoms, 19.2 days of simulated time): after MD "the
vacancies are very dispersive"; after KMC "the vacancies are relatively
more aggregative and several vacancy clusters are forming".

Reproduction: at toy scale a single cascade deposits its vacancies in one
spot, so the dispersed "after MD" state is produced as the superposition
of many *distant* cascade events — random vacancy positions at a fixed
concentration (documented substitution; the KMC stage, which is what the
figure demonstrates, is the real engine either way).  The clustering
statistics before/after KMC quantify what the paper's renderings show:
the maximum cluster grows, the cluster count falls, and the mean
nearest-neighbor distance among vacancies shrinks.

A second mode (``from_cascade=True``) runs the full MD cascade pipeline
end-to-end instead.
"""

from __future__ import annotations

import numpy as np

from repro.core.clusters import clustering_report, clustering_report_from_store
from repro.core.coupling import CoupledConfig, CoupledSimulation
from repro.core.timescale import kmc_real_time
from repro.io.store import TrajectoryReader, TrajectoryWriter, finalize_store
from repro.kmc.akmc import SerialAKMC, place_random_vacancies
from repro.kmc.events import KMCModel, RateParameters
from repro.lattice.bcc import BCCLattice
from repro.potential.fe import make_fe_potential

DEFAULT_CELLS = 8
DEFAULT_CONCENTRATION = 2.5e-2
DEFAULT_EVENTS = 2500


def run(
    cells: int = DEFAULT_CELLS,
    concentration: float = DEFAULT_CONCENTRATION,
    kmc_events: int = DEFAULT_EVENTS,
    seed: int = 42,
    from_cascade: bool = False,
    store_path=None,
) -> dict:
    """Regenerate the Figure 17 before/after clustering comparison.

    With ``store_path`` the run streams its trajectory into an on-disk
    chunked store (:mod:`repro.io.store`) and the before/after clustering
    reports are computed *from the store* — frame 0 (post-MD) and the
    final frame — instead of from in-memory occupancies.  The numbers
    are identical either way; the store-fed path just proves the
    analysis can run out-of-core on arbitrarily long trajectories.
    """
    if from_cascade:
        sim = CoupledSimulation(
            CoupledConfig(
                cells=cells,
                kmc_max_events=kmc_events,
                seed=seed,
                trajectory=None if store_path is None else str(store_path),
            )
        )
        res = sim.run()
        before = res.report_after_md
        after = res.report_after_kmc
        vac_before = res.vacancies_after_md
        vac_after = res.vacancies_after_kmc
        kmc_time = res.kmc_time
        lattice = sim.lattice
    else:
        lattice = BCCLattice(cells, cells, cells)
        potential = make_fe_potential(n=1000)
        params = RateParameters()
        model = KMCModel(lattice, potential, params)
        nvac = max(4, int(lattice.nsites * concentration))
        occ0 = place_random_vacancies(model, nvac, np.random.default_rng(seed))
        vac_before = model.sites[np.flatnonzero(occ0 == 0)]
        before = clustering_report(lattice, vac_before)
        if store_path is not None:
            # Seed the "before" frame, then let the engine append.
            writer = TrajectoryWriter(store_path, lattice, mode="w")
            writer.append(0.0, occ0)
            writer.close(final=False)
        engine = SerialAKMC(lattice, potential, params, occ0, seed=seed)
        result = engine.run(max_events=kmc_events, trajectory=store_path)
        vac_after = result.vacancy_ranks
        after = clustering_report(lattice, vac_after)
        kmc_time = result.time
    if store_path is not None:
        finalize_store(store_path)
        reader = TrajectoryReader(store_path)
        before = clustering_report_from_store(reader, 0)
        after = clustering_report_from_store(reader, -1)
        vac_before = reader.vacancy_ranks(0)
        vac_after = reader.vacancy_ranks(len(reader) - 1)
    real_seconds = kmc_real_time(
        t_threshold=kmc_time * 1e-12,
        c_mc=len(vac_before) / lattice.nsites,
    )
    return {
        "before": before,
        "after": after,
        "vacancies_before": vac_before,
        "vacancies_after": vac_after,
        "kmc_time_ps": kmc_time,
        "real_time_seconds": real_seconds,
        "summary": {
            "max_cluster_growth": after.max_cluster / max(before.max_cluster, 1),
            "nn_distance_shrink": after.mean_nn_distance / before.mean_nn_distance,
            "cluster_count_change": after.n_clusters - before.n_clusters,
        },
    }


def main() -> None:  # pragma: no cover - CLI entry
    result = run()
    print("after MD (dispersed): ", result["before"])
    print("after KMC (clustered):", result["after"])
    s = result["summary"]
    print(
        f"\nmax cluster grew {s['max_cluster_growth']:.1f}x; mean NN "
        f"distance shrank to {s['nn_distance_shrink']:.2f}x; cluster count "
        f"changed by {s['cluster_count_change']}"
    )
    print(
        f"KMC time {result['kmc_time_ps']:.3g} ps -> real time "
        f"{result['real_time_seconds']:.3g} s by the paper's formula"
    )


if __name__ == "__main__":  # pragma: no cover
    main()
