"""Experiment regeneration: one module per figure of the paper's §3.

Every module exposes ``run(...)`` returning a dict with ``rows`` (the
figure's data series) and ``summary`` (the headline comparisons), plus a
``main()`` that prints the table — so each figure can be regenerated with
``python -m repro.experiments.fig12_kmc_comm_volume``.

The benchmarks under ``benchmarks/`` call these same functions and assert
the shape criteria of DESIGN.md §4.
"""

from repro.experiments import (
    fig09_md_optimizations,
    fig10_md_strong_scaling,
    fig11_md_weak_scaling,
    fig12_kmc_comm_volume,
    fig13_kmc_comm_time,
    fig14_kmc_strong_scaling,
    fig15_kmc_weak_scaling,
    fig16_coupled_weak_scaling,
    fig17_vacancy_clustering,
    memory_table,
)

__all__ = [
    "fig09_md_optimizations",
    "fig10_md_strong_scaling",
    "fig11_md_weak_scaling",
    "fig12_kmc_comm_volume",
    "fig13_kmc_comm_time",
    "fig14_kmc_strong_scaling",
    "fig15_kmc_weak_scaling",
    "fig16_coupled_weak_scaling",
    "fig17_vacancy_clustering",
    "memory_table",
]
