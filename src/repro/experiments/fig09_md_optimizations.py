"""Figure 9: MD optimization ladder on Sunway core groups.

Paper setup: MD with 2e7 atoms on 65..1040 master+slave cores (1..16
CGs); four variants — traditional interpolation table, compacted table,
+ ghost data reuse, + double buffer.  Findings: "the compacted tables
improve the performance by 54.7% on average in geometric mean", "ghost
data reuse further improves the performance by 4% on average", "double
buffer does not bring obvious performance improvement".

Reproduction: the blocked CPE kernel executes the real EAM step on a
scaled-down lattice under each strategy; multi-CG points divide the
per-CG work and add the modeled inter-node exchange.
"""

from __future__ import annotations

import numpy as np

from repro.lattice.bcc import BCCLattice
from repro.md.neighbors.lattice_list import LatticeNeighborList
from repro.md.state import AtomState
from repro.perfmodel.machine import TAIHULIGHT
from repro.perfmodel.md_model import boundary_sites
from repro.potential.fe import make_fe_potential
from repro.sunway.arch import SunwayArch
from repro.sunway.kernel import STRATEGY_LADDER, BlockedEAMKernel

#: The paper's x-axis, in master+slave cores (1, 2, 4, 8, 16 CGs).
PAPER_CORES = (65, 130, 260, 520, 1040)

#: Scaled-down workload (sites) standing in for the paper's 2e7 atoms.
DEFAULT_CELLS = 20


def run(
    cells: int = DEFAULT_CELLS,
    cores_list: tuple[int, ...] = PAPER_CORES,
    table_points: int = 5000,
    seed: int = 0,
) -> dict:
    """Regenerate the Figure 9 series.

    Returns ``rows`` — one dict per (strategy, cores) with the modeled
    total runtime — and ``summary`` with the three headline ratios.
    """
    lattice = BCCLattice(cells, cells, cells)
    potential = make_fe_potential(n=min(table_points, 2000))
    state = AtomState.perfect(lattice)
    rng = np.random.default_rng(seed)
    state.x = state.x + rng.normal(0.0, 0.05, state.x.shape)
    nblist = LatticeNeighborList(lattice, potential.cutoff)
    arch = SunwayArch()
    machine = TAIHULIGHT
    network = machine.network

    per_strategy_time: dict[str, float] = {}
    reports = {}
    for strategy in STRATEGY_LADDER:
        kernel = BlockedEAMKernel(
            arch, potential, strategy, table_points=table_points
        )
        report = kernel.run_step(state, nblist)
        per_strategy_time[strategy.name] = report.total_time
        reports[strategy.name] = report

    rows = []
    for cores in cores_list:
        cgs = machine.cgs_from_cores(cores)
        atoms_per = lattice.nsites / cgs
        surface = boundary_sites(atoms_per) if cgs > 1 else 0.0
        comm = 2 * network.exchange(26, surface * 32.0, cgs) if cgs > 1 else 0.0
        for strategy in STRATEGY_LADDER:
            total = per_strategy_time[strategy.name] / cgs + comm
            rows.append(
                {
                    "cores": cores,
                    "cgs": cgs,
                    "strategy": strategy.name,
                    "time": total,
                }
            )

    t = per_strategy_time
    base = t["TraditionalTable"]
    compact = t["CompactedTable"]
    reuse = t["CompactedTable+DataReuse"]
    double = t["CompactedTable+DataReuse+DoubleBuffer"]
    summary = {
        "compacted_improvement": (base - compact) / base,
        "reuse_improvement": (compact - reuse) / compact,
        "double_buffer_improvement": (reuse - double) / reuse,
        "traditional_dma_ops": reports["TraditionalTable"].dma.operations,
        "compacted_dma_ops": reports["CompactedTable"].dma.operations,
        "nsites": lattice.nsites,
        "paper": {
            "compacted_improvement": 0.547,
            "reuse_improvement": 0.04,
            "double_buffer_improvement": 0.0,
        },
    }
    return {"rows": rows, "summary": summary}


def main() -> None:  # pragma: no cover - CLI entry
    result = run()
    print(f"{'cores':>6} {'strategy':42} {'time (ms)':>10}")
    for row in result["rows"]:
        print(f"{row['cores']:>6} {row['strategy']:42} {row['time'] * 1e3:>10.3f}")
    s = result["summary"]
    print(
        f"\ncompacted improvement: {s['compacted_improvement']:.1%} "
        f"(paper: {s['paper']['compacted_improvement']:.1%})"
    )
    print(
        f"+ data reuse:          {s['reuse_improvement']:.1%} "
        f"(paper: ~{s['paper']['reuse_improvement']:.0%})"
    )
    print(
        f"+ double buffer:       {s['double_buffer_improvement']:.1%} "
        f"(paper: no obvious improvement)"
    )


if __name__ == "__main__":  # pragma: no cover
    main()
