"""Figure 11: MD weak scaling, 3.9e7 atoms per core group.

Paper finding: "Our MD code scales up to 6.656 million cores with total
4.0e12 atoms by a 85% parallel efficiency ... the computation time
remains almost constant on different numbers of cores. However, the
communication time for larger number of cores is a little higher, which
is caused by the communication contention."

Also reproduced here: the in-text memory headroom claim — with the
lattice neighbor list 4e12 atoms fit the machine where a Verlet-list code
manages ~8e11.
"""

from __future__ import annotations

from repro.md.neighbors.memory import (
    lattice_list_footprint,
    verlet_list_footprint,
)
from repro.perfmodel.calibrate import calibrate_from_kernels
from repro.perfmodel.machine import TAIHULIGHT
from repro.perfmodel.md_model import MDScalingModel, paper_core_counts_weak

PAPER_ATOMS_PER_CG = 3.9e7
PAPER_EFFICIENCY = 0.85
MD_CUTOFF = 5.6


def run(atoms_per_cg: float = PAPER_ATOMS_PER_CG, cores_list=None) -> dict:
    """Regenerate the Figure 11 compute/communication bars."""
    cores_list = list(cores_list or paper_core_counts_weak())
    model = MDScalingModel(calibrate_from_kernels())
    rows = model.weak_scaling(atoms_per_cg, cores_list)

    # Memory headroom at the top scale (102,400 CGs x 8 GB).
    total_cgs = TAIHULIGHT.cgs_from_cores(cores_list[-1])
    capacity = total_cgs * TAIHULIGHT.arch.memory_per_cg
    lattice_atoms = lattice_list_footprint(MD_CUTOFF).max_atoms(capacity)
    verlet_atoms = verlet_list_footprint(MD_CUTOFF).max_atoms(capacity)
    summary = {
        "final_efficiency": rows[-1]["efficiency"],
        "compute_flat_ratio": rows[-1]["compute"] / rows[0]["compute"],
        "comm_growth_ratio": rows[-1]["comm"] / rows[0]["comm"],
        "lattice_list_max_atoms": lattice_atoms,
        "verlet_list_max_atoms": verlet_atoms,
        "memory_advantage": lattice_atoms / verlet_atoms,
        "paper": {
            "efficiency": PAPER_EFFICIENCY,
            "lattice_list_atoms": 4.0e12,
            "verlet_list_atoms": 8.0e11,
        },
    }
    return {"rows": rows, "summary": summary}


def main() -> None:  # pragma: no cover - CLI entry
    result = run()
    print(f"{'cores':>10} {'compute(s)':>11} {'comm(s)':>9} {'eff':>7}")
    for r in result["rows"]:
        print(
            f"{r['cores']:>10,} {r['compute']:>11.2f} {r['comm']:>9.3f} "
            f"{r['efficiency']:>6.1%}"
        )
    s = result["summary"]
    print(f"\nfinal efficiency: {s['final_efficiency']:.1%} (paper: 85%)")
    print(
        f"memory headroom: {s['lattice_list_max_atoms']:.2e} atoms (lattice "
        f"list) vs {s['verlet_list_max_atoms']:.2e} (Verlet list) — "
        f"{s['memory_advantage']:.1f}x (paper: 4e12 vs 8e11, 5x)"
    )


if __name__ == "__main__":  # pragma: no cover
    main()
