"""Shared driver of the Figures 12-13 communication experiments.

Runs the *same* parallel AKMC workload under the traditional and
on-demand schemes and collects measured communication volume and modeled
communication time.  Scaled down from the paper's 1.6e7 sites / 16-1024
masters to what an in-process runtime executes in seconds; the vacancy
concentration — the variable the on-demand advantage rides on — is kept
realistically low.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.kmc.akmc import ParallelAKMC, place_random_vacancies
from repro.kmc.events import KMCModel, RateParameters
from repro.lattice.bcc import BCCLattice
from repro.potential.fe import make_fe_potential
from repro.runtime.netmodel import SUNWAY_NETWORK

#: Default scaled-down rank counts (paper: 16..1024 master cores).
DEFAULT_RANKS = (8, 27)

#: Default lattice cells per axis per rank-grid cell (subdomain >= 4 for
#: conflict-free sectoring at the KMC ghost width of 2).
CELLS_PER_RANK_AXIS = 4


@lru_cache(maxsize=8)
def _run_pair(
    ranks: int,
    cycles: int,
    vacancies: int,
    seed: int,
    cells_per_axis: int,
) -> tuple[dict, dict]:
    """(traditional stats, ondemand stats) for one configuration."""
    grid_side = round(ranks ** (1.0 / 3.0))
    if grid_side**3 != ranks:
        raise ValueError(f"ranks must be a cube for this experiment, got {ranks}")
    cells = grid_side * cells_per_axis
    lattice = BCCLattice(cells, cells, cells)
    potential = make_fe_potential(n=1000)
    params = RateParameters()
    model = KMCModel(lattice, potential, params)
    occ0 = place_random_vacancies(
        model, vacancies, np.random.default_rng(seed)
    )
    out = []
    results = {}
    for scheme in ("traditional", "ondemand"):
        engine = ParallelAKMC(
            lattice,
            potential,
            params,
            grid=(grid_side, grid_side, grid_side),
            scheme=scheme,
            seed=seed,
            network=SUNWAY_NETWORK,
        )
        result = engine.run(occ0, max_cycles=cycles)
        stats = dict(result.comm_stats)
        stats["events"] = result.events
        stats["nsites"] = lattice.nsites
        out.append(stats)
        results[scheme] = result
    # The schemes must have simulated the *same* trajectory, or the
    # comparison is meaningless.
    if not np.array_equal(
        results["traditional"].occupancy, results["ondemand"].occupancy
    ):
        raise AssertionError(
            "traditional and on-demand schemes diverged; the communication "
            "comparison would be invalid"
        )
    return tuple(out)


def run_comm_experiment(
    ranks_list: tuple[int, ...] = DEFAULT_RANKS,
    cycles: int = 8,
    vacancy_concentration: float = 2e-3,
    seed: int = 2018,
    cells_per_axis: int = CELLS_PER_RANK_AXIS,
) -> list[dict]:
    """Rows of {ranks, scheme -> volume/time/messages} comparisons."""
    rows = []
    for ranks in ranks_list:
        grid_side = round(ranks ** (1.0 / 3.0))
        cells = grid_side * cells_per_axis
        nsites = 2 * cells**3
        vacancies = max(4, int(nsites * vacancy_concentration))
        trad, ond = _run_pair(ranks, cycles, vacancies, seed, cells_per_axis)
        rows.append(
            {
                "ranks": ranks,
                "nsites": nsites,
                "vacancies": vacancies,
                "events": trad["events"],
                "traditional_bytes": trad["total_sent_bytes"],
                "ondemand_bytes": ond["total_sent_bytes"],
                "traditional_messages": trad["total_messages"],
                "ondemand_messages": ond["total_messages"],
                "traditional_time": trad["max_comm_time"],
                "ondemand_time": ond["max_comm_time"],
                "volume_ratio": (
                    ond["total_sent_bytes"] / trad["total_sent_bytes"]
                    if trad["total_sent_bytes"]
                    else float("nan")
                ),
                "time_speedup": (
                    trad["max_comm_time"] / ond["max_comm_time"]
                    if ond["max_comm_time"]
                    else float("nan")
                ),
            }
        )
    return rows
