"""Figure 12: KMC communication volume, traditional vs on-demand.

Paper setup: 1.6e7 sites on 16-1024 master cores, vacancy concentration
4.5e-5.  Finding: "The on-demand communication strategy reduces the
communication volume to 2.6% of the traditional method on average."

Reproduction: *measured bytes* from real parallel AKMC runs on the
in-process runtime, both schemes driven through identical trajectories
(asserted).  Scale is reduced (see ``_kmc_comm``); the mechanism — only
event-affected sites travel, and events are scarce — is identical, so
the on-demand volume lands at a few percent or less of the traditional
strips.
"""

from __future__ import annotations

import math

from repro.experiments._kmc_comm import DEFAULT_RANKS, run_comm_experiment

PAPER_VOLUME_RATIO = 0.026


def run(ranks_list=DEFAULT_RANKS, cycles: int = 8, seed: int = 2018) -> dict:
    """Regenerate the Figure 12 volume comparison."""
    rows = run_comm_experiment(tuple(ranks_list), cycles=cycles, seed=seed)
    ratios = [r["volume_ratio"] for r in rows]
    summary = {
        "mean_volume_ratio": math.exp(
            sum(math.log(x) for x in ratios) / len(ratios)
        ),
        "paper": {"volume_ratio": PAPER_VOLUME_RATIO},
    }
    return {"rows": rows, "summary": summary}


def main() -> None:  # pragma: no cover - CLI entry
    result = run()
    print(
        f"{'ranks':>6} {'sites':>7} {'events':>7} {'traditional (B)':>16} "
        f"{'on-demand (B)':>14} {'ratio':>8}"
    )
    for r in result["rows"]:
        print(
            f"{r['ranks']:>6} {r['nsites']:>7} {r['events']:>7} "
            f"{r['traditional_bytes']:>16,} {r['ondemand_bytes']:>14,} "
            f"{r['volume_ratio']:>8.2%}"
        )
    s = result["summary"]
    print(
        f"\ngeometric-mean volume ratio: {s['mean_volume_ratio']:.2%} "
        f"(paper: {s['paper']['volume_ratio']:.1%})"
    )


if __name__ == "__main__":  # pragma: no cover
    main()
