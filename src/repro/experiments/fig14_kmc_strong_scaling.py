"""Figure 14: KMC strong scaling, 3.2e10 sites on 1,500 -> 48,000 masters.

Paper findings: "Our KMC algorithm exhibits 18.5-fold speedup on 48,000
cores, indicating 58.2% parallel efficiency in strong scaling. The
super-linear speedup from 3,000 to 12,000 cores is due to the benefit of
L2 cache on the master cores, which can store the entire dataset."

Reproduction: the calibrated KMC cycle model with the L2 working-set
effect (see DESIGN.md).

:func:`run_measured` complements the analytic curve with an *executed*
measurement: the same :class:`~repro.kmc.akmc.ParallelAKMC` problem run
at several rank counts, timing real wall-clock per simmpi backend (the
``process`` backend delivers genuine multi-core scaling; the thread
backend is the GIL-serialized baseline).
"""

from __future__ import annotations

import time

from repro.perfmodel.calibrate import calibrate_from_kernels
from repro.perfmodel.kmc_model import KMCScalingModel, paper_kmc_strong_cores

PAPER_SITES = 3.2e10
PAPER_SPEEDUP = 18.5
PAPER_EFFICIENCY = 0.582
PAPER_CONCENTRATION = 4.5e-5


def run(total_sites: float = PAPER_SITES, cores_list=None) -> dict:
    """Regenerate the Figure 14 speedup curve."""
    cores_list = list(cores_list or paper_kmc_strong_cores())
    model = KMCScalingModel(
        calibrate_from_kernels(), vacancy_concentration=PAPER_CONCENTRATION
    )
    rows = model.strong_scaling(total_sites, cores_list)
    top = rows[-1]
    superlinear = [r["cores"] for r in rows if r["efficiency"] > 1.0 + 1e-9]
    summary = {
        "max_speedup": top["speedup"],
        "final_efficiency": top["efficiency"],
        "superlinear_cores": superlinear,
        "paper": {
            "speedup": PAPER_SPEEDUP,
            "efficiency": PAPER_EFFICIENCY,
            "superlinear_window": (3000, 12000),
        },
    }
    return {"rows": rows, "summary": summary}


def run_measured(
    cells: int = 8,
    max_cycles: int = 6,
    vacancies: int = 20,
    ranks_list=(1, 2, 4),
    backend: str = "process",
    scheme: str = "ondemand",
    seed: int = 5,
    workers: int | None = None,
) -> dict:
    """Executed strong scaling: one parallel-AKMC problem, varying ranks.

    Returns rows of ``{"ranks", "workers", "wall_s", "speedup",
    "efficiency", "events"}`` (speedup relative to the smallest rank
    count on the same backend).  Note AKMC trajectories are a function
    of (seed, rank, cycle, sector), so different rank counts
    legitimately walk different trajectories — determinism is only
    asserted per rank count across repeats/backends, not across rank
    counts.

    ``workers`` selects the physical worker count for the
    ``overdecomposed`` / rank-group backends: paper-scale logical
    decompositions (64–1024 masters) then become *measured* runs on a
    handful of cores, and the returned ``events``/``wall_s`` feed
    :func:`repro.perfmodel.calibrate.calibrate_from_measured`.
    """
    import numpy as np

    from repro.kmc.akmc import ParallelAKMC, place_random_vacancies
    from repro.kmc.events import KMCModel, RateParameters
    from repro.lattice.bcc import BCCLattice
    from repro.potential.fe import make_fe_potential

    lattice = BCCLattice(cells, cells, cells)
    potential = make_fe_potential(n=1000)
    params = RateParameters()
    occ0 = place_random_vacancies(
        KMCModel(lattice, potential, params),
        vacancies,
        np.random.default_rng(seed),
    )
    rows = []
    for nranks in ranks_list:
        engine = ParallelAKMC(
            lattice,
            potential,
            params,
            nranks=nranks,
            scheme=scheme,
            seed=seed,
            backend=backend,
            workers=workers,
        )
        t0 = time.perf_counter()
        result = engine.run(occ0.copy(), max_cycles=max_cycles)
        wall = time.perf_counter() - t0
        rows.append(
            {
                "ranks": nranks,
                "workers": workers,
                "wall_s": wall,
                "events": result.events,
            }
        )
    base = rows[0]
    for row in rows:
        row["speedup"] = base["wall_s"] / row["wall_s"]
        row["efficiency"] = row["speedup"] / (row["ranks"] / base["ranks"])
    return {
        "backend": backend,
        "workers": workers,
        "scheme": scheme,
        "cells": cells,
        "max_cycles": max_cycles,
        "nsites": lattice.nsites,
        "rows": rows,
    }


def main() -> None:  # pragma: no cover - CLI entry
    result = run()
    print(f"{'cores':>8} {'speedup':>8} {'ideal':>6} {'eff':>8} {'L2':>6}")
    for r in result["rows"]:
        print(
            f"{r['cores']:>8,} {r['speedup']:>8.1f} {r['ideal_speedup']:>6.0f} "
            f"{r['efficiency']:>7.1%} {r['l2_resident']!s:>6}"
        )
    s = result["summary"]
    print(
        f"\nfinal: {s['max_speedup']:.1f}x / {s['final_efficiency']:.1%} "
        f"(paper: {s['paper']['speedup']}x / {s['paper']['efficiency']:.1%}); "
        f"super-linear at {s['superlinear_cores']} "
        f"(paper window: {s['paper']['superlinear_window']})"
    )


if __name__ == "__main__":  # pragma: no cover
    main()
