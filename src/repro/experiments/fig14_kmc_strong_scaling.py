"""Figure 14: KMC strong scaling, 3.2e10 sites on 1,500 -> 48,000 masters.

Paper findings: "Our KMC algorithm exhibits 18.5-fold speedup on 48,000
cores, indicating 58.2% parallel efficiency in strong scaling. The
super-linear speedup from 3,000 to 12,000 cores is due to the benefit of
L2 cache on the master cores, which can store the entire dataset."

Reproduction: the calibrated KMC cycle model with the L2 working-set
effect (see DESIGN.md).
"""

from __future__ import annotations

from repro.perfmodel.calibrate import calibrate_from_kernels
from repro.perfmodel.kmc_model import KMCScalingModel, paper_kmc_strong_cores

PAPER_SITES = 3.2e10
PAPER_SPEEDUP = 18.5
PAPER_EFFICIENCY = 0.582
PAPER_CONCENTRATION = 4.5e-5


def run(total_sites: float = PAPER_SITES, cores_list=None) -> dict:
    """Regenerate the Figure 14 speedup curve."""
    cores_list = list(cores_list or paper_kmc_strong_cores())
    model = KMCScalingModel(
        calibrate_from_kernels(), vacancy_concentration=PAPER_CONCENTRATION
    )
    rows = model.strong_scaling(total_sites, cores_list)
    top = rows[-1]
    superlinear = [r["cores"] for r in rows if r["efficiency"] > 1.0 + 1e-9]
    summary = {
        "max_speedup": top["speedup"],
        "final_efficiency": top["efficiency"],
        "superlinear_cores": superlinear,
        "paper": {
            "speedup": PAPER_SPEEDUP,
            "efficiency": PAPER_EFFICIENCY,
            "superlinear_window": (3000, 12000),
        },
    }
    return {"rows": rows, "summary": summary}


def main() -> None:  # pragma: no cover - CLI entry
    result = run()
    print(f"{'cores':>8} {'speedup':>8} {'ideal':>6} {'eff':>8} {'L2':>6}")
    for r in result["rows"]:
        print(
            f"{r['cores']:>8,} {r['speedup']:>8.1f} {r['ideal_speedup']:>6.0f} "
            f"{r['efficiency']:>7.1%} {str(r['l2_resident']):>6}"
        )
    s = result["summary"]
    print(
        f"\nfinal: {s['max_speedup']:.1f}x / {s['final_efficiency']:.1%} "
        f"(paper: {s['paper']['speedup']}x / {s['paper']['efficiency']:.1%}); "
        f"super-linear at {s['superlinear_cores']} "
        f"(paper window: {s['paper']['superlinear_window']})"
    )


if __name__ == "__main__":  # pragma: no cover
    main()
