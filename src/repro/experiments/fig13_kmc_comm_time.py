"""Figure 13: KMC communication time, traditional vs on-demand.

Paper finding: "Compared with the traditional method, the on-demand
communication strategy obtains 21x speedup on average in terms of
communication time."

Reproduction: the same measured runs as Figure 12, with time from the
alpha-beta network model over the recorded messages (a threaded
in-process runtime has no meaningful communication wall-clock).  At
reduced scale the per-message latency term weighs more than at the
paper's 1.6e7 sites, so the speedup is smaller but still decisively in
the on-demand direction; the volume term (Figure 12) carries the
mechanism.
"""

from __future__ import annotations

import math

from repro.experiments._kmc_comm import DEFAULT_RANKS, run_comm_experiment

PAPER_TIME_SPEEDUP = 21.0


def run(ranks_list=DEFAULT_RANKS, cycles: int = 8, seed: int = 2018) -> dict:
    """Regenerate the Figure 13 communication-time comparison."""
    rows = run_comm_experiment(tuple(ranks_list), cycles=cycles, seed=seed)
    speedups = [r["time_speedup"] for r in rows]
    summary = {
        "mean_time_speedup": math.exp(
            sum(math.log(x) for x in speedups) / len(speedups)
        ),
        "paper": {"time_speedup": PAPER_TIME_SPEEDUP},
    }
    return {"rows": rows, "summary": summary}


def main() -> None:  # pragma: no cover - CLI entry
    result = run()
    print(
        f"{'ranks':>6} {'traditional (s)':>16} {'on-demand (s)':>14} "
        f"{'speedup':>8}"
    )
    for r in result["rows"]:
        print(
            f"{r['ranks']:>6} {r['traditional_time']:>16.6f} "
            f"{r['ondemand_time']:>14.6f} {r['time_speedup']:>8.1f}x"
        )
    s = result["summary"]
    print(
        f"\ngeometric-mean comm-time speedup: {s['mean_time_speedup']:.1f}x "
        f"(paper: {s['paper']['time_speedup']:.0f}x)"
    )


if __name__ == "__main__":  # pragma: no cover
    main()
