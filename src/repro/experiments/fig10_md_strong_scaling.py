"""Figure 10: MD strong scaling, 3.2e10 atoms, 97,500 -> 6,240,000 cores.

Paper finding: "Scaling from 97,500 cores to 6,240,000 cores, we achieve
26.4-fold speedup (41.3% parallel efficiency)."

Reproduction: the calibrated MD scaling model (per-atom cost measured
from the blocked CPE kernel; surface/volume, pack, network and sync terms
per DESIGN.md).

:func:`run_measured` complements the analytic curve with an *executed*
strong-scaling measurement: the same
:class:`~repro.md.parallel_damage.ParallelDamageMD` problem run at
several rank counts on the simmpi runtime, timing real wall-clock per
backend.  On the ``process`` backend and a multi-core host the measured
speedup is genuine multi-core scaling (the thread backend is
GIL-serialized and acts as the flat baseline).
"""

from __future__ import annotations

import time

from repro.perfmodel.calibrate import calibrate_from_kernels
from repro.perfmodel.md_model import MDScalingModel, paper_core_counts_strong

PAPER_ATOMS = 3.2e10
PAPER_SPEEDUP = 26.4
PAPER_EFFICIENCY = 0.413


def run(total_atoms: float = PAPER_ATOMS, cores_list=None) -> dict:
    """Regenerate the Figure 10 speedup/efficiency curve."""
    cores_list = list(cores_list or paper_core_counts_strong())
    model = MDScalingModel(calibrate_from_kernels())
    rows = model.strong_scaling(total_atoms, cores_list)
    top = rows[-1]
    summary = {
        "max_speedup": top["speedup"],
        "max_ideal": top["ideal_speedup"],
        "final_efficiency": top["efficiency"],
        "paper": {"speedup": PAPER_SPEEDUP, "efficiency": PAPER_EFFICIENCY},
    }
    return {"rows": rows, "summary": summary}


def run_measured(
    cells: int = 8,
    nsteps: int = 15,
    ranks_list=(1, 2, 4),
    backend: str = "process",
    seed: int = 3,
    workers: int | None = None,
) -> dict:
    """Executed strong scaling: one damage MD problem, varying rank count.

    Returns rows of ``{"ranks", "workers", "wall_s", "speedup",
    "efficiency"}`` (speedup relative to the first-listed rank count on
    the *same* backend) plus a fingerprint of the final positions, so
    callers can assert that every rank count — and every backend —
    computed the same trajectory.

    ``workers`` selects the physical worker count for the
    ``overdecomposed`` / rank-group backends: paper-scale logical
    decompositions (64–1024 ranks) then become *measured* runs on a
    handful of cores, and the returned ``natoms``/``wall_s`` feed
    :func:`repro.perfmodel.calibrate.calibrate_from_measured`.
    """
    import numpy as np

    from repro.lattice.bcc import BCCLattice
    from repro.md.engine import MDConfig
    from repro.md.parallel_damage import ParallelDamageMD

    config = MDConfig(temperature=300.0, seed=seed)
    pka = (10, np.array([60.0, 35.0, 25.0]))
    lattice_shape = (cells, cells, cells)
    natoms = BCCLattice(*lattice_shape).nsites
    rows = []
    fingerprints = set()
    for nranks in ranks_list:
        engine = ParallelDamageMD(
            BCCLattice(*lattice_shape),
            config=config,
            nranks=nranks,
            backend=backend,
            workers=workers,
        )
        t0 = time.perf_counter()
        result = engine.run(nsteps, pka=pka)
        wall = time.perf_counter() - t0
        rows.append({"ranks": nranks, "workers": workers, "wall_s": wall})
        fingerprints.add(result.positions.tobytes())
    base = rows[0]["wall_s"]
    for row in rows:
        row["speedup"] = base / row["wall_s"]
        row["efficiency"] = row["speedup"] / (row["ranks"] / rows[0]["ranks"])
    return {
        "backend": backend,
        "workers": workers,
        "cells": cells,
        "nsteps": nsteps,
        "natoms": natoms,
        "rows": rows,
        "deterministic": len(fingerprints) == 1,
    }


def main() -> None:  # pragma: no cover - CLI entry
    result = run()
    print(f"{'cores':>10} {'speedup':>8} {'ideal':>6} {'eff':>7}")
    for r in result["rows"]:
        print(
            f"{r['cores']:>10,} {r['speedup']:>8.1f} {r['ideal_speedup']:>6.0f} "
            f"{r['efficiency']:>6.1%}"
        )
    s = result["summary"]
    print(
        f"\nfinal: {s['max_speedup']:.1f}x / {s['final_efficiency']:.1%} "
        f"(paper: {s['paper']['speedup']}x / {s['paper']['efficiency']:.1%})"
    )


if __name__ == "__main__":  # pragma: no cover
    main()
