"""Figure 10: MD strong scaling, 3.2e10 atoms, 97,500 -> 6,240,000 cores.

Paper finding: "Scaling from 97,500 cores to 6,240,000 cores, we achieve
26.4-fold speedup (41.3% parallel efficiency)."

Reproduction: the calibrated MD scaling model (per-atom cost measured
from the blocked CPE kernel; surface/volume, pack, network and sync terms
per DESIGN.md).
"""

from __future__ import annotations

from repro.perfmodel.calibrate import calibrate_from_kernels
from repro.perfmodel.md_model import MDScalingModel, paper_core_counts_strong

PAPER_ATOMS = 3.2e10
PAPER_SPEEDUP = 26.4
PAPER_EFFICIENCY = 0.413


def run(total_atoms: float = PAPER_ATOMS, cores_list=None) -> dict:
    """Regenerate the Figure 10 speedup/efficiency curve."""
    cores_list = list(cores_list or paper_core_counts_strong())
    model = MDScalingModel(calibrate_from_kernels())
    rows = model.strong_scaling(total_atoms, cores_list)
    top = rows[-1]
    summary = {
        "max_speedup": top["speedup"],
        "max_ideal": top["ideal_speedup"],
        "final_efficiency": top["efficiency"],
        "paper": {"speedup": PAPER_SPEEDUP, "efficiency": PAPER_EFFICIENCY},
    }
    return {"rows": rows, "summary": summary}


def main() -> None:  # pragma: no cover - CLI entry
    result = run()
    print(f"{'cores':>10} {'speedup':>8} {'ideal':>6} {'eff':>7}")
    for r in result["rows"]:
        print(
            f"{r['cores']:>10,} {r['speedup']:>8.1f} {r['ideal_speedup']:>6.0f} "
            f"{r['efficiency']:>6.1%}"
        )
    s = result["summary"]
    print(
        f"\nfinal: {s['max_speedup']:.1f}x / {s['final_efficiency']:.1%} "
        f"(paper: {s['paper']['speedup']}x / {s['paper']['efficiency']:.1%})"
    )


if __name__ == "__main__":  # pragma: no cover
    main()
