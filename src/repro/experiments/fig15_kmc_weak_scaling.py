"""Figure 15: KMC weak scaling, 1e7 sites per master core.

Paper findings: "We keep 1e7 sites per core as the number of cores
increases from 1,600 to 102,400. ... the computation time remains almost
constant while the communication time increases gradually. The increased
communication time is due to the collective operations used for time
synchronization. Our KMC code scales up to 102,400 cores with 74%
parallel efficiency."  Vacancy concentration: 2e-6.
"""

from __future__ import annotations

from repro.perfmodel.calibrate import calibrate_from_kernels
from repro.perfmodel.kmc_model import KMCScalingModel, paper_kmc_weak_cores

PAPER_SITES_PER_CORE = 1e7
PAPER_EFFICIENCY = 0.74
PAPER_CONCENTRATION = 2e-6


def run(sites_per_core: float = PAPER_SITES_PER_CORE, cores_list=None) -> dict:
    """Regenerate the Figure 15 compute/communication bars."""
    cores_list = list(cores_list or paper_kmc_weak_cores())
    model = KMCScalingModel(
        calibrate_from_kernels(), vacancy_concentration=PAPER_CONCENTRATION
    )
    rows = model.weak_scaling(sites_per_core, cores_list)
    summary = {
        "final_efficiency": rows[-1]["efficiency"],
        "compute_flat_ratio": rows[-1]["compute"] / rows[0]["compute"],
        "comm_growth_ratio": rows[-1]["comm"] / rows[0]["comm"],
        "sync_growth_ratio": rows[-1]["sync"] / rows[0]["sync"],
        "paper": {"efficiency": PAPER_EFFICIENCY},
    }
    return {"rows": rows, "summary": summary}


def main() -> None:  # pragma: no cover - CLI entry
    result = run()
    print(f"{'cores':>9} {'compute(ms)':>12} {'comm(ms)':>9} {'eff':>7}")
    for r in result["rows"]:
        print(
            f"{r['cores']:>9,} {r['compute'] * 1e3:>12.2f} "
            f"{r['comm'] * 1e3:>9.2f} {r['efficiency']:>6.1%}"
        )
    s = result["summary"]
    print(
        f"\nfinal efficiency: {s['final_efficiency']:.1%} "
        f"(paper: {s['paper']['efficiency']:.0%}); compute flat "
        f"(x{s['compute_flat_ratio']:.2f}), comm grows "
        f"(x{s['comm_growth_ratio']:.2f})"
    )


if __name__ == "__main__":  # pragma: no cover
    main()
