"""In-text memory claim: atoms per memory budget, per neighbor structure.

§3 (weak scaling): "Our MD code scales up to 6.656 million cores with
total 4.0e12 atoms ... Using the traditional data structures (such as
neighbor list), we only simulate about 8.0e11 atoms on 6.656 million
cores. The lower memory consumption of our lattice neighbor list
structure contributes to a much larger spatial scale of MD."

Reproduction: bytes-per-atom accounting of the three structures
(:mod:`repro.md.neighbors.memory`) against the machine's aggregate memory
at the paper's top scale.
"""

from __future__ import annotations

from repro.md.neighbors.memory import (
    lattice_list_footprint,
    linked_cell_footprint,
    max_atoms_in_memory,
    verlet_list_footprint,
)
from repro.perfmodel.machine import TAIHULIGHT

MD_CUTOFF = 5.6
PAPER_CORES = 6_656_000


def run(cores: int = PAPER_CORES, cutoff: float = MD_CUTOFF) -> dict:
    """Regenerate the memory-headroom comparison."""
    cgs = TAIHULIGHT.cgs_from_cores(cores)
    capacity = cgs * TAIHULIGHT.arch.memory_per_cg
    atoms = max_atoms_in_memory(capacity, cutoff)
    footprints = {
        "lattice_list": lattice_list_footprint(cutoff),
        "verlet_list": verlet_list_footprint(cutoff),
        "linked_cell": linked_cell_footprint(cutoff),
    }
    rows = [
        {
            "structure": name,
            "bytes_per_atom": fp.bytes_per_atom,
            "max_atoms": atoms[name],
        }
        for name, fp in footprints.items()
    ]
    summary = {
        "advantage_vs_verlet": atoms["lattice_list"] / atoms["verlet_list"],
        "lattice_list_atoms": atoms["lattice_list"],
        "verlet_list_atoms": atoms["verlet_list"],
        "paper": {"lattice_list_atoms": 4.0e12, "verlet_list_atoms": 8.0e11},
    }
    return {"rows": rows, "summary": summary}


def main() -> None:  # pragma: no cover - CLI entry
    result = run()
    print(f"{'structure':14} {'B/atom':>8} {'atoms @ 6.656M cores':>22}")
    for r in result["rows"]:
        print(
            f"{r['structure']:14} {r['bytes_per_atom']:>8.1f} "
            f"{r['max_atoms']:>22.3e}"
        )
    s = result["summary"]
    print(
        f"\nlattice list fits {s['advantage_vs_verlet']:.1f}x more atoms than "
        f"the Verlet list (paper: 4e12 vs 8e11 = 5x)"
    )


if __name__ == "__main__":  # pragma: no cover
    main()
