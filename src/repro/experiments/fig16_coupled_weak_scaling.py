"""Figure 16: coupled MD-KMC weak scaling, 3.3e5 atoms per core group.

Paper finding: "The number of cores increases from 97,500 to 6,240,000
while the number of atoms increases from 5.0e8 to 3.2e10. ... attains
75.7% parallel efficiency on 6,240,000 cores" (annotated points: 98.9%,
77.4%, 75.7%).
"""

from __future__ import annotations

from repro.perfmodel.calibrate import calibrate_from_kernels
from repro.perfmodel.coupled_model import (
    CoupledScalingModel,
    paper_coupled_atoms_per_cg,
    paper_coupled_cores,
)

PAPER_EFFICIENCY = 0.757


def run(atoms_per_cg: float | None = None, cores_list=None) -> dict:
    """Regenerate the Figure 16 efficiency series."""
    atoms_per_cg = atoms_per_cg or paper_coupled_atoms_per_cg()
    cores_list = list(cores_list or paper_coupled_cores())
    model = CoupledScalingModel(calibrate_from_kernels())
    rows = model.weak_scaling(atoms_per_cg, cores_list)
    summary = {
        "final_efficiency": rows[-1]["efficiency"],
        "paper": {"efficiency": PAPER_EFFICIENCY, "series": (0.989, 0.774, 0.757)},
    }
    return {"rows": rows, "summary": summary}


def main() -> None:  # pragma: no cover - CLI entry
    result = run()
    print(f"{'cores':>10} {'MD (min)':>9} {'KMC (min)':>10} {'eff':>7}")
    for r in result["rows"]:
        print(
            f"{r['cores']:>10,} {r['md_time'] / 60:>9.1f} "
            f"{r['kmc_time'] / 60:>10.1f} {r['efficiency']:>6.1%}"
        )
    s = result["summary"]
    print(
        f"\nfinal efficiency: {s['final_efficiency']:.1%} "
        f"(paper: {s['paper']['efficiency']:.1%})"
    )


if __name__ == "__main__":  # pragma: no cover
    main()
