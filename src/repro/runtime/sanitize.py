"""Runtime communication sanitizer: a vector-clock happens-before ledger.

The static rules (REP002/REP009) reject the statically decidable
protocol bugs; this module catches the rest *at runtime*, TSan-style.
With ``REPRO_SANITIZE=1`` (or ``World(sanitize=True)``, or ``--sanitize``
on the CLI) every rank's communicator is wrapped in a
:class:`SanitizedComm` that

* stamps each point-to-point payload with the sender's vector clock and
  merges clocks on receive — the happens-before order of the run;
* flags **recv races**: a wildcard receive (``ANY_SOURCE``/``ANY_TAG``)
  that matched one message while a *concurrent* rival (neither send
  happens-before the other) also matched — the delivered value depends
  on scheduling, which is exactly the nondeterminism the paper's
  bit-identity claims forbid;
* records every send/recv per ``(source, dest, tag)`` with the first
  call site, so **unmatched sends** are reported at teardown with rank,
  tag and ``file:line``;
* records the per-rank **collective order** (barrier/allgather/
  allreduce/bcast/win_create/fence) and reports the first divergence
  between ranks — the halo-exchange/fence protocol of §2.2.1 requires
  all ranks to execute the same collective sequence;
* surfaces **leaked shm slots** from the process backend's pool.

At teardown every rank allgathers its ledger and all ranks compute the
same verdict; :class:`repro.runtime.simmpi.World.run` unwraps it,
publishes ``runtime.sanitize.*`` observe counters, and raises
:class:`SanitizerError` when violations exist.

The instrumentation deliberately rides *on top of* the normal transport
(every user collective becomes one slot exchange carrying the clock, so
divergent collective *kinds* still line up instead of deadlocking) and
all state crosses process boundaries as plain tuples/dicts — it works
identically on the thread, process, and overdecomposed backends,
including journal-replay rank migration.
"""

from __future__ import annotations

import os
import sys
from typing import Any, Callable

from repro import observe as obs
from repro.runtime.simmpi import ANY_SOURCE, ANY_TAG, reduce_values
from repro.runtime.stats import SANITIZE_ENVELOPE as _ENVELOPE
#: Marker prefix for a wrapped per-rank (result, report) pair.
_RESULT = "__repro_sanitize_result__"

#: Rolling process-wide summary for CLI reporting (parent process only).
SUMMARY = {"worlds": 0, "violations": 0}


class SanitizerError(RuntimeError):
    """The sanitizer found protocol violations; ``report`` has details."""

    def __init__(self, report: dict) -> None:
        self.report = report
        lines = [
            f"communication sanitizer: {len(report['violations'])} "
            "violation(s)"
        ]
        lines += ["  - " + _violation_text(v) for v in report["violations"]]
        super().__init__("\n".join(lines))


def _violation_text(v: dict) -> str:
    kind = v.get("kind")
    if kind == "unmatched_send":
        return (
            f"unmatched send: rank {v['source']} -> rank {v['dest']} "
            f"tag {v['tag']} x{v['count']} never received "
            f"(first send at {v['site']})"
        )
    if kind == "recv_race":
        return (
            f"recv race on rank {v['rank']}: wildcard recv at {v['site']} "
            f"matched (source={v['matched_source']}, tag={v['matched_tag']}) "
            f"while a concurrent rival (source={v['rival_source']}, "
            f"tag={v['rival_tag']}) also matched — delivery order is "
            "schedule-dependent"
        )
    if kind == "collective_divergence":
        return (
            f"collective order diverges at step {v['step']}: "
            + ", ".join(
                f"rank {r} did {e}" for r, e in sorted(v["events"].items())
            )
        )
    if kind == "shm_leak":
        return f"shared-memory pool leaked {v['count']} slot(s) at teardown"
    return str(v)


def sanitize_enabled(override: bool | None = None) -> bool:
    """Whether sanitized execution is requested (kwarg beats env)."""
    if override is not None:
        return bool(override)
    env = os.environ.get("REPRO_SANITIZE", "").strip().lower()
    return env in ("1", "true", "yes", "on")


def _call_site() -> str:
    """``file:line`` of the first frame outside this module."""
    frame = sys._getframe(1)
    here = __file__
    while frame is not None and frame.f_code.co_filename == here:
        frame = frame.f_back
    if frame is None:  # pragma: no cover - defensive
        return "<unknown>"
    return f"{os.path.basename(frame.f_code.co_filename)}:{frame.f_lineno}"


def _concurrent(a: tuple, b: tuple) -> bool:
    """Neither clock happens-before the other."""
    return not all(x <= y for x, y in zip(a, b)) and not all(
        y <= x for x, y in zip(a, b)
    )


def _unwrap(payload) -> tuple[tuple | None, Any]:
    """(sender clock, user payload) of a possibly-enveloped payload."""
    if (
        isinstance(payload, tuple)
        and len(payload) == 3
        and isinstance(payload[0], str)
        and payload[0] == _ENVELOPE
    ):
        return tuple(payload[1]), payload[2]
    return None, payload


class _Ledger:
    """One rank's record of communication, exported as plain data."""

    def __init__(self) -> None:
        # (dest, tag) -> [count, first call site]
        self.sends: dict[tuple[int, int], list] = {}
        # (source, tag) -> count
        self.recvs: dict[tuple[int, int], int] = {}
        self.events: list[tuple] = []
        self.races: list[dict] = []

    def record_send(self, dest: int, tag: int, site: str) -> None:
        slot = self.sends.setdefault((dest, tag), [0, site])
        slot[0] += 1

    def record_recv(self, source: int, tag: int) -> None:
        self.recvs[(source, tag)] = self.recvs.get((source, tag), 0) + 1

    def export(self, rank: int) -> dict:
        return {
            "rank": rank,
            "sends": [
                [dest, tag, count, site]
                for (dest, tag), (count, site) in sorted(self.sends.items())
            ],
            "recvs": [
                [source, tag, count]
                for (source, tag), count in sorted(self.recvs.items())
            ],
            "events": [list(e) for e in self.events],
            "races": list(self.races),
        }


class SanitizedWindow:
    """Window proxy: clock-stamps puts, records fence epochs."""

    def __init__(self, comm: "SanitizedComm", inner) -> None:
        self._comm = comm
        self._inner = inner

    def put(self, target: int, payload) -> None:
        comm = self._comm
        comm._vc[comm.rank] += 1
        self._inner.put(target, (_ENVELOPE, tuple(comm._vc), payload))

    def fence(self) -> list:
        comm = self._comm
        comm._ledger.events.append(("fence",))
        drained = self._inner.fence()
        out = []
        for origin, payload in drained:
            vc, user = _unwrap(payload)
            if vc is not None:
                comm._merge(vc)
            out.append((origin, user))
        comm._vc[comm.rank] += 1
        return out

    def __getattr__(self, name):
        return getattr(self._inner, name)


class SanitizedComm:
    """Communicator proxy building the happens-before ledger.

    Every user-facing operation of :class:`~repro.runtime.simmpi.RankComm`
    is intercepted; everything else (``stats``, ``world``,
    ``fault_point`` arguments, ...) forwards to the wrapped comm, so
    engines run unmodified.
    """

    def __init__(self, inner) -> None:
        self._inner = inner
        self._vc = [0] * inner.size
        self._ledger = _Ledger()

    # -- plumbing ------------------------------------------------------
    @property
    def rank(self) -> int:
        return self._inner.rank

    @property
    def size(self) -> int:
        return self._inner.size

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def _merge(self, other: tuple) -> None:
        vc = self._vc
        for i, x in enumerate(other):
            if x > vc[i]:
                vc[i] = x

    # -- two-sided -----------------------------------------------------
    def send(self, dest: int, tag: int, payload=None) -> None:
        self._vc[self.rank] += 1
        self._inner.send(dest, tag, (_ENVELOPE, tuple(self._vc), payload))
        # Recorded only after the send validated and deposited — a
        # rejected dest/tag never reaches any mailbox and must not be
        # reported as unmatched.
        self._ledger.record_send(dest, tag, _call_site())

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        src, t, payload = self._inner.recv(source, tag)
        vc, user = _unwrap(payload)
        if vc is not None and (source == ANY_SOURCE or tag == ANY_TAG):
            self._scan_for_race(source, tag, src, t, vc)
        if vc is not None:
            self._merge(vc)
        self._vc[self.rank] += 1
        self._ledger.record_recv(src, t)
        return src, t, user

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        return self._inner.probe(source, tag)

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        return self._inner.iprobe(source, tag)

    def _scan_for_race(
        self, source: int, tag: int, matched_src: int, matched_tag: int,
        matched_vc: tuple,
    ) -> None:
        """After a wildcard match, look for concurrent rival candidates.

        The rival is still queued in this rank's mailbox; if its send is
        concurrent with the matched one, the runtime could have handed
        either message to this recv — a schedule-dependent result.
        FIFO per (source, tag) means same-channel messages are never
        concurrent, so pinned-source schemes stay clean by construction.
        """
        try:
            mailbox = self._inner.world.mailboxes[self.rank]
            with mailbox._cond:
                queued = list(mailbox._queue)
        except (AttributeError, TypeError, IndexError):
            return  # replay comms serve from the journal; nothing queued
        for src, t, payload, _nbytes in queued:
            if source not in (ANY_SOURCE, src):
                continue
            if tag not in (ANY_TAG, t):
                continue
            vc, _user = _unwrap(payload)
            if vc is None or not _concurrent(matched_vc, vc):
                continue
            self._ledger.races.append(
                {
                    "kind": "recv_race",
                    "rank": self.rank,
                    "site": _call_site(),
                    "matched_source": matched_src,
                    "matched_tag": matched_tag,
                    "rival_source": src,
                    "rival_tag": t,
                }
            )

    # -- collectives ---------------------------------------------------
    # Every user collective maps to exactly ONE underlying slot exchange
    # carrying (clock, value).  That uniformity is load-bearing: when
    # ranks diverge (one calls barrier while another calls allgather)
    # the underlying exchanges still pair up, the world completes, and
    # the divergence is *reported* at teardown instead of deadlocking.
    def _exchange(self, value) -> list:
        outs = self._inner.allgather((_ENVELOPE, tuple(self._vc), value))
        users = []
        for item in outs:
            vc, user = _unwrap(item)
            if vc is not None:
                self._merge(vc)
            users.append(user)
        self._vc[self.rank] += 1
        return users

    def barrier(self) -> None:
        self._ledger.events.append(("barrier",))
        self._exchange(None)

    def allgather(self, value) -> list:
        self._ledger.events.append(("allgather",))
        return self._exchange(value)

    def allreduce(self, value, op: str = "sum"):
        self._ledger.events.append(("allreduce", op))
        return reduce_values(self._exchange(value), op)

    def bcast(self, value=None, root: int = 0):
        if not 0 <= root < self.size:
            raise ValueError(f"root rank {root} out of range")
        self._ledger.events.append(("bcast", root))
        values = self._exchange(value if self.rank == root else None)
        return values[root]

    # -- one-sided -----------------------------------------------------
    def win_create(self) -> SanitizedWindow:
        self._ledger.events.append(("win_create",))
        return SanitizedWindow(self, self._inner.win_create())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SanitizedComm({self._inner!r})"


def _validate(exports: list[dict]) -> dict:
    """Deterministic verdict over all ranks' ledgers.

    Every rank runs this on the same allgathered data, so every rank
    (and the parent, after unwrapping) sees the identical report.
    """
    violations: list[dict] = []

    sent: dict[tuple[int, int, int], list] = {}
    received: dict[tuple[int, int, int], int] = {}
    for export in exports:
        rank = export["rank"]
        for dest, tag, count, site in export["sends"]:
            slot = sent.setdefault((rank, dest, tag), [0, site])
            slot[0] += count
        for source, tag, count in export["recvs"]:
            key = (source, rank, tag)
            received[key] = received.get(key, 0) + count
    for (source, dest, tag), (count, site) in sorted(sent.items()):
        missing = count - received.get((source, dest, tag), 0)
        if missing > 0:
            violations.append(
                {
                    "kind": "unmatched_send",
                    "source": source,
                    "dest": dest,
                    "tag": tag,
                    "count": missing,
                    "site": site,
                }
            )

    for export in exports:
        violations.extend(export["races"])

    sequences = {e["rank"]: e["events"] for e in exports}
    longest = max((len(s) for s in sequences.values()), default=0)
    for step in range(longest):
        step_events = {
            rank: (seq[step] if step < len(seq) else ["<missing>"])
            for rank, seq in sorted(sequences.items())
        }
        distinct = {tuple(e) for e in step_events.values()}
        if len(distinct) > 1:
            violations.append(
                {
                    "kind": "collective_divergence",
                    "step": step,
                    "events": {
                        rank: tuple(e) for rank, e in step_events.items()
                    },
                }
            )
            break  # later steps are garbage once the order diverged

    return {
        "ranks": len(exports),
        "sends": sum(c for c, _ in sent.values()),
        "collectives": sum(len(s) for s in sequences.values()),
        "violations": violations,
    }


def wrap_main(main: Callable) -> Callable:
    """The sanitized SPMD entry point :class:`World.run` dispatches.

    Wraps the user's ``main`` so each rank communicates through a
    :class:`SanitizedComm`, then allgathers the per-rank ledgers and
    returns ``(marker, result, report)``; the world unwraps it in
    :func:`finish_world`.  Works on every backend — on rank migration
    the replacement rank re-enters here and rebuilds its ledger from the
    journal replay.
    """

    def sanitized_main(inner_comm):
        comm = SanitizedComm(inner_comm)
        result = main(comm)
        exports = inner_comm.allgather(comm._ledger.export(comm.rank))
        report = _validate(exports)
        return (_RESULT, result, report)

    return sanitized_main


def finish_world(world, results: list) -> list:
    """Unwrap sanitized results, publish counters, fail on violations."""
    unwrapped: list = []
    report: dict | None = None
    for item in results:
        if (
            isinstance(item, tuple)
            and len(item) == 3
            and isinstance(item[0], str)
            and item[0] == _RESULT
        ):
            unwrapped.append(item[1])
            report = item[2]
        else:  # pragma: no cover - defensive (rank skipped teardown)
            unwrapped.append(item)
    if report is None:  # pragma: no cover - defensive
        return unwrapped

    leaked = getattr(world, "shm_leaked_slots", 0)
    if leaked:
        report["violations"].append({"kind": "shm_leak", "count": leaked})

    obs.add("runtime.sanitize.worlds")
    obs.add("runtime.sanitize.sends", report["sends"])
    obs.add("runtime.sanitize.collectives", report["collectives"])
    SUMMARY["worlds"] += 1
    if report["violations"]:
        kinds: dict[str, int] = {}
        for v in report["violations"]:
            kinds[v["kind"]] = kinds.get(v["kind"], 0) + 1
        for kind, count in sorted(kinds.items()):
            obs.add(f"runtime.sanitize.violation.{kind}", count)
        obs.add("runtime.sanitize.violations", len(report["violations"]))
        SUMMARY["violations"] += len(report["violations"])
        raise SanitizerError(report)
    return unwrapped
