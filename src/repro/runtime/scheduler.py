"""Elastic rank scheduler: R logical ranks multiplexed on P OS workers.

The paper's headline figures live in the thousands-of-ranks regime, far
beyond any host's core count.  ``backend="overdecomposed"`` decouples the
*logical* decomposition from the *physical* parallelism the way the
production codes on Sunway do: :class:`~repro.runtime.simmpi.World`
still spawns one rank program per logical rank, but only ``workers=P``
of them may execute at any instant.  Scheduling is cooperative and
happens exactly at the communication waits:

* a rank that blocks in ``recv``/``probe``/``barrier``/``allgather``/
  fence *yields* its worker slot back to the scheduler before parking on
  the mailbox condition or collective barrier;
* an idle worker slot is *stolen* by the longest-waiting runnable rank
  (FIFO run queue — a released slot is handed directly to the queue
  head, never bounced through a free pool, so admission is O(1) and
  starvation-free);
* when the wait completes (a matching deposit, the last barrier party,
  a window fence quota), the rank re-enters the run queue and resumes
  once a slot frees up.

Because every blocking primitive yields, R > P cannot deadlock: a rank
parked in a collective holds no slot, so the remaining parties always
get to run.  And because scheduling only reorders *timing* — engines
address receives by explicit (source, tag) and collectives return
rank-ordered lists — R ranks on P workers produce physics bit-identical
to R ranks on R threads, the same argument (and the same tests) that
make the thread and process backends interchangeable.

Rank migration
--------------
With a fault plan on the world, each rank's communication history is
journaled (:class:`ReplayRankComm`).  When a planned crash fires, the
scheduler does not restart the world: it *migrates* the rank — a
replacement thread replays the journal (receives, collective results and
fence drains return their recorded values; sends, puts and barriers are
suppressed, their effects already being visible to the peers) and goes
live exactly where the crash struck.  Peers blocked at the next
collective simply wait a little longer; the trajectory, the final state,
and the traffic ledger come out bit-identical to a fault-free run.
The journal suppression is sound because injected crashes fire only at
engine ``fault_point``s, which sit at quiescent cycle boundaries: no
collective is in flight and every window epoch is fenced.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any

from repro import observe as obs
from repro.runtime.simmpi import (
    RankComm,
    Status,
    WatchdogTimeout,
    WorldAborted,
    _freeze,
)
from repro.runtime.faults import InjectedFault


class MigrationError(RuntimeError):
    """A replayed rank diverged from its journal (should never happen)."""


class RankScheduler:
    """FIFO run-queue admission of R logical ranks to P worker slots.

    A rank *holds* a slot while computing and *yields* it across every
    blocking communication wait.  Released slots are handed directly to
    the head of the run queue (each queued rank parks on its own event,
    so a hand-off wakes exactly one thread).  :meth:`release_all` opens
    the gate permanently — the world-abort path, after which admission
    and release become no-ops and every rank runs free to observe the
    abort flag and exit.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._lock = threading.Lock()
        self._active = 0
        #: FIFO of (rank, event) waiting for a slot.
        self._queue: deque[tuple[int, threading.Event]] = deque()
        self._drain = False
        #: Times a rank gave up its slot at a communication wait.
        self.yields = 0
        #: Times a freed slot was handed to a queued (stolen by an idle
        #: worker, in the deque-of-runnable-ranks picture) rank.
        self.steals = 0
        self.peak_queued = 0

    def acquire(self, rank: int) -> None:
        """Block until a worker slot is available (FIFO order)."""
        with self._lock:
            if self._drain:
                return
            if self._active < self.workers and not self._queue:
                self._active += 1
                return
            gate = threading.Event()
            self._queue.append((rank, gate))
            self.peak_queued = max(self.peak_queued, len(self._queue))
        gate.wait()

    def release(self, rank: int) -> None:
        """Give the slot back; hand it straight to the queue head."""
        with self._lock:
            if self._drain:
                return
            if self._queue:
                _next_rank, gate = self._queue.popleft()
                self.steals += 1
                gate.set()  # slot ownership transfers; _active unchanged
            else:
                self._active -= 1

    @contextmanager
    def waiting(self, rank: int):
        """Wrap a blocking wait: yield the slot, re-acquire afterwards."""
        with self._lock:
            self.yields += 1
        self.release(rank)
        try:
            yield
        finally:
            self.acquire(rank)

    def release_all(self) -> None:
        """Abort path: open the gate; all queued and future ranks run."""
        with self._lock:
            self._drain = True
            queued = list(self._queue)
            self._queue.clear()
        for _rank, gate in queued:
            gate.set()


# ----------------------------------------------------------------------
# Journaling communicator (the migration substrate)
# ----------------------------------------------------------------------
class _ReplayWindow:
    """Window wrapper journaling puts and fences for replay."""

    def __init__(self, comm: "ReplayRankComm", window) -> None:
        self.comm = comm
        self._window = window

    def put(self, target: int, payload) -> None:
        if self.comm._replaying():
            self.comm._next("win_put")
            return
        self._window.put(target, payload)
        self.comm._record(("win_put",))

    def fence(self) -> list[tuple[int, Any]]:
        if self.comm._replaying():
            return _freeze(self.comm._next("win_fence")[1])
        mine = self._window.fence()
        self.comm._record(("win_fence", _freeze(mine)))
        return mine


class ReplayRankComm(RankComm):
    """A RankComm that journals every communication for crash replay.

    In *live* mode every operation is delegated to a raw
    :class:`RankComm` over the same world and its outcome appended to
    the journal.  After a migration the replacement incarnation runs in
    *replay* mode: operations whose journal entry exists return the
    recorded outcome instantly — receives and collective results are
    served from the log, sends/puts/barriers are suppressed (the world
    already saw them) — until the cursor reaches the journal end and the
    rank seamlessly goes live.  Traffic stats are recorded only live, so
    the ledger of a migrated run equals the fault-free one.
    """

    def __init__(self, world, rank: int, journal: list | None = None) -> None:
        super().__init__(world, rank)
        self._raw = RankComm(world, rank)
        self._journal: list[tuple] = journal if journal is not None else []
        self._cursor = 0

    def reincarnate(self) -> "ReplayRankComm":
        """A fresh incarnation replaying this comm's journal from the top."""
        return ReplayRankComm(self.world, self.rank, journal=self._journal)

    # -- journal plumbing ---------------------------------------------
    def _replaying(self) -> bool:
        return self._cursor < len(self._journal)

    def _record(self, entry: tuple) -> None:
        self._journal.append(entry)
        self._cursor = len(self._journal)

    def _next(self, kind: str) -> tuple:
        entry = self._journal[self._cursor]
        if entry[0] != kind:
            raise MigrationError(
                f"rank {self.rank} replay diverged: journal has "
                f"{entry[0]!r} where the program performed {kind!r}"
            )
        self._cursor += 1
        return entry

    # -- two-sided ----------------------------------------------------
    def send(self, dest: int, tag: int, payload=None) -> None:
        if self._replaying():
            self._next("send")
            return
        self._raw.send(dest, tag, payload)
        self._record(("send",))

    def recv(self, source: int = -1, tag: int = -1):
        if self._replaying():
            return _freeze(self._next("recv")[1])
        out = self._raw.recv(source, tag)
        self._record(("recv", _freeze(out)))
        return out

    def probe(self, source: int = -1, tag: int = -1) -> Status:
        if self._replaying():
            return self._next("probe")[1]
        out = self._raw.probe(source, tag)
        self._record(("probe", out))
        return out

    def iprobe(self, source: int = -1, tag: int = -1) -> Status | None:
        if self._replaying():
            return self._next("iprobe")[1]
        out = self._raw.iprobe(source, tag)
        self._record(("iprobe", out))
        return out

    # -- collectives --------------------------------------------------
    def barrier(self) -> None:
        if self._replaying():
            self._next("barrier")
            return
        self._raw.barrier()
        self._record(("barrier",))

    def allgather(self, value) -> list:
        if self._replaying():
            return _freeze(self._next("allgather")[1])
        out = self._raw.allgather(value)
        self._record(("allgather", _freeze(out)))
        return out

    # allreduce/bcast reduce over self.allgather (inherited), so they
    # journal through the allgather entries.

    # -- one-sided ----------------------------------------------------
    def win_create(self):
        if self._replaying():
            from repro.runtime.window import Window

            shared = self._next("win_create")[1]
            return _ReplayWindow(self, Window(self._raw, shared))
        window = self._raw.win_create()
        self._record(("win_create", window.shared))
        return _ReplayWindow(self, window)


# ----------------------------------------------------------------------
# The overdecomposed World.run path
# ----------------------------------------------------------------------
def default_workers() -> int:
    """P when none was given: every core the OS grants us."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def run_overdecomposed_world(
    world,
    main,
    timeout: float = 300.0,
    grace: float = 5.0,
    workers: int | None = None,
) -> list:
    """Execute R logical ranks on P worker slots with rank migration.

    Drop-in replacement for the thread path of ``World.run``: same
    result list, same error precedence (KeyboardInterrupt, then typed
    InjectedFault/WatchdogTimeout, then ``RuntimeError('rank N
    failed')``), same TimeoutError shape.  With a fault plan on the
    world (and ``migration`` not explicitly disabled), a planned crash
    is survived *in place*: the crashed rank's journal is replayed on a
    replacement thread instead of aborting the world.
    """
    nranks = world.nranks
    chosen = workers if workers is not None else world.workers
    if chosen is None:
        chosen = default_workers()
    nworkers = max(1, min(int(chosen), nranks))
    scheduler = RankScheduler(nworkers)
    world.scheduler = scheduler
    migration = world.migration
    journaling = (
        world.faults is not None if migration is None else bool(migration)
    )

    results: list[Any] = [None] * nranks
    threads: list[threading.Thread] = []
    state_lock = threading.Lock()
    fin_cond = threading.Condition()
    finished = 0

    def launch(rank: int, comm, incarnation: int = 0) -> None:
        suffix = f".{incarnation}" if incarnation else ""
        t = threading.Thread(
            target=wrapper,
            args=(rank, comm, incarnation),
            name=f"simmpi-rank-{rank}{suffix}",
            daemon=True,
        )
        with state_lock:
            threads.append(t)
        t.start()

    def wrapper(rank: int, comm, incarnation: int) -> None:
        nonlocal finished
        scheduler.acquire(rank)
        migrated = False
        try:
            results[rank] = main(comm)
        except WorldAborted:
            pass
        except InjectedFault as exc:
            if (
                journaling
                and isinstance(comm, ReplayRankComm)
                and not world.abort.is_set()
            ):
                # Migrate: replay this rank's journal on a fresh thread
                # instead of tearing the world down.  Planned crashes
                # are one-shot, so the replay cannot re-fire this spec.
                with state_lock:
                    world.migrations += 1
                obs.add("runtime.migrations")
                migrated = True
                launch(rank, comm.reincarnate(), incarnation + 1)
            else:
                with world._error_lock:
                    world._errors.append((rank, exc))
                world.abort_world()
        except BaseException as exc:  # must cross threads (see baseline)
            with world._error_lock:
                world._errors.append((rank, exc))
            world.abort_world()
        finally:
            scheduler.release(rank)
            if not migrated:
                with fin_cond:
                    finished += 1
                    fin_cond.notify_all()

    for rank in range(nranks):
        comm: RankComm = (
            ReplayRankComm(world, rank) if journaling else RankComm(world, rank)
        )
        launch(rank, comm)

    def wait_until(deadline: float) -> None:
        nonlocal finished
        with fin_cond:
            while finished < nranks:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return
                fin_cond.wait(remaining)

    wait_until(time.monotonic() + timeout)
    try:
        if finished < nranks:
            world.abort_world()
            wait_until(time.monotonic() + grace)
            with state_lock:
                alive = [t.name for t in threads if t.is_alive()]
            if alive:
                detail = (
                    f"; {len(alive)} rank thread(s) still alive after a "
                    f"{grace:g}s abort grace period (leaked): "
                    + ", ".join(alive)
                )
            else:
                detail = "; all ranks exited after the abort"
            raise TimeoutError(
                f"world of {nranks} ranks timed out after {timeout:g}s"
                + detail
            )
    finally:
        obs.add("runtime.scheduler.yields", scheduler.yields)
        obs.add("runtime.scheduler.steals", scheduler.steals)
        world.scheduler = None
    if world._errors:
        rank, exc = world._errors[0]
        for _rank, e in world._errors:
            if isinstance(e, KeyboardInterrupt):
                raise e
        if isinstance(exc, (InjectedFault, WatchdogTimeout)):
            raise exc
        raise RuntimeError(f"rank {rank} failed: {exc!r}") from exc
    return results
