"""Alpha-beta(-contention) network cost model.

An in-process threaded runtime cannot produce meaningful wall-clock
communication times, so the runtime converts *measured* message counts and
byte volumes into modeled time with the standard postal model:

    t(message of s bytes) = alpha + s * beta

optionally inflated by a contention factor that grows with the number of
communicating ranks — the effect the paper observes at scale ("the
communication time for larger number of cores is a little higher, which is
caused by the communication contention").

Collectives use the usual log2(P) tree depth.
"""

from __future__ import annotations

from dataclasses import dataclass
import math


@dataclass(frozen=True)
class NetworkModel:
    """Postal-model network parameters.

    Attributes
    ----------
    alpha:
        Per-message latency in seconds.  Default is in the range of a
        modern HPC interconnect (~1.5 microseconds).
    beta:
        Per-byte transfer time in seconds (default ~ 8 GB/s effective
        point-to-point bandwidth).
    contention_coeff:
        Strength of the contention term: effective per-byte cost is
        ``beta * (1 + contention_coeff * log2(nranks))``.  Zero disables
        contention.
    """

    alpha: float = 1.5e-6
    beta: float = 1.25e-10
    contention_coeff: float = 0.0

    def effective_beta(self, nranks: int = 1) -> float:
        """Per-byte cost including the contention inflation."""
        if nranks <= 1:
            return self.beta
        return self.beta * (1.0 + self.contention_coeff * math.log2(nranks))

    def point_to_point(self, nbytes: int, nranks: int = 1) -> float:
        """Modeled time of one point-to-point message of ``nbytes``."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        return self.alpha + nbytes * self.effective_beta(nranks)

    def collective(self, nranks: int, nbytes: int = 8) -> float:
        """Modeled time of a tree-based collective over ``nranks`` ranks.

        ``nbytes`` is the per-hop payload (8 bytes for an allreduce of one
        double).
        """
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        depth = max(1, math.ceil(math.log2(nranks))) if nranks > 1 else 0
        return depth * (self.alpha + nbytes * self.effective_beta(nranks))

    def exchange_time(
        self, messages: int, total_bytes: int, nranks: int = 1
    ) -> float:
        """Modeled time of a batch of messages on one rank's critical path."""
        return messages * self.alpha + total_bytes * self.effective_beta(nranks)


#: Parameters loosely calibrated to the Sunway TaihuLight interconnect
#: (MPI latency a few microseconds, ~5 GB/s effective node bandwidth,
#: visible contention at scale).
SUNWAY_NETWORK = NetworkModel(alpha=3.0e-6, beta=2.0e-10, contention_coeff=0.02)
