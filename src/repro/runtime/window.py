"""One-sided communication windows (MPI-3 RMA style).

§2.2.1: "we can use MPI one-sided communication interfaces, by which only
one side is involved in the communication, to eliminate these zero-size
messages. Firstly, each process opens a globally-shared window on the
subdomain. Secondly, each process puts the updates in the ghost sites to
its neighbor processes. Thirdly, a global synchronization is carried out
to guarantee the completion of the communications."

The :class:`Window` here follows that protocol exactly: ``put`` deposits a
payload at a target rank with no action required from the target, and
``fence`` (the global synchronization) completes all outstanding puts and
hands each rank whatever was put into its window during the epoch.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from repro import observe as obs
from repro.runtime.stats import payload_nbytes


class WindowShared:
    """State shared by all ranks of one window: per-rank pending-put lists."""

    def __init__(self, nranks: int) -> None:
        self.nranks = nranks
        self.lock = threading.Lock()
        self.pending: list[list[tuple[int, Any]]] = [[] for _ in range(nranks)]
        #: Message ids already applied — dedup for fault-injected
        #: duplicate puts (DMA retransmissions must stay idempotent).
        self.seen_ids: set = set()


class Window:
    """One rank's handle on a collectively-created RMA window."""

    def __init__(self, comm, shared: WindowShared) -> None:
        if shared.nranks != comm.size:
            raise ValueError("window shared state does not match world size")
        self.comm = comm
        self.shared = shared
        self._epoch_opens = 0

    def put(self, target: int, payload) -> None:
        """Deposit ``payload`` in ``target``'s window; target not involved.

        Completion is only guaranteed after the next :meth:`fence`.
        A fault plan on the world may stall the put (the DMA analogue of
        a congested network engine) or retransmit it; retransmissions
        are deduplicated by message id before they reach the window, so
        the target drains each logical put exactly once.
        """
        if not 0 <= target < self.shared.nranks:
            raise ValueError(f"target rank {target} out of range")
        from repro.runtime.simmpi import _freeze

        inj = self.comm.world.faults
        action = (
            inj.on_put(self.comm.rank, target) if inj is not None else None
        )
        nbytes = payload_nbytes(payload)
        self.comm.stats.record_send(self.comm.rank, target, nbytes)
        frozen = _freeze(payload)
        if action is None:
            with self.shared.lock:
                self.shared.pending[target].append((self.comm.rank, frozen))
            return
        if action.stall_s > 0:
            time.sleep(action.stall_s)
        msg_id = action.msg_id if action.duplicate else None
        self._append(target, (self.comm.rank, frozen), msg_id)
        if action.duplicate:
            self.comm.stats.record_send(self.comm.rank, target, nbytes)
            if not self._append(target, (self.comm.rank, frozen), msg_id):
                inj.record_dropped_duplicate()

    def _append(self, target: int, entry, msg_id) -> bool:
        with self.shared.lock:
            if msg_id is not None:
                if msg_id in self.shared.seen_ids:
                    obs.add("runtime.faults.duplicates_dropped")
                    return False
                self.shared.seen_ids.add(msg_id)
            self.shared.pending[target].append(entry)
        return True

    def fence(self) -> list[tuple[int, Any]]:
        """Synchronize the epoch; return ``(origin, payload)`` puts received.

        Implements the paper's "global synchronization ... to guarantee the
        completion of the communications": a barrier before draining makes
        all puts of the epoch visible, a barrier after prevents a fast rank
        from starting the next epoch early.
        """
        self.comm.barrier()
        with self.shared.lock:
            mine = self.shared.pending[self.comm.rank]
            self.shared.pending[self.comm.rank] = []
        for _src, payload in mine:
            self.comm.stats.record_recv(self.comm.rank, payload_nbytes(payload))
        self.comm.barrier()
        return mine
