"""One-sided communication windows (MPI-3 RMA style).

§2.2.1: "we can use MPI one-sided communication interfaces, by which only
one side is involved in the communication, to eliminate these zero-size
messages. Firstly, each process opens a globally-shared window on the
subdomain. Secondly, each process puts the updates in the ghost sites to
its neighbor processes. Thirdly, a global synchronization is carried out
to guarantee the completion of the communications."

The :class:`Window` here follows that protocol exactly: ``put`` deposits a
payload at a target rank with no action required from the target, and
``fence`` (the global synchronization) completes all outstanding puts and
hands each rank whatever was put into its window during the epoch.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.runtime.stats import payload_nbytes


class WindowShared:
    """State shared by all ranks of one window: per-rank pending-put lists."""

    def __init__(self, nranks: int) -> None:
        self.nranks = nranks
        self.lock = threading.Lock()
        self.pending: list[list[tuple[int, Any]]] = [[] for _ in range(nranks)]


class Window:
    """One rank's handle on a collectively-created RMA window."""

    def __init__(self, comm, shared: WindowShared) -> None:
        if shared.nranks != comm.size:
            raise ValueError("window shared state does not match world size")
        self.comm = comm
        self.shared = shared
        self._epoch_opens = 0

    def put(self, target: int, payload) -> None:
        """Deposit ``payload`` in ``target``'s window; target not involved.

        Completion is only guaranteed after the next :meth:`fence`.
        """
        if not 0 <= target < self.shared.nranks:
            raise ValueError(f"target rank {target} out of range")
        from repro.runtime.simmpi import _freeze

        nbytes = payload_nbytes(payload)
        self.comm.stats.record_send(self.comm.rank, target, nbytes)
        with self.shared.lock:
            self.shared.pending[target].append((self.comm.rank, _freeze(payload)))

    def fence(self) -> list[tuple[int, Any]]:
        """Synchronize the epoch; return ``(origin, payload)`` puts received.

        Implements the paper's "global synchronization ... to guarantee the
        completion of the communications": a barrier before draining makes
        all puts of the epoch visible, a barrier after prevents a fast rank
        from starting the next epoch early.
        """
        self.comm.barrier()
        with self.shared.lock:
            mine = self.shared.pending[self.comm.rank]
            self.shared.pending[self.comm.rank] = []
        for _src, payload in mine:
            self.comm.stats.record_recv(self.comm.rank, payload_nbytes(payload))
        self.comm.barrier()
        return mine
