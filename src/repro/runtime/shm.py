"""Zero-copy shared-memory transport for the process backend.

The process backend's queues pickle every payload through a socket pair:
for the bulk numpy arrays that dominate real traffic (ghost rows,
density exchanges, occupancy gathers, checkpoints) that is two full
copies plus serialization on the critical path.  This module gives
:mod:`repro.runtime.procbackend` the paper's packed-buffer alternative:
a per-world pool of ``multiprocessing.shared_memory`` ring slots through
which array payloads travel as raw bytes, while the existing queues
carry only tiny pickled *headers* — ``(slot, offset, dtype, shape)`` —
exactly how the Sunway implementation packs halo payloads into
pre-registered exchange buffers and sends descriptors.

Mechanics
---------
* The parent creates one :class:`ShmPool` before forking; children
  inherit the mapping, the slot refcount array, and its lock.
* ``encode`` walks a payload (tuples/lists/dicts of arrays) and moves
  each eligible array into a free slot, replacing it with a
  :class:`SlotRef`.  A payload that doesn't fit a slot goes through a
  one-shot ``SharedMemory`` segment (:class:`SegRef`); if the pool is
  exhausted or shared memory is unavailable the array simply stays
  inline — the queue pickles it as before, so the pool can never
  deadlock a world, only speed it up.
* ``decode`` copies the bytes back out into a fresh C-contiguous array
  (the same layout ``_freeze``'s defensive ``copy()`` produces on the
  thread backend — bit-identity is preserved) and releases the slot
  immediately; reclamation is deterministic, not GC-driven.
* Slots are refcounted: a broadcast encoded once with ``nrefs=nranks``
  is decoded by every rank, and the last decode frees the slot.  The
  parent's residual sweep calls ``release_refs`` on undelivered
  envelopes (abort-while-slot-held), and ``destroy`` unlinks the whole
  segment in a ``finally`` so no run can leak ``/dev/shm`` space.

Tuning knobs (environment):

``REPRO_SHM``
    ``0``/``off``/``false`` disables the pool (pickle-only transport).
``REPRO_SHM_SLOTS`` / ``REPRO_SHM_SLOT_BYTES``
    Ring geometry; defaults scale slots with the world size.
``REPRO_SHM_MIN_BYTES``
    Arrays smaller than this stay inline (header + memcpy overhead
    beats pickle only past ~1 KiB).  Set to 0 to force everything
    through shared memory (the parity tests do).
"""

from __future__ import annotations

import os
from multiprocessing import shared_memory

import numpy as np

from repro import observe as obs

__all__ = [
    "SlotRef",
    "SegRef",
    "ShmPool",
    "create_pool",
    "pool_enabled",
]

_DISABLED = ("0", "off", "false", "no")


def pool_enabled() -> bool:
    """Whether ``REPRO_SHM`` permits the shared-memory transport."""
    env = os.environ.get("REPRO_SHM", "").strip().lower()
    return env not in _DISABLED


class SlotRef:
    """Header of an array parked in a pool slot."""

    __slots__ = ("slot", "offset", "shape", "dtype", "nbytes")

    def __init__(self, slot, offset, shape, dtype, nbytes) -> None:
        self.slot = slot
        self.offset = offset
        self.shape = shape
        self.dtype = dtype
        self.nbytes = nbytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SlotRef(slot={self.slot}, shape={self.shape}, "
            f"dtype={self.dtype}, nbytes={self.nbytes})"
        )


class SegRef:
    """Header of an array in a one-shot shared-memory segment."""

    __slots__ = ("name", "shape", "dtype", "nbytes")

    def __init__(self, name, shape, dtype, nbytes) -> None:
        self.name = name
        self.shape = shape
        self.dtype = dtype
        self.nbytes = nbytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SegRef(name={self.name!r}, shape={self.shape}, "
            f"dtype={self.dtype}, nbytes={self.nbytes})"
        )


class ShmPool:
    """Fixed ring of shared-memory slots with refcounted reclamation.

    Created in the parent before forking; every child inherits the
    mapping, the shared refcount array, and the lock, so ``acquire`` /
    ``release`` coordinate across the whole world.
    """

    def __init__(
        self, ctx, nslots: int, slot_bytes: int, min_bytes: int = 1024
    ) -> None:
        if nslots <= 0 or slot_bytes <= 0:
            raise ValueError(
                f"pool geometry must be positive, got {nslots} x {slot_bytes}"
            )
        self.nslots = int(nslots)
        self.slot_bytes = int(slot_bytes)
        self.min_bytes = int(min_bytes)
        # Resource-tracker note: the parent creates this segment before
        # forking, so every child inherits the same tracker process and
        # whichever process calls ``unlink`` (parent teardown, a one-shot
        # consumer) unregisters it there — no manual bookkeeping needed.
        self._shm = shared_memory.SharedMemory(
            create=True, size=self.nslots * self.slot_bytes
        )
        #: Per-slot consumer refcounts; 0 = free.  lock=False because the
        #: explicit pool lock below guards every access.
        self._refs = ctx.Array("q", self.nslots, lock=False)
        self._lock = ctx.Lock()
        self._destroyed = False

    # ------------------------------------------------------------------
    # Slot lifecycle
    # ------------------------------------------------------------------
    #: The critical sections below are microseconds long, so a lock wait
    #: this long means the holder was terminated mid-section.  Giving up
    #: (fall back to pickle / leave the slot pinned) is always safe: the
    #: parent's ``destroy`` unlinks the whole segment regardless.
    _LOCK_TIMEOUT = 2.0

    def _locked(self) -> bool:
        if self._lock.acquire(timeout=self._LOCK_TIMEOUT):
            return True
        obs.add("runtime.shm.lock_timeout")  # pragma: no cover - dead holder
        return False  # pragma: no cover

    def acquire(self, nbytes: int, nrefs: int = 1) -> int | None:
        """A free slot able to hold ``nbytes``, pinned for ``nrefs``
        consumers; ``None`` if the payload is oversized or the ring is
        momentarily full (callers fall back, never block)."""
        if nbytes > self.slot_bytes:
            return None
        if not self._locked():
            return None  # pragma: no cover - dead holder
        try:
            for s in range(self.nslots):
                if self._refs[s] == 0:
                    self._refs[s] = nrefs
                    return s
        finally:
            self._lock.release()
        obs.add("runtime.shm.pool_exhausted")
        return None

    def release(self, slot: int) -> None:
        """Drop one consumer reference; the last one frees the slot."""
        if not self._locked():
            return  # pragma: no cover - dead holder; destroy() reclaims
        try:
            if self._refs[slot] > 0:
                self._refs[slot] -= 1
        finally:
            self._lock.release()

    def free_slots(self) -> int:
        """Currently free slots (diagnostics and tests)."""
        if not self._locked():
            return 0  # pragma: no cover - dead holder
        try:
            return sum(1 for s in range(self.nslots) if self._refs[s] == 0)
        finally:
            self._lock.release()

    # ------------------------------------------------------------------
    # Raw array moves
    # ------------------------------------------------------------------
    def _write(self, slot: int, arr: np.ndarray) -> None:
        dest = np.ndarray(
            arr.shape,
            arr.dtype,
            buffer=self._shm.buf,
            offset=slot * self.slot_bytes,
        )
        np.copyto(dest, arr, casting="no")
        del dest

    def _read(self, ref: SlotRef) -> np.ndarray:
        src = np.ndarray(
            ref.shape, ref.dtype, buffer=self._shm.buf, offset=ref.offset
        )
        out = src.copy()  # C-order, matching _freeze's defensive copy
        del src
        return out

    # ------------------------------------------------------------------
    # Payload walkers
    # ------------------------------------------------------------------
    def _eligible(self, arr: np.ndarray) -> bool:
        return (
            not arr.dtype.hasobject
            and arr.nbytes >= max(1, self.min_bytes)
        )

    def _encode_array(self, arr: np.ndarray, nrefs: int):
        nbytes = arr.nbytes
        slot = self.acquire(nbytes, nrefs)
        if slot is not None:
            self._write(slot, arr)
            obs.add("runtime.shm.slot_msgs")
            obs.add("runtime.shm.bytes", nbytes)
            return SlotRef(
                slot, slot * self.slot_bytes, arr.shape, arr.dtype, nbytes
            )
        if nbytes <= self.slot_bytes:
            # Ring momentarily full: stay inline (queue pickles it) —
            # cheaper than churning one-shot segments under pressure.
            return None
        if nrefs != 1:
            # Oversized broadcast: one-shot segments have exactly one
            # unlinking consumer, so multi-consumer overflow stays on
            # the pickle path rather than invent shared teardown.
            return None
        try:
            seg = shared_memory.SharedMemory(create=True, size=max(1, nbytes))
        except OSError:  # pragma: no cover - /dev/shm exhausted
            return None
        dest = np.ndarray(arr.shape, arr.dtype, buffer=seg.buf)
        np.copyto(dest, arr, casting="no")
        del dest
        name = seg.name
        seg.close()
        obs.add("runtime.shm.oneshot_msgs")
        obs.add("runtime.shm.bytes", nbytes)
        return SegRef(name, arr.shape, arr.dtype, nbytes)

    def encode(self, obj, nrefs: int = 1):
        """Payload with eligible arrays replaced by shm references.

        Containers are rebuilt (the originals are already defensive
        ``_freeze`` copies); anything ineligible — small arrays, object
        dtypes, non-array values — passes through untouched and rides
        the queue's pickle as before.
        """
        if isinstance(obj, np.ndarray):
            if not self._eligible(obj):
                return obj
            ref = self._encode_array(obj, nrefs)
            return obj if ref is None else ref
        if isinstance(obj, tuple):
            return tuple(self.encode(x, nrefs) for x in obj)
        if isinstance(obj, list):
            return [self.encode(x, nrefs) for x in obj]
        if isinstance(obj, dict):
            return {k: self.encode(v, nrefs) for k, v in obj.items()}
        return obj

    def decode(self, obj):
        """Payload with shm references materialized as fresh arrays.

        Every reference is released/unlinked as soon as it is copied
        out — reclamation is deterministic and local to the consumer.
        """
        if isinstance(obj, SlotRef):
            out = self._read(obj)
            self.release(obj.slot)
            return out
        if isinstance(obj, SegRef):
            seg = shared_memory.SharedMemory(name=obj.name)
            src = np.ndarray(obj.shape, obj.dtype, buffer=seg.buf)
            out = src.copy()
            del src
            seg.close()
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - double unlink
                pass
            return out
        if isinstance(obj, tuple):
            return tuple(self.decode(x) for x in obj)
        if isinstance(obj, list):
            return [self.decode(x) for x in obj]
        if isinstance(obj, dict):
            return {k: self.decode(v) for k, v in obj.items()}
        return obj

    def release_refs(self, obj) -> None:
        """Release references in a payload without copying the data.

        The parent's residual sweep applies this to every undelivered
        envelope (a receiver aborted while slots were held), so the ring
        is whole again before the pool reports leak-free teardown.
        """
        if isinstance(obj, SlotRef):
            self.release(obj.slot)
            return
        if isinstance(obj, SegRef):
            try:
                seg = shared_memory.SharedMemory(name=obj.name)
            except FileNotFoundError:
                return
            seg.close()
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - race with consumer
                pass
            return
        if isinstance(obj, (tuple, list)):
            for x in obj:
                self.release_refs(x)
        elif isinstance(obj, dict):
            for v in obj.values():
                self.release_refs(v)

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def leaked_slots(self) -> int:
        """Slots still pinned (should be 0 after a clean run + sweep)."""
        return self.nslots - self.free_slots()

    def destroy(self) -> None:
        """Unmap and unlink the ring segment (parent-side, idempotent)."""
        if self._destroyed:
            return
        self._destroyed = True
        try:
            self._shm.close()
        except (BufferError, OSError):  # pragma: no cover - exported views
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def create_pool(ctx, nranks: int):
    """A world-sized :class:`ShmPool`, or ``None`` when disabled/unavailable.

    Geometry defaults scale with the world: each rank typically has a
    handful of in-flight envelopes (halo sends to face neighbours plus
    one collective contribution), so ``4 * nranks + 8`` slots of 1 MiB
    absorb the steady state; bursts overflow to one-shot segments and
    giant arrays (> 1 MiB) always use one-shots.
    """
    if not pool_enabled():
        return None
    try:
        nslots = int(os.environ.get("REPRO_SHM_SLOTS") or 4 * nranks + 8)
        slot_bytes = int(os.environ.get("REPRO_SHM_SLOT_BYTES") or (1 << 20))
        min_bytes = int(os.environ.get("REPRO_SHM_MIN_BYTES") or 1024)
    except ValueError:
        raise ValueError(
            "REPRO_SHM_SLOTS / REPRO_SHM_SLOT_BYTES / REPRO_SHM_MIN_BYTES "
            "must be integers"
        ) from None
    try:
        return ShmPool(ctx, nslots, slot_bytes, min_bytes=min_bytes)
    except (OSError, ValueError):  # pragma: no cover - no /dev/shm
        obs.add("runtime.shm.unavailable")
        return None
