"""Per-rank communication accounting.

Every message the runtime carries is recorded here: count, payload bytes,
and modeled time (via :class:`~repro.runtime.netmodel.NetworkModel`).
These measurements are the data behind the Figure 12 (communication
volume) and Figure 13 (communication time) reproductions.

:class:`TrafficStats` doubles as a backend of the unified
:mod:`repro.observe` spine: with observation enabled, every recorded
send/recv/collective is mirrored into the active registry's
``runtime.*`` counters, so traffic and phase timings land in one place.
"""

from __future__ import annotations

import pickle
import threading
from dataclasses import dataclass, field

import numpy as np

from repro import observe as obs
from repro.runtime.netmodel import NetworkModel

#: Marker prefix of the sanitizer's clock-stamped payload envelopes
#: (see :mod:`repro.runtime.sanitize`).  Defined here so accounting can
#: strip the instrumentation without importing the sanitizer.
SANITIZE_ENVELOPE = "__repro_sanitize__"


def payload_nbytes(obj) -> int:
    """Wire size of a message payload in bytes.

    NumPy arrays and raw byte strings are counted exactly (the runtime
    moves them by reference — pickle transport or the shared-memory slot
    pool alike, mimicking MPI's buffer sends); the array fast path costs
    ``arr.nbytes`` for *any* numeric array — views, non-contiguous
    slices, Fortran order, structured dtypes — with no pickle round-trip,
    matching what actually crosses the shm transport (a C-contiguous
    copy of the logical elements).  Object-dtype arrays carry arbitrary
    Python references whose ``nbytes`` is just pointer storage, so they
    fall through to pickle costing like any other opaque object.  NumPy
    scalars cost one 8-byte word like their Python counterparts;
    structured payloads of arrays are summed; anything else is costed at
    its pickled size.  Pickled sizes are memoized on ``id()`` within one
    message, so a payload repeating the same object pays for one
    ``pickle.dumps``.

    Sanitizer envelopes are costed at their *user* payload: the vector
    clock riding along is instrumentation, and sanitized runs must
    account the same protocol traffic as plain runs (the Figure 12/13
    volumes and the traffic-profile assertions depend on it).
    """
    if (
        type(obj) is tuple
        and len(obj) == 3
        and isinstance(obj[0], str)
        and obj[0] == SANITIZE_ENVELOPE
    ):
        obj = obj[2]
    return _payload_nbytes(obj, None)


def _payload_nbytes(obj, memo: dict[int, int] | None) -> int:
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray) and not obj.dtype.hasobject:
        return obj.nbytes
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, (int, float, bool, np.integer, np.floating, np.bool_)):
        return 8
    if isinstance(obj, (tuple, list)):
        if memo is None:
            memo = {}
        return sum(_payload_nbytes(x, memo) for x in obj)
    if isinstance(obj, dict):
        if memo is None:
            memo = {}
        return sum(
            _payload_nbytes(k, memo) + _payload_nbytes(v, memo)
            for k, v in obj.items()
        )
    if memo is not None:
        cached = memo.get(id(obj))
        if cached is not None:
            return cached
    try:
        nbytes = len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except (pickle.PicklingError, TypeError, AttributeError):
        # Unpicklable control-plane objects are costed as an envelope.
        # Only pickling failures are swallowed — anything else
        # (KeyboardInterrupt, MemoryError, a bug in __reduce__) is a
        # real error and must propagate.
        nbytes = 64
    if memo is not None:
        memo[id(obj)] = nbytes
    return nbytes


@dataclass
class RankCounters:
    """Mutable traffic counters of a single rank."""

    sent_messages: int = 0
    sent_bytes: int = 0
    recv_messages: int = 0
    recv_bytes: int = 0
    collectives: int = 0
    comm_time: float = 0.0


@dataclass
class TrafficStats:
    """Thread-safe aggregate of all communication in one :class:`World`.

    Attributes
    ----------
    nranks:
        World size (used by the contention model).
    network:
        Cost model converting traffic to modeled seconds.
    """

    nranks: int
    network: NetworkModel = field(default_factory=NetworkModel)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        self.ranks = [RankCounters() for _ in range(self.nranks)]

    # ------------------------------------------------------------------
    # Recording (called by the runtime)
    # ------------------------------------------------------------------
    def record_send(self, src: int, dst: int, nbytes: int) -> None:
        t = self.network.point_to_point(nbytes, self.nranks)
        with self._lock:
            c = self.ranks[src]
            c.sent_messages += 1
            c.sent_bytes += nbytes
            c.comm_time += t
        if obs.enabled():
            obs.add("runtime.sent_messages")
            obs.add("runtime.sent_bytes", nbytes)
            obs.add("runtime.comm_time_modeled_s", t)

    def record_recv(self, dst: int, nbytes: int) -> None:
        with self._lock:
            c = self.ranks[dst]
            c.recv_messages += 1
            c.recv_bytes += nbytes
        if obs.enabled():
            obs.add("runtime.recv_messages")
            obs.add("runtime.recv_bytes", nbytes)

    def record_collective(self, nbytes: int = 8) -> None:
        """Record one collective; charged to every rank."""
        t = self.network.collective(self.nranks, nbytes)
        with self._lock:
            for c in self.ranks:
                c.collectives += 1
                c.comm_time += t
        if obs.enabled():
            obs.add("runtime.collectives")
            obs.add("runtime.comm_time_modeled_s", t * self.nranks)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def total_sent_bytes(self) -> int:
        with self._lock:
            return sum(c.sent_bytes for c in self.ranks)

    @property
    def total_messages(self) -> int:
        with self._lock:
            return sum(c.sent_messages for c in self.ranks)

    @property
    def total_collectives(self) -> int:
        with self._lock:
            return sum(c.collectives for c in self.ranks)

    @property
    def max_comm_time(self) -> float:
        """Modeled communication time on the critical (slowest) rank."""
        with self._lock:
            return max((c.comm_time for c in self.ranks), default=0.0)

    @property
    def mean_comm_time(self) -> float:
        with self._lock:
            if not self.ranks:
                return 0.0
            return sum(c.comm_time for c in self.ranks) / len(self.ranks)

    def snapshot(self) -> dict:
        """A plain-dict summary for logging and experiment tables."""
        with self._lock:
            return {
                "nranks": self.nranks,
                "total_sent_bytes": sum(c.sent_bytes for c in self.ranks),
                "total_messages": sum(c.sent_messages for c in self.ranks),
                "total_collectives": sum(c.collectives for c in self.ranks),
                "max_comm_time": max((c.comm_time for c in self.ranks), default=0.0),
                "mean_comm_time": (
                    sum(c.comm_time for c in self.ranks) / len(self.ranks)
                    if self.ranks
                    else 0.0
                ),
            }

    def publish(self, registry=None, prefix: str = "runtime") -> None:
        """Push the aggregate counters into an observe registry.

        The live path already mirrors every ``record_*`` call into the
        active registry; this method additionally lets a caller dump the
        totals of a world that ran *before* observation was enabled
        (gauges, so re-publishing does not double-count).
        """
        registry = registry if registry is not None else obs.active()
        if registry is None:
            return
        snap = self.snapshot()
        registry.set_gauge(f"{prefix}.world.sent_messages", snap["total_messages"])
        registry.set_gauge(f"{prefix}.world.sent_bytes", snap["total_sent_bytes"])
        registry.set_gauge(f"{prefix}.world.collectives", snap["total_collectives"])
        registry.set_gauge(f"{prefix}.world.max_comm_time_s", snap["max_comm_time"])

    def reset(self) -> None:
        """Zero all counters (e.g. after a warm-up phase)."""
        with self._lock:
            self.ranks = [RankCounters() for _ in range(self.nranks)]

    # ------------------------------------------------------------------
    # Cross-process aggregation (the simmpi process backend)
    # ------------------------------------------------------------------
    def export_state(self) -> list[tuple]:
        """Per-rank counters as a picklable list of tuples."""
        with self._lock:
            return [
                (
                    c.sent_messages,
                    c.sent_bytes,
                    c.recv_messages,
                    c.recv_bytes,
                    c.collectives,
                    c.comm_time,
                )
                for c in self.ranks
            ]

    def absorb_state(self, state: list[tuple]) -> None:
        """Sum another process's :meth:`export_state` into this one.

        Each traffic event is recorded in exactly one process (sends and
        receives by the rank performing them, collectives by rank 0's
        process for every rank), so summing the per-rank tuples across
        all children reconstructs the world-wide accounting exactly.
        """
        if len(state) != self.nranks:
            raise ValueError(
                f"cannot absorb stats for {len(state)} ranks into a "
                f"{self.nranks}-rank world"
            )
        with self._lock:
            for c, row in zip(self.ranks, state, strict=True):
                c.sent_messages += row[0]
                c.sent_bytes += row[1]
                c.recv_messages += row[2]
                c.recv_bytes += row[3]
                c.collectives += row[4]
                c.comm_time += row[5]
