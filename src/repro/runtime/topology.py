"""Cartesian process topologies (MPI_Cart_create analogue).

Maps linear ranks onto a periodic 3-D process grid and answers neighbor
queries — the process-side counterpart of the cell-side arithmetic in
:mod:`repro.lattice.domain`.
"""

from __future__ import annotations

from itertools import product



class CartesianTopology:
    """A periodic Cartesian arrangement of ``px * py * pz`` ranks."""

    def __init__(self, grid: tuple[int, int, int]) -> None:
        px, py, pz = grid
        if px < 1 or py < 1 or pz < 1:
            raise ValueError(f"grid dims must be positive, got {grid}")
        self.grid = (int(px), int(py), int(pz))

    @property
    def nranks(self) -> int:
        px, py, pz = self.grid
        return px * py * pz

    def coords(self, rank: int) -> tuple[int, int, int]:
        """Grid coordinates of a linear rank (row-major, z fastest)."""
        px, py, pz = self.grid
        if not 0 <= rank < self.nranks:
            raise ValueError(f"rank {rank} out of range for grid {self.grid}")
        cz = rank % pz
        rest = rank // pz
        cy = rest % py
        cx = rest // py
        return (cx, cy, cz)

    def rank(self, coords) -> int:
        """Linear rank of grid coordinates, wrapped periodically."""
        px, py, pz = self.grid
        cx, cy, cz = coords[0] % px, coords[1] % py, coords[2] % pz
        return (cx * py + cy) * pz + cz

    def shift(self, rank: int, direction) -> int:
        """Rank of the periodic neighbor of ``rank`` toward ``direction``."""
        cx, cy, cz = self.coords(rank)
        return self.rank((cx + direction[0], cy + direction[1], cz + direction[2]))

    def neighbors(self, rank: int, include_diagonals: bool = True) -> dict:
        """All neighbor ranks keyed by direction tuple.

        With ``include_diagonals`` the 26-neighborhood is returned (what
        ghost exchange over a cutoff shell needs); otherwise the 6 face
        neighbors.
        """
        out = {}
        for d in product((-1, 0, 1), repeat=3):
            if d == (0, 0, 0):
                continue
            if not include_diagonals and sum(abs(x) for x in d) != 1:
                continue
            out[d] = self.shift(rank, d)
        return out

    def distinct_neighbors(self, rank: int) -> set[int]:
        """Unique neighbor ranks (small grids alias many directions)."""
        return set(self.neighbors(rank).values()) - {rank}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CartesianTopology(grid={self.grid})"
