"""In-process message-passing runtime (the reproduction's "MPI").

The paper runs on MPI over 40,960 Sunway nodes.  This package provides an
in-process runtime with MPI semantics so the *same parallel algorithms*
(domain-decomposed MD ghost exchange, sector-synchronous KMC, on-demand
communication with probe or one-sided windows) execute for real on one
machine:

* :class:`~repro.runtime.simmpi.World` — spawns one thread per rank and
  runs an SPMD ``main(comm)`` function on each.
* :class:`~repro.runtime.simmpi.RankComm` — two-sided ``send`` / ``recv``
  / ``probe`` / ``iprobe``, plus ``barrier`` / ``allreduce`` /
  ``allgather`` / ``bcast`` collectives.
* :class:`~repro.runtime.window.Window` — one-sided ``put`` + ``fence``,
  the MPI-3 RMA pattern §2.2.1 proposes for eliminating zero-size probe
  messages.
* :class:`~repro.runtime.stats.TrafficStats` — counts every byte and
  message (the measurements behind Figures 12-13).
* :class:`~repro.runtime.netmodel.NetworkModel` — an alpha-beta network
  cost model that converts measured traffic into modeled communication
  time, replacing wall-clock timing that a threaded in-process runtime
  cannot meaningfully provide.
"""

from repro.runtime.faults import FaultInjector, FaultPlan, InjectedFault
from repro.runtime.simmpi import (
    ANY_SOURCE,
    ANY_TAG,
    RankComm,
    Status,
    WatchdogTimeout,
    World,
    WorldAborted,
)
from repro.runtime.window import Window
from repro.runtime.stats import TrafficStats
from repro.runtime.netmodel import NetworkModel
from repro.runtime.topology import CartesianTopology

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "CartesianTopology",
    "FaultInjector",
    "FaultPlan",
    "InjectedFault",
    "NetworkModel",
    "RankComm",
    "Status",
    "TrafficStats",
    "WatchdogTimeout",
    "Window",
    "World",
    "WorldAborted",
]
