"""Deterministic fault injection for the simmpi runtime.

The paper's production runs are 8.6-hour jobs on 6.6 million cores; at
that scale rank failures, straggling messages, and duplicated one-sided
traffic are the norm, not the exception.  This module lets a run *plan*
those faults ahead of time so the recovery machinery can be exercised
deterministically:

* a :class:`FaultPlan` is a parsed, immutable list of :class:`FaultSpec`
  actions (rank crash at a named execution point, delayed or duplicated
  sends, stalled one-sided window puts) plus a seed for the optional
  probabilistic "shake" mode;
* a :class:`FaultInjector` is the per-run mutable state the runtime
  consults: it counts each rank's sends and puts, decides which operation
  a spec fires on, and guarantees a crash fires **once** — so a
  supervisor that restarts from a checkpoint converges instead of
  crashing forever;
* :class:`InjectedFault` is what a crashed rank raises; the world then
  aborts exactly as it would for an organic failure.

Every injected action bumps ``runtime.faults.injected`` (and a per-kind
counter) in :mod:`repro.observe`, so a profiled run shows the fault load
next to the phase tree.

Plan syntax (semicolon-separated clauses, ``kind:key=value,...``)::

    crash:rank=1,cycle=3          # raise on rank 1 at KMC cycle 3
    crash:rank=0,event=120        # raise on rank 0 at serial event 120
    crash:rank=2,site=md.step,index=10   # any named fault point
    delay:rank=1,nth=5,seconds=0.05      # rank 1's 5th send stalls 50 ms
    dup:rank=0,nth=3              # rank 0's 3rd send is delivered twice
    dup:rank=0,nth=1,op=put       # ... or its 1st one-sided put
    stall:rank=1,nth=2,seconds=0.02      # rank 1's 2nd window put stalls
    shake:seed=7,dup=0.05,delay=0.01,seconds=0.001
                                  # seeded random dup/delay on every send

Delays and stalls are *sender-side* pauses, so MPI's per-(source, tag)
FIFO ordering is preserved; duplicates are deduplicated at delivery by
message id (at-least-once transport, exactly-once delivery), so user
code never observes them except through the counters.  None of the fault
kinds can change the final state of a deterministic program — crashes
are survived by recovery, everything else only perturbs timing.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro import observe as obs

#: Execution-point names used by the built-in engines.
SITE_KMC_CYCLE = "kmc.cycle"
SITE_KMC_EVENT = "kmc.event"

_KINDS = ("crash", "delay", "dup", "stall", "shake")


class InjectedFault(RuntimeError):
    """Raised inside a rank when its planned crash point is reached."""


class FaultPlanError(ValueError):
    """A fault-plan string could not be parsed."""


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault action.

    Attributes
    ----------
    kind:
        ``crash`` | ``delay`` | ``dup`` | ``stall`` | ``shake``.
    rank:
        Target rank (``-1`` = every rank; only meaningful for ``shake``).
    site / index:
        Crash trigger: the named execution point and its ordinal (e.g.
        ``("kmc.cycle", 3)``).
    nth:
        Delay/dup/stall trigger: fire on the rank's nth send or put
        (1-based, counted from world construction).
    seconds:
        Pause duration for ``delay``/``stall``/``shake``.
    op:
        Which operation stream ``dup`` counts: ``"send"`` (default) or
        ``"put"`` (one-sided window traffic).
    p_dup / p_delay:
        ``shake`` probabilities per send, drawn from the plan's seeded
        per-rank streams.
    """

    kind: str
    rank: int = -1
    site: str | None = None
    index: int | None = None
    nth: int | None = None
    seconds: float = 0.0
    op: str = "send"
    p_dup: float = 0.0
    p_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise FaultPlanError(f"unknown fault kind {self.kind!r}")
        if self.kind == "crash":
            if self.rank < 0 or self.site is None or self.index is None:
                raise FaultPlanError(
                    "crash needs rank plus cycle=/event=/site=+index="
                )
        elif self.kind in ("delay", "dup", "stall"):
            if self.rank < 0 or self.nth is None or self.nth < 1:
                raise FaultPlanError(f"{self.kind} needs rank= and nth>=1")
            if self.kind != "dup" and self.seconds <= 0:
                raise FaultPlanError(f"{self.kind} needs seconds>0")
            if self.op not in ("send", "put"):
                raise FaultPlanError(f"op must be send or put, got {self.op!r}")
        elif self.kind == "shake":
            if not (0 <= self.p_dup <= 1 and 0 <= self.p_delay <= 1):
                raise FaultPlanError("shake probabilities must be in [0, 1]")

    def describe(self) -> str:
        if self.kind == "crash":
            return f"crash rank {self.rank} at {self.site}[{self.index}]"
        if self.kind == "shake":
            return (
                f"shake all ranks (p_dup={self.p_dup}, "
                f"p_delay={self.p_delay}, {self.seconds}s)"
            )
        what = {"delay": "delay send", "dup": f"duplicate {self.op}",
                "stall": "stall put"}[self.kind]
        tail = f" by {self.seconds}s" if self.seconds else ""
        return f"{what} #{self.nth} of rank {self.rank}{tail}"


_CLAUSE_KEYS = {
    "crash": {"rank", "cycle", "event", "site", "index"},
    "delay": {"rank", "nth", "seconds"},
    "dup": {"rank", "nth", "op"},
    "stall": {"rank", "nth", "seconds"},
    "shake": {"seed", "dup", "delay", "seconds"},
}


def _parse_clause(clause: str) -> FaultSpec:
    kind, _, body = clause.partition(":")
    kind = kind.strip()
    if kind not in _KINDS:
        raise FaultPlanError(
            f"unknown fault kind {kind!r} in {clause!r}; "
            f"expected one of {list(_KINDS)}"
        )
    kw: dict[str, str] = {}
    if body.strip():
        for item in body.split(","):
            key, eq, value = item.partition("=")
            if not eq:
                raise FaultPlanError(f"malformed {key!r} in {clause!r}")
            key = key.strip()
            if key not in _CLAUSE_KEYS[kind]:
                raise FaultPlanError(
                    f"unknown key {key!r} for {kind!r} in {clause!r}; "
                    f"expected one of {sorted(_CLAUSE_KEYS[kind])}"
                )
            kw[key] = value.strip()
    try:
        if kind == "crash":
            site, index = kw.get("site"), kw.get("index")
            if "cycle" in kw:
                site, index = SITE_KMC_CYCLE, kw["cycle"]
            elif "event" in kw:
                site, index = SITE_KMC_EVENT, kw["event"]
            return FaultSpec(
                kind="crash",
                rank=int(kw["rank"]),
                site=site,
                index=None if index is None else int(index),
            )
        if kind == "shake":
            return FaultSpec(
                kind="shake",
                p_dup=float(kw.get("dup", 0.0)),
                p_delay=float(kw.get("delay", 0.0)),
                seconds=float(kw.get("seconds", 0.001)),
            )
        return FaultSpec(
            kind=kind,
            rank=int(kw["rank"]),
            nth=int(kw["nth"]),
            seconds=float(kw.get("seconds", 0.0)),
            op=kw.get("op", "send"),
        )
    except KeyError as exc:
        raise FaultPlanError(f"{clause!r} is missing {exc.args[0]}=") from exc
    except ValueError as exc:
        if isinstance(exc, FaultPlanError):
            raise
        raise FaultPlanError(f"bad value in {clause!r}: {exc}") from exc


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, seeded schedule of faults for one run."""

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    @classmethod
    def parse(cls, text, seed: int = 0) -> "FaultPlan":
        """Parse the semicolon-separated plan DSL (see module docstring).

        Idempotent: an already-parsed :class:`FaultPlan` passes through.
        """
        if isinstance(text, FaultPlan):
            return text
        if text is None or not text.strip():
            return cls(specs=(), seed=seed)
        specs = []
        for clause in text.split(";"):
            clause = clause.strip()
            if clause:
                spec = _parse_clause(clause)
                if spec.kind == "shake" and "seed=" in clause:
                    seed = int(clause.split("seed=")[1].split(",")[0])
                specs.append(spec)
        return cls(specs=tuple(specs), seed=seed)

    def describe(self) -> str:
        if not self.specs:
            return "no faults planned"
        return "; ".join(s.describe() for s in self.specs)

    def __bool__(self) -> bool:
        return bool(self.specs)


@dataclass
class SendAction:
    """What the injector asks :meth:`RankComm.send` to do."""

    delay_s: float = 0.0
    duplicate: bool = False
    msg_id: tuple | None = None


@dataclass
class PutAction:
    """What the injector asks :meth:`Window.put` to do."""

    stall_s: float = 0.0
    duplicate: bool = False
    msg_id: tuple | None = None


@dataclass
class _Counters:
    crashes: int = 0
    delays: int = 0
    duplicates: int = 0
    stalls: int = 0
    dropped: int = 0

    @property
    def injected(self) -> int:
        return self.crashes + self.delays + self.duplicates + self.stalls


class FaultInjector:
    """Per-run mutable fault state shared by every rank of a world.

    The injector survives recovery attempts: a restarted world keeps the
    same injector, whose fired-crash set prevents the planned crash from
    firing again — the in-process analogue of "the failed node was
    replaced".  Send/put ordinals also keep counting across attempts, so
    nth-operation faults are one-shot too.

    Thread-safe: ranks are threads and consult the injector concurrently.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._fired: set[int] = set()
        self._sends: dict[int, int] = {}
        self._puts: dict[int, int] = {}
        self._shake_rng: dict[int, np.random.Generator] = {}
        self._next_msg_id = 0
        #: Namespace for allocated message ids.  The thread backend keeps
        #: the default 0 (one shared injector); the process backend sets
        #: it to ``rank + 1`` in each forked child, so ids allocated by
        #: independent per-process injector copies never collide at the
        #: delivery-side dedup.
        self.msg_id_tag = 0
        self.counters = _Counters()

    # ------------------------------------------------------------------
    def _alloc_msg_id(self) -> tuple:
        self._next_msg_id += 1
        return ("fault-dup", self.msg_id_tag, self._next_msg_id)

    def _rank_shake_rng(self, rank: int) -> np.random.Generator:
        rng = self._shake_rng.get(rank)
        if rng is None:
            rng = np.random.default_rng(
                np.random.SeedSequence(entropy=self.plan.seed,
                                       spawn_key=(0xFA, rank))
            )
            self._shake_rng[rank] = rng
        return rng

    # ------------------------------------------------------------------
    def crash_point(self, rank: int, site: str, index: int) -> None:
        """Raise :class:`InjectedFault` if a crash is planned here.

        Called by the engines at named execution points (e.g. the AKMC
        drivers call it at the top of every cycle / event).  Each crash
        spec fires at most once, ever.
        """
        for i, spec in enumerate(self.plan.specs):
            if spec.kind != "crash" or spec.rank != rank:
                continue
            if spec.site != site or spec.index != index:
                continue
            with self._lock:
                if i in self._fired:
                    continue
                self._fired.add(i)
                self.counters.crashes += 1
            obs.add("runtime.faults.injected")
            obs.add("runtime.faults.crashes")
            raise InjectedFault(
                f"planned crash: rank {rank} at {site}[{index}]"
            )

    def on_send(self, rank: int, dest: int, tag: int) -> SendAction | None:
        """Consulted by every ``send``; returns the action to apply (or None)."""
        action: SendAction | None = None
        with self._lock:
            n = self._sends.get(rank, 0) + 1
            self._sends[rank] = n
            for i, spec in enumerate(self.plan.specs):
                if spec.kind == "delay" and spec.rank == rank and spec.nth == n:
                    if i in self._fired:
                        continue
                    self._fired.add(i)
                    action = action or SendAction()
                    action.delay_s = max(action.delay_s, spec.seconds)
                    self.counters.delays += 1
                elif (spec.kind == "dup" and spec.op == "send"
                      and spec.rank == rank and spec.nth == n):
                    if i in self._fired:
                        continue
                    self._fired.add(i)
                    action = action or SendAction()
                    action.duplicate = True
                    action.msg_id = self._alloc_msg_id()
                    self.counters.duplicates += 1
                elif spec.kind == "shake":
                    rng = self._rank_shake_rng(rank)
                    if spec.p_dup and rng.random() < spec.p_dup:
                        action = action or SendAction()
                        if not action.duplicate:
                            action.duplicate = True
                            action.msg_id = self._alloc_msg_id()
                            self.counters.duplicates += 1
                    if spec.p_delay and rng.random() < spec.p_delay:
                        action = action or SendAction()
                        action.delay_s = max(action.delay_s, spec.seconds)
                        self.counters.delays += 1
        if action is not None:
            obs.add("runtime.faults.injected")
            if action.delay_s:
                obs.add("runtime.faults.delays")
            if action.duplicate:
                obs.add("runtime.faults.duplicates")
        return action

    def on_put(self, rank: int, target: int) -> PutAction | None:
        """Consulted by every one-sided ``put``; like :meth:`on_send`."""
        action: PutAction | None = None
        with self._lock:
            n = self._puts.get(rank, 0) + 1
            self._puts[rank] = n
            for i, spec in enumerate(self.plan.specs):
                if spec.rank != rank or spec.nth != n or i in self._fired:
                    continue
                if spec.kind == "stall":
                    self._fired.add(i)
                    action = action or PutAction()
                    action.stall_s = max(action.stall_s, spec.seconds)
                    self.counters.stalls += 1
                elif spec.kind == "dup" and spec.op == "put":
                    self._fired.add(i)
                    action = action or PutAction()
                    action.duplicate = True
                    action.msg_id = self._alloc_msg_id()
                    self.counters.duplicates += 1
        if action is not None:
            obs.add("runtime.faults.injected")
            if action.stall_s:
                obs.add("runtime.faults.stalls")
            if action.duplicate:
                obs.add("runtime.faults.duplicates")
        return action

    def record_dropped_duplicate(self) -> None:
        """Called by the delivery layers when an id-dedup drops a message."""
        with self._lock:
            self.counters.dropped += 1

    # ------------------------------------------------------------------
    # Cross-process state transfer (the simmpi process backend)
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Fired specs, operation ordinals, and counters — picklable.

        A forked child's injector copy mutates independently of the
        parent's; the child ships this dict back at exit so the parent
        injector stays the single source of truth (crash one-shot-ness
        must survive a recovery supervisor re-running the world).
        """
        with self._lock:
            c = self.counters
            return {
                "fired": sorted(self._fired),
                "sends": dict(self._sends),
                "puts": dict(self._puts),
                "counters": {
                    "crashes": c.crashes,
                    "delays": c.delays,
                    "duplicates": c.duplicates,
                    "stalls": c.stalls,
                    "dropped": c.dropped,
                },
            }

    def absorb_state(self, state: dict, base: dict | None = None) -> None:
        """Merge a child injector's :meth:`export_state` into this one.

        ``base`` is the child's export at fork time (i.e. this
        injector's state when the world started): counters are absorbed
        as deltas against it so inherited history is not double-counted.
        Send/put ordinals are per-rank and each rank runs in exactly one
        child, so the child's absolute value replaces the parent's.
        """
        with self._lock:
            self._fired.update(int(i) for i in state["fired"])
            for rank, n in state["sends"].items():
                if n > self._sends.get(rank, 0):
                    self._sends[rank] = n
            for rank, n in state["puts"].items():
                if n > self._puts.get(rank, 0):
                    self._puts[rank] = n
            base_counters = (base or {}).get("counters", {})
            c = self.counters
            for key, value in state["counters"].items():
                delta = value - base_counters.get(key, 0)
                if delta > 0:
                    setattr(c, key, getattr(c, key) + delta)

    def snapshot(self) -> dict:
        """Counters of everything injected so far (for reports/results)."""
        with self._lock:
            c = self.counters
            return {
                "injected": c.injected,
                "crashes": c.crashes,
                "delays": c.delays,
                "duplicates": c.duplicates,
                "stalls": c.stalls,
                "duplicates_dropped": c.dropped,
                "plan": self.plan.describe(),
            }


def resolve_plan(faults) -> FaultPlan | None:
    """Normalize a ``--faults`` value: str | FaultPlan | None -> FaultPlan."""
    if faults is None:
        return None
    if isinstance(faults, FaultPlan):
        return faults if faults else None
    if isinstance(faults, str):
        plan = FaultPlan.parse(faults)
        return plan if plan else None
    raise TypeError(f"cannot interpret fault plan of type {type(faults)!r}")
