"""True multi-process execution backend for the simmpi runtime.

The default backend of :class:`~repro.runtime.simmpi.World` runs every
rank as a Python *thread*: correct, fast to spawn, but serialized by the
GIL wherever the force and rate kernels run Python-level code — a
strong-scaling experiment on the thread backend measures scheduling, not
speedup.  This module provides ``backend="process"``: each rank becomes
a forked OS process, so MD force work and KMC rate kernels genuinely run
in parallel on multi-core hosts, while the whole ``RankComm`` /
``Window`` API — two-sided messaging with MPI matching semantics,
collectives, one-sided windows, fault injection, watchdog deadlines,
traffic accounting, and observe phases — behaves identically.

Transport
---------
* **Two-sided**: every rank owns one ``multiprocessing.Queue`` inbox.  A
  daemon *pump thread* inside each child drains the inbox into the same
  :class:`~repro.runtime.simmpi._Mailbox` the thread backend uses, so
  wildcard matching, per-(source, tag) FIFO, watchdog deadlines, and
  abort wakeups are literally the same code.
* **Collectives**: a sequence-tagged gather queue into rank 0 plus
  per-rank broadcast queues; every rank executes collectives in the same
  program order (an MPI requirement), so the sequence numbers agree and
  concurrent epochs cannot interleave.  Barriers use a shared
  ``multiprocessing.Barrier``.
* **One-sided**: puts travel through the target's inbox tagged with a
  window id; the fence exchanges per-target put *counts* first, then
  drains exactly that many entries per origin — robust against queue
  feeder-thread latency, FIFO per origin, deduplicated by message id
  for fault-injected duplicate puts.

Aggregation at join
-------------------
Each child records into its own :class:`TrafficStats`, observe
:class:`~repro.observe.registry.Registry`, and (forked copy of the)
:class:`~repro.runtime.faults.FaultInjector`; at exit it ships those
registries through a result pipe and the parent merges them, so
``world.stats``, the active observe registry, and the shared injector
end up equivalent to a thread-backend run.  Fired crash specs are merged
back too: a recovery supervisor re-running the world forks the injector
*with* the fired set, so planned crashes stay one-shot across recovery
attempts exactly as on the thread backend.

Determinism
-----------
Engines address receives by explicit (source, tag) and collectives
return rank-ordered lists, so a deterministic program produces results
bit-identical to the thread backend — asserted by the backend-parity
tests for all three parallel-KMC schemes and the distributed damage MD.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue as _stdlib_queue
import threading
import time
from collections import deque
from multiprocessing import connection as _mpconn

from repro import observe as obs
from repro.runtime import shm as _shm
from repro.runtime.simmpi import (
    RankComm,
    WatchdogTimeout,
    WorldAborted,
    _freeze,
    _Mailbox,
)
from repro.runtime.stats import TrafficStats, payload_nbytes

#: Envelope kinds carried by the per-rank inbox queues.
_MSG = "msg"
_WIN = "win"
_ABORT = "abort"
_QUIESCE = "quiesce"
#: Envelope kind of the collective queues.
_EXCHANGE = "x"


def fork_available() -> bool:
    """Whether the platform can run the process backend (needs fork)."""
    return "fork" in multiprocessing.get_all_start_methods()


def _rank_groups(nranks: int, workers: int) -> list[list[int]]:
    """Contiguous split of ``nranks`` ranks over ``workers`` children.

    Mirrors the paper's block decomposition of subdomains over nodes:
    neighbouring ranks land in the same child wherever possible, so the
    halo traffic that dominates the exchange schemes stays in-process.
    """
    n_groups = max(1, min(int(workers), nranks))
    base, extra = divmod(nranks, n_groups)
    groups, start = [], 0
    for gi in range(n_groups):
        size = base + (1 if gi < extra else 0)
        groups.append(list(range(start, start + size)))
        start += size
    return groups


class _Endpoints:
    """All shared transport state, created in the parent before forking."""

    def __init__(self, ctx, nranks: int, pool=None) -> None:
        self.nranks = nranks
        self.inboxes = [ctx.Queue() for _ in range(nranks)]
        self.gather_q = ctx.Queue()
        self.bcast_qs = [ctx.Queue() for _ in range(nranks)]
        self.barrier = ctx.Barrier(nranks)
        #: Optional zero-copy array transport (see repro.runtime.shm):
        #: queues then carry slot headers instead of pickled array bytes.
        self.pool = pool


def _abort_all(endpoints: _Endpoints) -> None:
    """Wake every blocking primitive of every rank (parent-side abort)."""
    try:
        endpoints.barrier.abort()
    except (ValueError, OSError):  # pragma: no cover - already torn down
        pass
    for q in endpoints.inboxes:
        q.put((_ABORT,))
    for q in endpoints.bcast_qs:
        q.put((_ABORT,))
    for _ in range(endpoints.nranks):
        endpoints.gather_q.put((_ABORT,))


def _get_checked(q, deadline: float | None, op: str):
    """Blocking queue get honoring the watchdog deadline and abort sentinels."""
    while True:
        if deadline is None:
            item = q.get()
        else:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                obs.add("runtime.watchdog.expired")
                raise WatchdogTimeout(
                    f"watchdog: {op} did not complete before the deadline"
                )
            try:
                item = q.get(timeout=remaining)
            except _stdlib_queue.Empty:
                continue
        if item[0] == _ABORT:
            raise WorldAborted(f"world aborted while waiting in {op}")
        return item


class _ProcessCollectives:
    """Sequence-tagged gather/broadcast collectives over shared queues.

    Every rank calls the collectives in identical program order (MPI
    semantics the engines already rely on), so a per-rank local sequence
    counter agrees across ranks and rank 0 can sort early arrivals of a
    *later* exchange into a holding buffer instead of corrupting the
    current one.
    """

    def __init__(self, endpoints: _Endpoints, rank: int) -> None:
        self.nranks = endpoints.nranks
        self.rank = rank
        self.barrier = endpoints.barrier
        self.gather_q = endpoints.gather_q
        self.bcast_qs = endpoints.bcast_qs
        self.pool = endpoints.pool
        self._seq = 0
        self._early: dict[int, dict[int, object]] = {}

    def wait(self, timeout: float | None = None) -> None:
        """Barrier wait; same watchdog/abort mapping as the thread backend."""
        start = time.monotonic() if timeout is not None else 0.0
        try:
            self.barrier.wait(timeout=timeout)
        except threading.BrokenBarrierError as exc:
            if timeout is not None and time.monotonic() - start >= timeout:
                obs.add("runtime.watchdog.expired")
                raise WatchdogTimeout(
                    f"watchdog: collective did not complete within {timeout}s"
                ) from exc
            raise WorldAborted("world aborted during a collective") from exc

    def exchange(self, rank: int, value, timeout: float | None = None) -> list:
        """All ranks deposit a value; everyone gets the rank-ordered list."""
        seq = self._seq
        self._seq += 1
        pool = self.pool
        deadline = None if timeout is None else time.monotonic() + timeout
        contribution = value if pool is None else pool.encode(value)
        self.gather_q.put((_EXCHANGE, seq, rank, contribution))
        if rank == 0:
            slots = self._early.setdefault(seq, {})
            while len(slots) < self.nranks:
                _kind, s, r, v = _get_checked(
                    self.gather_q, deadline, "collective"
                )
                # Decode at arrival (even early arrivals of later
                # exchanges) so contribution slots recycle immediately.
                self._early.setdefault(s, {})[r] = (
                    v if pool is None else pool.decode(v)
                )
            self._early.pop(seq)
            full = [slots[r] for r in range(self.nranks)]
            if pool is not None:
                # One encode pinned for all receivers; every rank's
                # decode drops one reference, the last frees the slots.
                full = pool.encode(full, nrefs=self.nranks)
            for q in self.bcast_qs:
                q.put((_EXCHANGE, seq, full))
        _kind, s, full = _get_checked(
            self.bcast_qs[rank], deadline, "collective"
        )
        if pool is not None:
            full = pool.decode(full)
        if s != seq:  # pragma: no cover - protocol invariant
            raise RuntimeError(
                f"collective sequence mismatch: expected {seq}, got {s}"
            )
        return list(full)


class _WindowHub:
    """Per-process store of delivered one-sided puts, keyed by window."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        #: window id -> origin rank -> FIFO of (payload, nbytes).
        self._buffers: dict[int, dict[int, deque]] = {}
        self._seen_ids: set = set()

    def deliver(self, win_id, origin, payload, nbytes, msg_id, injector) -> None:
        with self._cond:
            if msg_id is not None:
                if msg_id in self._seen_ids:
                    obs.add("runtime.faults.duplicates_dropped")
                    if injector is not None:
                        injector.record_dropped_duplicate()
                    return
                self._seen_ids.add(msg_id)
            per_origin = self._buffers.setdefault(win_id, {})
            per_origin.setdefault(origin, deque()).append((payload, nbytes))
            self._cond.notify_all()

    def take(self, win_id, origin, count, abort, deadline) -> list:
        """Blocking take of exactly ``count`` puts from ``origin``."""
        out: list = []
        with self._cond:
            while True:
                buf = self._buffers.setdefault(win_id, {}).setdefault(
                    origin, deque()
                )
                while buf and len(out) < count:
                    out.append(buf.popleft())
                if len(out) >= count:
                    return out
                if abort.is_set():
                    raise WorldAborted("world aborted while waiting in fence")
                if deadline is None:
                    self._cond.wait()
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._cond.wait(timeout=remaining):
                    if deadline - time.monotonic() <= 0:
                        obs.add("runtime.watchdog.expired")
                        raise WatchdogTimeout(
                            "watchdog: fence did not receive all puts "
                            "before the deadline"
                        )

    def wake_all(self) -> None:
        with self._cond:
            self._cond.notify_all()


class _RemoteMailbox:
    """Deposit proxy routing to another rank's inbox queue."""

    __slots__ = ("_inbox", "_pool")

    def __init__(self, inbox, pool=None) -> None:
        self._inbox = inbox
        self._pool = pool

    def deposit(self, src, tag, payload, nbytes, msg_id=None) -> bool:
        # The payload was frozen (copied) by the caller, so the pickle
        # performed later by the queue's feeder thread cannot observe
        # sender-side mutations.  Duplicate dedup happens at delivery.
        # With a pool, bulk arrays move to shared memory here and the
        # queue pickles only the slot headers; a fault-injected duplicate
        # deposit encodes again (own slots), and the receiver's
        # decode-then-dedup order guarantees its slots are released too.
        if self._pool is not None:
            payload = self._pool.encode(payload)
        self._inbox.put((_MSG, src, tag, payload, nbytes, msg_id))
        return True


class _MailboxRouter:
    """``world.mailboxes`` stand-in: local real mailbox, remote proxies."""

    def __init__(self, view: "_ProcessWorldView") -> None:
        self._view = view
        pool = view.endpoints.pool
        self._remotes = [
            _RemoteMailbox(inbox, pool) for inbox in view.endpoints.inboxes
        ]

    def __getitem__(self, dest: int):
        view = self._view
        if dest == view.rank:
            return view.local_mailbox
        if view.hosted is not None:
            peer = view.hosted.get(dest)
            if peer is not None:
                # Rank-group mode: the destination lives in this same
                # child, so deposit straight into its mailbox — no queue,
                # no pickle, no feeder-thread latency.
                return peer.local_mailbox
        return self._remotes[dest]


class _ProcessWorldView:
    """The ``World``-shaped object a forked rank hands to its RankComm.

    Exposes exactly the attributes :class:`RankComm` touches —
    ``nranks``, ``stats``, ``mailboxes``, ``collectives``, ``abort``,
    ``faults``, ``watchdog`` — backed by the process transport, plus the
    pump thread that moves inbound envelopes into the local mailbox and
    window hub.

    In rank-group mode several views live in one child and share a
    ``hosted`` registry (rank -> view) plus one :class:`TrafficStats`;
    traffic between co-hosted ranks is routed in-process through the
    peer's mailbox/hub, and only cross-group traffic touches the queues.
    """

    def __init__(
        self,
        rank,
        nranks,
        endpoints,
        network,
        faults,
        watchdog,
        stats=None,
        hosted=None,
    ) -> None:
        self.rank = rank
        self.nranks = nranks
        self.endpoints = endpoints
        self.stats = stats if stats is not None else TrafficStats(nranks, network)
        self.faults = faults
        self.watchdog = watchdog
        self.scheduler = None
        self.hosted = hosted
        if hosted is not None:
            hosted[rank] = self
        self.abort = threading.Event()
        self.local_mailbox = _Mailbox()
        self.hub = _WindowHub()
        self.mailboxes = _MailboxRouter(self)
        self.collectives = _ProcessCollectives(endpoints, rank)
        self._win_counter = 0
        self._pump = threading.Thread(
            target=self._pump_loop,
            name=f"simmpi-pump-{rank}",
            daemon=True,
        )
        self._pump.start()

    def alloc_win_id(self) -> int:
        """Next window id; identical across ranks (collective creation)."""
        win_id = self._win_counter
        self._win_counter += 1
        return win_id

    def deliver_put(self, win_id, target, payload, nbytes, msg_id) -> None:
        """Route one one-sided put (already frozen) toward its target."""
        if target == self.rank:
            self.hub.deliver(
                win_id, self.rank, payload, nbytes, msg_id, self.faults
            )
            return
        if self.hosted is not None:
            peer = self.hosted.get(target)
            if peer is not None:
                peer.hub.deliver(
                    win_id, self.rank, payload, nbytes, msg_id, peer.faults
                )
                return
        pool = self.endpoints.pool
        if pool is not None:
            # Each deliver_put call (duplicates included) encodes its
            # own slots; the target decodes before its dedup check, so
            # dropped duplicates still release theirs.
            payload = pool.encode(payload)
        self.endpoints.inboxes[target].put(
            (_WIN, win_id, self.rank, payload, nbytes, msg_id)
        )

    def _pump_loop(self) -> None:
        inbox = self.endpoints.inboxes[self.rank]
        while True:
            try:
                item = inbox.get()
            except (EOFError, OSError):  # pragma: no cover - teardown race
                return
            kind = item[0]
            if kind == _QUIESCE:
                return
            if kind == _ABORT:
                self.abort.set()
                self.local_mailbox.wake_all()
                self.hub.wake_all()
                return
            self._handle_envelope(item)

    def _handle_envelope(self, item) -> None:
        kind = item[0]
        pool = self.endpoints.pool
        if kind == _MSG:
            _kind, src, tag, payload, nbytes, msg_id = item
            if pool is not None:
                # Decode *before* the mailbox's duplicate check: a
                # dropped duplicate must still release its slots.
                payload = pool.decode(payload)
            delivered = self.local_mailbox.deposit(
                src, tag, payload, nbytes, msg_id
            )
            if not delivered and self.faults is not None:
                self.faults.record_dropped_duplicate()
        elif kind == _WIN:
            _kind, win_id, origin, payload, nbytes, msg_id = item
            if pool is not None:
                payload = pool.decode(payload)
            self.hub.deliver(
                win_id, origin, payload, nbytes, msg_id, self.faults
            )

    def quiesce(self) -> None:
        """Stop the pump and fold already-arrived envelopes into the mailbox.

        Called once ``main`` has returned, before the exit report is
        built, so the reported pending count is exact: every inbound
        envelope is either deposited here (and counted by the local
        mailbox) or still in the queue for the parent's residual sweep —
        never lost in the pump's hand-off window.
        """
        inbox = self.endpoints.inboxes[self.rank]
        inbox.put((_QUIESCE,))
        self._pump.join(timeout=10.0)
        while True:
            try:
                item = inbox.get_nowait()
            except _stdlib_queue.Empty:
                return
            if item[0] in (_MSG, _WIN):
                self._handle_envelope(item)


class _ProcessWindow:
    """One-sided window over the process transport (Window-compatible)."""

    def __init__(self, comm: "_ProcessRankComm", win_id: int) -> None:
        self.comm = comm
        self.win_id = win_id
        #: Logical puts issued this epoch, by target rank.
        self._epoch_counts = [0] * comm.size

    def put(self, target: int, payload) -> None:
        """Deposit ``payload`` in ``target``'s window; target not involved."""
        if not 0 <= target < self.comm.size:
            raise ValueError(f"target rank {target} out of range")
        view = self.comm.world
        inj = view.faults
        action = inj.on_put(self.comm.rank, target) if inj is not None else None
        nbytes = payload_nbytes(payload)
        view.stats.record_send(self.comm.rank, target, nbytes)
        frozen = _freeze(payload)
        self._epoch_counts[target] += 1
        if action is None:
            view.deliver_put(self.win_id, target, frozen, nbytes, None)
            return
        if action.stall_s > 0:
            time.sleep(action.stall_s)
        msg_id = action.msg_id if action.duplicate else None
        view.deliver_put(self.win_id, target, frozen, nbytes, msg_id)
        if action.duplicate:
            # Metered as real wire traffic; dropped by the target's
            # message-id dedup before it reaches the window buffer.
            view.stats.record_send(self.comm.rank, target, nbytes)
            view.deliver_put(self.win_id, target, frozen, nbytes, msg_id)

    def fence(self) -> list[tuple[int, object]]:
        """Synchronize the epoch; return ``(origin, payload)`` puts received.

        The opening synchronization doubles as the completion contract:
        ranks exchange how many puts each issued per target, then every
        rank blocks until exactly that many entries arrived from each
        origin — queue-latency-proof, FIFO per origin.  Entries are
        returned in origin-rank order (origins address disjoint site
        sets in every exchange scheme, so ordering across origins is
        immaterial; rank order makes it deterministic anyway).
        """
        comm = self.comm
        view = comm.world
        counts = comm.allgather(list(self._epoch_counts))
        self._epoch_counts = [0] * comm.size
        deadline = comm._deadline()
        mine: list[tuple[int, object]] = []
        for origin in range(comm.size):
            expected = counts[origin][comm.rank]
            if not expected:
                continue
            for payload, nbytes in view.hub.take(
                self.win_id, origin, expected, view.abort, deadline
            ):
                view.stats.record_recv(comm.rank, nbytes)
                mine.append((origin, payload))
        comm.barrier()
        return mine


class _ProcessRankComm(RankComm):
    """RankComm whose world is a :class:`_ProcessWorldView`.

    Every two-sided, collective, and fault-point method is inherited
    unchanged — the view's mailbox router, collectives, stats, and
    injector plug into the exact thread-backend code paths.  Only
    one-sided window creation differs: the thread backend shares an
    in-memory ``WindowShared``, which cannot cross a process boundary.
    """

    def win_create(self):
        """Collectively create a one-sided window over the transport."""
        view = self.world
        win_id = view.alloc_win_id()
        ids = view.collectives.exchange(self.rank, win_id)
        if any(i != win_id for i in ids):  # pragma: no cover - invariant
            raise RuntimeError("window creation out of sync across ranks")
        return _ProcessWindow(self, win_id)


def _ensure_picklable(exc: BaseException) -> BaseException:
    """The exception itself if it survives pickling, else a summary."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        # A custom __reduce__ can raise anything, so the catch must stay
        # broad — but the downgrade is counted, never silent.
        obs.add("runtime.procbackend.unpicklable_errors")
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def _group_entry(
    main, gi, ranks, nranks, endpoints, conn, network, faults, watchdog, obs_trace
) -> None:
    """Entry point of one forked child hosting a contiguous rank group.

    The default configuration forks one child per rank (``ranks`` is a
    singleton); with ``workers=P < nranks`` each child hosts ``~R/P``
    ranks as threads sharing one traffic ledger, observe registry, and
    injector copy — the overdecomposition analogue of several subdomains
    pinned to one physical node.
    """
    if faults is not None:
        # Namespace this child's duplicate message ids: the per-process
        # injector copies allocate ids independently.  Groups are
        # contiguous, so the lowest hosted rank is unique per child.
        faults.msg_id_tag = ranks[0] + 1
    child_registry = None
    if obs_trace is not None:
        from repro.observe.registry import Registry

        child_registry = obs.enable(Registry(trace=obs_trace))
    stats = TrafficStats(nranks, network)
    hosted: dict[int, _ProcessWorldView] = {}
    # All views exist (and are registered in ``hosted``) before any rank
    # runs, so in-process routing is complete from the first send.
    views = [
        _ProcessWorldView(
            r, nranks, endpoints, network, faults, watchdog,
            stats=stats, hosted=hosted,
        )
        for r in ranks
    ]
    statuses: dict[int, str] = {}
    results: dict[int, object] = {}
    errors: dict[int, BaseException] = {}

    def rank_main(view: _ProcessWorldView) -> None:
        comm = _ProcessRankComm(view, view.rank)
        try:
            results[view.rank] = main(comm)
            statuses[view.rank] = "ok"
        except WorldAborted:
            statuses[view.rank] = "aborted"
        except BaseException as exc:  # must cross processes (see baseline)
            statuses[view.rank] = "err"
            errors[view.rank] = _ensure_picklable(exc)
            # Abort the whole world from inside the child, exactly as
            # the parent would: co-hosted ranks see it via their pumps.
            _abort_all(endpoints)

    threads = [
        threading.Thread(
            target=rank_main, args=(view,), name=f"simmpi-rank-{view.rank}"
        )
        for view in views
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for view in views:
        view.quiesce()
    report = {
        "group": gi,
        "ranks": list(ranks),
        "statuses": statuses,
        "results": results,
        "errors": errors,
        "stats": stats.export_state(),
        "obs": (
            child_registry.export_state() if child_registry is not None else None
        ),
        "faults": faults.export_state() if faults is not None else None,
        "pending": sum(v.local_mailbox.pending() for v in views),
        "seen_ids": set().union(
            *((v.local_mailbox._seen_ids or set()) for v in views)
        ),
    }
    try:
        conn.send(report)
    except (pickle.PicklingError, TypeError, AttributeError) as exc:
        # A result failed to pickle: count it, then resend a stub
        # report so the parent is never left blocking on the pipe.
        obs.add("runtime.procbackend.unpicklable_results")
        report["results"] = {}
        report["statuses"] = {r: "err" for r in ranks}
        report["errors"] = {
            ranks[0]: RuntimeError(
                f"rank group {ranks[0]}-{ranks[-1]} produced an "
                f"unpicklable result: {exc}"
            )
        }
        conn.send(report)
    finally:
        conn.close()


def run_process_world(
    world, main, timeout: float = 300.0, grace: float = 5.0,
    workers: int | None = None,
) -> list:
    """Execute ``main(comm)`` with forked processes hosting the ranks.

    Drop-in replacement for the thread path of
    :meth:`~repro.runtime.simmpi.World.run`: same result list, same
    error-precedence contract (KeyboardInterrupt first, then typed
    InjectedFault/WatchdogTimeout, then ``RuntimeError('rank N
    failed')``), same TimeoutError shape on a hung world — and the
    world's stats/faults plus the active observe registry absorb every
    child's measurements before control returns.

    ``workers=None`` (default) forks one child per rank.  ``workers=P``
    forks ``min(P, nranks)`` children, each hosting a contiguous group
    of ~R/P ranks as threads with in-process routing inside the group —
    the overdecomposed process topology.
    """
    if not fork_available():
        raise RuntimeError(
            "the process backend requires the 'fork' start method "
            "(unavailable on this platform); use backend='thread'"
        )
    if os.environ.get("REPRO_FORCE_THREAD_BACKEND"):
        # Escape hatch for environments where forking is disallowed
        # (sandboxes, some CI runners): behave like the thread backend.
        return world.run(main, timeout=timeout, grace=grace, backend="thread")
    nranks = world.nranks
    groups = (
        _rank_groups(nranks, workers)
        if workers is not None
        else [[r] for r in range(nranks)]
    )
    ctx = multiprocessing.get_context("fork")
    pool = _shm.create_pool(ctx, nranks)
    endpoints = _Endpoints(ctx, nranks, pool)
    try:
        return _run_forked(world, main, timeout, grace, groups, ctx, endpoints)
    finally:
        # Unconditional teardown: no run — clean, aborted, or timed out —
        # may leak /dev/shm space past the world's lifetime.
        if pool is not None:
            leaked = pool.leaked_slots()
            world.shm_leaked_slots = leaked  # the sanitizer reads this
            if leaked:  # a terminated child died holding slots
                obs.add("runtime.shm.leaked_slots", leaked)
            pool.destroy()


def _run_forked(
    world, main, timeout: float, grace: float, groups, ctx,
    endpoints: _Endpoints,
) -> list:
    """Fork/collect/merge core of :func:`run_process_world`."""
    from repro.runtime.faults import InjectedFault

    nranks = world.nranks
    registry = obs.active()
    obs_trace = registry._trace if registry is not None else None
    faults_base = (
        world.faults.export_state() if world.faults is not None else None
    )
    procs, conns = [], []
    for gi, ranks in enumerate(groups):
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        name = (
            f"simmpi-rank-{ranks[0]}"
            if len(ranks) == 1
            else f"simmpi-group-{gi}"
        )
        proc = ctx.Process(
            target=_group_entry,
            args=(
                main,
                gi,
                ranks,
                nranks,
                endpoints,
                child_conn,
                world.stats.network,
                world.faults,
                world.watchdog,
                obs_trace,
            ),
            name=name,
            daemon=True,
        )
        procs.append(proc)
        conns.append(parent_conn)
    with obs.phase("runtime.spawn_processes"):
        for proc in procs:
            proc.start()

    reports: dict[int, dict] = {}
    errors: list[tuple[int, BaseException]] = []
    aborted = False

    def note_error(rank: int, exc: BaseException) -> None:
        nonlocal aborted
        errors.append((rank, exc))
        if not aborted:
            aborted = True
            world.abort.set()
            _abort_all(endpoints)

    def collect(deadline: float) -> None:
        """Drain reports/exits until all children reported or time ran out."""
        pending = set(range(len(groups))) - set(reports)
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return
            waitables = [conns[g] for g in pending]
            waitables += [procs[g].sentinel for g in pending]
            _mpconn.wait(waitables, timeout=remaining)
            for g in list(pending):
                if conns[g].poll():
                    try:
                        rep = conns[g].recv()
                    except (EOFError, OSError):
                        rep = None
                    if rep is not None:
                        reports[g] = rep
                        pending.discard(g)
                        for r in rep["ranks"]:
                            if rep["statuses"].get(r) == "err":
                                note_error(r, rep["errors"][r])
                        continue
                if not procs[g].is_alive() and not conns[g].poll():
                    pending.discard(g)
                    ranks = groups[g]
                    label = (
                        f"rank {ranks[0]}"
                        if len(ranks) == 1
                        else f"rank group {ranks[0]}-{ranks[-1]}"
                    )
                    note_error(
                        ranks[0],
                        RuntimeError(
                            f"{label} process exited with code "
                            f"{procs[g].exitcode} without reporting"
                        ),
                    )

    collect(time.monotonic() + timeout)
    timed_out = len(reports) < len(groups)
    if timed_out:
        if not aborted:
            aborted = True
            world.abort.set()
            _abort_all(endpoints)
        collect(time.monotonic() + grace)
    for proc in procs:
        proc.join(timeout=0.1 if not timed_out else grace)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=1.0)
    for conn in conns:
        conn.close()

    # Merge every child's measurements into the parent-side registries.
    pending_msgs = 0
    results_by_rank: dict[int, object] = {}
    for gi, ranks in enumerate(groups):
        rep = reports.get(gi)
        if rep is None:
            continue
        results_by_rank.update(rep.get("results") or {})
        if rep.get("stats") is not None:
            world.stats.absorb_state(rep["stats"])
        if rep.get("faults") is not None and world.faults is not None:
            world.faults.absorb_state(rep["faults"], base=faults_base)
        if rep.get("obs") is not None and registry is not None:
            label = (
                f"rank{ranks[0]}/" if len(ranks) == 1 else f"group{gi}/"
            )
            registry.absorb_state(rep["obs"], label=label)
        pending_msgs += rep.get("pending", 0)

    # Residual sweep: an envelope can still sit in a rank's inbox queue
    # when that rank quiesces (queue feeder threads flush asynchronously,
    # so a send that "happened before" the receiver's exit may reach the
    # pipe after it).  All children have exited by now, which flushes
    # their feeders, so whatever remains here is the exact set of
    # undelivered envelopes — count the messages, minus duplicates whose
    # original a child already recorded as seen.
    seen_ids: set = set()
    for rep in reports.values():
        seen_ids |= rep.get("seen_ids") or set()
    pool = endpoints.pool
    for q in endpoints.inboxes:
        while True:
            try:
                item = q.get_nowait()
            except _stdlib_queue.Empty:
                break
            except (EOFError, OSError, pickle.UnpicklingError):
                break  # a terminated child left a truncated write
            if pool is not None and item[0] in (_MSG, _WIN):
                # Abort-while-slot-held: the receiver is gone, so the
                # parent drops this envelope's slot references (both
                # envelope kinds keep the payload at index 3).
                pool.release_refs(item[3])
            if item[0] != _MSG:
                continue
            msg_id = item[5]
            if msg_id is not None and msg_id in seen_ids:
                # Fault-injected duplicate of an already-delivered
                # message: dropped here exactly as the mailbox would.
                if world.faults is not None:
                    world.faults.record_dropped_duplicate()
                continue
            pending_msgs += 1
    if pool is not None:
        # Collective envelopes can be stranded too (a world aborted
        # between a gather deposit and rank 0's collection, or between
        # the broadcast and a receiver's get).
        for cq, payload_at in [(endpoints.gather_q, 3)] + [
            (bq, 2) for bq in endpoints.bcast_qs
        ]:
            while True:
                try:
                    item = cq.get_nowait()
                except _stdlib_queue.Empty:
                    break
                except (EOFError, OSError, pickle.UnpicklingError):
                    break
                if item[0] == _EXCHANGE:
                    pool.release_refs(item[payload_at])
    world._child_pending = pending_msgs

    if timed_out:
        missing = sorted(set(range(len(groups))) - set(reports))
        if missing:
            detail = (
                f"; {len(missing)} rank process(es) still alive after a "
                f"{grace:g}s abort grace period (terminated): "
                + ", ".join(procs[g].name for g in missing)
            )
        else:
            detail = "; all ranks exited after the abort"
        raise TimeoutError(
            f"world of {nranks} ranks timed out after {timeout:g}s" + detail
        )
    if errors:
        rank, exc = errors[0]
        for _rank, e in errors:
            if isinstance(e, KeyboardInterrupt):
                raise e
        if isinstance(exc, (InjectedFault, WatchdogTimeout)):
            raise exc
        raise RuntimeError(f"rank {rank} failed: {exc!r}") from exc
    return [results_by_rank.get(r) for r in range(nranks)]
