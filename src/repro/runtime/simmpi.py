"""The in-process SPMD runtime: ranks, two-sided messaging, collectives.

:class:`World` spawns one Python thread per rank, each executing the same
``main(comm)`` function — the SPMD model of an MPI program.  Messages are
moved through per-rank mailboxes with MPI's matching semantics:

* ``send`` is eager and buffered (payloads are defensively copied, so a
  sender may immediately reuse its buffers — MPI's eager protocol for
  small/medium messages).
* ``recv`` blocks until a matching message arrives; ``ANY_SOURCE`` /
  ``ANY_TAG`` wildcards are supported, with FIFO ordering per
  (source, tag) pair as MPI guarantees.
* ``probe`` blocks until a matching message is available and returns its
  envelope *without* consuming it — the primitive §2.2.1 uses to learn
  message sizes "determined at runtime" before posting the receive.
* ``iprobe`` is the non-blocking variant.

Collectives (``barrier``, ``allreduce``, ``allgather``, ``bcast``) are
implemented over shared slots guarded by a reusable barrier.

All traffic is recorded in :class:`~repro.runtime.stats.TrafficStats`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro import observe as obs
from repro.runtime.netmodel import NetworkModel
from repro.runtime.stats import TrafficStats, payload_nbytes

#: Wildcard source for :meth:`RankComm.recv` / :meth:`RankComm.probe`.
ANY_SOURCE: int = -1
#: Wildcard tag.
ANY_TAG: int = -1


class WorldAborted(RuntimeError):
    """Raised in surviving ranks when another rank failed."""


@dataclass(frozen=True)
class Status:
    """Envelope information returned by probe operations."""

    source: int
    tag: int
    nbytes: int


def _freeze(obj):
    """Defensive copy of a payload (MPI buffered-send semantics)."""
    if isinstance(obj, np.ndarray):
        return obj.copy()
    if isinstance(obj, tuple):
        return tuple(_freeze(x) for x in obj)
    if isinstance(obj, list):
        return [_freeze(x) for x in obj]
    if isinstance(obj, dict):
        return {k: _freeze(v) for k, v in obj.items()}
    return obj


class _Mailbox:
    """FIFO message store of one rank with condition-variable waiting."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._queue: list[tuple[int, int, Any, int]] = []

    def deposit(self, src: int, tag: int, payload, nbytes: int) -> None:
        with self._cond:
            self._queue.append((src, tag, payload, nbytes))
            self._cond.notify_all()

    def _match_index(self, source: int, tag: int) -> int | None:
        for idx, (src, t, _payload, _n) in enumerate(self._queue):
            if (source in (ANY_SOURCE, src)) and (tag in (ANY_TAG, t)):
                return idx
        return None

    def take(self, source: int, tag: int, abort: threading.Event):
        """Blocking consume of the first matching message.

        Waits on the mailbox condition without a polling timeout: a
        matching :meth:`deposit` or a world abort (:meth:`wake_all`)
        delivers the wakeup directly, so a blocked receive adds no
        scheduling-interval floor to the latency.
        """
        with self._cond:
            while True:
                idx = self._match_index(source, tag)
                if idx is not None:
                    return self._queue.pop(idx)
                if abort.is_set():
                    raise WorldAborted("world aborted while waiting in recv")
                self._cond.wait()

    def peek(self, source: int, tag: int, abort: threading.Event):
        """Blocking probe of the first matching message (not consumed)."""
        with self._cond:
            while True:
                idx = self._match_index(source, tag)
                if idx is not None:
                    return self._queue[idx]
                if abort.is_set():
                    raise WorldAborted("world aborted while waiting in probe")
                self._cond.wait()

    def wake_all(self) -> None:
        """Wake every blocked waiter (abort path; they re-check the flag)."""
        with self._cond:
            self._cond.notify_all()

    def try_peek(self, source: int, tag: int):
        """Non-blocking probe; returns the message tuple or ``None``."""
        with self._cond:
            idx = self._match_index(source, tag)
            return None if idx is None else self._queue[idx]

    def pending(self) -> int:
        with self._cond:
            return len(self._queue)


class _Collectives:
    """Slot-exchange machinery shared by all ranks of a world."""

    def __init__(self, nranks: int) -> None:
        self.nranks = nranks
        self.barrier = threading.Barrier(nranks)
        self.slots: list[Any] = [None] * nranks

    def wait(self) -> None:
        try:
            self.barrier.wait()
        except threading.BrokenBarrierError as exc:
            raise WorldAborted("world aborted during a collective") from exc

    def exchange(self, rank: int, value) -> list:
        """All ranks deposit a value; everyone gets the full list back."""
        self.slots[rank] = value
        self.wait()
        out = list(self.slots)
        self.wait()
        return out


class RankComm:
    """The communicator handle passed to each rank's ``main`` function."""

    def __init__(self, world: "World", rank: int) -> None:
        self.world = world
        self.rank = rank

    @property
    def size(self) -> int:
        """Number of ranks in the world."""
        return self.world.nranks

    @property
    def stats(self) -> TrafficStats:
        """The world-wide traffic accounting object."""
        return self.world.stats

    # ------------------------------------------------------------------
    # Two-sided messaging
    # ------------------------------------------------------------------
    def send(self, dest: int, tag: int, payload=None) -> None:
        """Eager buffered send; returns immediately."""
        if not 0 <= dest < self.size:
            raise ValueError(f"destination rank {dest} out of range")
        if tag < 0:
            raise ValueError(f"tag must be non-negative, got {tag}")
        nbytes = payload_nbytes(payload)
        self.world.stats.record_send(self.rank, dest, nbytes)
        self.world.mailboxes[dest].deposit(self.rank, tag, _freeze(payload), nbytes)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Blocking receive; returns ``(source, tag, payload)``."""
        with obs.phase("runtime.recv"):
            src, t, payload, nbytes = self.world.mailboxes[self.rank].take(
                source, tag, self.world.abort
            )
        self.world.stats.record_recv(self.rank, nbytes)
        return src, t, payload

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Status:
        """Blocking probe: envelope of the next matching message."""
        with obs.phase("runtime.probe"):
            src, t, _payload, nbytes = self.world.mailboxes[self.rank].peek(
                source, tag, self.world.abort
            )
        return Status(source=src, tag=t, nbytes=nbytes)

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Status | None:
        """Non-blocking probe; ``None`` if no matching message is queued."""
        hit = self.world.mailboxes[self.rank].try_peek(source, tag)
        if hit is None:
            return None
        src, t, _payload, nbytes = hit
        return Status(source=src, tag=t, nbytes=nbytes)

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------
    def barrier(self) -> None:
        """Synchronize all ranks."""
        if self.rank == 0:
            self.world.stats.record_collective(0)
        with obs.phase("runtime.collective"):
            self.world.collectives.wait()

    def allgather(self, value) -> list:
        """Every rank contributes ``value``; all get the list by rank."""
        if self.rank == 0:
            self.world.stats.record_collective(payload_nbytes(value))
        with obs.phase("runtime.collective"):
            return self.world.collectives.exchange(self.rank, _freeze(value))

    def allreduce(self, value, op: str = "sum"):
        """Reduce ``value`` across ranks with ``op`` in {sum, min, max}.

        Works on scalars and NumPy arrays (elementwise).
        """
        values = self.allgather(value)
        if op == "sum":
            out = values[0]
            for v in values[1:]:
                out = out + v
            return out
        if op == "min":
            out = values[0]
            for v in values[1:]:
                out = np.minimum(out, v) if isinstance(out, np.ndarray) else min(out, v)
            return out
        if op == "max":
            out = values[0]
            for v in values[1:]:
                out = np.maximum(out, v) if isinstance(out, np.ndarray) else max(out, v)
            return out
        raise ValueError(f"unknown reduction op {op!r}")

    def bcast(self, value=None, root: int = 0):
        """Broadcast ``value`` from ``root`` to all ranks."""
        if not 0 <= root < self.size:
            raise ValueError(f"root rank {root} out of range")
        values = self.allgather(value if self.rank == root else None)
        return values[root]

    # ------------------------------------------------------------------
    # One-sided communication
    # ------------------------------------------------------------------
    def win_create(self):
        """Collectively create a one-sided :class:`Window`."""
        from repro.runtime.window import Window, WindowShared

        # Control-plane exchange: bypasses stats metering and payload
        # freezing (the shared handle must be identical on all ranks).
        values = self.world.collectives.exchange(
            self.rank, WindowShared(self.size) if self.rank == 0 else None
        )
        return Window(self, values[0])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RankComm(rank={self.rank}, size={self.size})"


class World:
    """A fixed-size group of SPMD ranks executed on threads.

    Parameters
    ----------
    nranks:
        Number of ranks.
    network:
        Cost model for the traffic accounting (defaults to a generic
        HPC interconnect; use :data:`repro.runtime.netmodel.SUNWAY_NETWORK`
        for the TaihuLight-flavored parameters).
    """

    def __init__(self, nranks: int, network: NetworkModel | None = None) -> None:
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        self.nranks = nranks
        self.stats = TrafficStats(nranks, network or NetworkModel())
        self.mailboxes = [_Mailbox() for _ in range(nranks)]
        self.collectives = _Collectives(nranks)
        self.abort = threading.Event()
        self._errors: list[tuple[int, BaseException]] = []
        self._error_lock = threading.Lock()

    def run(self, main: Callable[[RankComm], Any], timeout: float = 300.0) -> list:
        """Execute ``main(comm)`` on every rank; return per-rank results.

        If any rank raises, the world is aborted (blocked ranks unblock
        with :class:`WorldAborted`) and the first error is re-raised.
        """
        results: list[Any] = [None] * self.nranks
        threads = []

        def wrapper(rank: int) -> None:
            comm = RankComm(self, rank)
            try:
                results[rank] = main(comm)
            except WorldAborted:
                pass
            except BaseException as exc:  # noqa: BLE001 - must cross threads
                with self._error_lock:
                    self._errors.append((rank, exc))
                self.abort_world()

        for rank in range(self.nranks):
            t = threading.Thread(
                target=wrapper, args=(rank,), name=f"simmpi-rank-{rank}", daemon=True
            )
            threads.append(t)
            t.start()
        for t in threads:
            t.join(timeout=timeout)
        if any(t.is_alive() for t in threads):
            self.abort_world()
            for t in threads:
                t.join(timeout=5.0)
            raise TimeoutError(f"world of {self.nranks} ranks timed out")
        if self._errors:
            rank, exc = self._errors[0]
            raise RuntimeError(f"rank {rank} failed: {exc!r}") from exc
        return results

    def abort_world(self) -> None:
        """Abort all ranks: unblock collectives and every waiting mailbox.

        The abort flag is raised *before* the mailbox conditions are
        notified, and waiters re-check the flag while holding their
        condition lock — so no blocked rank can miss the wakeup.
        """
        self.abort.set()
        self.collectives.barrier.abort()
        for mb in self.mailboxes:
            mb.wake_all()

    def pending_messages(self) -> int:
        """Messages deposited but never received (should be 0 after run)."""
        return sum(mb.pending() for mb in self.mailboxes)
