"""The in-process SPMD runtime: ranks, two-sided messaging, collectives.

:class:`World` spawns one Python thread per rank, each executing the same
``main(comm)`` function — the SPMD model of an MPI program.  Messages are
moved through per-rank mailboxes with MPI's matching semantics:

* ``send`` is eager and buffered (payloads are defensively copied, so a
  sender may immediately reuse its buffers — MPI's eager protocol for
  small/medium messages).
* ``recv`` blocks until a matching message arrives; ``ANY_SOURCE`` /
  ``ANY_TAG`` wildcards are supported, with FIFO ordering per
  (source, tag) pair as MPI guarantees.
* ``probe`` blocks until a matching message is available and returns its
  envelope *without* consuming it — the primitive §2.2.1 uses to learn
  message sizes "determined at runtime" before posting the receive.
* ``iprobe`` is the non-blocking variant.

Collectives (``barrier``, ``allreduce``, ``allgather``, ``bcast``) are
implemented over shared slots guarded by a reusable barrier.

All traffic is recorded in :class:`~repro.runtime.stats.TrafficStats`.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro import observe as obs
from repro.runtime.faults import FaultInjector, FaultPlan, InjectedFault
from repro.runtime.netmodel import NetworkModel
from repro.runtime.stats import TrafficStats, payload_nbytes

#: Wildcard source for :meth:`RankComm.recv` / :meth:`RankComm.probe`.
ANY_SOURCE: int = -1
#: Wildcard tag.
ANY_TAG: int = -1


class WorldAborted(RuntimeError):
    """Raised in surviving ranks when another rank failed."""


class WatchdogTimeout(TimeoutError):
    """A blocking recv/probe/collective exceeded the world's watchdog.

    Only raised when the world was created with a ``watchdog`` deadline;
    the default (``None``) leaves the blocking primitives deadline-free,
    so hot paths pay nothing for the feature.
    """


@dataclass(frozen=True)
class Status:
    """Envelope information returned by probe operations."""

    source: int
    tag: int
    nbytes: int


def _freeze(obj):
    """Defensive copy of a payload (MPI buffered-send semantics)."""
    if isinstance(obj, np.ndarray):
        return obj.copy()
    if isinstance(obj, tuple):
        return tuple(_freeze(x) for x in obj)
    if isinstance(obj, list):
        return [_freeze(x) for x in obj]
    if isinstance(obj, dict):
        return {k: _freeze(v) for k, v in obj.items()}
    return obj


class _Mailbox:
    """FIFO message store of one rank with condition-variable waiting."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._queue: list[tuple[int, int, Any, int]] = []
        self._seen_ids: set | None = None

    def deposit(
        self, src: int, tag: int, payload, nbytes: int, msg_id=None
    ) -> bool:
        """Enqueue a message; returns ``False`` for a dropped duplicate.

        ``msg_id`` is only passed by fault-injected sends: the transport
        then behaves as an at-least-once network while delivery stays
        exactly-once — a redelivered id is dropped here, never seen by
        ``recv``.  The unfaulted path passes ``None`` and skips the
        dedup bookkeeping entirely.
        """
        with self._cond:
            if msg_id is not None:
                if self._seen_ids is None:
                    self._seen_ids = set()
                if msg_id in self._seen_ids:
                    obs.add("runtime.faults.duplicates_dropped")
                    return False
                self._seen_ids.add(msg_id)
            self._queue.append((src, tag, payload, nbytes))
            self._cond.notify_all()
        return True

    def _match_index(self, source: int, tag: int) -> int | None:
        for idx, (src, t, _payload, _n) in enumerate(self._queue):
            if (source in (ANY_SOURCE, src)) and (tag in (ANY_TAG, t)):
                return idx
        return None

    def take(
        self, source: int, tag: int, abort: threading.Event,
        deadline: float | None = None,
    ):
        """Blocking consume of the first matching message.

        Waits on the mailbox condition without a polling timeout: a
        matching :meth:`deposit` or a world abort (:meth:`wake_all`)
        delivers the wakeup directly, so a blocked receive adds no
        scheduling-interval floor to the latency.  With a ``deadline``
        (``time.monotonic()`` instant, from the world's watchdog) the
        wait raises :class:`WatchdogTimeout` once it passes.
        """
        with self._cond:
            while True:
                idx = self._match_index(source, tag)
                if idx is not None:
                    return self._queue.pop(idx)
                if abort.is_set():
                    raise WorldAborted("world aborted while waiting in recv")
                self._wait(deadline, "recv")

    def peek(self, source: int, tag: int, abort: threading.Event,
             deadline: float | None = None):
        """Blocking probe of the first matching message (not consumed)."""
        with self._cond:
            while True:
                idx = self._match_index(source, tag)
                if idx is not None:
                    return self._queue[idx]
                if abort.is_set():
                    raise WorldAborted("world aborted while waiting in probe")
                self._wait(deadline, "probe")

    def _wait(self, deadline: float | None, op: str) -> None:
        """One condition wait, bounded by the watchdog deadline if any."""
        if deadline is None:
            self._cond.wait()
            return
        remaining = deadline - time.monotonic()
        if remaining <= 0 or not self._cond.wait(timeout=remaining):
            if deadline - time.monotonic() <= 0:
                obs.add("runtime.watchdog.expired")
                raise WatchdogTimeout(
                    f"watchdog: no matching message arrived in {op} "
                    "before the deadline"
                )

    def wake_all(self) -> None:
        """Wake every blocked waiter (abort path; they re-check the flag)."""
        with self._cond:
            self._cond.notify_all()

    def try_peek(self, source: int, tag: int):
        """Non-blocking probe; returns the message tuple or ``None``."""
        with self._cond:
            idx = self._match_index(source, tag)
            return None if idx is None else self._queue[idx]

    def pending(self) -> int:
        with self._cond:
            return len(self._queue)


class _Collectives:
    """Slot-exchange machinery shared by all ranks of a world."""

    def __init__(self, nranks: int) -> None:
        self.nranks = nranks
        self.barrier = threading.Barrier(nranks)
        self.slots: list[Any] = [None] * nranks

    def wait(self, timeout: float | None = None) -> None:
        """Barrier wait; ``timeout`` (watchdog) turns a hang into an error.

        A rank whose own wait ran out raises :class:`WatchdogTimeout`;
        ranks woken by the resulting broken barrier (or by a world
        abort) raise :class:`WorldAborted` as before.
        """
        start = time.monotonic() if timeout is not None else 0.0
        try:
            self.barrier.wait(timeout=timeout)
        except threading.BrokenBarrierError as exc:
            if timeout is not None and time.monotonic() - start >= timeout:
                obs.add("runtime.watchdog.expired")
                raise WatchdogTimeout(
                    f"watchdog: collective did not complete within {timeout}s"
                ) from exc
            raise WorldAborted("world aborted during a collective") from exc

    def exchange(self, rank: int, value, timeout: float | None = None) -> list:
        """All ranks deposit a value; everyone gets the full list back."""
        self.slots[rank] = value
        self.wait(timeout)
        out = list(self.slots)
        self.wait(timeout)
        return out


def reduce_values(values: list, op: str):
    """Rank-ordered reduction shared by allreduce implementations.

    Kept as a module-level function so the sanitizer's wrapped
    ``allreduce`` reduces in the exact same order — bit-identity between
    sanitized and plain runs depends on it.
    """
    if op == "sum":
        out = values[0]
        for v in values[1:]:
            out = out + v
        return out
    if op == "min":
        out = values[0]
        for v in values[1:]:
            out = np.minimum(out, v) if isinstance(out, np.ndarray) else min(out, v)
        return out
    if op == "max":
        out = values[0]
        for v in values[1:]:
            out = np.maximum(out, v) if isinstance(out, np.ndarray) else max(out, v)
        return out
    raise ValueError(f"unknown reduction op {op!r}")


#: Reusable no-op context for worlds without a scheduler: the thread and
#: process backends pay one attribute check per blocking call, nothing
#: more.
_NO_YIELD = nullcontext()


class RankComm:
    """The communicator handle passed to each rank's ``main`` function."""

    def __init__(self, world: "World", rank: int) -> None:
        self.world = world
        self.rank = rank

    def _yielding(self):
        """Scheduler yield context around a blocking wait (or a no-op).

        On the overdecomposed backend a rank gives its worker slot back
        to the scheduler for the duration of any blocking communication
        wait; elsewhere ``world.scheduler`` is ``None`` and this costs a
        single attribute check.
        """
        scheduler = self.world.scheduler
        if scheduler is None:
            return _NO_YIELD
        return scheduler.waiting(self.rank)

    @property
    def size(self) -> int:
        """Number of ranks in the world."""
        return self.world.nranks

    @property
    def stats(self) -> TrafficStats:
        """The world-wide traffic accounting object."""
        return self.world.stats

    # ------------------------------------------------------------------
    # Two-sided messaging
    # ------------------------------------------------------------------
    def send(self, dest: int, tag: int, payload=None) -> None:
        """Eager buffered send; returns immediately.

        When the world carries a fault plan the injector may impose a
        sender-side delay (FIFO order per (source, tag) is preserved —
        an MPI send is allowed to block) or deliver the message twice;
        duplicates are deduplicated at the destination mailbox, so the
        receiver still sees exactly-once delivery.
        """
        if not 0 <= dest < self.size:
            raise ValueError(f"destination rank {dest} out of range")
        if tag < 0:
            raise ValueError(f"tag must be non-negative, got {tag}")
        inj = self.world.faults
        action = inj.on_send(self.rank, dest, tag) if inj is not None else None
        nbytes = payload_nbytes(payload)
        self.world.stats.record_send(self.rank, dest, nbytes)
        frozen = _freeze(payload)
        mailbox = self.world.mailboxes[dest]
        if action is None:
            mailbox.deposit(self.rank, tag, frozen, nbytes)
            return
        if action.delay_s > 0:
            time.sleep(action.delay_s)
        msg_id = action.msg_id if action.duplicate else None
        mailbox.deposit(self.rank, tag, frozen, nbytes, msg_id)
        if action.duplicate:
            # The wire-level retransmission: metered as real traffic,
            # dropped by the mailbox's id dedup before delivery.
            self.world.stats.record_send(self.rank, dest, nbytes)
            if not mailbox.deposit(self.rank, tag, frozen, nbytes, msg_id):
                inj.record_dropped_duplicate()

    def _deadline(self) -> float | None:
        wd = self.world.watchdog
        return None if wd is None else time.monotonic() + wd

    def fault_point(self, site: str, index: int) -> None:
        """Consult the world's fault plan at a named execution point.

        Engines call this at their natural restart boundaries (e.g. the
        AKMC drivers at the top of every cycle); a planned crash for
        (rank, site, index) raises
        :class:`~repro.runtime.faults.InjectedFault` here.  No-op when
        the world carries no plan.
        """
        inj = self.world.faults
        if inj is not None:
            inj.crash_point(self.rank, site, index)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Blocking receive; returns ``(source, tag, payload)``."""
        with obs.phase("runtime.recv"), self._yielding():
            src, t, payload, nbytes = self.world.mailboxes[self.rank].take(
                source, tag, self.world.abort, self._deadline()
            )
        self.world.stats.record_recv(self.rank, nbytes)
        return src, t, payload

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Status:
        """Blocking probe: envelope of the next matching message."""
        with obs.phase("runtime.probe"), self._yielding():
            src, t, _payload, nbytes = self.world.mailboxes[self.rank].peek(
                source, tag, self.world.abort, self._deadline()
            )
        return Status(source=src, tag=t, nbytes=nbytes)

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Status | None:
        """Non-blocking probe; ``None`` if no matching message is queued."""
        hit = self.world.mailboxes[self.rank].try_peek(source, tag)
        if hit is None:
            return None
        src, t, _payload, nbytes = hit
        return Status(source=src, tag=t, nbytes=nbytes)

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------
    def barrier(self) -> None:
        """Synchronize all ranks."""
        if self.rank == 0:
            self.world.stats.record_collective(0)
        with obs.phase("runtime.collective"), self._yielding():
            self.world.collectives.wait(self.world.watchdog)

    def allgather(self, value) -> list:
        """Every rank contributes ``value``; all get the list by rank."""
        if self.rank == 0:
            self.world.stats.record_collective(payload_nbytes(value))
        with obs.phase("runtime.collective"), self._yielding():
            return self.world.collectives.exchange(
                self.rank, _freeze(value), self.world.watchdog
            )

    def allreduce(self, value, op: str = "sum"):
        """Reduce ``value`` across ranks with ``op`` in {sum, min, max}.

        Works on scalars and NumPy arrays (elementwise).
        """
        return reduce_values(self.allgather(value), op)

    def bcast(self, value=None, root: int = 0):
        """Broadcast ``value`` from ``root`` to all ranks."""
        if not 0 <= root < self.size:
            raise ValueError(f"root rank {root} out of range")
        values = self.allgather(value if self.rank == root else None)
        return values[root]

    # ------------------------------------------------------------------
    # One-sided communication
    # ------------------------------------------------------------------
    def win_create(self):
        """Collectively create a one-sided :class:`Window`."""
        from repro.runtime.window import Window, WindowShared

        # Control-plane exchange: bypasses stats metering and payload
        # freezing (the shared handle must be identical on all ranks).
        with self._yielding():
            values = self.world.collectives.exchange(
                self.rank, WindowShared(self.size) if self.rank == 0 else None
            )
        return Window(self, values[0])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RankComm(rank={self.rank}, size={self.size})"


BACKENDS = ("thread", "process", "overdecomposed")


def resolve_backend(backend: str | None) -> str:
    """Normalize a backend choice: explicit > ``REPRO_BACKEND`` > thread.

    A ``REPRO_BACKEND`` that is unset, empty, or whitespace-only falls
    back to ``"thread"``; anything else must name a known backend.
    """
    if backend is None:
        env = os.environ.get("REPRO_BACKEND")
        backend = (env.strip() if env is not None else "") or "thread"
    backend = str(backend).strip().lower()
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown simmpi backend {backend!r}; expected one of {BACKENDS}"
        )
    return backend


def resolve_workers(workers: int | str | None) -> int | None:
    """Normalize a worker count: explicit > ``REPRO_WORKERS`` > ``None``.

    ``None`` (with no usable env value) means "backend default": the
    rank count for the process backend, the host's core count for the
    overdecomposed backend.  Mirrors :func:`resolve_backend` — an unset,
    empty, or whitespace-only ``REPRO_WORKERS`` counts as absent.
    """
    if workers is None:
        env = os.environ.get("REPRO_WORKERS", "").strip()
        if not env:
            return None
        workers = env
    try:
        count = int(workers)
    except (TypeError, ValueError):
        raise ValueError(
            f"workers must be a positive integer, got {workers!r}"
        ) from None
    if count < 1:
        raise ValueError(f"workers must be >= 1, got {count}")
    return count


class World:
    """A fixed-size group of SPMD ranks executed on threads or processes.

    Parameters
    ----------
    nranks:
        Number of ranks.
    network:
        Cost model for the traffic accounting (defaults to a generic
        HPC interconnect; use :data:`repro.runtime.netmodel.SUNWAY_NETWORK`
        for the TaihuLight-flavored parameters).
    faults:
        Optional :class:`~repro.runtime.faults.FaultPlan` (or an already
        shared :class:`~repro.runtime.faults.FaultInjector`) that sends,
        one-sided puts, and engine fault points consult.  ``None`` (the
        default) keeps every hot path exactly as before.
    watchdog:
        Optional deadline in seconds for each blocking recv/probe/
        collective; when exceeded the waiting rank raises
        :class:`WatchdogTimeout` and the world aborts.  ``None`` (the
        default) disables the deadline entirely — blocked waits stay
        timer-free.
    backend:
        Execution backend: ``"thread"`` (ranks as threads, the
        historical behavior), ``"process"`` (one forked OS process per
        rank — or per rank *group* with ``workers`` — via
        :mod:`repro.runtime.procbackend`, for real multi-core
        parallelism), or ``"overdecomposed"`` (R logical ranks
        cooperatively scheduled on P worker slots via
        :mod:`repro.runtime.scheduler`, for decompositions far beyond
        the host's core count).  ``None`` (the default) defers to the
        ``REPRO_BACKEND`` environment variable, falling back to
        ``"thread"``.
    workers:
        Physical parallelism P under the logical decomposition.  For
        ``"overdecomposed"`` this is the number of concurrently running
        rank slots (default: the host's core count); for ``"process"``
        it is the number of forked children, each hosting a contiguous
        group of R/P ranks with in-process routing inside the group
        (default: one child per rank).  ``None`` defers to the
        ``REPRO_WORKERS`` environment variable, falling back to the
        backend default.  Results are bit-identical for every P.
    migration:
        Overdecomposed-backend fault policy.  ``None`` (auto) journals
        rank communication whenever the world carries a fault plan, so
        a planned crash is survived by *migrating* the rank (journal
        replay on a replacement thread) instead of aborting the world;
        ``True``/``False`` force journaling on/off.
    """

    def __init__(
        self,
        nranks: int,
        network: NetworkModel | None = None,
        faults: FaultPlan | FaultInjector | None = None,
        watchdog: float | None = None,
        backend: str | None = None,
        workers: int | None = None,
        migration: bool | None = None,
        sanitize: bool | None = None,
    ) -> None:
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        if watchdog is not None and watchdog <= 0:
            raise ValueError(f"watchdog must be positive, got {watchdog}")
        self.nranks = nranks
        self.backend = resolve_backend(backend)
        self.workers = resolve_workers(workers)
        self.migration = migration
        self.stats = TrafficStats(nranks, network or NetworkModel())
        self.mailboxes = [_Mailbox() for _ in range(nranks)]
        self.collectives = _Collectives(nranks)
        self.abort = threading.Event()
        self.faults = (
            FaultInjector(faults) if isinstance(faults, FaultPlan) else faults
        )
        self.watchdog = watchdog
        #: ``True``/``False`` force the communication sanitizer on/off
        #: for this world; ``None`` defers to ``REPRO_SANITIZE``.
        self.sanitize = sanitize
        #: The active RankScheduler on the overdecomposed backend.
        self.scheduler = None
        #: Ranks migrated (journal-replayed) after an injected crash.
        self.migrations = 0
        self._errors: list[tuple[int, BaseException]] = []
        self._error_lock = threading.Lock()
        self._child_pending = 0

    def run(
        self,
        main: Callable[[RankComm], Any],
        timeout: float = 300.0,
        grace: float = 5.0,
        backend: str | None = None,
        workers: int | None = None,
    ) -> list:
        """Execute ``main(comm)`` on every rank; return per-rank results.

        If any rank raises, the world is aborted (blocked ranks unblock
        with :class:`WorldAborted`) and the first error is re-raised.
        A :class:`KeyboardInterrupt` raised inside a rank still aborts
        the world but propagates to the caller as itself — an interrupt
        is the user's request to stop, not a rank failure.  On timeout,
        ranks get ``grace`` seconds to exit after the abort; any that
        are still alive are named in the :class:`TimeoutError`.

        ``backend`` and ``workers`` override the world's configuration
        for this run; backends are ``"thread"``, ``"process"``, and
        ``"overdecomposed"``.
        """
        resolved = resolve_backend(backend) if backend else self.backend
        run_workers = (
            resolve_workers(workers) if workers is not None else self.workers
        )
        from repro.runtime.sanitize import (
            finish_world,
            sanitize_enabled,
            wrap_main,
        )

        sanitizing = sanitize_enabled(self.sanitize)
        run_main = wrap_main(main) if sanitizing else main
        if resolved == "process":
            from repro.runtime.procbackend import run_process_world

            results = run_process_world(
                self, run_main, timeout=timeout, grace=grace,
                workers=run_workers,
            )
            return finish_world(self, results) if sanitizing else results
        if resolved == "overdecomposed":
            from repro.runtime.scheduler import run_overdecomposed_world

            results = run_overdecomposed_world(
                self, run_main, timeout=timeout, grace=grace,
                workers=run_workers,
            )
            return finish_world(self, results) if sanitizing else results
        results: list[Any] = [None] * self.nranks
        threads = []

        def wrapper(rank: int) -> None:
            comm = RankComm(self, rank)
            try:
                results[rank] = run_main(comm)
            except WorldAborted:
                pass
            except BaseException as exc:  # must cross threads (see baseline)
                with self._error_lock:
                    self._errors.append((rank, exc))
                self.abort_world()

        for rank in range(self.nranks):
            t = threading.Thread(
                target=wrapper, args=(rank,), name=f"simmpi-rank-{rank}", daemon=True
            )
            threads.append(t)
            t.start()
        for t in threads:
            t.join(timeout=timeout)
        if any(t.is_alive() for t in threads):
            self.abort_world()
            for t in threads:
                t.join(timeout=grace)
            alive = [t.name for t in threads if t.is_alive()]
            if alive:
                detail = (
                    f"; {len(alive)} rank thread(s) still alive after a "
                    f"{grace:g}s abort grace period (leaked): "
                    + ", ".join(alive)
                )
            else:
                detail = "; all ranks exited after the abort"
            raise TimeoutError(
                f"world of {self.nranks} ranks timed out after {timeout:g}s"
                + detail
            )
        if self._errors:
            rank, exc = self._errors[0]
            for _rank, e in self._errors:
                if isinstance(e, KeyboardInterrupt):
                    raise e
            if isinstance(exc, (InjectedFault, WatchdogTimeout)):
                # Typed failures the recovery supervisor dispatches on;
                # their messages already carry the rank and location.
                raise exc
            raise RuntimeError(f"rank {rank} failed: {exc!r}") from exc
        return finish_world(self, results) if sanitizing else results

    def abort_world(self) -> None:
        """Abort all ranks: unblock collectives and every waiting mailbox.

        The abort flag is raised *before* the mailbox conditions are
        notified, and waiters re-check the flag while holding their
        condition lock — so no blocked rank can miss the wakeup.  On the
        overdecomposed backend the scheduler gate is opened first, so
        ranks queued for a worker slot run free to observe the flag.
        """
        self.abort.set()
        if self.scheduler is not None:
            self.scheduler.release_all()
        self.collectives.barrier.abort()
        for mb in self.mailboxes:
            mb.wake_all()

    def pending_messages(self) -> int:
        """Messages deposited but never received (should be 0 after run)."""
        return sum(mb.pending() for mb in self.mailboxes) + self._child_pending
